/**
 * @file
 * Architecture explorer: the "what if" studies the machine models
 * make cheap. Sweeps one microarchitectural parameter per machine
 * and shows how the paper's kernels respond:
 *
 *  - VIRAM: number of strided address generators vs corner turn
 *    (Section 4.2 blames 24% of cycles on having only four);
 *  - Imagine: number of memory stream engines vs corner turn
 *    (the paper notes 2 words/cycle was an implementation choice);
 *  - Raw: mesh size vs beam steering (tiled scaling);
 *  - PPC G4: front-side-bus width vs corner turn (why the G4 loses
 *    regardless of AltiVec).
 *
 *   $ ./architecture_explorer
 */

#include <iostream>

#include "imagine/kernels_imagine.hh"
#include "ppc/kernels_ppc.hh"
#include "raw/kernels_raw.hh"
#include "sim/logging.hh"
#include "sim/table.hh"
#include "viram/kernels_viram.hh"

using namespace triarch;
using namespace triarch::kernels;

int
main()
{
    WordMatrix matrix(1024, 1024);
    fillMatrix(matrix, 1);
    WordMatrix dst;

    {
        Table t("VIRAM: strided address generators vs corner turn");
        t.header({"Address generators", "Cycles (10^3)"});
        for (unsigned gens : {1u, 2u, 4u, 8u}) {
            viram::ViramConfig cfg;
            cfg.addrGens = gens;
            viram::ViramMachine machine(cfg);
            const Cycles c =
                viram::cornerTurnViram(machine, matrix, dst);
            triarch_assert(isTransposeOf(matrix, dst), "bad output");
            t.row({std::to_string(gens), Table::num(c / 1000)});
        }
        t.render(std::cout);
        std::cout << "(the prototype has 4; Section 4.2 attributes "
                     "~24% of corner-turn time to it)\n\n";
    }

    {
        Table t("Imagine: memory stream engines vs corner turn");
        t.header({"Engines (1 word/cycle each)", "Cycles (10^3)"});
        for (unsigned engines : {1u, 2u, 4u}) {
            imagine::ImagineConfig cfg;
            cfg.memEngines = engines;
            imagine::ImagineMachine machine(cfg);
            const Cycles c =
                imagine::cornerTurnImagine(machine, matrix, dst);
            triarch_assert(isTransposeOf(matrix, dst), "bad output");
            t.row({std::to_string(engines), Table::num(c / 1000)});
        }
        t.render(std::cout);
        std::cout << "(the prototype has 2; the paper notes the "
                     "memory interface was deliberately\nnarrow — "
                     "Imagine's point is avoiding memory traffic, "
                     "not providing it)\n\n";
    }

    {
        BeamConfig cfg;
        auto tables = makeBeamTables(cfg, 2);
        auto ref = beamSteerReference(cfg, tables);
        Table t("Raw: mesh size vs beam steering");
        t.header({"Mesh", "Tiles", "Cycles (10^3)"});
        for (unsigned edge : {2u, 3u, 4u}) {
            raw::RawConfig rcfg;
            rcfg.meshWidth = edge;
            rcfg.meshHeight = edge;
            raw::RawMachine machine(rcfg);
            std::vector<std::int32_t> out;
            const Cycles c =
                raw::beamSteeringRaw(machine, cfg, tables, out);
            triarch_assert(out == ref, "bad output");
            t.row({std::to_string(edge) + "x" + std::to_string(edge),
                   std::to_string(edge * edge),
                   Table::num(c / 1000)});
        }
        t.render(std::cout);
        std::cout << "(near-linear scaling: every tile computes on "
                     "data straight from the network)\n\n";
    }

    {
        Table t("PPC G4: front-side-bus width vs corner turn "
                "(AltiVec)");
        t.header({"Bus (words/cycle)", "Cycles (10^3)"});
        for (unsigned num : {2u, 4u, 8u, 16u}) {
            ppc::PpcConfig cfg;
            cfg.fsbWordsNum = num;      // over fsbCyclesDen = 5
            ppc::PpcMachine machine(cfg);
            const Cycles c =
                ppc::cornerTurnPpc(machine, matrix, dst, true);
            triarch_assert(isTransposeOf(matrix, dst), "bad output");
            t.row({Table::num(num / 5.0, 1), Table::num(c / 1000)});
        }
        t.render(std::cout);
        std::cout << "(even a 4x wider bus leaves the G4 an order of "
                     "magnitude behind the\nresearch chips: the "
                     "latency of blocking loads dominates)\n";
    }
    return 0;
}
