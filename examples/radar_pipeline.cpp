/**
 * @file
 * Radar pipeline demo: the full coherent side-lobe canceller
 * scenario from the paper, end to end — synthesize a jammed
 * four-channel interval, estimate cancellation weights, run the
 * timed CSLC kernel on a chosen architecture, and report both the
 * signal-processing outcome (jammer cancellation in dB) and the
 * architectural outcome (cycles, with the machine's explanatory
 * statistics).
 *
 *   $ ./radar_pipeline [viram|imagine|raw|ppc|altivec]
 */

#include <cmath>
#include <iostream>
#include <string>

#include "study/report.hh"

using namespace triarch;
using namespace triarch::study;

namespace
{

MachineId
parseMachine(const std::string &name)
{
    if (name == "viram")
        return MachineId::Viram;
    if (name == "imagine")
        return MachineId::Imagine;
    if (name == "raw")
        return MachineId::Raw;
    if (name == "ppc")
        return MachineId::PpcScalar;
    if (name == "altivec")
        return MachineId::PpcAltivec;
    std::cerr << "unknown machine '" << name
              << "' (want viram|imagine|raw|ppc|altivec)\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const MachineId machine =
        argc > 1 ? parseMachine(argv[1]) : MachineId::Imagine;

    // The paper's CSLC interval: 2 main + 2 aux channels, 8K complex
    // samples, 73 overlapping 128-point sub-bands. Three jammer
    // tones land across the band.
    StudyConfig cfg;
    std::cout << "CSLC radar pipeline on " << machineName(machine)
              << "\n  channels: " << cfg.cslc.mainChannels << " main + "
              << cfg.cslc.auxChannels << " aux, " << cfg.cslc.samples
              << " samples, " << cfg.cslc.subBands << " x "
              << cfg.cslc.subBandLen << "-point sub-bands\n"
              << "  jammer tones at interval bins 300, 1700, 4090\n\n";

    // Measure the jammer-dominated input power first.
    auto in = kernels::makeJammedInput(cfg.cslc, cfg.jammerBins,
                                       cfg.seed);
    double inputPower = 0.0;
    for (const auto &v : in.main[0])
        inputPower += std::norm(v);
    inputPower /= cfg.cslc.samples;
    std::cout << "main-channel input power (jammer + signal): "
              << Table::num(10.0 * std::log10(inputPower), 1)
              << " dB re unit signal\n";

    Runner runner(cfg);
    auto result = runner.run(machine, KernelId::Cslc);

    // Re-derive the cancellation depth from the same workload.
    auto weights = kernels::estimateWeights(cfg.cslc, in);
    auto algo = machine == MachineId::Imagine
                    ? kernels::FftAlgo::Mixed128
                    : kernels::FftAlgo::Radix2;
    auto out = kernels::cslcReference(cfg.cslc, in, weights, algo);
    const double depth =
        kernels::cancellationDepthDb(cfg.cslc, in, out);

    std::cout << "jammer cancellation depth: " << Table::num(depth, 1)
              << " dB\n\n";
    std::cout << "kernel cycles: " << Table::num(result.cycles) << " ("
              << Table::num(result.milliseconds(), 3) << " ms at "
              << machineInfo(machine).clockMhz << " MHz)\n";
    std::cout << "output " << (result.validated ? "verified" : "WRONG")
              << " against the reference pipeline\n";
    if (result.measuredUnbalanced) {
        std::cout << "load-imbalanced wall clock: "
                  << Table::num(*result.measuredUnbalanced)
                  << " cycles (73 sub-bands on 16 tiles)\n";
    }
    for (const auto &[key, value] : result.notes)
        std::cout << "  " << key << " = " << Table::num(value, 3)
                  << "\n";
    return 0;
}
