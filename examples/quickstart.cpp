/**
 * @file
 * Quickstart: run one kernel on every platform and print the cycle
 * counts side by side.
 *
 * This is the smallest complete use of the public API: build a
 * Runner with a workload configuration, ask it for (machine, kernel)
 * measurements, and read cycles + validation out of the RunResult.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "study/report.hh"

using namespace triarch;
using namespace triarch::study;

int
main()
{
    // A reduced workload so the quickstart finishes instantly; drop
    // these overrides to reproduce the paper's full configuration.
    StudyConfig cfg;
    cfg.matrixSize = 256;
    cfg.cslc.subBands = 16;
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    // The paper-default jammer bins sit beyond the reduced
    // interval; keep them inside it.
    cfg.jammerBins = {100, 900};
    cfg.beam.dwells = 2;

    Runner runner(cfg);

    std::cout << "triarch quickstart: corner turn ("
              << cfg.matrixSize << "x" << cfg.matrixSize
              << " words) on all five platforms\n\n";

    Table t("Corner turn");
    t.header({"Machine", "Cycles", "Time (ms)", "Output"});
    for (MachineId machine : allMachines()) {
        auto r = runner.run(machine, KernelId::CornerTurn);
        t.row({machineName(machine), Table::num(r.cycles),
               Table::num(r.milliseconds(), 3),
               r.validated ? "verified" : "WRONG"});
    }
    t.render(std::cout);

    std::cout << "\nEach machine model really moves the data: the "
                 "\"verified\" column means the\ntransposed matrix "
                 "read back from simulated memory matched the "
                 "reference.\nSee radar_pipeline and "
                 "architecture_explorer for more.\n";
    return 0;
}
