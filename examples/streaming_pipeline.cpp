/**
 * @file
 * Streaming radar pipeline on Imagine — the scenario Section 4.4
 * says the isolated beam-steering measurement understates:
 *
 *   "In an actual signal processing pipeline the beam steering
 *    kernel would stream its inputs from the preceding kernel in
 *    the application (e.g., a poly-phase filter bank) and stream
 *    its outputs to the following kernel (e.g., per-beam
 *    equalization). In such a pipeline the performance of beam
 *    steering will not be limited by memory bandwidth ... but
 *    rather will be limited by arithmetic performance."
 *
 * The example builds that three-stage pipeline from the machine
 * primitives: a synthetic poly-phase filter stage produces the
 * calibration-corrected element stream into the SRF, beam steering
 * consumes it without touching memory, and a per-beam equalization
 * stage consumes the phases — then compares cycles per output with
 * the isolated (memory-streamed) kernel of Table 3.
 *
 *   $ ./streaming_pipeline
 */

#include <iostream>

#include "imagine/kernels_imagine.hh"
#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace triarch;
using namespace triarch::imagine;
using namespace triarch::kernels;

namespace
{

/** The three pipelined kernels' VLIW schedules. */
KernelDesc
filterBankDesc(unsigned elements, unsigned clusters)
{
    // 8-tap poly-phase FIR per element: 8 multiply-accumulates.
    KernelDesc d;
    d.name = "polyphase_filter";
    d.iterations =
        static_cast<unsigned>(ceilDiv(elements, clusters));
    d.adds = 8;
    d.mults = 8;
    d.srfWords = 3;
    d.pipelineDepth = 16;
    return d;
}

KernelDesc
steerDesc(unsigned elements, unsigned clusters)
{
    KernelDesc d;
    d.name = "beam_steer";
    d.iterations =
        static_cast<unsigned>(ceilDiv(elements, clusters));
    d.adds = 6;     // 5 adds + shift, as in Table 3's kernel
    d.srfWords = 3;
    d.pipelineDepth = 16;
    return d;
}

KernelDesc
equalizeDesc(unsigned elements, unsigned clusters)
{
    // Per-beam equalization: complex gain per phase (4 mults, 2 adds).
    KernelDesc d;
    d.name = "equalize";
    d.iterations =
        static_cast<unsigned>(ceilDiv(elements, clusters));
    d.adds = 2;
    d.mults = 4;
    d.srfWords = 2;
    d.pipelineDepth = 16;
    return d;
}

} // namespace

int
main()
{
    BeamConfig cfg;
    auto tables = makeBeamTables(cfg, 13);
    const unsigned clusters = ImagineConfig{}.clusters;

    // ---- Isolated kernel (Table 3 conditions). ----
    ImagineMachine isolated;
    std::vector<std::int32_t> isolatedOut;
    const Cycles isolatedCycles =
        beamSteeringImagine(isolated, cfg, tables, isolatedOut);

    // ---- Pipelined version. ----
    ImagineMachine m;
    // Raw sensor samples come from memory once per dwell/direction;
    // everything between the stages lives in the SRF.
    const Addr sensorBase =
        m.allocMem(cfg.elements * 4ULL, "sensor samples");
    const Addr outBase =
        m.allocMem(cfg.outputs() * 4ULL, "equalized beams");
    {
        std::vector<Word> w(cfg.elements);
        for (unsigned e = 0; e < cfg.elements; ++e) {
            w[e] = static_cast<Word>(tables.calCoarse[e]
                                     + tables.calFine[e]);
        }
        m.pokeWords(sensorBase, w);
    }

    m.resetTiming();
    std::uint64_t outputs = 0;
    for (unsigned dw = 0; dw < cfg.dwells; ++dw) {
        for (unsigned dir = 0; dir < cfg.directions; ++dir) {
            StreamRef sensor = m.allocStream(cfg.elements, "sensor");
            m.loadStream(sensor, MemPattern::sequential(sensorBase,
                                                        cfg.elements));

            // Stage 1: poly-phase filter produces the corrected
            // element stream (functionally: pass-through of the
            // combined calibration value; the schedule models the
            // real 8-tap FIR arithmetic).
            StreamRef corrected =
                m.allocStream(cfg.elements, "corrected");
            m.runKernel(filterBankDesc(cfg.elements, clusters),
                        {&sensor}, {&corrected}, [&] {
                            auto in = m.srfData(sensor);
                            auto out = m.srfData(corrected);
                            std::copy(in.begin(), in.end(),
                                      out.begin());
                        });

            // Stage 2: beam steering straight from the SRF.
            StreamRef phases = m.allocStream(cfg.elements, "phases");
            m.runKernel(
                steerDesc(cfg.elements, clusters), {&corrected},
                {&phases}, [&, dw, dir] {
                    auto in = m.srfData(corrected);
                    auto out = m.srfData(phases);
                    std::int32_t acc = tables.steerBase[dir];
                    for (unsigned e = 0; e < cfg.elements; ++e) {
                        acc += tables.steerDelta[dir];
                        std::int32_t t =
                            static_cast<std::int32_t>(in[e]);
                        t += acc;
                        t += tables.dwellOffset[dw];
                        t += tables.bias;
                        out[e] = static_cast<Word>(t >> cfg.shift);
                    }
                });

            // Stage 3: per-beam equalization consumes the phases;
            // only its (small) result returns to memory.
            StreamRef beams = m.allocStream(cfg.elements, "beams");
            m.runKernel(equalizeDesc(cfg.elements, clusters),
                        {&phases}, {&beams}, [&] {
                            auto in = m.srfData(phases);
                            auto out = m.srfData(beams);
                            for (unsigned e = 0; e < cfg.elements;
                                 ++e) {
                                out[e] = in[e] ^ 0x5A5A5A5A;
                            }
                        });
            m.storeStream(
                beams,
                MemPattern::sequential(
                    outBase + (static_cast<Addr>(dw) * cfg.directions
                               + dir) * cfg.elements * 4,
                    cfg.elements));

            outputs += cfg.elements;
            m.freeStream(sensor);
            m.freeStream(corrected);
            m.freeStream(phases);
            m.freeStream(beams);
        }
    }
    const Cycles pipelineCycles = m.completionTime();

    Table t("Beam steering: isolated kernel vs streaming pipeline "
            "(Section 4.4)");
    t.header({"Configuration", "Cycles (10^3)", "Cycles per output",
              "Memory fraction"});
    t.row({"isolated (tables from DRAM, Table 3)",
           Table::num(isolatedCycles / 1000),
           Table::num(static_cast<double>(isolatedCycles)
                          / cfg.outputs(),
                      2),
           Table::num(100.0 * isolated.memoryFraction(), 1) + "%"});
    t.row({"3-stage streaming pipeline (filter->steer->equalize)",
           Table::num(pipelineCycles / 1000),
           Table::num(static_cast<double>(pipelineCycles) / outputs,
                      2),
           Table::num(100.0 * m.memoryFraction(), 1) + "%"});
    t.render(std::cout);

    std::cout
        << "\nNote the per-output cost of the pipelined version "
           "covers THREE kernels, not\none: the filter bank's 16 "
           "ops/element dominates and beam steering itself\nrides "
           "along nearly for free, limited by arithmetic rather "
           "than by the two\nmemory streams — exactly the behavior "
           "Section 4.4 predicts for a real\nradar pipeline.\n";
    return 0;
}
