#include "bench_main.hh"

#include <fstream>
#include <iostream>

#include "mem/mem_mode.hh"
#include "raw/config.hh"
#include "sim/host_clock.hh"
#include "sim/hw_report.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "study/cli_options.hh"
#include "study/registry.hh"
#include "study/study_json.hh"

namespace triarch::bench
{

namespace
{

using study::KernelId;
using study::MachineId;

bool
parseMachine(const std::string &tok, MachineId &out)
{
    const std::string t = study::lowered(tok);
    for (MachineId id : study::allMachines()) {
        if (t == study::machineToken(id)
            || t == study::lowered(study::machineName(id))) {
            out = id;
            return true;
        }
    }
    return false;
}

bool
parseKernel(const std::string &tok, KernelId &out)
{
    const std::string t = study::lowered(tok);
    for (KernelId id : study::allKernels()) {
        std::string name = study::lowered(study::kernelName(id));
        std::erase(name, ' ');
        if (t == study::kernelToken(id) || t == name) {
            out = id;
            return true;
        }
    }
    return false;
}

} // namespace

BenchContext::BenchContext(BenchOptions run_options)
    : opts(std::move(run_options))
{
    if (opts.machines.empty())
        opts.machines = study::allMachines();
    if (opts.kernels.empty())
        opts.kernels = study::allKernels();
    cfg.seed = opts.seed;
}

BenchContext::~BenchContext() = default;

study::ParallelRunner &
BenchContext::runner()
{
    if (!par) {
        par = std::make_unique<study::ParallelRunner>(cfg,
                                                      opts.threads);
    }
    return *par;
}

std::vector<study::Cell>
BenchContext::selectedCells() const
{
    std::vector<study::Cell> cells;
    cells.reserve(opts.machines.size() * opts.kernels.size());
    for (MachineId machine : opts.machines) {
        for (KernelId kernel : opts.kernels)
            cells.push_back({machine, kernel});
    }
    return cells;
}

const std::vector<study::RunResult> &
BenchContext::results()
{
    if (!haveResults) {
        cellResults = runner().runCells(selectedCells());
        sink().add(cellResults);
        haveResults = true;
    }
    return cellResults;
}

const std::vector<study::RunResult> &
BenchContext::allResults()
{
    if (!haveGrid) {
        gridResults = runner().runAll();
        sink().add(gridResults);
        haveGrid = true;
    }
    return gridResults;
}

study::ResultSink &
BenchContext::sink()
{
    if (!out)
        out = std::make_unique<study::ResultSink>(cfg);
    return *out;
}

int
benchMain(int argc, char **argv, const char *description,
          BenchBody body)
{
    BenchOptions opts;
    study::CliOptions cli(description);

    cli.value("--machines", "a,b,...",
              "platforms to run "
              "(ppc, altivec, viram, imagine, raw, or all; "
              "default all)",
              [&](const std::string &v) {
                  for (const std::string &tok : study::splitList(v)) {
                      if (study::lowered(tok) == "all") {
                          for (MachineId id : study::allMachines())
                              opts.machines.push_back(id);
                          continue;
                      }
                      MachineId id;
                      if (!parseMachine(tok, id)) {
                          std::cerr << cli.prog()
                                    << ": unknown machine '" << tok
                                    << "'\n";
                          return 2;
                      }
                      opts.machines.push_back(id);
                  }
                  return 0;
              });
    cli.value("--kernels", "a,b,...",
              "kernels to run (ct, cslc, bs, or all; default all)",
              [&](const std::string &v) {
                  for (const std::string &tok : study::splitList(v)) {
                      if (study::lowered(tok) == "all") {
                          for (KernelId id : study::allKernels())
                              opts.kernels.push_back(id);
                          continue;
                      }
                      KernelId id;
                      if (!parseKernel(tok, id)) {
                          std::cerr << cli.prog()
                                    << ": unknown kernel '" << tok
                                    << "'\n";
                          return 2;
                      }
                      opts.kernels.push_back(id);
                  }
                  return 0;
              });
    // 0 stays valid (hardware concurrency, as documented in --help);
    // the cap stops silent 32-bit truncation.
    cli.number("--threads", "N",
               "worker threads (default 0 = hardware concurrency)",
               std::numeric_limits<unsigned>::max(),
               [&](std::uint64_t n) {
                   opts.threads = static_cast<unsigned>(n);
                   return 0;
               });
    cli.number("--seed", "N", "workload synthesis seed (default 11)",
               std::numeric_limits<std::uint64_t>::max(),
               [&](std::uint64_t n) {
                   opts.seed = n;
                   return 0;
               });
    cli.value("--json", "PATH", "write structured results JSON",
              [&](const std::string &v) {
                  opts.jsonPath = v;
                  return 0;
              });
    cli.toggle("--csv",
               "machine-readable table output where supported",
               [&]() {
                   opts.csv = true;
                   return 0;
               });
    cli.value("--trace", "PATH",
              "write a Chrome trace-event JSON timeline "
              "(chrome://tracing, Perfetto)",
              [&](const std::string &v) {
                  opts.tracePath = v;
                  return 0;
              });
    cli.value("--stats", "PATH",
              "write a triarch.stats.v1 counters document",
              [&](const std::string &v) {
                  opts.statsPath = v;
                  return 0;
              });
    cli.value("--hw", "PATH",
              "write a triarch.hw.v1 per-cell utilization report "
              "(hit rates, epoch timelines, bottleneck verdicts)",
              [&](const std::string &v) {
                  opts.hwPath = v;
                  return 0;
              });
    cli.value("--mem-model", "MODE",
              "PPC/VIRAM/Imagine memory walk: span (default, batched "
              "D13 fast path) or reference (word-at-a-time baseline)",
              [&](const std::string &v) {
                  if (v == "span") {
                      mem::setDefaultMemModel(mem::MemModel::Span);
                  } else if (v == "reference") {
                      mem::setDefaultMemModel(
                          mem::MemModel::Reference);
                  } else {
                      std::cerr << cli.prog()
                                << ": --mem-model wants span or "
                                   "reference, got '"
                                << v << "'\n";
                      return 2;
                  }
                  return 0;
              });
    cli.value("--raw-stepper", "MODE",
              "Raw interpreter loop: event (default) or reference "
              "(the cycle-at-a-time differential baseline)",
              [&](const std::string &v) {
                  if (v == "event") {
                      raw::setDefaultRawStepper(raw::RawStepper::Event);
                  } else if (v == "reference") {
                      raw::setDefaultRawStepper(
                          raw::RawStepper::Reference);
                  } else {
                      std::cerr << cli.prog()
                                << ": --raw-stepper wants event or "
                                   "reference, got '"
                                << v << "'\n";
                      return 2;
                  }
                  return 0;
              });
    cli.toggle("--host-stats",
               "record host-time histograms (wall clock) into the "
               "--stats document",
               [&]() {
                   opts.hostStats = true;
                   return 0;
               });
    cli.toggle("--host",
               "measure host time per cell and emit a bench host "
               "section where supported",
               [&]() {
                   opts.hostSection = true;
                   return 0;
               });
    cli.number("--host-warmup", "N",
               "unmeasured host iterations per cell (default 1)",
               std::numeric_limits<unsigned>::max(),
               [&](std::uint64_t n) {
                   opts.hostWarmup = static_cast<unsigned>(n);
                   return 0;
               });
    cli.number("--host-reps", "N",
               "measured host iterations per cell (default 5; the "
               "measurement contract wants 30+)",
               std::numeric_limits<unsigned>::max(),
               [&](std::uint64_t n) {
                   opts.hostReps = static_cast<unsigned>(n);
                   return 0;
               });
    cli.number("--pin", "N", "pin host measurement to core N", 4095,
               [&](std::uint64_t n) {
                   opts.pinCpu = static_cast<int>(n);
                   return 0;
               });
    cli.logLevelFlag();

    if (const auto rc = cli.parse(argc, argv))
        return *rc;
    const char *prog = cli.prog();

    study::ensureParentDir("--json", opts.jsonPath, prog);
    study::ensureParentDir("--trace", opts.tracePath, prog);
    study::ensureParentDir("--stats", opts.statsPath, prog);
    study::ensureParentDir("--hw", opts.hwPath, prog);

    if (opts.hostStats)
        host::setProfiling(true);

    // The session must outlive the context: the runner's worker
    // threads (and their buffered events) drain in ~BenchContext.
    std::unique_ptr<trace::TraceSession> session;
    if (!opts.tracePath.empty()) {
        session = std::make_unique<trace::TraceSession>();
        session->start();
    }

    int rc;
    {
        BenchContext ctx(opts);
        rc = body(ctx);

        if (rc == 0 && !opts.jsonPath.empty()) {
            ctx.sink().metadata("bench", prog);
            ctx.sink().metadata("threads",
                                std::to_string(opts.threads));
            ctx.sink().writeJsonFile(opts.jsonPath);
            std::cout << "\nresults written to " << opts.jsonPath
                      << "\n";
        }
        if (rc == 0 && !opts.hwPath.empty()) {
            // Snapshot of every cell the body ran; label-sorted, so
            // the bytes are independent of threads and run order.
            const hw::HwReport report = hw::HwRegistry::global().report(
                study::studyConfigHashHex(ctx.config()));
            std::ofstream os(opts.hwPath,
                             std::ios::binary | std::ios::trunc);
            writeHwReport(os, report);
            if (!os) {
                std::cerr << prog << ": cannot write " << opts.hwPath
                          << "\n";
                rc = 1;
            } else {
                std::cout << "hw report written to " << opts.hwPath
                          << "\n";
            }
        }
    }

    // Write the trace even when the body failed — a timeline of the
    // run that went wrong is exactly what a trace is for.
    if (session) {
        session->stop();
        session->writeJsonFile(opts.tracePath);
        std::cout << "trace written to " << opts.tracePath;
        if (rc != 0)
            std::cout << " (bench body failed with exit code " << rc
                      << ")";
        std::cout << "\n";
    }
    if (rc == 0 && !opts.statsPath.empty()) {
        metrics::MetricsRegistry::global().writeJsonFile(
            opts.statsPath);
        std::cout << "stats written to " << opts.statsPath << "\n";
    }
    return rc;
}

} // namespace triarch::bench
