#include "bench_main.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <limits>
#include <sstream>

#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "study/registry.hh"

namespace triarch::bench
{

namespace
{

using study::KernelId;
using study::MachineId;

/** Split "a,b,c" into tokens. */
std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> tokens;
    std::istringstream is(arg);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (!tok.empty())
            tokens.push_back(tok);
    }
    return tokens;
}

std::string
lowered(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
parseMachine(const std::string &tok, MachineId &out)
{
    const std::string t = lowered(tok);
    for (MachineId id : study::allMachines()) {
        if (t == study::machineToken(id)
            || t == lowered(study::machineName(id))) {
            out = id;
            return true;
        }
    }
    return false;
}

bool
parseKernel(const std::string &tok, KernelId &out)
{
    const std::string t = lowered(tok);
    for (KernelId id : study::allKernels()) {
        std::string name = lowered(study::kernelName(id));
        std::erase(name, ' ');
        if (t == study::kernelToken(id) || t == name) {
            out = id;
            return true;
        }
    }
    return false;
}

/**
 * Make sure an output path's parent directory exists before any
 * simulation time is spent: "--stats out/run1/stats.json" in a fresh
 * checkout creates out/run1/ on demand, and a parent that cannot be
 * created (e.g. a path component is a regular file) is a usage error
 * reported up front with exit 2, not an fopen failure after the run.
 */
void
ensureParentDir(const char *flag, const std::string &path,
                const char *prog)
{
    if (path.empty())
        return;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
        std::cerr << prog << ": " << flag << " '" << path
                  << "': cannot create parent directory '"
                  << parent.string() << "': " << ec.message() << "\n";
        std::exit(2);
    }
}

void
usage(std::ostream &os, const char *prog, const char *description)
{
    os << prog << " — " << description << "\n\n"
       << "Options:\n"
          "  --machines a,b,...  platforms to run "
          "(ppc, altivec, viram, imagine, raw; default all)\n"
          "  --kernels a,b,...   kernels to run "
          "(ct, cslc, bs; default all)\n"
          "  --threads N         worker threads "
          "(default 0 = hardware concurrency)\n"
          "  --seed N            workload synthesis seed "
          "(default 11)\n"
          "  --json PATH         write structured results JSON\n"
          "  --csv               machine-readable table output "
          "where supported\n"
          "  --trace PATH        write a Chrome trace-event JSON "
          "timeline (chrome://tracing, Perfetto)\n"
          "  --stats PATH        write a triarch.stats.v1 counters "
          "document\n"
          "  --log-level LEVEL   quiet, warn, inform, or debug "
          "(default warn)\n"
          "  --help              this message\n"
          "\nFlags accept both '--flag value' and '--flag=value'.\n";
}

} // namespace

BenchContext::BenchContext(BenchOptions run_options)
    : opts(std::move(run_options))
{
    if (opts.machines.empty())
        opts.machines = study::allMachines();
    if (opts.kernels.empty())
        opts.kernels = study::allKernels();
    cfg.seed = opts.seed;
}

BenchContext::~BenchContext() = default;

study::ParallelRunner &
BenchContext::runner()
{
    if (!par) {
        par = std::make_unique<study::ParallelRunner>(cfg,
                                                      opts.threads);
    }
    return *par;
}

std::vector<study::Cell>
BenchContext::selectedCells() const
{
    std::vector<study::Cell> cells;
    cells.reserve(opts.machines.size() * opts.kernels.size());
    for (MachineId machine : opts.machines) {
        for (KernelId kernel : opts.kernels)
            cells.push_back({machine, kernel});
    }
    return cells;
}

const std::vector<study::RunResult> &
BenchContext::results()
{
    if (!haveResults) {
        cellResults = runner().runCells(selectedCells());
        sink().add(cellResults);
        haveResults = true;
    }
    return cellResults;
}

const std::vector<study::RunResult> &
BenchContext::allResults()
{
    if (!haveGrid) {
        gridResults = runner().runAll();
        sink().add(gridResults);
        haveGrid = true;
    }
    return gridResults;
}

study::ResultSink &
BenchContext::sink()
{
    if (!out)
        out = std::make_unique<study::ResultSink>(cfg);
    return *out;
}

int
benchMain(int argc, char **argv, const char *description,
          BenchBody body)
{
    BenchOptions opts;
    const char *prog = argc > 0 ? argv[0] : "bench";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];

        // Accept --flag=value alongside --flag value.
        std::string inlineValue;
        bool haveInline = false;
        if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            if (const auto eq = arg.find('='); eq != std::string::npos) {
                inlineValue = arg.substr(eq + 1);
                arg.erase(eq);
                haveInline = true;
            }
        }

        auto needValue = [&](const char *flag) -> std::string {
            if (haveInline)
                return inlineValue;
            if (i + 1 >= argc) {
                std::cerr << prog << ": " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };

        // Value-less flags must not be handed one via --flag=value.
        auto noValue = [&](const char *flag) {
            if (haveInline) {
                std::cerr << prog << ": " << flag
                          << " does not take a value (got '"
                          << inlineValue << "')\n";
                std::exit(2);
            }
        };

        auto needNumber =
            [&](const char *flag,
                std::uint64_t maxValue =
                    std::numeric_limits<std::uint64_t>::max())
            -> std::uint64_t {
            const std::string v = needValue(flag);
            // strtoull wraps negative input ("-1" parses as 2^64-1),
            // so any non-digit lead byte is rejected up front.
            if (v.empty()
                || !std::isdigit(static_cast<unsigned char>(v[0]))) {
                std::cerr << prog << ": " << flag
                          << " needs a non-negative number, got '"
                          << v << "'\n";
                std::exit(2);
            }
            errno = 0;
            char *end = nullptr;
            const std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                std::cerr << prog << ": " << flag
                          << " needs a non-negative number, got '"
                          << v << "'\n";
                std::exit(2);
            }
            if (errno == ERANGE || n > maxValue) {
                std::cerr << prog << ": " << flag << " value '" << v
                          << "' is out of range (max " << maxValue
                          << ")\n";
                std::exit(2);
            }
            return n;
        };

        if (arg == "--help" || arg == "-h") {
            noValue("--help");
            usage(std::cout, prog, description);
            return 0;
        } else if (arg == "--machines") {
            for (const std::string &tok :
                 splitList(needValue("--machines"))) {
                MachineId id;
                if (!parseMachine(tok, id)) {
                    std::cerr << prog << ": unknown machine '" << tok
                              << "'\n";
                    return 2;
                }
                opts.machines.push_back(id);
            }
        } else if (arg == "--kernels") {
            for (const std::string &tok :
                 splitList(needValue("--kernels"))) {
                KernelId id;
                if (!parseKernel(tok, id)) {
                    std::cerr << prog << ": unknown kernel '" << tok
                              << "'\n";
                    return 2;
                }
                opts.kernels.push_back(id);
            }
        } else if (arg == "--threads") {
            // 0 stays valid (hardware concurrency, as documented in
            // --help); the cap stops silent 32-bit truncation.
            opts.threads = static_cast<unsigned>(needNumber(
                "--threads", std::numeric_limits<unsigned>::max()));
        } else if (arg == "--seed") {
            opts.seed = needNumber("--seed");
        } else if (arg == "--json") {
            opts.jsonPath = needValue("--json");
        } else if (arg == "--trace") {
            opts.tracePath = needValue("--trace");
        } else if (arg == "--stats") {
            opts.statsPath = needValue("--stats");
        } else if (arg == "--log-level") {
            const std::string v = lowered(needValue("--log-level"));
            if (v == "quiet") {
                setLogLevel(LogLevel::Quiet);
            } else if (v == "warn") {
                setLogLevel(LogLevel::Warn);
            } else if (v == "inform") {
                setLogLevel(LogLevel::Inform);
            } else if (v == "debug") {
                setLogLevel(LogLevel::Debug);
            } else {
                std::cerr << prog << ": unknown log level '" << v
                          << "' (quiet, warn, inform, debug)\n";
                return 2;
            }
        } else if (arg == "--csv") {
            noValue("--csv");
            opts.csv = true;
        } else {
            std::cerr << prog << ": unknown option '" << arg
                      << "'\n\n";
            usage(std::cerr, prog, description);
            return 2;
        }
    }

    ensureParentDir("--json", opts.jsonPath, prog);
    ensureParentDir("--trace", opts.tracePath, prog);
    ensureParentDir("--stats", opts.statsPath, prog);

    // The session must outlive the context: the runner's worker
    // threads (and their buffered events) drain in ~BenchContext.
    std::unique_ptr<trace::TraceSession> session;
    if (!opts.tracePath.empty()) {
        session = std::make_unique<trace::TraceSession>();
        session->start();
    }

    int rc;
    {
        BenchContext ctx(opts);
        rc = body(ctx);

        if (rc == 0 && !opts.jsonPath.empty()) {
            ctx.sink().metadata("bench", prog);
            ctx.sink().metadata("threads",
                                std::to_string(opts.threads));
            ctx.sink().writeJsonFile(opts.jsonPath);
            std::cout << "\nresults written to " << opts.jsonPath
                      << "\n";
        }
    }

    // Write the trace even when the body failed — a timeline of the
    // run that went wrong is exactly what a trace is for.
    if (session) {
        session->stop();
        session->writeJsonFile(opts.tracePath);
        std::cout << "trace written to " << opts.tracePath;
        if (rc != 0)
            std::cout << " (bench body failed with exit code " << rc
                      << ")";
        std::cout << "\n";
    }
    if (rc == 0 && !opts.statsPath.empty()) {
        metrics::MetricsRegistry::global().writeJsonFile(
            opts.statsPath);
        std::cout << "stats written to " << opts.statsPath << "\n";
    }
    return rc;
}

} // namespace triarch::bench
