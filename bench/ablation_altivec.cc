/**
 * @file
 * Ablation for Section 4.5: what AltiVec buys the PowerPC G4 on
 * each kernel — about 6x on the CSLC, about 2x on beam steering,
 * and nearly nothing on the bus-bound corner turn.
 */

#include <iostream>

#include "bench_main.hh"
#include "ppc/kernels_ppc.hh"
#include "sim/table.hh"

using namespace triarch;
using namespace triarch::ppc;
using namespace triarch::kernels;

namespace
{

int
run(bench::BenchContext &ctx)
{
    const study::StudyConfig &cfg = ctx.config();

    Table t("AltiVec gain over scalar PPC G4 (Section 4.5)");
    t.header({"Kernel", "Scalar (10^3)", "AltiVec (10^3)", "Gain",
              "Paper gain"});

    {
        WordMatrix src(cfg.matrixSize, cfg.matrixSize);
        fillMatrix(src, 1);
        WordMatrix dst;
        PpcMachine ms, mv;
        const Cycles s = cornerTurnPpc(ms, src, dst, false);
        const Cycles v = cornerTurnPpc(mv, src, dst, true);
        t.row({"Corner Turn", Table::num(s / 1000),
               Table::num(v / 1000),
               Table::num(static_cast<double>(s) / v, 2),
               "1.17 (\"not significant\")"});
    }
    {
        auto in = makeJammedInput(cfg.cslc, cfg.jammerBins, cfg.seed);
        auto w = estimateWeights(cfg.cslc, in);
        CslcOutput out;
        PpcMachine ms, mv;
        const Cycles s = cslcPpc(ms, cfg.cslc, in, w, out, false);
        const Cycles v = cslcPpc(mv, cfg.cslc, in, w, out, true);
        t.row({"CSLC", Table::num(s / 1000), Table::num(v / 1000),
               Table::num(static_cast<double>(s) / v, 2),
               "5.88 (\"about six\")"});
    }
    {
        auto tables = makeBeamTables(cfg.beam, 2);
        std::vector<std::int32_t> out;
        PpcMachine ms, mv;
        const Cycles s =
            beamSteeringPpc(ms, cfg.beam, tables, out, false);
        const Cycles v =
            beamSteeringPpc(mv, cfg.beam, tables, out, true);
        t.row({"Beam Steering", Table::num(s / 1000),
               Table::num(v / 1000),
               Table::num(static_cast<double>(s) / v, 2),
               "2.01 (\"about two\")"});
    }

    t.render(std::cout);
    std::cout << "\nThe corner turn is limited by the front-side bus, "
                 "so a 4-wide datapath\nbarely helps; the CSLC is "
                 "FPU-bound, so AltiVec's four lanes plus decent\n"
                 "scheduling pay off fully (Section 4.5).\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: AltiVec gain over scalar PPC G4", run)
