/**
 * @file
 * Ablation for Section 4.2's VIRAM corner-turn analysis: the paper
 * attributes ~21% of cycles to DRAM precharge + TLB misses and ~24%
 * to the four-address-generator limit on strided loads. This bench
 * measures the same decomposition by re-running the kernel with each
 * mechanism idealized in the configuration.
 */

#include <iostream>

#include "bench_main.hh"
#include "sim/logging.hh"
#include "sim/table.hh"
#include "viram/kernels_viram.hh"

using namespace triarch;
using namespace triarch::viram;

namespace
{

Cycles
runWith(const ViramConfig &cfg, const kernels::WordMatrix &src)
{
    ViramMachine machine(cfg);
    kernels::WordMatrix dst;
    const Cycles cycles = cornerTurnViram(machine, src, dst);
    if (!kernels::isTransposeOf(src, dst))
        triarch_fatal("corner turn produced a wrong transpose");
    return cycles;
}

int
run(bench::BenchContext &ctx)
{
    const unsigned n = ctx.config().matrixSize;
    kernels::WordMatrix src(n, n);
    kernels::fillMatrix(src, 1);

    const ViramConfig baseline;
    const Cycles base = runWith(baseline, src);

    ViramConfig noRowCost = baseline;
    noRowCost.rowMissCycles = 0;
    ViramConfig noTlb = noRowCost;
    noTlb.tlbMissPenalty = 0;
    const Cycles withoutPrechargeTlb = runWith(noTlb, src);

    ViramConfig wideGens = baseline;
    wideGens.addrGens = baseline.unitStrideWords;   // strided = unit
    const Cycles withoutGenLimit = runWith(wideGens, src);

    Table t("VIRAM corner-turn overhead decomposition (Section 4.2)");
    t.header({"Configuration", "Cycles (10^3)", "Saved vs base"});
    t.row({"baseline (paper config)", Table::num(base / 1000), "-"});
    t.row({"ideal DRAM rows + TLB",
           Table::num(withoutPrechargeTlb / 1000),
           Table::num(100.0 * (base - withoutPrechargeTlb) / base, 1)
               + "%"});
    t.row({"8 address generators",
           Table::num(withoutGenLimit / 1000),
           Table::num(100.0 * (base - withoutGenLimit) / base, 1)
               + "%"});
    t.render(std::cout);
    std::cout << "\nPaper: ~21% precharge + TLB overhead, ~24% "
                 "address-generator limit\n(Section 4.2); performance "
                 "is about half the peak-bandwidth expectation.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: VIRAM corner-turn overhead decomposition",
                   run)
