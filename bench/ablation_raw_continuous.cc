/**
 * @file
 * Ablation for Section 4.3's continuous-operation argument: the
 * paper justifies reporting Raw's CSLC at perfect load balance
 * because "in a real implementation, the input data sets would
 * arrive continuously", so the 73-on-16 remainder amortizes over
 * intervals. The bench processes 1..8 consecutive intervals with
 * sets handed out round-robin and shows the idle fraction and the
 * per-interval cost converging to the extrapolated Table 3 value.
 */

#include <iostream>

#include "bench_main.hh"
#include "raw/kernels_raw.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace triarch;
using namespace triarch::raw;
using namespace triarch::kernels;

namespace
{

int
run(triarch::bench::BenchContext &ctx)
{
    const CslcConfig &cfg = ctx.config().cslc;
    auto in = makeJammedInput(cfg, ctx.config().jammerBins,
                              ctx.config().seed);
    auto weights = estimateWeights(cfg, in);

    Table t("Raw CSLC under continuous input (Section 4.3)");
    t.header({"Intervals", "Cycles/interval (10^3)",
              "Balanced bound (10^3)", "Idle fraction"});

    Cycles balancedOne = 0;
    for (unsigned intervals : {1u, 2u, 4u, 8u}) {
        RawMachine machine;
        CslcOutput out;
        auto result =
            cslcRaw(machine, cfg, in, weights, out, intervals);
        if (cancellationDepthDb(cfg, in, out) < 15.0)
            triarch_fatal("cancellation failed");
        if (intervals == 1)
            balancedOne = result.balancedCycles;
        t.row({std::to_string(intervals),
               Table::num(result.cycles / intervals / 1000),
               Table::num(result.balancedCycles / intervals / 1000),
               Table::num(100.0 * result.idleFraction, 1) + "%"});
    }
    t.render(std::cout);

    std::cout << "\nWith one interval, 9 tiles process five sets and "
                 "7 process four: 8-9% of\ntile cycles idle. As "
                 "intervals queue up, the remainder amortizes and "
                 "the\nmeasured per-interval cost converges to the "
                 "Table 3 extrapolation (~"
              << Table::num(balancedOne / 1000)
              << "k\ncycles) — the paper's justification, observed "
                 "rather than assumed.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: Raw CSLC under continuous input", run)
