/**
 * @file
 * Regenerates Table 1: peak throughput (32-bit words per cycle) of
 * the three research architectures, derived from the machine
 * registry the simulators are configured from.
 */

#include <iostream>

#include "study/report.hh"

int
main()
{
    triarch::study::buildTable1().render(std::cout);
    std::cout << "\nNote: memory bandwidth is a property of each "
                 "implementation, not of the\narchitecture itself; "
                 "VIRAM's \"nearest DRAM\" is on-chip, Imagine's and "
                 "Raw's\nare off-chip (Section 2.5 of the paper).\n";
    return 0;
}
