/**
 * @file
 * Regenerates Table 1: peak throughput (32-bit words per cycle) of
 * the three research architectures, derived from the machine
 * registry the simulators are configured from.
 */

#include <iostream>

#include "bench_main.hh"
#include "study/report.hh"

namespace
{

int
run(triarch::bench::BenchContext &ctx)
{
    auto table = triarch::study::buildTable1();
    if (ctx.options().csv) {
        table.renderCsv(std::cout);
        return 0;
    }
    table.render(std::cout);
    std::cout << "\nNote: memory bandwidth is a property of each "
                 "implementation, not of the\narchitecture itself; "
                 "VIRAM's \"nearest DRAM\" is on-chip, Imagine's and "
                 "Raw's\nare off-chip (Section 2.5 of the paper).\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("Table 1: peak throughput in words per cycle", run)
