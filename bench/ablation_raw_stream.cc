/**
 * @file
 * Ablation for Section 4.3's Raw stream-mode claim: "If FFT is
 * implemented using the stream interface that uses [the] static
 * network, it hides the cache miss stalls, and load and store
 * operations are not needed. A primitive implementation result
 * suggests about 70% of FFT performance improvement."
 *
 * The bench runs the completed stream-mode CSLC (DMA-fed tiles,
 * bit-reversing receive, weight operands straight from $csti,
 * results drained through $csto) against the paper's cached MIMD
 * mapping, and separately prints the per-butterfly operation budget
 * that underlies the paper's 70% estimate.
 */

#include <iostream>

#include "bench_main.hh"
#include "raw/kernels_raw.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace triarch;
using namespace triarch::raw;
using namespace triarch::kernels;

namespace
{

int
run(triarch::bench::BenchContext &ctx)
{
    const CslcConfig &cfg = ctx.config().cslc;
    auto in = makeJammedInput(cfg, ctx.config().jammerBins,
                              ctx.config().seed);
    auto weights = estimateWeights(cfg, in);

    RawMachine cached;
    CslcOutput outCached;
    auto cachedResult = cslcRaw(cached, cfg, in, weights, outCached);
    if (cancellationDepthDb(cfg, in, outCached) < 15.0)
        triarch_fatal("cached mapping failed to cancel the jammer");

    RawMachine streamed;
    CslcOutput outStreamed;
    auto streamedResult =
        cslcRawStreamed(streamed, cfg, in, weights, outStreamed);
    if (cancellationDepthDb(cfg, in, outStreamed) < 15.0)
        triarch_fatal("streamed mapping failed to cancel the jammer");

    Table t("Raw CSLC: cached MIMD vs stream mode (Section 4.3)");
    t.header({"Mapping", "Balanced cycles (10^3)",
              "Cache stall cycles (10^3)", "Loads+stores (10^6)"});
    t.row({"cached MIMD (paper)",
           Table::num(cachedResult.balancedCycles / 1000),
           Table::num(cached.cacheStallCycles() / 1000),
           Table::num(cached.loadStores() / 1e6, 2)});
    t.row({"stream mode (completed here)",
           Table::num(streamedResult.balancedCycles / 1000),
           Table::num(streamed.cacheStallCycles() / 1000),
           Table::num(streamed.loadStores() / 1e6, 2)});
    t.render(std::cout);

    const double gain =
        static_cast<double>(cachedResult.balancedCycles)
        / static_cast<double>(streamedResult.balancedCycles);
    std::cout << "\nMeasured stream-mode speedup: " << Table::num(gain, 2)
              << "x — cache stalls vanish and the copy loops halve.\n";

    std::cout
        << "\nWhy the paper estimated ~70% for the FFT itself:\n"
           "  per-butterfly budget, compiled cached code (paper's "
           "baseline):\n"
           "    6 loads + 10 flops + 4 stores + 5 address/loop ops "
           "+ stalls  ~ 40 cycles\n"
           "  per-butterfly budget, operands from the network:\n"
           "    10 flops + 2 twiddle loads + control               "
           "  ~ 13-19 cycles\n"
           "  ratio ~ 1.7x (70%). Our emitted butterfly is already "
           "scheduled and\n  immediate-addressed (~25 cycles), so "
           "less headroom remains; the measured\n  gain above "
           "reflects removing the global-memory traffic only.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: Raw CSLC cached MIMD vs stream mode",
                   run)
