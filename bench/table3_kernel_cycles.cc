/**
 * @file
 * Regenerates Table 3: measured kernel cycles for all five platforms
 * on the paper's workloads (corner turn 1024x1024x4B; CSLC 4
 * channels x 8K samples in 73 x 128-point sub-bands; beam steering
 * 1608 elements x 4 directions x 8 dwells), and prints the measured
 * values against the paper's for every cell.
 */

#include <iostream>
#include <string>

#include "study/report.hh"

using namespace triarch;
using namespace triarch::study;

namespace
{

double
paperKcycles(MachineId machine, KernelId kernel)
{
    static const double table[5][3] = {
        {34250, 29013, 730},    // PPC
        {29288, 4931, 364},     // Altivec
        {554, 424, 35},         // VIRAM
        {1439, 196, 87},        // Imagine
        {146, 357, 19},         // Raw
    };
    return table[static_cast<unsigned>(machine)]
                [static_cast<unsigned>(kernel)];
}

} // namespace

int
main(int argc, char **argv)
{
    Runner runner;
    auto results = runner.runAll();

    // `table3_kernel_cycles csv` emits machine-readable output for
    // plotting scripts.
    const bool csv = argc > 1 && std::string(argv[1]) == "csv";
    if (csv) {
        buildTable3(results).renderCsv(std::cout);
        return 0;
    }

    buildTable3(results).render(std::cout);

    Table cmp("Measured vs paper (cycles in 10^3)");
    cmp.header({"Machine", "Kernel", "Paper", "Measured",
                "Measured/Paper"});
    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels()) {
            const auto &r = findResult(results, machine, kernel);
            const double paper = paperKcycles(machine, kernel);
            const double measured =
                static_cast<double>(r.cycles) / 1000.0;
            cmp.row({machineName(machine), kernelName(kernel),
                     Table::num(paper, 0), Table::num(measured, 0),
                     Table::num(measured / paper, 2)});
        }
    }
    std::cout << "\n";
    cmp.render(std::cout);

    const auto &rawCslc =
        findResult(results, MachineId::Raw, KernelId::Cslc);
    if (rawCslc.measuredUnbalanced) {
        std::cout << "\nRaw CSLC: measured "
                  << Table::num(*rawCslc.measuredUnbalanced / 1000)
                  << "k cycles with the 73-on-16 imbalance; Table 3 "
                     "reports the paper's\nperfect-load-balance "
                     "extrapolation of "
                  << Table::num(rawCslc.cycles / 1000)
                  << "k (Section 4.3).\n";
    }
    return 0;
}
