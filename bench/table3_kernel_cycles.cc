/**
 * @file
 * Regenerates Table 3: measured kernel cycles for all five platforms
 * on the paper's workloads (corner turn 1024x1024x4B; CSLC 4
 * channels x 8K samples in 73 x 128-point sub-bands; beam steering
 * 1608 elements x 4 directions x 8 dwells), and prints the measured
 * values against the paper's for every cell.
 */

#include <algorithm>
#include <iostream>

#include "bench_main.hh"
#include "study/bench_report.hh"
#include "study/report.hh"

using namespace triarch;
using namespace triarch::study;

namespace
{

int
run(bench::BenchContext &ctx)
{
    const auto &results = ctx.allResults();

    // --csv emits machine-readable output for plotting scripts.
    if (ctx.options().csv) {
        buildTable3(results).renderCsv(std::cout);
        return 0;
    }

    buildTable3(results).render(std::cout);

    Table cmp("Measured vs paper (cycles in 10^3)");
    cmp.header({"Machine", "Kernel", "Paper", "Measured",
                "Measured/Paper"});
    for (MachineId machine : ctx.options().machines) {
        for (KernelId kernel : ctx.options().kernels) {
            const auto &r = findResult(results, machine, kernel);
            const double paper = paperTable3Kcycles(machine, kernel);
            const double measured =
                static_cast<double>(r.cycles) / 1000.0;
            cmp.row({machineName(machine), kernelName(kernel),
                     Table::num(paper, 0), Table::num(measured, 0),
                     Table::num(measured / paper, 2)});
        }
    }
    std::cout << "\n";
    cmp.render(std::cout);

    const auto rawCslcCell = std::find_if(
        results.begin(), results.end(), [](const RunResult &r) {
            return r.machine == MachineId::Raw
                   && r.kernel == KernelId::Cslc;
        });
    if (rawCslcCell != results.end()
        && rawCslcCell->measuredUnbalanced) {
        std::cout << "\nRaw CSLC: measured "
                  << Table::num(*rawCslcCell->measuredUnbalanced / 1000)
                  << "k cycles with the 73-on-16 imbalance; Table 3 "
                     "reports the paper's\nperfect-load-balance "
                     "extrapolation of "
                  << Table::num(rawCslcCell->cycles / 1000)
                  << "k (Section 4.3).\n";
    }
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("Table 3: measured kernel cycles vs the paper", run)
