/**
 * @file
 * Regenerates Figure 8: speedup of each platform over the PPC G4
 * with AltiVec, compared cycle-for-cycle, on a log scale.
 */

#include <iostream>

#include "study/report.hh"

using namespace triarch::study;

int
main()
{
    Runner runner;
    auto results = runner.runAll();
    buildFigure8(results).render(std::cout);

    std::cout << "\nPaper values for comparison (speedup in cycles "
                 "vs Altivec):\n"
                 "  corner turn: VIRAM 52.9, Imagine 20.4, Raw 200.6\n"
                 "  CSLC:        VIRAM 11.6, Imagine 25.2, Raw 13.8\n"
                 "  beam steer:  VIRAM 10.4, Imagine  4.2, Raw 19.2\n";
    return 0;
}
