/**
 * @file
 * Regenerates Figure 8: speedup of each platform over the PPC G4
 * with AltiVec, compared cycle-for-cycle, on a log scale.
 */

#include <iostream>

#include "bench_main.hh"
#include "study/report.hh"

using namespace triarch::study;

namespace
{

int
run(triarch::bench::BenchContext &ctx)
{
    buildFigure8(ctx.allResults()).render(std::cout);

    std::cout << "\nPaper values for comparison (speedup in cycles "
                 "vs Altivec):\n"
                 "  corner turn: VIRAM 52.9, Imagine 20.4, Raw 200.6\n"
                 "  CSLC:        VIRAM 11.6, Imagine 25.2, Raw 13.8\n"
                 "  beam steer:  VIRAM 10.4, Imagine  4.2, Raw 19.2\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("Figure 8: speedup vs PPC+AltiVec in cycles", run)
