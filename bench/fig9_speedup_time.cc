/**
 * @file
 * Regenerates Figure 9: speedup over the PPC G4 with AltiVec in
 * execution time, i.e. with each chip at its own clock (PPC 1 GHz,
 * VIRAM 200 MHz, Imagine and Raw 300 MHz), on a log scale.
 */

#include <iostream>

#include "bench_main.hh"
#include "study/report.hh"

using namespace triarch::study;

namespace
{

int
run(triarch::bench::BenchContext &ctx)
{
    buildFigure9(ctx.allResults()).render(std::cout);

    std::cout << "\nPaper values for comparison (speedup in time "
                 "vs Altivec):\n"
                 "  corner turn: VIRAM 10.6, Imagine  6.1, Raw 60.2\n"
                 "  CSLC:        VIRAM  2.3, Imagine  7.5, Raw  4.1\n"
                 "  beam steer:  VIRAM  2.1, Imagine  1.3, Raw  5.7\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("Figure 9: speedup vs PPC+AltiVec in time", run)
