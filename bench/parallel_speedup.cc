/**
 * @file
 * Measures the parallel experiment engine against the serial Runner
 * on the full 15-cell Table-3 sweep: wall-clock for serial
 * execution, for ParallelRunner at the requested thread count, and
 * for a cache-served re-run — while asserting the parallel results
 * are bit-identical to the serial ones cell for cell.
 */

#include <chrono>
#include <iostream>
#include <thread>

#include "bench_main.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace triarch;
using namespace triarch::study;

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

int
run(bench::BenchContext &ctx)
{
    unsigned threads = ctx.options().threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 4;
    }

    std::cout << "Timing the 15-cell Table-3 sweep (serial vs "
              << threads << " worker threads)...\n";

    auto t0 = std::chrono::steady_clock::now();
    Runner serial(ctx.config());
    auto serialResults = serial.runAll();
    const double serialMs = msSince(t0);

    // Private cache: the cold pass below must actually compute.
    ResultCache cache;
    ParallelRunner par(ctx.config(), threads, nullptr, &cache);
    t0 = std::chrono::steady_clock::now();
    auto parResults = par.runAll();
    const double parMs = msSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto cachedResults = par.runAll();
    const double cachedMs = msSince(t0);

    triarch_assert(serialResults == parResults,
                   "parallel results differ from serial results");
    triarch_assert(parResults == cachedResults,
                   "cache-served results differ from computed ones");

    Table t("Table-3 sweep wall clock (host milliseconds)");
    t.header({"Engine", "Wall ms", "Speedup vs serial"});
    t.row({"Runner::runAll() (serial)", Table::num(serialMs, 1),
           "1.00"});
    t.row({"ParallelRunner, " + std::to_string(threads) + " threads",
           Table::num(parMs, 1), Table::num(serialMs / parMs, 2)});
    t.row({"ParallelRunner, cache-served re-run",
           Table::num(cachedMs, 3),
           Table::num(serialMs / std::max(cachedMs, 1e-6), 0)});
    t.render(std::cout);

    // The determinism claim extends to the cycle accounts: the
    // breakdowns above compared bit-for-bit too (RunResult::operator==
    // includes them), so print where the cycles went per cell.
    Table acct("Cycle account per cell (% of cell cycles)");
    std::vector<std::string> header = {"Machine", "Kernel", "Cycles"};
    for (const auto cat : stats::allCycleCategories())
        header.push_back(stats::cycleCategoryToken(cat));
    acct.header(header);
    for (const RunResult &r : parResults) {
        std::vector<std::string> row = {
            machineName(r.machine), kernelName(r.kernel),
            std::to_string(r.cycles)};
        for (const auto cat : stats::allCycleCategories())
            row.push_back(Table::num(100.0 * r.breakdown.fraction(cat),
                                     1));
        acct.row(row);
    }
    std::cout << "\n";
    acct.render(std::cout);

    std::cout << "\nAll " << parResults.size()
              << " parallel cells are bit-identical to the serial "
                 "sweep; the re-run was\nserved entirely from the "
                 "result cache ("
              << cache.hits() << " hits).\n\n";
    cache.statGroup().dump(std::cout);
    par.statGroup().dump(std::cout);

    const unsigned cores = std::thread::hardware_concurrency();
    std::cout << "Host reports " << cores
              << " hardware thread(s); CPU-bound cells cannot beat "
                 "serial wall clock\nwith fewer cores than workers.\n";

    ctx.sink().add(parResults);
    ctx.sink().metadata("serial_ms", Table::num(serialMs, 1));
    ctx.sink().metadata("parallel_ms", Table::num(parMs, 1));
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN(
    "serial vs parallel Table-3 sweep wall-clock comparison", run)
