/**
 * @file
 * triarch_client: submit a (machine x kernel) sweep to a running
 * triarchd and print the per-cell cycle counts. By default the full
 * 15-cell Table-3 grid is requested in one triarch.job.v1 batch.
 *
 * --verify recomputes every cell in-process (the one-shot
 * ParallelRunner path, no cache) and fails unless the daemon's
 * results are bit-identical — the check that simulation-as-a-service
 * returns exactly what a local run returns. --min-cache-hits N fails
 * unless the daemon answered at least N cells from its shared cache,
 * which is how CI asserts that a repeated sweep actually hit.
 *
 * --statsz skips the sweep entirely: it sends a "stats" request and
 * pretty-prints the daemon's live triarch.stats.v1 snapshot —
 * counters, gauges (uptime, queue depth), and the host-time latency
 * histograms as count/median/P95 one-liners.
 *
 * --hwz likewise sends a "hw" request and prints the daemon's
 * triarch.hw.v1 hardware-utilization report as per-cell bottleneck
 * verdict lines; the reply goes through the validating parser, so a
 * malformed or inconsistent report fails the command.
 */

#include <iomanip>
#include <iostream>
#include <limits>
#include <optional>

#include "serve/client.hh"
#include "sim/hw_report.hh"
#include "sim/json.hh"
#include "study/cli_options.hh"
#include "study/machine_info.hh"
#include "study/parallel.hh"
#include "study/result_sink.hh"

namespace
{

using triarch::json::Value;

/** Raw number text of @p name, or "?" when absent/mistyped. */
std::string
numberText(const Value &object, const std::string &name)
{
    const Value *field = object.field(name);
    return field && field->isNumber() ? field->text : "?";
}

/**
 * Pretty-print one triarch.stats.v1 document: every scalar as a
 * "label.name value" line, every histogram as a count/median/P95
 * one-liner. Returns 0, or 1 when the document does not parse.
 */
int
printStatsSnapshot(const std::string &stats_json, const char *prog)
{
    std::string error;
    const auto doc = triarch::json::parse(stats_json, &error);
    if (!doc || !doc->isObject()) {
        std::cerr << prog << ": bad stats snapshot: " << error << "\n";
        return 1;
    }
    const Value *groups = doc->field("groups");
    if (!groups || !groups->isArray()) {
        std::cerr << prog << ": stats snapshot has no groups array\n";
        return 1;
    }
    for (const Value &group : groups->items) {
        if (!group.isObject())
            continue;
        const Value *label = group.field("label");
        const std::string name =
            label && label->isString() ? label->text : "?";
        if (const Value *scalars = group.field("scalars");
            scalars && scalars->isObject()) {
            for (const auto &[key, value] : scalars->fields) {
                std::cout << std::left << std::setw(36)
                          << (name + "." + key)
                          << (value.isNumber() ? value.text : "?")
                          << "\n";
            }
        }
        if (const Value *histograms = group.field("histograms");
            histograms && histograms->isObject()) {
            for (const auto &[key, h] : histograms->fields) {
                if (!h.isObject())
                    continue;
                std::cout << std::left << std::setw(36)
                          << (name + "." + key) << "count "
                          << numberText(h, "count") << " median "
                          << numberText(h, "median") << " p95 "
                          << numberText(h, "p95") << " min "
                          << numberText(h, "min") << " max "
                          << numberText(h, "max") << "\n";
            }
        }
    }
    return 0;
}

/**
 * Print one triarch.hw.v1 report as per-cell verdict lines. The text
 * goes through the validating parser first, so an inconsistent
 * report (bad rates, verdict contradicting the cycle partition) is
 * an error, not output. Returns 0, or 1 when validation fails.
 */
int
printHwReport(const std::string &hw_json, const char *prog)
{
    std::string error;
    const auto report = triarch::hw::parseHwReport(hw_json, &error);
    if (!report) {
        std::cerr << prog << ": bad hw report: " << error << "\n";
        return 1;
    }
    if (report->cells.empty()) {
        std::cout << "hw report is empty (the daemon has not "
                     "executed any cells yet)\n";
        return 0;
    }
    for (const triarch::hw::HwCell &cell : report->cells) {
        std::cout << cell.machine << "/" << cell.kernel << ": "
                  << cell.verdict.detail << " ["
                  << cell.verdict.component << ", "
                  << triarch::stats::cycleCategoryToken(
                         cell.verdict.category)
                  << "]\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace triarch;

    std::string socketPath;
    std::optional<std::uint16_t> tcpPort;
    std::string jobId = "triarch_client";
    std::vector<study::MachineId> machines;
    std::vector<study::KernelId> kernels;
    std::uint64_t seed = 11;
    std::string jsonPath;
    bool verify = false;
    bool statsz = false;
    bool hwz = false;
    std::uint64_t minCacheHits = 0;

    study::CliOptions cli(
        "submit a kernel sweep to a running triarchd", "triarch_client");
    cli.value("--socket", "PATH", "connect to this AF_UNIX socket",
              [&](const std::string &v) {
                  socketPath = v;
                  return 0;
              });
    cli.number("--port", "N", "connect to this TCP loopback port",
               std::numeric_limits<std::uint16_t>::max(),
               [&](std::uint64_t n) {
                   tcpPort = static_cast<std::uint16_t>(n);
                   return 0;
               });
    cli.value("--machines", "a,b,...",
              "platforms to request "
              "(ppc, altivec, viram, imagine, raw; default all)",
              [&](const std::string &v) {
                  for (const std::string &tok : study::splitList(v)) {
                      const auto id = study::parseMachineToken(
                          study::lowered(tok));
                      if (!id) {
                          std::cerr << cli.prog()
                                    << ": unknown machine '" << tok
                                    << "'\n";
                          return 2;
                      }
                      machines.push_back(*id);
                  }
                  return 0;
              });
    cli.value("--kernels", "a,b,...",
              "kernels to request (ct, cslc, bs; default all)",
              [&](const std::string &v) {
                  for (const std::string &tok : study::splitList(v)) {
                      const auto id = study::parseKernelToken(
                          study::lowered(tok));
                      if (!id) {
                          std::cerr << cli.prog()
                                    << ": unknown kernel '" << tok
                                    << "'\n";
                          return 2;
                      }
                      kernels.push_back(*id);
                  }
                  return 0;
              });
    cli.number("--seed", "N", "workload synthesis seed (default 11)",
               std::numeric_limits<std::uint64_t>::max(),
               [&](std::uint64_t n) {
                   seed = n;
                   return 0;
               });
    cli.value("--id", "NAME", "job id echoed in the response",
              [&](const std::string &v) {
                  jobId = v;
                  return 0;
              });
    cli.value("--json", "PATH",
              "write the sweep as a triarch.results.v1 document",
              [&](const std::string &v) {
                  jsonPath = v;
                  return 0;
              });
    cli.toggle("--verify",
               "recompute locally and require bit-identical results",
               [&]() {
                   verify = true;
                   return 0;
               });
    cli.toggle("--statsz",
               "fetch and pretty-print the daemon's live stats "
               "snapshot instead of running a sweep",
               [&]() {
                   statsz = true;
                   return 0;
               });
    cli.toggle("--hwz",
               "fetch the daemon's triarch.hw.v1 hardware report and "
               "print per-cell bottleneck verdicts instead of "
               "running a sweep",
               [&]() {
                   hwz = true;
                   return 0;
               });
    cli.number("--min-cache-hits", "N",
               "fail unless the daemon served >= N cells from cache",
               std::numeric_limits<std::uint64_t>::max(),
               [&](std::uint64_t n) {
                   minCacheHits = n;
                   return 0;
               });
    cli.logLevelFlag();

    if (const auto rc = cli.parse(argc, argv))
        return *rc;
    const char *prog = cli.prog();

    if (socketPath.empty() == !tcpPort) {
        std::cerr << prog
                  << ": need exactly one of --socket PATH or "
                     "--port N\n";
        return 2;
    }
    study::ensureParentDir("--json", jsonPath, prog);

    serve::JobRequest request;
    request.id = jobId;
    request.config.seed = seed;
    if (machines.empty())
        machines = study::allMachines();
    if (kernels.empty())
        kernels = study::allKernels();
    for (study::MachineId machine : machines) {
        for (study::KernelId kernel : kernels)
            request.cells.push_back({machine, kernel});
    }

    std::string error;
    serve::Client client =
        socketPath.empty()
            ? serve::Client::connectTcp(*tcpPort, &error)
            : serve::Client::connectUnix(socketPath, &error);
    if (!client.connected()) {
        std::cerr << prog << ": " << error << "\n";
        return 1;
    }

    if (statsz) {
        serve::JobRequest probe;
        probe.id = jobId;
        probe.kind = serve::RequestKind::Stats;
        const auto reply = client.call(probe, &error);
        if (!reply) {
            std::cerr << prog << ": " << error << "\n";
            return 1;
        }
        if (!reply->ok()) {
            std::cerr
                << prog << ": daemon refused stats request: "
                << serve::jobErrorCodeToken(reply->error->code)
                << ": " << reply->error->message << "\n";
            return 1;
        }
        return printStatsSnapshot(reply->statsJson, prog);
    }

    if (hwz) {
        serve::JobRequest probe;
        probe.id = jobId;
        probe.kind = serve::RequestKind::Hw;
        const auto reply = client.call(probe, &error);
        if (!reply) {
            std::cerr << prog << ": " << error << "\n";
            return 1;
        }
        if (!reply->ok()) {
            std::cerr
                << prog << ": daemon refused hw request: "
                << serve::jobErrorCodeToken(reply->error->code)
                << ": " << reply->error->message << "\n";
            return 1;
        }
        return printHwReport(reply->hwJson, prog);
    }

    const auto response = client.call(request, &error);
    if (!response) {
        std::cerr << prog << ": " << error << "\n";
        return 1;
    }
    if (!response->ok()) {
        std::cerr << prog << ": daemon refused job '" << response->id
                  << "': "
                  << serve::jobErrorCodeToken(response->error->code)
                  << ": " << response->error->message << "\n";
        return 1;
    }
    if (response->results.size() != request.cells.size()) {
        std::cerr << prog << ": expected " << request.cells.size()
                  << " results, got " << response->results.size()
                  << "\n";
        return 1;
    }

    std::uint64_t cacheHits = 0;
    std::cout << "machine/kernel        cycles  source\n";
    for (const serve::CellResult &cell : response->results) {
        if (cell.cached)
            ++cacheHits;
        std::string name = study::machineToken(cell.result.machine)
                           + "/" + study::kernelToken(cell.result.kernel);
        name.resize(18, ' ');
        std::cout << name << std::setw(12) << cell.result.cycles
                  << "  " << (cell.cached ? "cache" : "computed")
                  << "\n";
    }
    std::cout << cacheHits << "/" << response->results.size()
              << " cells served from the daemon cache\n";

    if (cacheHits < minCacheHits) {
        std::cerr << prog << ": expected at least " << minCacheHits
                  << " cache hits, saw " << cacheHits << "\n";
        return 1;
    }

    study::StudyConfig cfg;
    cfg.seed = seed;

    if (verify) {
        // The one-shot path: same config, fresh local computation,
        // no cache. Bit-identical RunResults or the daemon lied.
        study::ParallelRunner runner(cfg, 0, nullptr,
                                     study::ParallelRunner::noCache());
        const auto local = runner.runCells(request.cells);
        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < local.size(); ++i) {
            if (!(local[i] == response->results[i].result)) {
                std::cerr << prog << ": mismatch at "
                          << study::machineToken(local[i].machine)
                          << "/" << study::kernelToken(local[i].kernel)
                          << ": local " << local[i].cycles
                          << " cycles vs daemon "
                          << response->results[i].result.cycles << "\n";
                ++mismatches;
            }
        }
        if (mismatches) {
            std::cerr << prog << ": " << mismatches << "/"
                      << local.size()
                      << " cells differ from the one-shot path\n";
            return 1;
        }
        std::cout << "verified: all " << local.size()
                  << " cells bit-identical to the one-shot path\n";
    }

    if (!jsonPath.empty()) {
        study::ResultSink sink(cfg);
        for (const serve::CellResult &cell : response->results)
            sink.add(cell.result);
        sink.metadata("bench", prog);
        sink.metadata("daemon", socketPath.empty()
                                    ? "127.0.0.1:"
                                          + std::to_string(*tcpPort)
                                    : socketPath);
        sink.writeJsonFile(jsonPath);
        std::cout << "results written to " << jsonPath << "\n";
    }
    return 0;
}
