/**
 * @file
 * Ablation for the corner-turn blocking choices (Section 3.1): why
 * the VIRAM mapping gathers 64-element columns (vector-register
 * height) and why the conventional baseline tiles at a cache-friendly
 * block edge. Sweeps the block size on both machines.
 */

#include <iostream>

#include "bench_main.hh"
#include "ppc/kernels_ppc.hh"
#include "sim/logging.hh"
#include "sim/table.hh"
#include "viram/kernels_viram.hh"

using namespace triarch;
using namespace triarch::kernels;

namespace
{

int
run(bench::BenchContext &ctx)
{
    const unsigned n = ctx.config().matrixSize;
    WordMatrix src(n, n);
    fillMatrix(src, 1);
    WordMatrix dst;

    Table tv("VIRAM corner turn vs column-gather height "
             "(vl per strided load)");
    tv.header({"Row block (vl)", "Cycles (10^3)"});
    for (unsigned rb : {8u, 16u, 32u, 64u}) {
        viram::ViramMachine machine;
        const Cycles c = viram::cornerTurnViram(machine, src, dst, rb);
        if (!isTransposeOf(src, dst))
            triarch_fatal("bad transpose at row block ", rb);
        tv.row({std::to_string(rb), Table::num(c / 1000)});
    }
    tv.render(std::cout);
    std::cout << "\nShort vectors leave the address generators idle "
                 "during startup; the paper's\nmapping uses "
                 "full-height (64-element) column gathers.\n\n";

    Table tp("PPC G4 corner turn vs cache block edge (scalar)");
    tp.header({"Block edge", "Cycles (10^3)", "L1 misses (10^3)"});
    for (unsigned edge : {8u, 16u, 32u, 64u, 128u}) {
        ppc::PpcMachine machine;
        const Cycles c =
            ppc::cornerTurnPpc(machine, src, dst, false, edge);
        if (!isTransposeOf(src, dst))
            triarch_fatal("bad transpose at block edge ", edge);
        tp.row({std::to_string(edge), Table::num(c / 1000),
                Table::num(machine.l1Misses() / 1000)});
    }
    tp.render(std::cout);
    std::cout << "\nColumn writes within a block land in a single L1 "
                 "set (4 KB stride), so a\nblock edge above the 8-way "
                 "associativity thrashes the destination lines\nand "
                 "misses jump ~4x. This set-conflict behavior is why "
                 "conventional\ncache systems must tile the corner "
                 "turn at all (Section 3.1) — and why\neven tiled, "
                 "the G4 stays memory-bound.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: corner-turn blocking choices", run)
