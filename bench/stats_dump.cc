/**
 * @file
 * Full statistics dump: runs each machine on one representative
 * kernel at the paper's sizes and prints every registered counter
 * (gem5-style `group.stat value` lines). This is the raw material
 * behind the Section 4 analysis figures — row misses, TLB refills,
 * stall breakdowns, network traffic, utilization inputs.
 */

#include <iostream>

#include "bench_main.hh"
#include "imagine/kernels_imagine.hh"
#include "ppc/kernels_ppc.hh"
#include "raw/kernels_raw.hh"
#include "sim/metrics.hh"
#include "viram/kernels_viram.hh"

using namespace triarch;
using namespace triarch::kernels;

namespace
{

int
run(bench::BenchContext &ctx)
{
    const study::StudyConfig &cfg = ctx.config();
    {
        std::cout << "==== VIRAM, corner turn " << cfg.matrixSize << "x"
                  << cfg.matrixSize << " ====\n";
        WordMatrix src(cfg.matrixSize, cfg.matrixSize);
        fillMatrix(src, 1);
        WordMatrix dst;
        viram::ViramMachine m;
        const Cycles c = viram::cornerTurnViram(m, src, dst);
        std::cout << "viram.cycles " << c << "\n";
        m.statGroup().dump(std::cout);
        metrics::MetricsRegistry::global().capture(m.statGroup(),
                                                   "viram.ct");
    }
    {
        std::cout << "\n==== Imagine, CSLC (" << cfg.cslc.subBands
                  << " sub-bands) ====\n";
        auto in = makeJammedInput(cfg.cslc, cfg.jammerBins, cfg.seed);
        auto w = estimateWeights(cfg.cslc, in);
        CslcOutput out;
        imagine::ImagineMachine m;
        const Cycles c = imagine::cslcImagine(m, cfg.cslc, in, w, out);
        std::cout << "imagine.cycles " << c << "\n";
        m.statGroup().dump(std::cout);
        metrics::MetricsRegistry::global().capture(m.statGroup(),
                                                   "imagine.cslc");
    }
    {
        std::cout << "\n==== Raw, CSLC (" << cfg.cslc.subBands
                  << " sub-bands, cached MIMD) ====\n";
        auto in = makeJammedInput(cfg.cslc, cfg.jammerBins, cfg.seed);
        auto w = estimateWeights(cfg.cslc, in);
        CslcOutput out;
        raw::RawMachine m;
        auto r = raw::cslcRaw(m, cfg.cslc, in, w, out);
        std::cout << "raw.cycles " << r.cycles
                  << "\nraw.balanced_cycles " << r.balancedCycles
                  << "\n";
        m.statGroup().dump(std::cout);
        metrics::MetricsRegistry::global().capture(m.statGroup(),
                                                   "raw.cslc");
        std::cout << "raw.tile_instructions:";
        for (unsigned t = 0; t < m.config().tiles(); ++t)
            std::cout << " " << m.tileInstructions(t);
        std::cout << "\n";
    }
    {
        std::cout << "\n==== PPC G4 + AltiVec, beam steering ====\n";
        auto tables = makeBeamTables(cfg.beam, 2);
        std::vector<std::int32_t> out;
        ppc::PpcMachine m;
        const Cycles c =
            ppc::beamSteeringPpc(m, cfg.beam, tables, out, true);
        std::cout << "ppc.cycles " << c << "\n";
        m.statGroup().dump(std::cout);
        metrics::MetricsRegistry::global().capture(m.statGroup(),
                                                   "altivec.bs");
    }
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("statistics dump: every counter on representative "
                   "kernels",
                   run)
