/**
 * @file
 * Full statistics dump: runs each machine on one representative
 * kernel at the paper's sizes and prints every registered counter
 * (gem5-style `group.stat value` lines). This is the raw material
 * behind the Section 4 analysis figures — row misses, TLB refills,
 * stall breakdowns, network traffic, utilization inputs.
 */

#include <iostream>

#include "imagine/kernels_imagine.hh"
#include "ppc/kernels_ppc.hh"
#include "raw/kernels_raw.hh"
#include "viram/kernels_viram.hh"

using namespace triarch;
using namespace triarch::kernels;

int
main()
{
    {
        std::cout << "==== VIRAM, corner turn 1024x1024 ====\n";
        WordMatrix src(1024, 1024);
        fillMatrix(src, 1);
        WordMatrix dst;
        viram::ViramMachine m;
        const Cycles c = viram::cornerTurnViram(m, src, dst);
        std::cout << "viram.cycles " << c << "\n";
        m.statGroup().dump(std::cout);
    }
    {
        std::cout << "\n==== Imagine, CSLC (73 sub-bands) ====\n";
        CslcConfig cfg;
        auto in = makeJammedInput(cfg, {300, 1700, 4090}, 11);
        auto w = estimateWeights(cfg, in);
        CslcOutput out;
        imagine::ImagineMachine m;
        const Cycles c = imagine::cslcImagine(m, cfg, in, w, out);
        std::cout << "imagine.cycles " << c << "\n";
        m.statGroup().dump(std::cout);
    }
    {
        std::cout << "\n==== Raw, CSLC (73 sub-bands, cached MIMD) "
                     "====\n";
        CslcConfig cfg;
        auto in = makeJammedInput(cfg, {300, 1700, 4090}, 11);
        auto w = estimateWeights(cfg, in);
        CslcOutput out;
        raw::RawMachine m;
        auto r = raw::cslcRaw(m, cfg, in, w, out);
        std::cout << "raw.cycles " << r.cycles
                  << "\nraw.balanced_cycles " << r.balancedCycles
                  << "\n";
        m.statGroup().dump(std::cout);
        std::cout << "raw.tile_instructions:";
        for (unsigned t = 0; t < m.config().tiles(); ++t)
            std::cout << " " << m.tileInstructions(t);
        std::cout << "\n";
    }
    {
        std::cout << "\n==== PPC G4 + AltiVec, beam steering ====\n";
        BeamConfig cfg;
        auto tables = makeBeamTables(cfg, 2);
        std::vector<std::int32_t> out;
        ppc::PpcMachine m;
        const Cycles c =
            ppc::beamSteeringPpc(m, cfg, tables, out, true);
        std::cout << "ppc.cycles " << c << "\n";
        m.statGroup().dump(std::cout);
    }
    return 0;
}
