/**
 * @file
 * Full statistics dump: runs each machine on one representative
 * kernel at the paper's sizes and prints every registered counter
 * (gem5-style `group.stat value` lines). This is the raw material
 * behind the Section 4 analysis figures — row misses, TLB refills,
 * stall breakdowns, network traffic, utilization inputs.
 */

#include <iomanip>
#include <iostream>

#include "bench_main.hh"
#include "imagine/kernels_imagine.hh"
#include "ppc/kernels_ppc.hh"
#include "raw/kernels_raw.hh"
#include "sim/metrics.hh"
#include "viram/kernels_viram.hh"

using namespace triarch;
using namespace triarch::kernels;

namespace
{

/** One-line percentage view of a finalized cycle account (the
 *  account_* scalars carry the raw values in the dump below). */
void
printAccount(const stats::CycleBreakdown &b)
{
    std::cout << "cycle_account:";
    for (const auto cat : stats::allCycleCategories()) {
        std::cout << " " << stats::cycleCategoryToken(cat) << " "
                  << std::fixed << std::setprecision(1)
                  << 100.0 * b.fraction(cat) << "%";
    }
    std::cout << std::defaultfloat << " (total " << b.total << ")\n";
}

int
run(bench::BenchContext &ctx)
{
    const study::StudyConfig &cfg = ctx.config();
    {
        std::cout << "==== VIRAM, corner turn " << cfg.matrixSize << "x"
                  << cfg.matrixSize << " ====\n";
        WordMatrix src(cfg.matrixSize, cfg.matrixSize);
        fillMatrix(src, 1);
        WordMatrix dst;
        viram::ViramMachine m;
        const Cycles c = viram::cornerTurnViram(m, src, dst);
        std::cout << "viram.cycles " << c << "\n";
        printAccount(m.cycleBreakdown(c));
        m.statGroup().dump(std::cout);
        metrics::MetricsRegistry::global().capture(m.statGroup(),
                                                   "viram.ct");
    }
    {
        std::cout << "\n==== Imagine, CSLC (" << cfg.cslc.subBands
                  << " sub-bands) ====\n";
        auto in = makeJammedInput(cfg.cslc, cfg.jammerBins, cfg.seed);
        auto w = estimateWeights(cfg.cslc, in);
        CslcOutput out;
        imagine::ImagineMachine m;
        const Cycles c = imagine::cslcImagine(m, cfg.cslc, in, w, out);
        std::cout << "imagine.cycles " << c << "\n";
        printAccount(m.cycleBreakdown(c));
        m.statGroup().dump(std::cout);
        metrics::MetricsRegistry::global().capture(m.statGroup(),
                                                   "imagine.cslc");
    }
    {
        std::cout << "\n==== Raw, CSLC (" << cfg.cslc.subBands
                  << " sub-bands, cached MIMD) ====\n";
        auto in = makeJammedInput(cfg.cslc, cfg.jammerBins, cfg.seed);
        auto w = estimateWeights(cfg.cslc, in);
        CslcOutput out;
        raw::RawMachine m;
        auto r = raw::cslcRaw(m, cfg.cslc, in, w, out);
        std::cout << "raw.cycles " << r.cycles
                  << "\nraw.balanced_cycles " << r.balancedCycles
                  << "\n";
        printAccount(m.cycleBreakdown(r.cycles));
        m.statGroup().dump(std::cout);
        metrics::MetricsRegistry::global().capture(m.statGroup(),
                                                   "raw.cslc");
        std::cout << "raw.tile_instructions:";
        for (unsigned t = 0; t < m.config().tiles(); ++t)
            std::cout << " " << m.tileInstructions(t);
        std::cout << "\n";
    }
    {
        std::cout << "\n==== PPC G4 + AltiVec, beam steering ====\n";
        auto tables = makeBeamTables(cfg.beam, 2);
        std::vector<std::int32_t> out;
        ppc::PpcMachine m;
        const Cycles c =
            ppc::beamSteeringPpc(m, cfg.beam, tables, out, true);
        std::cout << "ppc.cycles " << c << "\n";
        printAccount(m.cycleBreakdown(c));
        m.statGroup().dump(std::cout);
        metrics::MetricsRegistry::global().capture(m.statGroup(),
                                                   "altivec.bs");
    }
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("statistics dump: every counter on representative "
                   "kernels",
                   run)
