/**
 * @file
 * Stands in for Figures 1-3: textual block diagrams of the VIRAM,
 * Imagine, and Raw machine models, printed from the configurations
 * the simulators actually run with, plus the G4 baseline.
 */

#include <iostream>

#include "bench_main.hh"
#include "imagine/machine.hh"
#include "ppc/machine.hh"
#include "raw/machine.hh"
#include "viram/machine.hh"

namespace
{

int
run(triarch::bench::BenchContext &)
{
    std::cout << "Figure 1.\n"
              << triarch::viram::ViramMachine().describe() << "\n";
    std::cout << "Figure 2.\n"
              << triarch::imagine::ImagineMachine().describe() << "\n";
    std::cout << "Figure 3.\n"
              << triarch::raw::RawMachine().describe() << "\n";
    std::cout << "Baseline.\n"
              << triarch::ppc::PpcMachine().describe();
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("Figures 1-3: machine block diagrams", run)
