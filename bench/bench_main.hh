/**
 * @file
 * Shared CLI harness for every bench binary. A bench defines one
 * body function and delegates argv to benchMain() via
 * TRIARCH_BENCH_MAIN; the harness owns flag parsing, the study
 * configuration, a ParallelRunner over the selected cells, and the
 * optional JSON results emission — no bench parses argv by hand.
 *
 * Flags (common to all benches):
 *   --machines a,b,...  restrict to these platforms
 *                       (ppc, altivec, viram, imagine, raw)
 *   --kernels a,b,...   restrict to these kernels (ct, cslc, bs)
 *   --threads N         worker threads (0 = hardware concurrency)
 *   --seed N            workload synthesis seed (default 11)
 *   --json PATH         write a triarch.results.v1 JSON document
 *   --csv               machine-readable table output where supported
 *   --trace PATH        write a Chrome trace-event JSON timeline
 *   --stats PATH        write a triarch.stats.v1 counters document
 *   --hw PATH           write a triarch.hw.v1 utilization report
 *   --mem-model MODE    span (default) or reference memory walk
 *   --raw-stepper MODE  event (default) or reference Raw stepper
 *   --host-stats        record host-time histograms into --stats
 *   --host              emit a bench host section where supported
 *   --host-warmup N     unmeasured host iterations per cell
 *   --host-reps N       measured host iterations per cell
 *   --pin N             pin host measurement to core N
 *   --log-level LEVEL   quiet, warn, inform, or debug
 *   --help              usage
 *
 * Flags accept both "--flag value" and "--flag=value".
 */

#ifndef TRIARCH_BENCH_BENCH_MAIN_HH
#define TRIARCH_BENCH_BENCH_MAIN_HH

#include <memory>
#include <string>
#include <vector>

#include "study/parallel.hh"
#include "study/result_sink.hh"

namespace triarch::bench
{

/** Parsed command-line options. */
struct BenchOptions
{
    std::vector<study::MachineId> machines;  //!< selection (all 5)
    std::vector<study::KernelId> kernels;    //!< selection (all 3)
    unsigned threads = 0;                    //!< 0 = hardware
    std::uint64_t seed = 11;
    std::string jsonPath;                    //!< empty = no JSON
    std::string tracePath;                   //!< empty = no tracing
    std::string statsPath;                   //!< empty = no stats doc
    std::string hwPath;                      //!< empty = no hw report
    bool csv = false;

    /** --host-stats: gate host-time histograms on process-wide. */
    bool hostStats = false;
    /** --host: measure and emit a bench host section (perf_report,
     *  micro_host); off by default so documents stay byte-identical. */
    bool hostSection = false;
    unsigned hostWarmup = 1;    //!< --host-warmup (CI-friendly default)
    unsigned hostReps = 5;      //!< --host-reps (contract wants 30+)
    int pinCpu = -1;            //!< --pin; < 0 = no pinning
};

/**
 * Everything a bench body needs: the options, the study config they
 * imply, a lazily constructed ParallelRunner, the (cached) results
 * of the selected cells, and the sink behind --json.
 */
class BenchContext
{
  public:
    explicit BenchContext(BenchOptions run_options);
    ~BenchContext();

    const BenchOptions &options() const { return opts; }

    /** The paper's workload parameters with the --seed applied. */
    const study::StudyConfig &config() const { return cfg; }

    /** Parallel, cache-backed runner over config(). */
    study::ParallelRunner &runner();

    /** Results for the selected machines x kernels, computed
     *  concurrently on first use and recorded in the sink. */
    const std::vector<study::RunResult> &results();

    /** Results for the full 5x3 grid, regardless of selection — the
     *  paper's figure/table builders need every cell (including the
     *  AltiVec baseline). A bench should use either this or
     *  results(), not both, so the sink stays duplicate-free. */
    const std::vector<study::RunResult> &allResults();

    /** The cells selected by --machines/--kernels. */
    std::vector<study::Cell> selectedCells() const;

    /** The sink written to --json when the body returns. */
    study::ResultSink &sink();

  private:
    BenchOptions opts;
    study::StudyConfig cfg;
    std::unique_ptr<study::ParallelRunner> par;
    std::unique_ptr<study::ResultSink> out;
    std::vector<study::RunResult> cellResults;
    std::vector<study::RunResult> gridResults;
    bool haveResults = false;
    bool haveGrid = false;
};

using BenchBody = int (*)(BenchContext &);

/** Parse argv, run @p body, emit --json; returns the exit code. */
int benchMain(int argc, char **argv, const char *description,
              BenchBody body);

} // namespace triarch::bench

/** Defines main() for a bench with the given description and body. */
#define TRIARCH_BENCH_MAIN(description, body) \
    int main(int argc, char **argv) \
    { \
        return ::triarch::bench::benchMain(argc, argv, description, \
                                           body); \
    }

#endif // TRIARCH_BENCH_BENCH_MAIN_HH
