/**
 * @file
 * Ablation for Section 4.3's Raw CSLC analysis:
 *
 *  1. the radix choice — the paper uses radix-2 because the radix-4
 *     butterfly spills registers on a tile, even though radix-2
 *     executes ~1.5x the operations; the bench quantifies both
 *     effects from the op-count models and the measured kernel;
 *  2. load balancing — 73 sub-band sets on 16 tiles leaves ~8% of
 *     tile cycles idle; the bench sweeps the set count and reports
 *     measured vs perfectly-balanced cycles.
 */

#include <iostream>

#include "bench_main.hh"
#include "kernels/fft.hh"
#include "raw/kernels_raw.hh"
#include "sim/table.hh"

using namespace triarch;
using namespace triarch::raw;
using namespace triarch::kernels;

namespace
{

int
run(triarch::bench::BenchContext &ctx)
{
    // Part 1: radix trade-off.
    const FftOps r2 = radix2Ops(128);
    const FftOps r4 = mixed128Ops();

    Table radix("Radix choice for the 128-point FFT on a Raw tile");
    radix.header({"Algorithm", "flops", "loads+stores", "total ops",
                  "live values"});
    radix.row({"radix-2", Table::num(r2.flops()),
               Table::num(r2.loads + r2.stores), Table::num(r2.total()),
               "14 (fits 24 regs)"});
    radix.row({"mixed radix-4", Table::num(r4.flops()),
               Table::num(r4.loads + r4.stores), Table::num(r4.total()),
               "26+ (spills)"});
    radix.render(std::cout);
    std::cout << "radix-2 / radix-4 total-op ratio: "
              << Table::num(static_cast<double>(r2.total())
                                / static_cast<double>(r4.total()),
                            2)
              << "  (paper: \"about 1.5\", Section 4.3)\n"
              << "A radix-4 butterfly needs 4 complex points, 3 "
                 "twiddles, and 6 temporaries\nlive at once — beyond "
                 "a tile's register budget, so every spilled value\n"
                 "adds a store+load pair, which is why the paper's "
                 "radix-4 attempt lost.\n\n";

    // Part 2: load balancing across sub-band counts.
    Table balance("CSLC load balance on 16 tiles (Section 4.3)");
    balance.header({"Sub-bands", "Measured (10^3)", "Balanced (10^3)",
                    "Idle fraction"});
    for (unsigned subBands : {64u, 73u, 80u}) {
        CslcConfig cfg = ctx.config().cslc;
        cfg.subBands = subBands;
        cfg.samples =
            (cfg.subBands - 1) * cfg.subBandStride + cfg.subBandLen;
        auto in =
            makeJammedInput(cfg, {300, 1700}, ctx.config().seed);
        auto weights = estimateWeights(cfg, in);

        RawMachine machine;
        CslcOutput out;
        auto result = cslcRaw(machine, cfg, in, weights, out);
        balance.row({std::to_string(subBands),
                     Table::num(result.cycles / 1000),
                     Table::num(result.balancedCycles / 1000),
                     Table::num(100.0 * result.idleFraction, 1) + "%"});
    }
    balance.render(std::cout);
    std::cout << "\n73 sets on 16 tiles gives 9 tiles five sets and 7 "
                 "tiles four: ~8% idle\n(paper). With 64 or 80 sets "
                 "the division is exact and idle time vanishes;\n"
                 "Table 3 reports the balanced extrapolation, as in "
                 "the paper.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: Raw CSLC radix choice and load balance",
                   run)
