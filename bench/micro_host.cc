/**
 * @file
 * Host-side microbenchmark of the simulators themselves: how much
 * wall-clock time each Table-3 cell costs to simulate. These numbers
 * do not reproduce the paper; they document the cost of running the
 * study and feed the advisory host-time comparison in bench_diff.
 *
 * Every cell's mapping runs under the repeated-measurement contract
 * (sim/host_clock.hh): --warmup unmeasured iterations, --reps
 * measured ones, optional --pin core pinning, robust statistics.
 * Default output is a human-readable table; --json emits the full
 * triarch.bench.v1 document (simulated cycles + host section) on
 * stdout, the same shape perf_report --host writes. With --grid,
 * --json instead emits a triarch.grid.v1 throughput summary
 * (cells/sec per machine row + total) that CI field-checks.
 *
 * Flags parse via the shared study::CliOptions (exit 2 on a bad
 * flag, like every other gate-style tool here).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>
#include <sstream>

#include "mem/mem_mode.hh"
#include "raw/config.hh"
#include "sim/host_clock.hh"
#include "sim/json.hh"
#include "study/bench_report.hh"
#include "study/cli_options.hh"
#include "study/host_measure.hh"
#include "study/machine_info.hh"
#include "study/parallel.hh"

using namespace triarch;
using namespace triarch::study;

int
main(int argc, char **argv)
{
    std::uint64_t seed = 11;
    unsigned warmup = 1;
    unsigned reps = 5;
    int pin = -1;
    bool json = false;
    bool gridOnly = false;
    std::string machines;

    CliOptions cli("Measure the host wall-clock cost of simulating "
                   "each Table-3 cell");
    cli.number("--seed", "N", "workload synthesis seed (default 11)",
               std::numeric_limits<std::uint64_t>::max(),
               [&](std::uint64_t n) {
                   seed = n;
                   return 0;
               });
    cli.number("--warmup", "N",
               "unmeasured iterations per cell (default 1)",
               std::numeric_limits<unsigned>::max(),
               [&](std::uint64_t n) {
                   warmup = static_cast<unsigned>(n);
                   return 0;
               });
    cli.number("--reps", "N",
               "measured iterations per cell (default 5; the "
               "measurement contract wants 30+)",
               std::numeric_limits<unsigned>::max(),
               [&](std::uint64_t n) {
                   reps = static_cast<unsigned>(n);
                   return 0;
               });
    cli.number("--pin", "N", "pin the measurement to core N", 4095,
               [&](std::uint64_t n) {
                   pin = static_cast<int>(n);
                   return 0;
               });
    cli.toggle("--json",
               "emit a triarch.bench.v1 document with a host section "
               "instead of the table",
               [&]() {
                   json = true;
                   return 0;
               });
    cli.value("--machines", "LIST",
              "comma-separated machine tokens to measure (default "
              "all); e.g. --machines raw for the Raw host-time gate",
              [&](const std::string &v) {
                  machines = v;
                  return 0;
              });
    cli.toggle("--grid",
               "print only the one-line grid summary (median sum and "
               "cells/sec) — the CI throughput check; with --json, a "
               "triarch.grid.v1 document (per-machine rows + total) "
               "instead of the one-liner",
               [&]() {
                   gridOnly = true;
                   return 0;
               });
    cli.value("--mem-model", "MODE",
              "PPC/VIRAM/Imagine memory walk: span (default, batched "
              "D13 fast path) or reference (word-at-a-time baseline)",
              [&](const std::string &v) {
                  if (v == "span") {
                      mem::setDefaultMemModel(mem::MemModel::Span);
                  } else if (v == "reference") {
                      mem::setDefaultMemModel(mem::MemModel::Reference);
                  } else {
                      std::fprintf(stderr,
                                   "--mem-model wants span or "
                                   "reference, got '%s'\n", v.c_str());
                      return 2;
                  }
                  return 0;
              });
    cli.value("--raw-stepper", "MODE",
              "Raw interpreter loop: event (default) or reference "
              "(the cycle-at-a-time differential baseline)",
              [&](const std::string &v) {
                  if (v == "event") {
                      raw::setDefaultRawStepper(raw::RawStepper::Event);
                  } else if (v == "reference") {
                      raw::setDefaultRawStepper(
                          raw::RawStepper::Reference);
                  } else {
                      std::fprintf(stderr,
                                   "--raw-stepper wants event or "
                                   "reference, got '%s'\n", v.c_str());
                      return 2;
                  }
                  return 0;
              });
    cli.logLevelFlag();
    if (const auto rc = cli.parse(argc, argv))
        return *rc;

    StudyConfig cfg;
    cfg.seed = seed;

    host::MeasureOptions mo;
    mo.warmup = warmup;
    mo.repetitions = reps;
    mo.pinCpu = pin;

    std::vector<Cell> cells = allCells();
    if (!machines.empty()) {
        std::vector<MachineId> keep;
        std::istringstream tokens(machines);
        std::string token;
        while (std::getline(tokens, token, ',')) {
            const auto id = parseMachineToken(token);
            if (!id) {
                std::fprintf(stderr, "unknown machine token '%s'\n",
                             token.c_str());
                return 2;
            }
            keep.push_back(*id);
        }
        std::erase_if(cells, [&](const Cell &cell) {
            return std::find(keep.begin(), keep.end(), cell.machine)
                   == keep.end();
        });
        if (cells.empty()) {
            std::fprintf(stderr, "--machines matched no cells\n");
            return 2;
        }
    }
    const HostSection host = measureHostSection(cfg, cells, mo);

    if (gridOnly) {
        double sumNs = 0.0;
        for (const HostCellTiming &cell : host.cells)
            sumNs += cell.medianNs;
        if (json) {
            // Machine-readable grid summary so CI can field-check
            // instead of grepping the one-line text. Rows follow
            // allMachines() order, restricted to what was measured.
            json::Writer w(std::cout);
            w.beginObject(json::Writer::Style::Pretty);
            w.member("schema", "triarch.grid.v1");
            w.member("seed", seed);
            w.member("cells",
                     static_cast<std::uint64_t>(host.cells.size()));
            w.key("rows").beginArray();
            for (MachineId machine : allMachines()) {
                double rowNs = 0.0;
                std::uint64_t rowCells = 0;
                for (const HostCellTiming &cell : host.cells) {
                    if (cell.machine != machine)
                        continue;
                    rowNs += cell.medianNs;
                    ++rowCells;
                }
                if (rowCells == 0)
                    continue;
                w.beginObject();
                w.member("machine", machineToken(machine));
                w.member("cells", rowCells);
                w.member("median_sum_ms", rowNs / 1e6);
                w.member("cells_per_sec",
                         rowNs > 0.0 ? static_cast<double>(rowCells)
                                           / (rowNs / 1e9)
                                     : 0.0);
                w.endObject();
            }
            w.endArray();
            w.member("median_sum_ms", sumNs / 1e6);
            w.member("cells_per_sec", host.cellsPerSec);
            w.endObject();
            w.finish();
            std::cout << "\n";
            return 0;
        }
        std::printf("grid %zu cells, median sum %.1f ms, "
                    "%.2f cells/sec\n",
                    host.cells.size(), sumNs / 1e6, host.cellsPerSec);
        return 0;
    }

    if (json) {
        // One simulated run per cell for the cycle half of the
        // document (cache-backed; the host section above measured
        // uncached mapping executions).
        ParallelRunner runner(cfg, 1);
        BenchReport report = buildBenchReport(cfg, runner.runCells(cells));
        report.host = host;
        writeBenchReportJson(report, std::cout);
        return 0;
    }

    std::printf("host time per simulated cell (seed %llu, %llu reps"
                ", warmup %llu%s)\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(host.repetitions),
                static_cast<unsigned long long>(host.warmup),
                host.pinned ? ", pinned" : "");
    std::printf("%-12s %-6s %12s %12s %12s %12s\n", "machine",
                "kernel", "median(ms)", "p95(ms)", "min(ms)",
                "stddev(ms)");
    for (const HostCellTiming &cell : host.cells) {
        std::printf("%-12s %-6s %12.3f %12.3f %12.3f %12.3f\n",
                    machineToken(cell.machine).c_str(),
                    kernelToken(cell.kernel).c_str(),
                    cell.medianNs / 1e6, cell.p95Ns / 1e6,
                    cell.minNs / 1e6, cell.stddevNs / 1e6);
    }
    std::printf("grid throughput at the medians: %.2f cells/sec\n",
                host.cellsPerSec);
    std::printf("peak RSS: %.1f MiB\n",
                static_cast<double>(host::peakRssBytes())
                    / (1024.0 * 1024.0));
    return 0;
}
