/**
 * @file
 * Host-side microbenchmarks (google-benchmark): throughput of the
 * reference kernels and of the simulators themselves. These do not
 * reproduce paper numbers; they document the cost of running the
 * study and guard against performance regressions in the simulators.
 */

#include <benchmark/benchmark.h>

#include "kernels/corner_turn.hh"
#include "kernels/fft.hh"
#include "raw/kernels_raw.hh"
#include "sim/rng.hh"
#include "viram/kernels_viram.hh"

namespace
{

using namespace triarch;

void
BM_ReferenceFftMixed128(benchmark::State &state)
{
    Rng rng(1);
    std::vector<kernels::cfloat> x(128);
    for (auto &v : x)
        v = {rng.nextSignedFloat(), rng.nextSignedFloat()};
    for (auto _ : state) {
        auto y = x;
        kernels::fftMixed128(y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_ReferenceFftMixed128);

void
BM_ReferenceFftRadix2_1024(benchmark::State &state)
{
    Rng rng(2);
    std::vector<kernels::cfloat> x(1024);
    for (auto &v : x)
        v = {rng.nextSignedFloat(), rng.nextSignedFloat()};
    for (auto _ : state) {
        auto y = x;
        kernels::fftRadix2(y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_ReferenceFftRadix2_1024);

void
BM_ReferenceTransposeBlocked(benchmark::State &state)
{
    kernels::WordMatrix src(512, 512), dst(512, 512);
    kernels::fillMatrix(src, 3);
    for (auto _ : state) {
        kernels::transposeBlocked(src, dst, 32);
        benchmark::DoNotOptimize(dst.data.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 512 * 512 * 4);
}
BENCHMARK(BM_ReferenceTransposeBlocked);

void
BM_ViramSimulatorCornerTurn128(benchmark::State &state)
{
    kernels::WordMatrix src(128, 128);
    kernels::fillMatrix(src, 4);
    for (auto _ : state) {
        viram::ViramMachine machine;
        kernels::WordMatrix dst;
        benchmark::DoNotOptimize(
            viram::cornerTurnViram(machine, src, dst));
    }
}
BENCHMARK(BM_ViramSimulatorCornerTurn128);

void
BM_RawInterpreterCornerTurn128(benchmark::State &state)
{
    kernels::WordMatrix src(128, 128);
    kernels::fillMatrix(src, 5);
    std::uint64_t simCycles = 0;
    for (auto _ : state) {
        raw::RawMachine machine;
        kernels::WordMatrix dst;
        simCycles += raw::cornerTurnRaw(machine, src, dst);
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(simCycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RawInterpreterCornerTurn128);

} // namespace

BENCHMARK_MAIN();
