/**
 * @file
 * Energy-efficiency extension: the paper motivates PIM partly by
 * power ("PIM technology also has the potential to decrease ...
 * power consumption"; VIRAM is quoted at ~2 W) but evaluates only
 * cycles. This bench combines the Table 3 measurements with the
 * chips' published typical power to estimate energy per kernel
 * invocation — the embedded-radar figure of merit.
 *
 * Power figures (documented in MachineInfo): VIRAM 2 W (paper,
 * Section 2.1), Imagine 4 W (Khailany et al., IEEE Micro 2001),
 * Raw 18 W (ISSCC 2003), PowerPC G4 ~30 W at 1 GHz.
 */

#include <iostream>

#include "bench_main.hh"
#include "study/report.hh"

using namespace triarch;
using namespace triarch::study;

namespace
{

int
run(bench::BenchContext &ctx)
{
    const auto &results = ctx.allResults();

    Table t("Energy per kernel invocation (millijoules; extension)");
    std::vector<std::string> head = {""};
    for (KernelId k : allKernels())
        head.push_back(kernelName(k));
    head.push_back("Power (W)");
    t.header(head);

    for (MachineId machine : allMachines()) {
        const auto &info = machineInfo(machine);
        std::vector<std::string> cells = {info.name};
        for (KernelId kernel : allKernels()) {
            const auto &r = findResult(results, machine, kernel);
            const double ms = r.milliseconds();
            cells.push_back(Table::num(ms * info.typicalWatts, 3));
        }
        cells.push_back(Table::num(info.typicalWatts, 0));
        t.row(cells);
    }
    t.render(std::cout);

    // Energy advantage over the AltiVec baseline.
    Table adv("Energy advantage over PPC G4 + AltiVec");
    std::vector<std::string> head2 = {""};
    for (KernelId k : allKernels())
        head2.push_back(kernelName(k));
    adv.header(head2);
    for (MachineId machine : researchMachines()) {
        const auto &info = machineInfo(machine);
        const auto &base = machineInfo(MachineId::PpcAltivec);
        std::vector<std::string> cells = {info.name};
        for (KernelId kernel : allKernels()) {
            const auto &r = findResult(results, machine, kernel);
            const auto &b =
                findResult(results, MachineId::PpcAltivec, kernel);
            const double gain =
                (b.milliseconds() * base.typicalWatts)
                / (r.milliseconds() * info.typicalWatts);
            cells.push_back(Table::num(gain, 1) + "x");
        }
        adv.row(cells);
    }
    std::cout << "\n";
    adv.render(std::cout);

    std::cout
        << "\nVIRAM's on-chip DRAM pays twice: it is fast AND avoids "
           "driving chip I/O,\nso at 2 W it leads every kernel's "
           "energy column by an order of magnitude —\nthe embedded "
           "one-chip-system story of Section 4.6. Raw's cycle wins "
           "shrink\nonce its 16-tile power is charged.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("extension: energy per kernel invocation", run)
