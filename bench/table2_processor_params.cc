/**
 * @file
 * Regenerates Table 2: processor parameters (clock, ALU count, peak
 * GFLOPS) of the four chips.
 */

#include <iostream>

#include "study/report.hh"

int
main()
{
    triarch::study::buildTable2().render(std::cout);
    std::cout << "\nNote: the PowerPC G4 is a custom-logic commercial "
                 "part; the research chips\nare standard-cell "
                 "prototypes built by small teams (Section 4.1).\n";
    return 0;
}
