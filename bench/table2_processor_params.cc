/**
 * @file
 * Regenerates Table 2: processor parameters (clock, ALU count, peak
 * GFLOPS) of the four chips.
 */

#include <iostream>

#include "bench_main.hh"
#include "study/report.hh"

namespace
{

int
run(triarch::bench::BenchContext &ctx)
{
    auto table = triarch::study::buildTable2();
    if (ctx.options().csv) {
        table.renderCsv(std::cout);
        return 0;
    }
    table.render(std::cout);
    std::cout << "\nNote: the PowerPC G4 is a custom-logic commercial "
                 "part; the research chips\nare standard-cell "
                 "prototypes built by small teams (Section 4.1).\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("Table 2: processor parameters", run)
