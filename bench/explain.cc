/**
 * @file
 * Bottleneck-attribution explainer: runs the selected Table-3 cells
 * and prints, for each, which hardware component the cycles point at
 * and the utilization numbers behind the verdict ("viram/ct: bound
 * by DRAM row misses, row miss rate 0.31, vmu util 0.87"). The
 * verdict is cross-checked against the D9 cycle partition — the
 * document is rendered and re-parsed through the validating
 * triarch.hw.v1 parser before anything is printed, so an
 * inconsistent attribution is a hard failure, not a wrong line.
 *
 * --hw PATH (harness flag) writes the same cells as a triarch.hw.v1
 * document; --csv prints one machine,kernel,category,component row
 * per cell for scripts.
 */

#include <iomanip>
#include <iostream>

#include "bench_main.hh"
#include "sim/hw_report.hh"
#include "study/study_json.hh"

using namespace triarch;

namespace
{

int
run(bench::BenchContext &ctx)
{
    ctx.results();

    const hw::HwReport report = hw::HwRegistry::global().report(
        study::studyConfigHashHex(ctx.config()));

    // The parser enforces the semantic invariants (rates in [0, 1],
    // verdict category == dominant D9 category, component consistent
    // with the category); round-tripping here turns a bad
    // attribution into an explicit failure.
    std::string error;
    const auto checked =
        hw::parseHwReport(hw::renderHwReport(report), &error);
    if (!checked || !(*checked == report)) {
        std::cerr << "explain: hw report failed validation: "
                  << (error.empty() ? "round trip mismatch" : error)
                  << "\n";
        return 1;
    }

    if (ctx.options().csv) {
        std::cout << "machine,kernel,category,component\n";
        for (const hw::HwCell &cell : report.cells) {
            std::cout << cell.machine << "," << cell.kernel << ","
                      << stats::cycleCategoryToken(
                             cell.verdict.category)
                      << "," << cell.verdict.component << "\n";
        }
        return 0;
    }

    for (const hw::HwCell &cell : report.cells) {
        std::cout << cell.machine << "/" << cell.kernel << ": "
                  << cell.verdict.detail << "\n";
        std::cout << "    cycles " << cell.cycles << ", dominant "
                  << stats::cycleCategoryToken(cell.verdict.category)
                  << " "
                  << hw::fmt2(cell.breakdown.fraction(
                         cell.verdict.category))
                  << " [" << cell.verdict.component << "], "
                  << cell.timeline.epochs() << " epochs of "
                  << cell.timeline.epochCycles << " cycles\n";
        for (const hw::HwMetric &metric : cell.metrics) {
            std::cout << "    " << std::left << std::setw(24)
                      << metric.name << hw::fmt2(metric.value)
                      << (metric.rate ? "" : " (per cycle)") << "\n";
        }
    }
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("per-cell bottleneck verdicts from the hardware "
                   "utilization counters",
                   run)
