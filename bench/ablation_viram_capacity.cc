/**
 * @file
 * Ablation for Section 4.6's VIRAM capacity cliff: "If the
 * application size is larger than the on-chip DRAM, the data needs
 * to come from off-chip memory and VIRAM would lose much of its
 * advantage." Sweeps the corner-turn matrix size across the 13 MB
 * on-chip boundary and compares against Raw, whose DRAM is off-chip
 * at every size.
 */

#include <iostream>

#include "bench_main.hh"
#include "raw/kernels_raw.hh"
#include "sim/logging.hh"
#include "sim/table.hh"
#include "viram/kernels_viram.hh"

using namespace triarch;
using namespace triarch::kernels;

namespace
{

int
run(triarch::bench::BenchContext &)
{
    Table t("Corner-turn cycles per word vs matrix size "
            "(VIRAM capacity cliff, Section 4.6)");
    t.header({"Matrix", "Footprint (MB)", "VIRAM cyc/word",
              "Raw cyc/word", "VIRAM/Raw"});

    for (unsigned n : {512u, 1024u, 1536u, 2048u}) {
        WordMatrix src(n, n);
        fillMatrix(src, 1);
        WordMatrix dst;
        const double words = static_cast<double>(n) * n;

        viram::ViramConfig vcfg;
        vcfg.offchipBytes = 128ULL * 1024 * 1024;
        viram::ViramMachine vm(vcfg);
        const Cycles vc = viram::cornerTurnViram(vm, src, dst);
        triarch_assert(isTransposeOf(src, dst), "bad VIRAM output");

        raw::RawConfig rcfg;
        rcfg.globalBytes = 128ULL * 1024 * 1024;
        raw::RawMachine rm(rcfg);
        const Cycles rc = raw::cornerTurnRaw(rm, src, dst);
        triarch_assert(isTransposeOf(src, dst), "bad Raw output");

        const double vRate = vc / words;
        const double rRate = rc / words;
        t.row({std::to_string(n) + "x" + std::to_string(n),
               Table::num(2.0 * words * 4 / (1024 * 1024), 1),
               Table::num(vRate, 3), Table::num(rRate, 3),
               Table::num(vRate / rRate, 2)});
    }
    t.render(std::cout);

    std::cout
        << "\nBelow ~13 MB total footprint both matrices live in "
           "VIRAM's on-chip DRAM\nand it transposes at its "
           "address-generator rate. Once the destination (and\nthen "
           "the source) spill off chip, every access crawls through "
           "the 2-words/\ncycle DMA interface and VIRAM's edge over "
           "Raw collapses — Raw's ports were\noff-chip all along, so "
           "its cycles/word stays flat (Section 4.6).\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: VIRAM on-chip capacity cliff", run)
