/**
 * @file
 * Cross-validation against the prior published results Section 2
 * quotes for these chips — numbers produced by the chip teams, not
 * by the paper's authors, so they are an independent check on the
 * machine models:
 *
 *  - Raw: "speedup of up to 12 relative to single-tile performance
 *    on ILP benchmarks ... matrix multiplication is implemented"
 *    (Taylor et al., HPCA 2003, quoted in Section 2.3). We run a
 *    blocked matrix multiply as assembled tile programs on 1 and 16
 *    tiles and report the speedup.
 *
 *  - Imagine: "ALU utilization between 84% and 95% is reported for
 *    streaming media applications" (Section 2.2). We run a
 *    high-arithmetic-intensity media-style kernel (saturating
 *    multiply-accumulate chain per pixel) and report utilization.
 */

#include <iostream>

#include "bench_main.hh"
#include "imagine/machine.hh"
#include "raw/assembler.hh"
#include "raw/machine.hh"
#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/table.hh"

using namespace triarch;

namespace
{

/**
 * Blocked matrix multiply (n x n floats) on a Raw machine: tile t
 * computes row stripes t, t+T, ... of C from cached global memory,
 * with the B panel re-read per stripe. The inner loop is assembled
 * (load, fmul, fadd, pointer bumps) exactly like the CSLC code.
 */
Cycles
rawMatmul(raw::RawMachine &machine, unsigned n,
          std::vector<float> &cOut)
{
    using namespace raw;
    const unsigned tiles = machine.config().tiles();

    const Addr aBase = machine.allocGlobal(
        static_cast<std::uint64_t>(n) * n * 4, "A");
    const Addr bBase = machine.allocGlobal(
        static_cast<std::uint64_t>(n) * n * 4, "B");
    const Addr cBase = machine.allocGlobal(
        static_cast<std::uint64_t>(n) * n * 4, "C");

    Rng rng(5);
    std::vector<Word> a(static_cast<std::size_t>(n) * n);
    std::vector<Word> b(static_cast<std::size_t>(n) * n);
    for (auto &v : a)
        v = floatToWord(rng.nextSignedFloat());
    for (auto &v : b)
        v = floatToWord(rng.nextSignedFloat());
    machine.pokeGlobal(aBase, a);
    machine.pokeGlobal(bBase, b);

    for (unsigned t = 0; t < tiles; ++t) {
        Assembler as;
        bool any = false;
        for (unsigned i = t; i < n; i += tiles)
            any = true;
        if (!any) {
            as.halt();
            machine.setProgram(t, as.finish());
            continue;
        }

        // r20 = row index i (walked by the emitter), inner loops
        // over j and k are real assembled loops.
        for (unsigned i = t; i < n; i += tiles) {
            as.li(1, static_cast<std::int32_t>(aBase + i * n * 4));
            as.li(4, static_cast<std::int32_t>(cBase + i * n * 4));
            as.li(5, static_cast<std::int32_t>(n));     // j counter
            as.li(2, static_cast<std::int32_t>(bBase)); // B column base
            Label jloop = as.label();
            as.bind(jloop);
            // acc = 0; k loop over the row/column.
            as.li(10, 0);
            as.move(6, 1);      // A row pointer
            as.move(7, 2);      // B column pointer (stride n*4)
            as.li(8, static_cast<std::int32_t>(n));
            Label kloop = as.label();
            as.bind(kloop);
            as.lw(11, 6, 0);
            as.lw(12, 7, 0);
            as.fmul(13, 11, 12);
            as.fadd(10, 10, 13);
            as.addi(6, 6, 4);
            as.addi(7, 7, static_cast<std::int32_t>(n * 4));
            as.addi(8, 8, -1);
            as.bne(8, 0, kloop);
            as.sw(10, 4, 0);
            as.addi(4, 4, 4);
            as.addi(2, 2, 4);
            as.addi(5, 5, -1);
            as.bne(5, 0, jloop);
        }
        as.halt();
        machine.setProgram(t, as.finish());
    }

    const Cycles cycles = machine.run();

    auto words = machine.peekGlobal(cBase,
                                    static_cast<std::size_t>(n) * n);
    cOut.resize(words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
        cOut[i] = wordToFloat(words[i]);

    // Spot-check a few entries against the host computation.
    Rng check(5);
    std::vector<float> af(a.size()), bf(b.size());
    for (auto &v : af)
        v = check.nextSignedFloat();
    for (auto &v : bf)
        v = check.nextSignedFloat();
    for (unsigned probe : {0u, n / 2, n - 1}) {
        float expect = 0.0f;
        for (unsigned k = 0; k < n; ++k)
            expect += af[probe * n + k] * bf[k * n + probe];
        const float got = cOut[probe * n + probe];
        triarch_assert(std::abs(got - expect) < 1e-3f,
                       "matmul result mismatch at ", probe);
    }
    return cycles;
}

int
run(bench::BenchContext &)
{
    // ---- Raw: 16-tile vs single-tile matrix multiply. ----
    constexpr unsigned n = 64;
    std::vector<float> c16, c1;

    raw::RawMachine sixteen;
    const Cycles t16 = rawMatmul(sixteen, n, c16);

    raw::RawConfig single;
    single.meshWidth = 1;
    single.meshHeight = 1;
    raw::RawMachine one(single);
    const Cycles t1 = rawMatmul(one, n, c1);
    triarch_assert(c16 == c1, "tile counts changed the product");

    Table t("Raw matrix multiply (64x64): tiles vs single tile");
    t.header({"Tiles", "Cycles (10^3)", "Speedup"});
    t.row({"1", Table::num(t1 / 1000), "1.0"});
    t.row({"16", Table::num(t16 / 1000),
           Table::num(static_cast<double>(t1) / t16, 1)});
    t.render(std::cout);
    std::cout << "Section 2.3 quotes \"speedup of up to 12 relative "
                 "to single-tile performance\"\non ILP benchmarks "
                 "(HPCA 2003). Our decomposition is data parallel "
                 "(independent\nrow stripes, private caches), so it "
                 "scales past their ILP-mapped codes and\nsits "
                 "between their ILP (12x) and streaming (>16x) "
                 "results — the right band.\n\n";

    // ---- Imagine: media-style kernel utilization. ----
    // The published 84-95% figures are for kernel execution over
    // SRF-resident streams (the whole point of the architecture),
    // measured across a sequence of kernels; we reproduce that
    // protocol: load the pixel strips first, then time ten strip
    // kernels running back to back.
    imagine::ImagineMachine m;
    const Addr src = m.allocMem(1 << 20, "pixels");
    constexpr unsigned strips = 10;
    constexpr unsigned stripWords = 1632;
    imagine::StreamRef in[strips], out[strips];
    for (unsigned s = 0; s < strips; ++s) {
        in[s] = m.allocStream(stripWords, "in");
        out[s] = m.allocStream(stripWords, "out");
        m.loadStream(in[s],
                     imagine::MemPattern::sequential(
                         src + s * stripWords * 4, stripWords));
    }

    m.resetTiming();
    // Per pixel: a 10-op filter step whose mix matches the cluster
    // (6 adder-class + 4 multiplier ops -> II = 2, fully packed),
    // the shape of the convolution/DCT kernels behind the published
    // utilization numbers.
    for (unsigned s = 0; s < strips; ++s) {
        imagine::KernelDesc media;
        media.name = "media_fir";
        media.iterations = stripWords / 8;
        media.adds = 6;
        media.mults = 4;
        media.srfWords = 2;
        media.pipelineDepth = 24;
        media.usefulFlops =
            static_cast<std::uint64_t>(media.iterations) * 8 * 10;
        m.runKernel(media, {&in[s]}, {&out[s]}, [] {});
    }

    // Utilization over adders+multipliers (the divider is idle in
    // media code, as in the published utilization figures).
    const double util =
        static_cast<double>(m.usefulFlops())
        / (static_cast<double>(m.completionTime()) * 8 * 5);
    Table ti("Imagine media-style kernel sequence utilization");
    ti.header({"Kernel", "Cycles (10^3)", "ALU utilization"});
    ti.row({"10-op/pixel filter x 10 strips",
            Table::num(m.completionTime() / 1000),
            Table::num(100.0 * util, 1) + "%"});
    ti.render(std::cout);
    std::cout << "Section 2.2 quotes \"ALU utilization between 84% "
                 "and 95% ... for streaming\nmedia applications\"; "
                 "the loss here is the software-pipeline prologue "
                 "and the\nhost issue gap between kernels, as in the "
                 "published kernels.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("cross-validation against prior published chip "
                   "results",
                   run)
