/**
 * @file
 * The perf-regression gate: compares benchmark measurements against
 * the committed baseline (bench/baselines/BENCH_table3.json) and the
 * paper's Table 3, and exits non-zero on drift.
 *
 * By default the tool re-measures the full grid itself; pass
 * --report to diff a previously captured perf_report document
 * instead. This binary does not use the shared bench_main harness:
 * its flags (--baseline, --report, --tolerance, ...) are gate
 * controls, not cell selectors, and a gate must never silently
 * accept a misspelled flag.
 *
 * Exit codes: 0 all checks pass; 1 drift or paper-target violation;
 * 2 usage or I/O error.
 */

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "study/bench_report.hh"
#include "study/parallel.hh"

using namespace triarch;
using namespace triarch::study;

namespace
{

void
usage(std::ostream &os, const char *prog)
{
    os << "usage: " << prog << " --baseline PATH [options]\n"
       << "\nCompare benchmark measurements against a committed\n"
       << "triarch.bench.v1 baseline and the paper's Table 3.\n"
       << "\noptions:\n"
       << "  --baseline PATH     committed baseline JSON (required)\n"
       << "  --report PATH       diff this perf_report output instead\n"
       << "                      of re-measuring the grid\n"
       << "  --seed N            workload seed when re-measuring\n"
       << "                      (default 11; must match baseline)\n"
       << "  --threads N         worker threads when re-measuring\n"
       << "                      (0 = hardware concurrency)\n"
       << "  --tolerance F       allowed relative drift per cell\n"
       << "                      (default 0.005 = 0.5%)\n"
       << "  --paper-factor F    sanity band around Table 3\n"
       << "                      (default 2.0; 0 disables the check)\n"
       << "  --host-gate R       fail when a fresh host median exceeds\n"
       << "                      baseline x R (host comparison is\n"
       << "                      advisory-only otherwise)\n"
       << "  --help              this text\n";
}

struct Options
{
    std::string baselinePath;
    std::string reportPath;
    std::uint64_t seed = 11;
    unsigned threads = 0;
    double tolerance = 0.005;
    double paperFactor = 2.0;
    double hostGate = 0.0;      //!< 0 = advisory host comparison
};

/** Parse argv; exits 0 on --help, 2 on a bad flag. */
Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto needValue = [&](int &i, const std::string &flag,
                         std::string &out) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            out = arg.substr(eq + 1);
            return true;
        }
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << flag
                      << " requires a value\n";
            std::exit(2);
        }
        out = argv[++i];
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string flag = arg.substr(0, arg.find('='));
        std::string value;
        if (flag == "--help" || flag == "-h") {
            usage(std::cout, argv[0]);
            std::exit(0);
        } else if (flag == "--baseline") {
            needValue(i, flag, opts.baselinePath);
        } else if (flag == "--report") {
            needValue(i, flag, opts.reportPath);
        } else if (flag == "--seed") {
            needValue(i, flag, value);
            opts.seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flag == "--threads") {
            needValue(i, flag, value);
            opts.threads = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 10));
        } else if (flag == "--tolerance") {
            needValue(i, flag, value);
            opts.tolerance = std::strtod(value.c_str(), nullptr);
        } else if (flag == "--paper-factor") {
            needValue(i, flag, value);
            opts.paperFactor = std::strtod(value.c_str(), nullptr);
        } else if (flag == "--host-gate") {
            needValue(i, flag, value);
            opts.hostGate = std::strtod(value.c_str(), nullptr);
            if (opts.hostGate <= 0.0) {
                std::cerr << argv[0]
                          << ": --host-gate wants a ratio > 0\n";
                std::exit(2);
            }
        } else {
            std::cerr << argv[0] << ": unknown flag '" << flag
                      << "'\n\n";
            usage(std::cerr, argv[0]);
            std::exit(2);
        }
    }
    if (opts.baselinePath.empty()) {
        std::cerr << argv[0] << ": --baseline is required\n\n";
        usage(std::cerr, argv[0]);
        std::exit(2);
    }
    return opts;
}

/** Report the failure lines of one check; returns ok(). */
bool
report(const std::string &what, const BenchDiffResult &diff)
{
    if (diff.ok()) {
        std::cout << what << ": OK (" << diff.cellsCompared
                  << " cells)\n";
        return true;
    }
    std::cout << what << ": FAIL\n";
    for (const std::string &line : diff.failures)
        std::cout << "  " << line << "\n";
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);

    std::string error;
    const auto baseline =
        loadBenchReportFile(opts.baselinePath, &error);
    if (!baseline) {
        std::cerr << argv[0] << ": " << error << "\n";
        return 2;
    }

    BenchReport fresh;
    if (!opts.reportPath.empty()) {
        const auto loaded =
            loadBenchReportFile(opts.reportPath, &error);
        if (!loaded) {
            std::cerr << argv[0] << ": " << error << "\n";
            return 2;
        }
        fresh = *loaded;
    } else {
        StudyConfig cfg;
        cfg.seed = opts.seed;
        ParallelRunner runner(cfg, opts.threads);
        fresh = buildBenchReport(cfg, runner.runAll());
        std::cout << "measured " << fresh.cells.size()
                  << " cells (seed " << cfg.seed << ")\n";
    }

    BenchDiffOptions diffOpts;
    diffOpts.tolerance = opts.tolerance;
    bool ok = report("baseline diff vs " + opts.baselinePath,
                     diffBenchReports(*baseline, fresh, diffOpts));
    if (opts.paperFactor > 0.0) {
        ok &= report("paper Table 3 sanity",
                     checkPaperTargets(fresh, opts.paperFactor));
    }

    // Host wall-clock comparison: advisory lines by default (host
    // time depends on the machine running the gate), a real check
    // with --host-gate.
    if (baseline->host || fresh.host || opts.hostGate > 0.0) {
        std::vector<std::string> advisory;
        const BenchDiffResult hostDiff = diffHostSections(
            *baseline, fresh, opts.hostGate, &advisory);
        for (const std::string &line : advisory)
            std::cout << "  (advisory) " << line << "\n";
        if (opts.hostGate > 0.0) {
            ok &= report("host-time gate (" +
                             std::to_string(opts.hostGate) + "x)",
                         hostDiff);
        }
    }
    return ok ? 0 : 1;
}
