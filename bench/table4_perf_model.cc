/**
 * @file
 * Regenerates Table 4: the Section 2.5 performance-model bounds
 * against measured cycles, showing which resource each kernel is
 * expected to be limited by and how close each implementation comes.
 */

#include <iostream>

#include "bench_main.hh"
#include "study/report.hh"

using namespace triarch::study;

namespace
{

int
run(triarch::bench::BenchContext &ctx)
{
    auto table = buildTable4(ctx.config(), ctx.allResults());
    if (ctx.options().csv) {
        table.renderCsv(std::cout);
        return 0;
    }
    table.render(std::cout);
    std::cout
        << "\nReading guide (Section 4): VIRAM's corner turn reaches "
           "about half its\nbandwidth bound (address generators + "
           "precharge/TLB); Imagine's corner\nturn is ~87% memory "
           "transfer; Raw's corner turn tracks its issue bound;\n"
           "Imagine's CSLC achieves ~25% of peak ALU throughput.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("Table 4: performance-model bounds vs measured", run)
