/**
 * @file
 * Ablation for Section 4.3's Imagine CSLC analysis: the parallelized
 * FFT spends ~30% of its time on inter-cluster communication, and
 * ALU utilization lands near 25% (30.6% excluding the divider). The
 * bench measures utilization and re-runs with an idealized
 * inter-cluster network — the "independent FFTs" alternative the
 * paper describes but did not complete.
 */

#include <iostream>

#include "bench_main.hh"
#include "imagine/kernels_imagine.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace triarch;
using namespace triarch::imagine;
using namespace triarch::kernels;

namespace
{

struct Outcome
{
    Cycles cycles;
    double utilization;
};

Outcome
runWith(const ImagineConfig &cfg, const CslcConfig &ccfg,
        const CslcInput &in, const CslcWeights &weights)
{
    ImagineMachine machine(cfg);
    CslcOutput out;
    const Cycles cycles = cslcImagine(machine, ccfg, in, weights, out);
    return {cycles, machine.aluUtilization()};
}

int
run(triarch::bench::BenchContext &ctx)
{
    const CslcConfig &ccfg = ctx.config().cslc;
    auto in = makeJammedInput(ccfg, ctx.config().jammerBins,
                              ctx.config().seed);
    auto weights = estimateWeights(ccfg, in);

    const ImagineConfig baseline;
    const Outcome base = runWith(baseline, ccfg, in, weights);

    ImagineConfig wideComm = baseline;
    wideComm.commPerCluster = 8;    // comm is never the bottleneck
    const Outcome noComm = runWith(wideComm, ccfg, in, weights);

    // The alternative Section 4.3 describes but did not complete:
    // independent per-cluster FFTs (sub-bands in pairs), no comm.
    ImagineMachine independent;
    CslcOutput outIndep;
    const Cycles indepCycles = cslcImagineIndependent(
        independent, ccfg, in, weights, outIndep);
    if (cancellationDepthDb(ccfg, in, outIndep) < 15.0)
        triarch_fatal("independent mapping failed to cancel");

    Table t("Imagine CSLC: inter-cluster communication ablation");
    t.header({"Configuration", "Cycles (10^3)", "ALU utilization"});
    t.row({"baseline (parallel FFT, comm-bound II)",
           Table::num(base.cycles / 1000),
           Table::num(100.0 * base.utilization, 1) + "%"});
    t.row({"ideal inter-cluster network",
           Table::num(noComm.cycles / 1000),
           Table::num(100.0 * noComm.utilization, 1) + "%"});
    t.row({"independent per-cluster FFTs (completed here)",
           Table::num(indepCycles / 1000),
           Table::num(100.0 * independent.aluUtilization(), 1) + "%"});
    t.render(std::cout);

    std::cout << "\nIndependent FFTs also amortize the software-"
                 "pipeline prologue over 8x\nlonger kernels and push "
                 "the kernel toward the memory engines (memory\n"
                 "fraction "
              << Table::num(100.0 * independent.memoryFraction(), 1)
              << "%).\n";

    std::cout << "\nComm overhead: "
              << Table::num(100.0
                                * (static_cast<double>(base.cycles)
                                   - static_cast<double>(noComm.cycles))
                                / static_cast<double>(base.cycles),
                            1)
              << "% of baseline cycles (paper: ~30%, Section 4.3).\n"
              << "Paper utilization: 25.5% of all ALUs, 30.6% "
                 "excluding the divider.\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: Imagine CSLC inter-cluster communication",
                   run)
