/**
 * @file
 * Differential config-fuzz sweep (DESIGN.md D8): enumerate boundary
 * and seeded random workload shapes, validate each against the
 * ConfigValidator's rules, and run every valid config on every
 * selected (machine, kernel) cell both serially and through the
 * ParallelRunner. All four architectures must validate against the
 * reference outputs and agree bit-for-bit with the serial runner;
 * any disagreement is minimized and printed as a reproducible
 * StudyConfig with its studyConfigHash. Exits nonzero if the sweep
 * found a failure.
 *
 * --seed steers the random half of the sweep, --threads the
 * parallel half of each comparison, and --machines/--kernels
 * restrict the cells compared.
 */

#include <iostream>

#include "bench_main.hh"
#include "study/fuzz.hh"

using namespace triarch;
using study::FuzzOptions;
using study::FuzzReport;

namespace
{

int
run(bench::BenchContext &ctx)
{
    FuzzOptions opts;
    opts.seed = ctx.options().seed;
    opts.threads = ctx.options().threads;
    opts.cells = ctx.selectedCells();

    std::cout << "fuzzing " << opts.cells.size()
              << " cells per config (seed " << opts.seed << ", "
              << opts.randomConfigs << " random configs + boundary "
              << "set)...\n\n";

    const FuzzReport report = study::runDifferentialFuzz(opts);

    std::cout << "rejected " << report.rejected.size() << " of "
              << report.configs.size()
              << " configs (each with a typed ConfigError):\n";
    for (const study::FuzzRejection &r : report.rejected)
        std::cout << "  " << describe(r.error) << "\n";

    const std::size_t valid =
        report.configs.size() - report.rejected.size();
    std::cout << "\nchecked " << valid << " valid configs, "
              << report.cellsChecked
              << " serial/parallel cell pairs: "
              << report.failures.size() << " disagreements\n";

    for (const study::FuzzFailure &f : report.failures) {
        std::cout << "\nFAILURE: " << f.detail
                  << "\n  reproducer: " << describeConfig(f.config)
                  << "\n";
    }
    return report.clean() ? 0 : 1;
}

} // namespace

TRIARCH_BENCH_MAIN("differential config fuzz across the simulators",
                   run)
