/**
 * @file
 * Ablation for Section 4.4's Imagine beam-steering analysis: loads
 * and stores take ~89% of the time, and the paper estimates that
 * keeping the calibration tables resident in the SRF (as a streaming
 * pipeline stage would) doubles performance. The bench runs the
 * paper's mapping, then an SRF-resident variant built on the same
 * machine primitives.
 */

#include <iostream>

#include "bench_main.hh"
#include "imagine/kernels_imagine.hh"
#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace triarch;
using namespace triarch::imagine;
using namespace triarch::kernels;

namespace
{

/** Beam steering with tables loaded into the SRF exactly once. */
Cycles
beamSteeringSrfResident(ImagineMachine &machine, const BeamConfig &cfg,
                        const BeamTables &tables,
                        std::vector<std::int32_t> &out)
{
    const Addr coarseBase =
        machine.allocMem(cfg.elements * 4ULL, "bs coarse");
    const Addr fineBase =
        machine.allocMem(cfg.elements * 4ULL, "bs fine");
    const Addr outBase =
        machine.allocMem(cfg.outputs() * 4ULL, "bs out");

    auto pokeI32 = [&machine](Addr base,
                              const std::vector<std::int32_t> &v) {
        std::vector<Word> w(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            w[i] = static_cast<Word>(v[i]);
        machine.pokeWords(base, w);
    };
    pokeI32(coarseBase, tables.calCoarse);
    pokeI32(fineBase, tables.calFine);

    machine.resetTiming();

    // Tables enter the SRF once and stay resident.
    StreamRef coarse = machine.allocStream(cfg.elements, "coarse");
    StreamRef fine = machine.allocStream(cfg.elements, "fine");
    machine.loadStream(coarse,
                       MemPattern::sequential(coarseBase,
                                              cfg.elements));
    machine.loadStream(fine,
                       MemPattern::sequential(fineBase, cfg.elements));

    KernelDesc steer;
    steer.name = "beam_steer_srf";
    steer.iterations = static_cast<unsigned>(
        triarch::ceilDiv(cfg.elements, machine.config().clusters));
    steer.adds = 6;
    steer.srfWords = 3;
    steer.pipelineDepth = 16;

    for (unsigned dw = 0; dw < cfg.dwells; ++dw) {
        for (unsigned dir = 0; dir < cfg.directions; ++dir) {
            StreamRef result =
                machine.allocStream(cfg.elements, "result");
            machine.runKernel(
                steer, {&coarse, &fine}, {&result},
                [&, dw, dir] {
                    auto c = machine.srfData(coarse);
                    auto f = machine.srfData(fine);
                    auto r = machine.srfData(result);
                    std::int32_t acc = tables.steerBase[dir];
                    for (unsigned e = 0; e < cfg.elements; ++e) {
                        acc += tables.steerDelta[dir];
                        std::int32_t t =
                            static_cast<std::int32_t>(c[e])
                            + static_cast<std::int32_t>(f[e]);
                        t += acc;
                        t += tables.dwellOffset[dw];
                        t += tables.bias;
                        r[e] = static_cast<Word>(t >> cfg.shift);
                    }
                });
            machine.storeStream(
                result,
                MemPattern::sequential(
                    outBase + (static_cast<Addr>(dw) * cfg.directions
                               + dir) * cfg.elements * 4,
                    cfg.elements));
            machine.freeStream(result);
        }
    }

    const Cycles cycles = machine.completionTime();
    auto words = machine.peekWords(outBase, cfg.outputs());
    out.resize(words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
        out[i] = static_cast<std::int32_t>(words[i]);
    return cycles;
}

int
run(triarch::bench::BenchContext &ctx)
{
    const BeamConfig &cfg = ctx.config().beam;
    auto tables = makeBeamTables(cfg, 13);
    auto ref = beamSteerReference(cfg, tables);

    ImagineMachine paperMapping;
    std::vector<std::int32_t> out;
    const Cycles paperCycles =
        beamSteeringImagine(paperMapping, cfg, tables, out);
    if (out != ref)
        triarch_fatal("paper mapping produced wrong output");
    const double memFraction = paperMapping.memoryFraction();

    ImagineMachine srfMapping;
    const Cycles srfCycles =
        beamSteeringSrfResident(srfMapping, cfg, tables, out);
    if (out != ref)
        triarch_fatal("SRF-resident mapping produced wrong output");

    Table t("Imagine beam steering: table placement ablation");
    t.header({"Mapping", "Cycles (10^3)", "Speedup"});
    t.row({"tables re-streamed from DRAM (paper)",
           Table::num(paperCycles / 1000), "1.00"});
    t.row({"tables resident in the SRF",
           Table::num(srfCycles / 1000),
           Table::num(static_cast<double>(paperCycles) / srfCycles,
                      2)});
    t.render(std::cout);

    std::cout << "\nMemory-engine busy fraction in the paper mapping: "
              << Table::num(100.0 * memFraction, 1)
              << "% (paper: loads/stores take ~89% of the time).\n"
              << "Paper estimate for SRF-resident tables: about 2x "
                 "(Section 4.4).\n";
    return 0;
}

} // namespace

TRIARCH_BENCH_MAIN("ablation: Imagine beam-steering table placement",
                   run)
