/**
 * @file
 * triarchd: the persistent experiment daemon. Wraps the
 * ExperimentService (MappingRegistry + shared ResultCache + worker
 * pool) behind a line-delimited triarch.job.v1 socket API, over an
 * AF_UNIX path (--socket) or a TCP loopback port (--port; 0 picks an
 * ephemeral port, printed on startup).
 *
 * SIGTERM/SIGINT drain gracefully: new jobs are refused with a typed
 * "draining" error, every accepted cell finishes and its response is
 * written, the result cache is persisted (--cache-file), the final
 * stats document is emitted (--stats), and the daemon exits 0.
 *
 * The daemon runs with host profiling on: the serve group's latency
 * histograms (queue wait, service time, end-to-end, cache-hit and
 * coalesce splits) populate from the first job, and any client can
 * read the live snapshot with triarch_client --statsz.
 */

#include <atomic>
#include <csignal>
#include <iostream>
#include <limits>
#include <optional>
#include <poll.h>
#include <unistd.h>

#include "serve/server.hh"
#include "serve/service.hh"
#include "sim/host_clock.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "study/cli_options.hh"

namespace
{

/** Written by the signal handler, polled by main. */
int signalPipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    (void)!::write(signalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace triarch;

    std::string socketPath;
    std::optional<std::uint16_t> tcpPort;
    unsigned workers = 0;
    std::size_t queueDepth = 256;
    std::string cacheFile;
    std::size_t cacheEntries = 4096;
    std::size_t cacheMib = 256;
    std::string statsPath;
    std::string tracePath;

    study::CliOptions cli(
        "persistent experiment daemon serving triarch.job.v1 batches",
        "triarchd");
    cli.value("--socket", "PATH", "listen on this AF_UNIX socket",
              [&](const std::string &v) {
                  socketPath = v;
                  return 0;
              });
    cli.number("--port", "N",
               "listen on this TCP loopback port (0 = ephemeral)",
               std::numeric_limits<std::uint16_t>::max(),
               [&](std::uint64_t n) {
                   tcpPort = static_cast<std::uint16_t>(n);
                   return 0;
               });
    cli.number("--threads", "N",
               "worker threads (default 0 = hardware concurrency)",
               std::numeric_limits<unsigned>::max(),
               [&](std::uint64_t n) {
                   workers = static_cast<unsigned>(n);
                   return 0;
               });
    cli.number("--queue-depth", "N",
               "max outstanding cells before jobs are refused "
               "(default 256)",
               std::numeric_limits<std::uint32_t>::max(),
               [&](std::uint64_t n) {
                   queueDepth = static_cast<std::size_t>(n);
                   return 0;
               });
    cli.value("--cache-file", "PATH",
              "load the result cache at startup, save it on drain",
              [&](const std::string &v) {
                  cacheFile = v;
                  return 0;
              });
    cli.number("--cache-entries", "N",
               "result cache entry bound (default 4096)",
               std::numeric_limits<std::uint32_t>::max(),
               [&](std::uint64_t n) {
                   cacheEntries = static_cast<std::size_t>(n);
                   return 0;
               });
    cli.number("--cache-mib", "N",
               "result cache byte bound in MiB (default 256)",
               std::numeric_limits<std::uint32_t>::max(),
               [&](std::uint64_t n) {
                   cacheMib = static_cast<std::size_t>(n);
                   return 0;
               });
    cli.value("--stats", "PATH",
              "write a triarch.stats.v1 counters document on exit",
              [&](const std::string &v) {
                  statsPath = v;
                  return 0;
              });
    cli.value("--trace", "PATH",
              "write a Chrome trace-event JSON timeline on exit",
              [&](const std::string &v) {
                  tracePath = v;
                  return 0;
              });
    cli.logLevelFlag();

    if (const auto rc = cli.parse(argc, argv))
        return *rc;
    const char *prog = cli.prog();

    if (socketPath.empty() && !tcpPort) {
        std::cerr << prog
                  << ": need --socket PATH or --port N to listen on\n";
        return 2;
    }
    study::ensureParentDir("--cache-file", cacheFile, prog);
    study::ensureParentDir("--stats", statsPath, prog);
    study::ensureParentDir("--trace", tracePath, prog);

    // A long-lived daemon is exactly where wall-clock latency data
    // pays for itself; the one-shot tools leave this off by default.
    host::setProfiling(true);

    std::unique_ptr<trace::TraceSession> session;
    if (!tracePath.empty()) {
        session = std::make_unique<trace::TraceSession>();
        session->start();
    }

    study::ResultCache cache(study::CacheCapacity{
        cacheEntries, cacheMib * 1024 * 1024});
    if (!cacheFile.empty()) {
        std::string error;
        const auto loaded = cache.loadFile(cacheFile, &error);
        if (!loaded) {
            std::cerr << prog << ": --cache-file: " << error << "\n";
            return 1;
        }
        if (*loaded > 0) {
            std::cout << "loaded " << *loaded
                      << " cached cells from " << cacheFile << "\n";
        }
    }
    metrics::MetricsRegistry::global().registerLive(
        &cache.statGroup());

    serve::ServiceOptions serviceOpts;
    serviceOpts.workers = workers;
    serviceOpts.maxOutstandingCells = queueDepth;

    int exitCode = 0;
    {
        serve::ExperimentService service(serviceOpts, nullptr, &cache);

        serve::ServerOptions serverOpts;
        serverOpts.unixPath = socketPath;
        serverOpts.port = tcpPort.value_or(0);
        serve::SocketServer server(service, serverOpts);

        std::string error;
        if (!server.start(&error)) {
            std::cerr << prog << ": " << error << "\n";
            return 1;
        }
        if (!socketPath.empty()) {
            std::cout << "triarchd listening on " << socketPath
                      << std::endl;
        } else {
            std::cout << "triarchd listening on 127.0.0.1:"
                      << server.port() << std::endl;
        }

        if (::pipe(signalPipe) != 0) {
            std::cerr << prog << ": cannot create signal pipe\n";
            return 1;
        }
        struct sigaction action{};
        action.sa_handler = onSignal;
        ::sigaction(SIGTERM, &action, nullptr);
        ::sigaction(SIGINT, &action, nullptr);

        // Sleep until SIGTERM/SIGINT arrives.
        for (;;) {
            pollfd fds[1] = {{signalPipe[0], POLLIN, 0}};
            const int rc = ::poll(fds, 1, -1);
            if (rc > 0 && (fds[0].revents & POLLIN))
                break;
        }

        std::cout << "triarchd draining..." << std::endl;
        // Refuse new jobs, answer everything already accepted, then
        // stop the transport and wait for the queue to empty.
        service.beginDrain();
        server.stop();
        service.drain();

        // Freeze the uptime gauge now so the exit-time capture of
        // the serve group (the service destructor) carries it, and
        // leave a final snapshot of the counters in the log.
        service.refreshUptime();
        std::cout << "final stats: " << service.jobsAccepted()
                  << " jobs accepted, " << service.jobsRefused()
                  << " refused; " << service.cellsExecuted()
                  << " cells executed, " << service.cellsFromCache()
                  << " from cache, " << service.cellsCoalesced()
                  << " coalesced\n";

        if (!cacheFile.empty()) {
            std::string saveError;
            if (!cache.saveFile(cacheFile, &saveError)) {
                std::cerr << prog << ": " << saveError << "\n";
                exitCode = 1;
            } else {
                std::cout << "cache (" << cache.size()
                          << " cells) saved to " << cacheFile << "\n";
            }
        }
    }
    metrics::MetricsRegistry::global().unregisterLive(
        &cache.statGroup());
    metrics::MetricsRegistry::global().capture(cache.statGroup(),
                                               "result_cache");

    if (session) {
        session->stop();
        session->writeJsonFile(tracePath);
        std::cout << "trace written to " << tracePath << "\n";
    }
    if (!statsPath.empty()) {
        metrics::MetricsRegistry::global().writeJsonFile(statsPath);
        std::cout << "stats written to " << statsPath << "\n";
    }
    std::cout << "triarchd exiting" << std::endl;
    return exitCode;
}
