/**
 * @file
 * A bank/row-granularity DRAM timing model shared by all four machine
 * models.
 *
 * The model captures what the paper's results hinge on: sequential
 * (open-row) accesses stream at the data-bus width, while strided or
 * random accesses pay precharge + activate + CAS per row switch and
 * serialize on banks. It is parameterized per machine:
 *
 *  - VIRAM: on-chip DRAM, 2 wings x 4 banks, wide 8-words/cycle bus;
 *  - Imagine: off-chip SDRAM behind 2 address generators, 2 words/cycle
 *    aggregate, with access reordering improving row locality;
 *  - Raw: 16 peripheral port DRAMs, 1 word/cycle each;
 *  - PowerPC G4: a single far DRAM behind a slow front-side bus.
 */

#ifndef TRIARCH_MEM_DRAM_HH
#define TRIARCH_MEM_DRAM_HH

#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace triarch::mem
{

/** Core DRAM timing parameters, in cycles of the owning machine. */
struct DramTiming
{
    Cycles tCas = 2;    //!< column access latency after row open
    Cycles tRcd = 3;    //!< row activate
    Cycles tRp = 3;     //!< precharge
    /** Data bus width in 32-bit words transferred per cycle. */
    unsigned busWordsPerCycle = 1;
};

/** Geometry and timing of one DRAM channel. */
struct DramConfig
{
    std::string name = "dram";
    unsigned banks = 4;
    Addr rowBytes = 2048;           //!< bytes per row (page) per bank
    DramTiming timing;
    /**
     * Consecutive address chunks of this size map to consecutive
     * banks, so a sequential stream rotates across banks and row
     * activations overlap with transfers.
     */
    Addr bankInterleaveBytes = 2048;
};

/** Result of a timed access: first and one-past-last busy cycle. */
struct AccessWindow
{
    Cycles start;
    Cycles finish;
};

/**
 * One DRAM channel with open-row (page-mode) bank state and a shared
 * data bus. Purely a timing model; data contents live elsewhere.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &dram_config);

    /**
     * Time a contiguous burst of @p nwords 32-bit words at @p addr.
     *
     * The burst is split at row boundaries; each row segment pays
     * CAS (plus precharge + activate when it misses the open row)
     * and then streams on the data bus. Row activation of the next
     * bank overlaps with the current transfer when the stream walks
     * the bank interleave, which is what makes sequential streams
     * fast.
     *
     * @param addr       starting byte address
     * @param nwords     number of 32-bit words
     * @param earliest   first cycle the request may start
     * @return busy window on the data bus
     */
    AccessWindow access(Addr addr, unsigned nwords, Cycles earliest);

    /**
     * Time @p count accesses of @p wordsEach words with byte stride
     * @p strideBytes between their start addresses. Convenience
     * wrapper used by strided vector loads and block writes.
     */
    AccessWindow accessStrided(Addr addr, Addr strideBytes,
                               unsigned count, unsigned wordsEach,
                               Cycles earliest);

    /**
     * Time a record pattern: @p records bursts of @p recordWords
     * words, record r starting at @p base + r * @p strideBytes, each
     * allowed to start no earlier than the same @p earliest cycle.
     *
     * State, counters, and the returned window (the last record's
     * busy window) are bit-identical to the equivalent loop of
     * access() calls — the Imagine memory-stream contract (D13) —
     * but runs of records that stay within one open row advance by a
     * fixed recurrence and are credited in closed form, so the cost
     * is O(rows touched), not O(records).
     */
    AccessWindow accessPattern(Addr base, Addr strideBytes,
                               unsigned records, unsigned recordWords,
                               Cycles earliest);

    /** First cycle at which the data bus is free. */
    Cycles busFreeAt() const { return busNextFree; }

    /** Forget open rows and bank timing (not the stats). */
    void resetState();

    /** Row-hit / row-miss / transfer-cycle counters. */
    stats::StatGroup &statGroup() { return group; }

    std::uint64_t rowHits() const { return _rowHits.value(); }
    std::uint64_t rowMisses() const { return _rowMisses.value(); }
    /** Cycles the data bus spent moving words. */
    std::uint64_t transferCycles() const { return _transferCycles.value(); }
    /** Cycles added by precharge/activate on row misses. */
    std::uint64_t overheadCycles() const { return _overheadCycles.value(); }

    const DramConfig &config() const { return cfg; }

  private:
    struct Bank
    {
        Addr openRow = ~Addr{0};
        Cycles nextFree = 0;
    };

    unsigned bankOf(Addr addr) const;
    Addr rowOf(Addr addr) const;

    DramConfig cfg;
    std::vector<Bank> bankState;
    Cycles busNextFree = 0;

    stats::StatGroup group;
    stats::Scalar _rowHits;
    stats::Scalar _rowMisses;
    stats::Scalar _transferCycles;
    stats::Scalar _overheadCycles;
    stats::Scalar _accesses;
};

} // namespace triarch::mem

#endif // TRIARCH_MEM_DRAM_HH
