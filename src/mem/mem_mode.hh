/**
 * @file
 * Memory-model mode selection shared by the PPC/AltiVec, VIRAM, and
 * Imagine machine models (DESIGN D13).
 *
 * Span mode batches regular access sequences — whole cache lines,
 * DRAM chunk runs, TLB page runs, per-burst stream transfers — and
 * credits hit/miss cycles in bulk. Reference mode keeps the original
 * word-at-a-time walks. Both produce bit-identical cycle counts,
 * statistics documents, and D9 cycle-account partitions (pinned by
 * the differential tests in test_mem_span.cc), mirroring the
 * RawStepper::Event / RawStepper::Reference contract from D12.
 */

#ifndef TRIARCH_MEM_MEM_MODE_HH
#define TRIARCH_MEM_MEM_MODE_HH

#include <atomic>
#include <cstdint>

namespace triarch::mem
{

/** Which memory-model walk a machine uses. */
enum class MemModel : std::uint8_t
{
    Default,    //!< follow the process-wide defaultMemModel()
    Span,       //!< span-batched classification with bulk credit
    Reference,  //!< word-at-a-time reference walk
};

namespace detail
{
inline std::atomic<MemModel> memModelDefault{MemModel::Span};
} // namespace detail

/** The model a default-constructed machine config resolves to. */
inline MemModel
defaultMemModel()
{
    return detail::memModelDefault.load(std::memory_order_relaxed);
}

/**
 * Override the process-wide default (differential tests and
 * micro_host --mem-model; mappings build machines with default
 * configs, so this is the hook that reaches them).
 */
inline void
setDefaultMemModel(MemModel m)
{
    detail::memModelDefault.store(m, std::memory_order_relaxed);
}

/** Resolve a config's mode against the process-wide default. */
inline MemModel
resolveMemModel(MemModel configured)
{
    return configured == MemModel::Default ? defaultMemModel()
                                           : configured;
}

} // namespace triarch::mem

#endif // TRIARCH_MEM_MEM_MODE_HH
