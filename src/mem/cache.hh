/**
 * @file
 * A set-associative write-back, write-allocate cache model with true
 * LRU replacement. Used for the PowerPC G4 L1/L2 hierarchy and for
 * Raw tiles running in cached (MIMD) mode.
 *
 * The model is timing-free: it classifies each access as hit or miss
 * and reports the dirty victim, and the owning machine model charges
 * whatever latency its memory system implies.
 */

#ifndef TRIARCH_MEM_CACHE_HH
#define TRIARCH_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace triarch::mem
{

/** Cache geometry. Sizes must be powers of two. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 32;
};

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    /** Line-aligned address of a dirty line evicted by this access. */
    std::optional<Addr> writebackAddr;
};

/** Set-associative LRU cache (tag store only). */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cache_config);

    /**
     * Access one address. On a miss the line is allocated (evicting
     * the LRU way, reporting it if dirty). @p write marks the line
     * dirty on both hits and misses (write-allocate).
     */
    CacheResult access(Addr addr, bool write);

    /** Probe without changing any state. */
    bool contains(Addr addr) const;

    /** Invalidate everything; dirty lines are dropped silently. */
    void flush();

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t writebacks() const { return _writebacks.value(); }
    double
    missRate() const
    {
        const auto total = hits() + misses();
        return total ? static_cast<double>(misses()) / total : 0.0;
    }

    stats::StatGroup &statGroup() { return group; }
    const CacheConfig &config() const { return cfg; }

  private:
    struct Line
    {
        Addr tag = ~Addr{0};
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig cfg;
    std::uint64_t numSets;
    /** Geometry is power-of-two (asserted in the constructor), so
     *  set/tag extraction is shift-and-mask — this sits on every
     *  simulated load/store, where 64-bit division is measurable. */
    unsigned lineShift = 0;
    unsigned setShift = 0;
    std::vector<Line> lines;    //!< numSets x assoc, row-major
    std::uint64_t useClock = 0;

    stats::StatGroup group;
    stats::Scalar _hits;
    stats::Scalar _misses;
    stats::Scalar _writebacks;
};

/**
 * A fully associative TLB with LRU replacement and a fixed refill
 * penalty, matching the role TLB misses play in the VIRAM corner-turn
 * overhead breakdown.
 */
class Tlb
{
  public:
    Tlb(std::string tlb_name, unsigned tlb_entries, Addr page_bytes,
        Cycles miss_penalty);

    /** Translate; returns the refill penalty (0 on a hit). */
    Cycles access(Addr addr);

    void flush();

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    stats::StatGroup &statGroup() { return group; }

  private:
    struct Entry
    {
        Addr page = ~Addr{0};
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned entries;
    Addr pageBytes;
    Cycles missPenalty;
    std::vector<Entry> table;
    std::uint64_t useClock = 0;

    stats::StatGroup group;
    stats::Scalar _hits;
    stats::Scalar _misses;
};

} // namespace triarch::mem

#endif // TRIARCH_MEM_CACHE_HH
