/**
 * @file
 * A set-associative write-back, write-allocate cache model with true
 * LRU replacement. Used for the PowerPC G4 L1/L2 hierarchy and for
 * Raw tiles running in cached (MIMD) mode.
 *
 * The model is timing-free: it classifies each access as hit or miss
 * and reports the dirty victim, and the owning machine model charges
 * whatever latency its memory system implies.
 *
 * Tag state is stored as parallel arrays (tags / lastUse / flags)
 * rather than an array of line structs: the way scan on every access
 * touches only the tag column, and the span fast path (D13) re-probes
 * each set's most recently touched line through accessFast(), which
 * skips the scan entirely. The per-set way memo can never point at a
 * replaced line: every eviction happens inside access(), which
 * rewrites the set's memo with the line it installs.
 */

#ifndef TRIARCH_MEM_CACHE_HH
#define TRIARCH_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace triarch::mem
{

/** Cache geometry. Sizes must be powers of two. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 32;
};

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    /** Line-aligned address of a dirty line evicted by this access. */
    std::optional<Addr> writebackAddr;
};

/** Set-associative LRU cache (tag store only). */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cache_config);

    /**
     * Access one address. On a miss the line is allocated (evicting
     * the LRU way, reporting it if dirty). @p write marks the line
     * dirty on both hits and misses (write-allocate).
     */
    CacheResult access(Addr addr, bool write);

    /**
     * Way-predicted hit fast path (D13): if @p addr falls on the
     * line its set most recently hit or installed, apply the exact
     * hit effects of access() — LRU stamp, dirty flag, hit counter —
     * and return true. Otherwise leave all state unchanged and
     * return false so the caller falls back to access().
     *
     * Exact by construction: the way memo is only written by
     * access() pointing at a line it just proved (or made) resident,
     * and any eviction in a set rewrites that set's memo with the
     * newly installed line, so a matching memo is a proof of
     * residency.
     */
    bool
    accessFast(Addr addr, bool write)
    {
        const Addr lineAddr = addr >> lineShift;
        const std::uint64_t set = lineAddr & (numSets - 1);
        const WayMemo &memo = wayMemo[set];
        if (lineAddr != memo.lineAddr)
            return false;
        ++useClock;
        lastUse[memo.slot] = useClock;
        if (write)
            flags[memo.slot] = 1;
        ++_hits;
        return true;
    }

    /** Probe without changing any state. */
    bool contains(Addr addr) const;

    /** Invalidate everything; dirty lines are dropped silently. */
    void flush();

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t writebacks() const { return _writebacks.value(); }
    double
    missRate() const
    {
        const auto total = hits() + misses();
        return total ? static_cast<double>(misses()) / total : 0.0;
    }

    stats::StatGroup &statGroup() { return group; }
    const CacheConfig &config() const { return cfg; }

  private:
    std::uint64_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig cfg;
    std::uint64_t numSets;
    /** Geometry is power-of-two (asserted in the constructor), so
     *  set/tag extraction is shift-and-mask — this sits on every
     *  simulated load/store, where 64-bit division is measurable. */
    unsigned lineShift = 0;
    unsigned setShift = 0;
    /** numSets x assoc, row-major; ~0 = invalid (the sentinel is out
     *  of reach of any simulated address). */
    std::vector<Addr> tags;
    /** LRU stamps, same layout; 0 = invalid way (stamps start at 1),
     *  which folds invalid-first victim choice into the LRU argmin. */
    std::vector<std::uint64_t> lastUse;
    std::vector<std::uint8_t> flags;    //!< 1 = dirty, same layout

    /** The set's most recently hit or installed line, for the
     *  accessFast() way prediction. */
    struct WayMemo
    {
        Addr lineAddr = ~Addr{0};   //!< addr >> lineShift
        std::uint32_t slot = 0;     //!< set * assoc + way
    };
    std::vector<WayMemo> wayMemo;       //!< one per set
    std::uint64_t useClock = 0;

    stats::StatGroup group;
    stats::Scalar _hits;
    stats::Scalar _misses;
    stats::Scalar _writebacks;
};

/**
 * A fully associative TLB with LRU replacement and a fixed refill
 * penalty, matching the role TLB misses play in the VIRAM corner-turn
 * overhead breakdown.
 */
class Tlb
{
  public:
    Tlb(std::string tlb_name, unsigned tlb_entries, Addr page_bytes,
        Cycles miss_penalty);

    /** Translate; returns the refill penalty (0 on a hit). */
    Cycles access(Addr addr);

    /**
     * Translate @p count back-to-back accesses that all fall on the
     * page of @p addr. State and statistics end exactly as @p count
     * calls to access(addr) would leave them (the intermediate
     * accesses of a run can only hit the entry the first one
     * resolved, so one scan suffices); returns the refill penalty of
     * the first access (0 on a hit — the rest always hit).
     */
    Cycles accessRun(Addr addr, std::uint64_t count);

    void flush();

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    stats::StatGroup &statGroup() { return group; }

  private:
    struct Entry
    {
        Addr page = ~Addr{0};
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** addr-to-page in shift form when the page size is a power of
     *  two (the common geometry); division otherwise. The page walk
     *  sits on every element of a strided access. */
    Addr
    pageOf(Addr addr) const
    {
        return pageShift ? addr >> pageShift : addr / pageBytes;
    }

    unsigned entries;
    Addr pageBytes;
    unsigned pageShift = 0;     //!< log2(pageBytes), 0 = not pow2
    Cycles missPenalty;
    std::vector<Entry> table;
    std::uint64_t useClock = 0;

    stats::StatGroup group;
    stats::Scalar _hits;
    stats::Scalar _misses;
};

} // namespace triarch::mem

#endif // TRIARCH_MEM_CACHE_HH
