#include "dram.hh"

#include <algorithm>

#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::mem
{

DramModel::DramModel(const DramConfig &dram_config)
    : cfg(dram_config), bankState(cfg.banks), group(cfg.name)
{
    triarch_assert(cfg.banks > 0, "DRAM needs at least one bank");
    triarch_assert(cfg.rowBytes >= 4, "row must hold at least one word");
    triarch_assert(cfg.timing.busWordsPerCycle > 0,
                   "bus width must be positive");
    group.addScalar("row_hits", &_rowHits, "accesses hitting open row");
    group.addScalar("row_misses", &_rowMisses,
                    "accesses paying precharge+activate");
    group.addScalar("transfer_cycles", &_transferCycles,
                    "data bus busy cycles");
    group.addScalar("overhead_cycles", &_overheadCycles,
                    "precharge/activate cycles on the critical path");
    group.addScalar("accesses", &_accesses, "row segments accessed");
}

unsigned
DramModel::bankOf(Addr addr) const
{
    return (addr / cfg.bankInterleaveBytes) % cfg.banks;
}

Addr
DramModel::rowOf(Addr addr) const
{
    // Rows are counted per bank: strip the bank-interleave rotation.
    Addr chunk = addr / cfg.bankInterleaveBytes;
    Addr chunkPerBank = chunk / cfg.banks;
    Addr within = addr % cfg.bankInterleaveBytes;
    return (chunkPerBank * cfg.bankInterleaveBytes + within)
           / cfg.rowBytes;
}

AccessWindow
DramModel::access(Addr addr, unsigned nwords, Cycles earliest)
{
    triarch_assert(nwords > 0, "zero-length DRAM access");

    AccessWindow window{0, 0};
    bool first = true;
    Addr cur = addr;
    unsigned remaining = nwords;

    while (remaining > 0) {
        const Addr rowEnd = roundUp(cur + 1, cfg.rowBytes);
        const unsigned wordsThisRow = static_cast<unsigned>(
            std::min<Addr>(remaining, (rowEnd - cur + 3) / 4));

        Bank &bank = bankState[bankOf(cur)];
        const Addr row = rowOf(cur);

        ++_accesses;
        Cycles rowCost = 0;
        if (bank.openRow != row) {
            rowCost = cfg.timing.tRp + cfg.timing.tRcd;
            ++_rowMisses;
            bank.openRow = row;
        } else {
            ++_rowHits;
        }

        // The bank must be free and the request issued; row open
        // overlaps with whatever the data bus is still sending for
        // other banks (that is the benefit of bank interleaving).
        const Cycles bankStart = std::max(earliest, bank.nextFree);
        const Cycles dataReady = bankStart + rowCost + cfg.timing.tCas;
        const Cycles busStart = std::max(dataReady, busNextFree);
        const Cycles transfer =
            ceilDiv(wordsThisRow, cfg.timing.busWordsPerCycle);
        const Cycles finish = busStart + transfer;

        _transferCycles += transfer;
        // Only the part of the row cost not hidden behind the bus
        // shows up on the critical path.
        if (dataReady > busNextFree && busNextFree > 0) {
            _overheadCycles += dataReady - std::max(busNextFree,
                                                    bankStart);
        } else if (busNextFree == 0) {
            _overheadCycles += rowCost + cfg.timing.tCas;
        }

        busNextFree = finish;
        bank.nextFree = busStart;   // bank can open next row during xfer

        if (first) {
            window.start = busStart;
            first = false;
        }
        window.finish = finish;

        cur += static_cast<Addr>(wordsThisRow) * 4;
        remaining -= wordsThisRow;
        earliest = bankStart;
    }

    return window;
}

AccessWindow
DramModel::accessStrided(Addr addr, Addr strideBytes, unsigned count,
                         unsigned wordsEach, Cycles earliest)
{
    triarch_assert(count > 0, "zero-count strided access");

    AccessWindow window{0, 0};
    for (unsigned i = 0; i < count; ++i) {
        AccessWindow w =
            access(addr + static_cast<Addr>(i) * strideBytes, wordsEach,
                   earliest);
        if (i == 0)
            window.start = w.start;
        window.finish = w.finish;
    }
    return window;
}

AccessWindow
DramModel::accessPattern(Addr base, Addr strideBytes,
                         unsigned records, unsigned recordWords,
                         Cycles earliest)
{
    triarch_assert(records > 0, "zero-record DRAM pattern");
    const Addr recordBytes = static_cast<Addr>(recordWords) * 4;
    const Cycles transfer =
        ceilDiv(recordWords, cfg.timing.busWordsPerCycle);
    const Cycles tCas = cfg.timing.tCas;
    // Steady-state recurrence for same-open-row records (derived
    // from access() with a constant earliest): once a record's bus
    // start is pinned by the previous record's state, every next
    // same-row record starts exactly max(tCas, transfer) later, and
    // pays (tCas - transfer) of exposed row overhead only when CAS
    // outruns the transfer.
    const Cycles step = std::max(tCas, transfer);
    const Cycles exposed = tCas > transfer ? tCas - transfer : 0;
    // access() splits bursts at raw-address rowBytes boundaries while
    // open-row identity lives in the per-bank reconstructed space;
    // the two agree (and a record inside the region below is exactly
    // one row segment) only when one granularity divides the other.
    const bool rowAligned =
        cfg.bankInterleaveBytes % cfg.rowBytes == 0
        || cfg.rowBytes % cfg.bankInterleaveBytes == 0;

    AccessWindow window{0, 0};
    unsigned r = 0;
    while (r < records) {
        const Addr addr = base + static_cast<Addr>(r) * strideBytes;
        window = access(addr, recordWords, earliest);
        ++r;
        if (!rowAligned || strideBytes == 0
            || recordBytes > strideBytes)
            continue;

        // How far this (bank, row) extends past addr in address
        // space: to the next bank-interleave boundary and to the
        // next row boundary of the bank's reconstructed row space
        // (within a chunk, the per-bank position tracks the address
        // with a constant offset).
        const Addr chunk = addr / cfg.bankInterleaveBytes;
        const Addr chunkEnd = (chunk + 1) * cfg.bankInterleaveBytes;
        const Addr perBankDelta =
            (chunk / cfg.banks) * cfg.bankInterleaveBytes
            - chunk * cfg.bankInterleaveBytes;
        const Addr perBankPos = addr + perBankDelta;
        const Addr rowEnd =
            roundUp(perBankPos + 1, cfg.rowBytes) - perBankDelta;
        const Addr regionEnd = std::min(chunkEnd, rowEnd);

        // Records r.. that start and end inside the region hit the
        // row access() just opened and form a closed-form run.
        if (addr + recordBytes > regionEnd)
            continue;
        const Addr lastStart = regionEnd - recordBytes;
        const Addr cur = addr + strideBytes;
        std::uint64_t run = 0;
        if (cur <= lastStart) {
            run = (lastStart - cur) / strideBytes + 1;
            run = std::min<std::uint64_t>(run, records - r);
        }
        if (run == 0)
            continue;

        Bank &bank = bankState[bankOf(addr)];
        _accesses += run;
        _rowHits += run;
        _transferCycles += run * transfer;
        _overheadCycles += run * exposed;
        const Cycles lastBusStart = window.start + run * step;
        window = {lastBusStart, lastBusStart + transfer};
        busNextFree = window.finish;
        bank.nextFree = lastBusStart;
        r += static_cast<unsigned>(run);
    }
    return window;
}

void
DramModel::resetState()
{
    for (auto &bank : bankState) {
        bank.openRow = ~Addr{0};
        bank.nextFree = 0;
    }
    busNextFree = 0;
}

} // namespace triarch::mem
