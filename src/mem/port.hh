/**
 * @file
 * Bandwidth-limited transfer ports. A port moves words at a rational
 * rate (words-per-cycle may be below 1, e.g. the G4 front-side bus
 * runs at a tenth of the core clock) and tracks when it next becomes
 * free, serializing overlapping requests.
 */

#ifndef TRIARCH_MEM_PORT_HH
#define TRIARCH_MEM_PORT_HH

#include <string>

#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace triarch::mem
{

/** A half-duplex port with a fixed words/cycle rate. */
class BandwidthPort
{
  public:
    /**
     * @param port_name      stat group name
     * @param words_num      words moved per @p cycles_den cycles
     * @param cycles_den     see above; rate = words_num / cycles_den
     */
    BandwidthPort(std::string port_name, unsigned words_num,
                  unsigned cycles_den = 1)
        : rateNum(words_num), rateDen(cycles_den),
          group(std::move(port_name))
    {
        triarch_assert(rateNum > 0 && rateDen > 0,
                       "port rate must be positive");
        group.addScalar("words", &_words, "words transferred");
        group.addScalar("busy_cycles", &_busy, "cycles port was busy");
    }

    /** Cycles needed to move @p nwords at this port's rate. */
    Cycles
    transferTime(std::uint64_t nwords) const
    {
        return ceilDiv(nwords * rateDen, rateNum);
    }

    /**
     * Occupy the port for @p nwords starting no earlier than
     * @p earliest; returns the cycle the last word arrives.
     */
    Cycles
    transfer(std::uint64_t nwords, Cycles earliest)
    {
        const Cycles start = earliest > nextFree ? earliest : nextFree;
        const Cycles dur = transferTime(nwords);
        nextFree = start + dur;
        _words += nwords;
        _busy += dur;
        return nextFree;
    }

    Cycles freeAt() const { return nextFree; }
    void resetState() { nextFree = 0; }

    std::uint64_t wordsMoved() const { return _words.value(); }
    std::uint64_t busyCycles() const { return _busy.value(); }
    stats::StatGroup &statGroup() { return group; }

  private:
    unsigned rateNum;
    unsigned rateDen;
    Cycles nextFree = 0;

    stats::StatGroup group;
    stats::Scalar _words;
    stats::Scalar _busy;
};

} // namespace triarch::mem

#endif // TRIARCH_MEM_PORT_HH
