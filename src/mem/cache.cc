#include "cache.hh"

#include <algorithm>

#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::mem
{

SetAssocCache::SetAssocCache(const CacheConfig &cache_config)
    : cfg(cache_config), group(cfg.name)
{
    triarch_assert(isPowerOf2(cfg.lineBytes), "line size must be 2^n");
    triarch_assert(cfg.assoc > 0, "associativity must be positive");
    triarch_assert(cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) == 0,
                   "size must divide into sets");
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    triarch_assert(isPowerOf2(numSets), "set count must be 2^n");
    lineShift = floorLog2(cfg.lineBytes);
    setShift = floorLog2(numSets);
    tags.assign(numSets * cfg.assoc, ~Addr{0});
    lastUse.assign(numSets * cfg.assoc, 0);
    flags.assign(numSets * cfg.assoc, 0);
    wayMemo.assign(numSets, {});

    group.addScalar("hits", &_hits, "cache hits");
    group.addScalar("misses", &_misses, "cache misses");
    group.addScalar("writebacks", &_writebacks, "dirty evictions");
}

std::uint64_t
SetAssocCache::setOf(Addr addr) const
{
    return (addr >> lineShift) & (numSets - 1);
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> (lineShift + setShift);
}

CacheResult
SetAssocCache::access(Addr addr, bool write)
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    const std::uint64_t base = set * cfg.assoc;
    ++useClock;

    // Invalid ways hold the ~0 tag sentinel (no simulated address
    // reaches it), so the hit scan is a pure tag compare.
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (tags[base + w] == tag) {
            lastUse[base + w] = useClock;
            if (write)
                flags[base + w] = 1;
            ++_hits;
            wayMemo[set] = {addr >> lineShift,
                            static_cast<std::uint32_t>(base + w)};
            return {true, std::nullopt};
        }
    }

    ++_misses;

    // True LRU with invalid ways first: invalid ways keep a zero
    // stamp and valid ways are stamped >= 1, so the earliest-minimum
    // scan lands on the first invalid way when one exists and on the
    // least recently used line otherwise.
    unsigned victim = 0;
    std::uint64_t oldest = lastUse[base];
    for (unsigned w = 1; w < cfg.assoc; ++w) {
        if (lastUse[base + w] < oldest) {
            oldest = lastUse[base + w];
            victim = w;
        }
    }

    CacheResult result{false, std::nullopt};
    if (flags[base + victim]) {
        // Only a resident line can be dirty, so no validity check.
        ++_writebacks;
        const Addr victimAddr =
            (tags[base + victim] * numSets + set) * cfg.lineBytes;
        result.writebackAddr = victimAddr;
    }

    tags[base + victim] = tag;
    lastUse[base + victim] = useClock;
    flags[base + victim] = write ? 1 : 0;
    wayMemo[set] = {addr >> lineShift,
                    static_cast<std::uint32_t>(base + victim)};
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    const std::uint64_t base = set * cfg.assoc;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (tags[base + w] == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    std::fill(tags.begin(), tags.end(), ~Addr{0});
    std::fill(lastUse.begin(), lastUse.end(), 0);
    std::fill(flags.begin(), flags.end(), std::uint8_t{0});
    // A matching way memo is a proof of residency, and nothing is
    // resident any more.
    std::fill(wayMemo.begin(), wayMemo.end(), WayMemo{});
}

Tlb::Tlb(std::string tlb_name, unsigned tlb_entries, Addr page_bytes,
         Cycles miss_penalty)
    : entries(tlb_entries), pageBytes(page_bytes),
      missPenalty(miss_penalty), table(tlb_entries),
      group(std::move(tlb_name))
{
    triarch_assert(entries > 0, "TLB needs entries");
    triarch_assert(pageBytes >= 4, "page too small");
    if (isPowerOf2(pageBytes))
        pageShift = floorLog2(pageBytes);
    group.addScalar("hits", &_hits, "TLB hits");
    group.addScalar("misses", &_misses, "TLB misses");
}

Cycles
Tlb::access(Addr addr)
{
    const Addr page = pageOf(addr);
    ++useClock;

    for (auto &e : table) {
        if (e.valid && e.page == page) {
            e.lastUse = useClock;
            ++_hits;
            return 0;
        }
    }

    ++_misses;
    Entry *victim = &table[0];
    for (auto &e : table) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = {page, useClock, true};
    return missPenalty;
}

Cycles
Tlb::accessRun(Addr addr, std::uint64_t count)
{
    if (count == 0)
        return 0;
    const Addr page = pageOf(addr);
    // After the first access resolves the page, the remaining
    // count-1 accesses hit the same entry and only advance its LRU
    // stamp, so the final stamp is the clock after all of them.
    useClock += count;

    for (auto &e : table) {
        if (e.valid && e.page == page) {
            e.lastUse = useClock;
            _hits += count;
            return 0;
        }
    }

    // The victim choice matches what the first (missing) access saw:
    // no other entry's stamp changes during the run.
    ++_misses;
    if (count > 1)
        _hits += count - 1;
    Entry *victim = &table[0];
    for (auto &e : table) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = {page, useClock, true};
    return missPenalty;
}

void
Tlb::flush()
{
    for (auto &e : table)
        e = Entry{};
}

} // namespace triarch::mem
