#include "cache.hh"

#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::mem
{

SetAssocCache::SetAssocCache(const CacheConfig &cache_config)
    : cfg(cache_config), group(cfg.name)
{
    triarch_assert(isPowerOf2(cfg.lineBytes), "line size must be 2^n");
    triarch_assert(cfg.assoc > 0, "associativity must be positive");
    triarch_assert(cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) == 0,
                   "size must divide into sets");
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    triarch_assert(isPowerOf2(numSets), "set count must be 2^n");
    lineShift = floorLog2(cfg.lineBytes);
    setShift = floorLog2(numSets);
    lines.resize(numSets * cfg.assoc);

    group.addScalar("hits", &_hits, "cache hits");
    group.addScalar("misses", &_misses, "cache misses");
    group.addScalar("writebacks", &_writebacks, "dirty evictions");
}

std::uint64_t
SetAssocCache::setOf(Addr addr) const
{
    return (addr >> lineShift) & (numSets - 1);
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> (lineShift + setShift);
}

CacheResult
SetAssocCache::access(Addr addr, bool write)
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *ways = &lines[set * cfg.assoc];
    ++useClock;

    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ways[w].lastUse = useClock;
            ways[w].dirty = ways[w].dirty || write;
            ++_hits;
            return {true, std::nullopt};
        }
    }

    ++_misses;

    // Pick invalid way first, else true LRU.
    unsigned victim = 0;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (!ways[w].valid) {
            victim = w;
            break;
        }
        if (ways[w].lastUse < ways[victim].lastUse)
            victim = w;
    }

    CacheResult result{false, std::nullopt};
    if (ways[victim].valid && ways[victim].dirty) {
        ++_writebacks;
        const Addr victimAddr =
            (ways[victim].tag * numSets + set) * cfg.lineBytes;
        result.writebackAddr = victimAddr;
    }

    ways[victim] = {tag, true, write, useClock};
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    const Line *ways = &lines[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &line : lines)
        line = Line{};
}

Tlb::Tlb(std::string tlb_name, unsigned tlb_entries, Addr page_bytes,
         Cycles miss_penalty)
    : entries(tlb_entries), pageBytes(page_bytes),
      missPenalty(miss_penalty), table(tlb_entries),
      group(std::move(tlb_name))
{
    triarch_assert(entries > 0, "TLB needs entries");
    triarch_assert(pageBytes >= 4, "page too small");
    group.addScalar("hits", &_hits, "TLB hits");
    group.addScalar("misses", &_misses, "TLB misses");
}

Cycles
Tlb::access(Addr addr)
{
    const Addr page = addr / pageBytes;
    ++useClock;

    for (auto &e : table) {
        if (e.valid && e.page == page) {
            e.lastUse = useClock;
            ++_hits;
            return 0;
        }
    }

    ++_misses;
    Entry *victim = &table[0];
    for (auto &e : table) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = {page, useClock, true};
    return missPenalty;
}

void
Tlb::flush()
{
    for (auto &e : table)
        e = Entry{};
}

} // namespace triarch::mem
