/**
 * @file
 * The one JSON serializer (and matching minimal reader) behind every
 * versioned document this repo emits: "triarch.results.v1"
 * (result_sink.cc), "triarch.stats.v1" (metrics.cc),
 * "triarch.bench.v1" (bench_report.cc), "triarch.cache.v1"
 * (result_cache.cc), and the "triarch.job.v1"/"triarch.result.v1"
 * daemon protocol (src/serve). Before this file each emitter carried
 * its own copy of string escaping and double formatting; now the
 * escaping rules and the deterministic number format exist exactly
 * once.
 *
 * Writer: a streaming serializer with explicit begin/end calls,
 * automatic comma and ": " separator management, and a per-container
 * style — Pretty (newline + two-space indent per element) or Compact
 * (everything on one line; nested containers inherit Compact, which
 * is what the line-delimited socket protocol uses). Both styles use
 * '"key": value' separators, so substring-based consumers see the
 * same shape either way. Output is byte-deterministic: no locale, no
 * pointer values, doubles via formatDouble().
 *
 * Reader: the whitespace-insensitive recursive-descent parser that
 * used to live inside bench_report.cc — objects, arrays, strings,
 * numbers, booleans, null; field order is preserved so documents
 * that care about order (e.g. RunResult notes) round-trip
 * bit-identically. Deliberately no external JSON dependency.
 */

#ifndef TRIARCH_SIM_JSON_HH
#define TRIARCH_SIM_JSON_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace triarch::json
{

/** JSON string escape (control characters, quotes, backslash). */
std::string escape(const std::string &s);

/**
 * Render a double with enough digits to round-trip bit-identically
 * through parse() (17 significant decimal digits, "C" locale).
 */
std::string formatDouble(double v);

class Writer
{
  public:
    enum class Style
    {
        Pretty,     //!< one element per line, two-space indent
        Compact,    //!< single line, ", " separators
    };

    explicit Writer(std::ostream &out_stream) : os(out_stream) {}

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    /** Open an object; inside a Compact container the style is
     *  forced to Compact regardless of @p style. */
    Writer &beginObject(Style style = Style::Pretty);
    Writer &endObject();

    Writer &beginArray(Style style = Style::Pretty);
    Writer &endArray();

    /** Emit the key of the next object member. */
    Writer &key(const std::string &name);

    Writer &value(const std::string &v);
    Writer &value(const char *v);
    Writer &value(bool v);
    Writer &value(double v);

    /** Any integer type except bool (kept exact, no double detour). */
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    Writer &
    value(T v)
    {
        if constexpr (std::is_signed_v<T>)
            return valueInt(static_cast<std::int64_t>(v));
        else
            return valueUint(static_cast<std::uint64_t>(v));
    }

    /** Splice a pre-rendered JSON value verbatim. */
    Writer &rawValue(const std::string &rendered);

    /** key(k) + value(v) in one call. */
    template <typename T>
    Writer &
    member(const std::string &name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /**
     * Panics unless every container has been closed; call once after
     * the root value to catch unbalanced begin/end pairs in emitters.
     */
    void finish();

  private:
    struct Frame
    {
        char closer;        //!< '}' or ']'
        Style style;
        bool empty = true;  //!< no element written yet
        bool keyPending = false;
    };

    Writer &valueInt(std::int64_t v);
    Writer &valueUint(std::uint64_t v);

    /** Separator + layout before an element (value or key). */
    void beforeElement();
    void indent();

    std::ostream &os;
    std::vector<Frame> stack;
    bool rootWritten = false;
};

// ----------------------------------------------------------------
// Reader.
// ----------------------------------------------------------------

/** One parsed JSON value; object field order is preserved. */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text;   //!< string value, or the raw number text
    std::vector<Value> items;
    std::vector<std::pair<std::string, Value>> fields;

    /** First field with this name, or nullptr. */
    const Value *field(const std::string &name) const;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Number as u64 (false on non-numbers, sign, overflow). */
    bool asU64(std::uint64_t &out) const;

    /** Number as double (false on non-numbers / malformed text). */
    bool asDouble(double &out) const;
};

/**
 * Parse one complete JSON document. On failure returns nullopt and
 * stores "JSON error at offset N: why" into *error (if non-null and
 * still empty).
 */
std::optional<Value> parse(const std::string &text, std::string *error);

/**
 * Re-serialize a parsed Value compactly. Numbers are spliced back as
 * their original raw text and field order is preserved, so a
 * parse()/render() round trip of a compact document is bit-exact —
 * which is how the daemon embeds a client-visible stats snapshot
 * without reformatting it.
 */
std::string render(const Value &v);

} // namespace triarch::json

#endif // TRIARCH_SIM_JSON_HH
