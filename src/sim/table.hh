/**
 * @file
 * Plain-text table and bar-chart rendering used by the benchmark
 * harness to print the paper's tables and figures.
 */

#ifndef TRIARCH_SIM_TABLE_HH
#define TRIARCH_SIM_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace triarch
{

/**
 * A simple column-aligned text table. Rows are added as vectors of
 * pre-formatted cells; the renderer right-aligns numeric-looking cells
 * and left-aligns everything else.
 */
class Table
{
  public:
    explicit Table(std::string table_title = "")
        : title(std::move(table_title))
    {
    }

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one body row. */
    void row(std::vector<std::string> cells);

    /** Render with box-drawing rules. */
    void render(std::ostream &os) const;

    /** Render as comma-separated values (for plotting scripts). */
    void renderCsv(std::ostream &os) const;

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    /** Format helper: integer with thousands separators. */
    static std::string num(std::uint64_t v);

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Horizontal ASCII bar chart with optional log10 scale; stands in for
 * the paper's speedup figures (Figures 8 and 9 use log axes).
 */
class BarChart
{
  public:
    BarChart(std::string chart_title, bool log_scale)
        : title(std::move(chart_title)), logScale(log_scale)
    {
    }

    /** Add one bar. @p value must be positive when log scale is on. */
    void bar(const std::string &label, double value);

    /** Start a labeled group of bars (e.g. one per kernel). */
    void group(const std::string &label);

    void render(std::ostream &os) const;

  private:
    struct Entry
    {
        std::string label;
        double value;   //!< NaN marks a group separator.
    };

    std::string title;
    bool logScale;
    std::vector<Entry> entries;
};

} // namespace triarch

#endif // TRIARCH_SIM_TABLE_HH
