/**
 * @file
 * Cycle accounting: a per-cell attribution of every simulated cycle
 * to one of five architectural categories, with the invariant that
 * the categories sum *exactly* to the cell's total cycles.
 *
 * The paper's whole argument (Sections 4.1-4.6) is where the cycles
 * go — compute vs cache-miss stalls vs DMA transfers vs network and
 * synchronization idle — so every machine model charges its time
 * into a CycleAccount (or records busy intervals on a CycleTimeline)
 * and finalizes it against the authoritative cycle total at run end.
 * Over-attribution is a modelling bug and panics; under-attribution
 * is credited to a machine-chosen residual category (e.g. issue-
 * limited compute on the PPC, sync idle on the interval machines).
 *
 * Two accounting styles cover the four machine models:
 *
 *  - direct charging (CycleAccount::charge) for models that advance
 *    a scalar clock through known-cost events (PPC memory stalls) or
 *    tally per-tile per-cycle states (Raw);
 *  - interval recording (CycleTimeline::add) for scoreboard models
 *    whose units overlap in time (VIRAM, Imagine): every wall cycle
 *    is resolved to the highest-priority category covering it, and
 *    uncovered cycles fall into a gap category.
 */

#ifndef TRIARCH_SIM_CYCLE_ACCOUNT_HH
#define TRIARCH_SIM_CYCLE_ACCOUNT_HH

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace triarch::stats
{

/**
 * Where a cycle went. Declaration order is also the resolution
 * priority for overlapped timeline intervals: a cycle that is both
 * kernel-compute and memory-transfer counts as compute (the paper's
 * "overlapped" memory time, Section 4.1).
 */
enum class CycleCategory : unsigned
{
    Compute,        //!< issue/execute, incl. dependency latency
    CacheStall,     //!< cycles stalled on cache misses
    DramDma,        //!< DRAM access / DMA or stream transfer time
    NetworkSync,    //!< network waits, load-imbalance & sync idle
    SetupReadback,  //!< host issue, setup and readback overhead
};

inline constexpr unsigned kNumCycleCategories = 5;

/** All categories in declaration (= priority) order. */
const std::array<CycleCategory, kNumCycleCategories> &
allCycleCategories();

/** Short machine-readable token ("compute", "cache_stall", ...). */
const std::string &cycleCategoryToken(CycleCategory c);

/** Human description ("issue/compute", "cache-miss stall", ...). */
const std::string &cycleCategoryDesc(CycleCategory c);

/**
 * A finalized integer partition of one cell's cycles. Invariant
 * (checked at construction in CycleAccount/CycleTimeline): the five
 * categories sum exactly to total.
 */
struct CycleBreakdown
{
    std::array<std::uint64_t, kNumCycleCategories> cycles{};
    std::uint64_t total = 0;

    std::uint64_t
    operator[](CycleCategory c) const
    {
        return cycles[static_cast<unsigned>(c)];
    }

    /** Sum of the five categories (== total by construction). */
    std::uint64_t categorySum() const;

    /** category / total, 0 when total is 0. */
    double fraction(CycleCategory c) const;

    friend bool operator==(const CycleBreakdown &,
                           const CycleBreakdown &) = default;
};

/**
 * Accumulates fractional cycle charges per category and converts
 * them into an exact integer partition of the run's total.
 *
 * Charges may be fractional (Raw divides tile-cycle tallies by the
 * tile count; the PPC clock itself is fractional), so finalize()
 * integerizes by largest remainder: floor every category, then hand
 * the remaining cycles to the categories with the largest fractional
 * parts. The result always sums exactly to the requested total.
 */
class CycleAccount
{
  public:
    /** Accumulate @p cycles (>= 0, panics otherwise) into @p c. */
    void charge(CycleCategory c, double cycles);

    double charged(CycleCategory c) const;

    /** Sum of all charges so far. */
    double chargedTotal() const;

    void reset();

    /**
     * Close the account against the authoritative @p total.
     * Undercharge (total - chargedTotal()) is credited to
     * @p residual; overcharge beyond a small floating-point slack
     * panics — it means a model attributed more time than passed.
     */
    CycleBreakdown finalize(std::uint64_t total,
                            CycleCategory residual) const;

    /**
     * Close the account against a @p total the charges were *not*
     * measured at, preserving the category proportions. This is the
     * Raw CSLC path: Table 3 reports the paper's perfect-load-
     * balance extrapolation of the measured run (Section 4.3), so
     * the measured attribution is rescaled to the reported total.
     */
    CycleBreakdown finalizeScaled(std::uint64_t total) const;

  private:
    std::array<double, kNumCycleCategories> acc{};
};

/**
 * Records [start, end) busy intervals per category and resolves them
 * into an exact partition of [0, total): each cycle belongs to the
 * highest-priority (lowest-valued) category covering it; cycles no
 * interval covers go to the @p gap category.
 */
class CycleTimeline
{
  public:
    /** Record that @p c was active over [start, end). Empty or
     *  inverted intervals are ignored. */
    void
    add(CycleCategory c, Cycles start, Cycles end)
    {
        if (end <= start)
            return;
        ++recorded;
        // Coalesce with the category's most recent interval when the
        // two overlap or abut: the stored union covers exactly the
        // same cycles, so resolve() — which only depends on each
        // category's coverage set — is unchanged, while scoreboard
        // models that charge long runs of adjacent busy intervals
        // (VIRAM vector memory, Imagine stream bursts) collapse to a
        // handful of stored intervals.
        const auto cat = static_cast<unsigned>(c);
        const std::size_t li = lastIdx[cat];
        if (li != SIZE_MAX) {
            Interval &iv = intervals[li];
            if (start <= iv.end && end >= iv.start) {
                iv.start = std::min(iv.start, start);
                iv.end = std::max(iv.end, end);
                return;
            }
        }
        intervals.push_back({cat, start, end});
        lastIdx[cat] = intervals.size() - 1;
    }

    void clear();

    /** Number of (non-empty) recorded intervals, pre-coalescing. */
    std::size_t size() const { return recorded; }

    /** Resolve to an exact integer partition of [0, total). */
    CycleBreakdown resolve(std::uint64_t total,
                           CycleCategory gap) const;

  private:
    struct Interval
    {
        unsigned cat;
        Cycles start;
        Cycles end;
    };

    std::vector<Interval> intervals;
    std::array<std::size_t, kNumCycleCategories> lastIdx{
        SIZE_MAX, SIZE_MAX, SIZE_MAX, SIZE_MAX, SIZE_MAX};
    std::size_t recorded = 0;
};

/**
 * The account's StatGroup face: one "account_<category>" scalar per
 * category plus "account_total", registered once at machine
 * construction and filled in when the machine finalizes its
 * breakdown. This is what `stats_dump`, the `--stats` document, and
 * the captured per-cell snapshots all see.
 */
class BreakdownStats
{
  public:
    /** Register the six scalars in @p group. */
    void registerIn(StatGroup &group);

    /** Copy a finalized breakdown into the scalars. */
    void record(const CycleBreakdown &b);

  private:
    std::array<Scalar, kNumCycleCategories> cats;
    Scalar total;
};

} // namespace triarch::stats

#endif // TRIARCH_SIM_CYCLE_ACCOUNT_HH
