#include "table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "logging.hh"

namespace triarch
{

namespace
{

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.'
              || c == '-' || c == '+' || c == ',' || c == 'e'
              || c == 'x')) {
            return false;
        }
    }
    return true;
}

} // namespace

void
Table::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

void
Table::render(std::ostream &os) const
{
    std::size_t ncols = head.size();
    for (const auto &r : rows)
        ncols = std::max(ncols, r.size());
    if (ncols == 0)
        return;

    std::vector<std::size_t> width(ncols, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    measure(head);
    for (const auto &r : rows)
        measure(r);

    auto rule = [&]() {
        os << "+";
        for (std::size_t i = 0; i < ncols; ++i)
            os << std::string(width[i] + 2, '-') << "+";
        os << "\n";
    };

    auto line = [&](const std::vector<std::string> &r) {
        os << "|";
        for (std::size_t i = 0; i < ncols; ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            os << " ";
            if (looksNumeric(cell)) {
                os << std::string(width[i] - cell.size(), ' ') << cell;
            } else {
                os << cell << std::string(width[i] - cell.size(), ' ');
            }
            os << " |";
        }
        os << "\n";
    };

    if (!title.empty())
        os << title << "\n";
    rule();
    if (!head.empty()) {
        line(head);
        rule();
    }
    for (const auto &r : rows)
        line(r);
    rule();
}

void
Table::renderCsv(std::ostream &os) const
{
    auto line = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i)
                os << ",";
            // Quote cells that contain separators (e.g. formatted
            // numbers with thousands separators).
            if (r[i].find(',') != std::string::npos)
                os << '"' << r[i] << '"';
            else
                os << r[i];
        }
        os << "\n";
    };
    if (!head.empty())
        line(head);
    for (const auto &r : rows)
        line(r);
}

std::string
Table::num(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

std::string
Table::num(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int seen = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (seen && seen % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++seen;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

void
BarChart::bar(const std::string &label, double value)
{
    if (logScale)
        triarch_assert(value > 0.0, "log-scale bar needs positive value");
    entries.push_back({label, value});
}

void
BarChart::group(const std::string &label)
{
    entries.push_back({label, std::numeric_limits<double>::quiet_NaN()});
}

void
BarChart::render(std::ostream &os) const
{
    constexpr int chartWidth = 50;

    double maxVal = 0.0;
    std::size_t labelWidth = 0;
    for (const auto &e : entries) {
        if (std::isnan(e.value))
            continue;
        maxVal = std::max(maxVal, e.value);
        labelWidth = std::max(labelWidth, e.label.size());
    }
    if (maxVal <= 0.0)
        return;

    const double maxScaled = logScale ? std::log10(1.0 + maxVal) : maxVal;

    if (!title.empty())
        os << title << (logScale ? "  [log scale]" : "") << "\n";
    for (const auto &e : entries) {
        if (std::isnan(e.value)) {
            os << "-- " << e.label << " --\n";
            continue;
        }
        const double scaled =
            logScale ? std::log10(1.0 + e.value) : e.value;
        int len = static_cast<int>(scaled / maxScaled * chartWidth + 0.5);
        len = std::clamp(len, e.value > 0 ? 1 : 0, chartWidth);
        os << "  " << e.label
           << std::string(labelWidth - e.label.size(), ' ') << " |"
           << std::string(len, '#') << " " << Table::num(e.value, 2)
           << "\n";
    }
}

} // namespace triarch
