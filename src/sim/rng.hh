/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every workload generator in triarch derives its data from this RNG so
 * results are bit-reproducible across runs and platforms. The generator
 * is xoshiro256** seeded through splitmix64, following the reference
 * implementations by Blackman and Vigna.
 */

#ifndef TRIARCH_SIM_RNG_HH
#define TRIARCH_SIM_RNG_HH

#include <cstdint>

namespace triarch
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed the state via splitmix64 so any seed gives a good state. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40)
               * (1.0f / 16777216.0f);
    }

    /** Uniform float in [-1, 1). */
    float
    nextSignedFloat()
    {
        return 2.0f * nextFloat() - 1.0f;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state[4];
};

} // namespace triarch

#endif // TRIARCH_SIM_RNG_HH
