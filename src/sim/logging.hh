/**
 * @file
 * Status and error reporting in the gem5 spirit: panic() for simulator
 * bugs, fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef TRIARCH_SIM_LOGGING_HH
#define TRIARCH_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace triarch
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Set the global verbosity; messages below the level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Abort on a condition that indicates a bug in the simulator itself
 * (never the user's fault). Mirrors gem5's panic().
 */
#define triarch_panic(...) \
    ::triarch::detail::panicImpl(__FILE__, __LINE__, \
                                 ::triarch::detail::concat(__VA_ARGS__))

/**
 * Exit on a condition caused by user input (bad configuration,
 * impossible parameters). Mirrors gem5's fatal().
 */
#define triarch_fatal(...) \
    ::triarch::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::triarch::detail::concat(__VA_ARGS__))

/** Panic unless @p cond holds; use for internal invariants. */
#define triarch_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::triarch::detail::panicImpl(__FILE__, __LINE__, \
                ::triarch::detail::concat("assertion '" #cond "' failed: ", \
                                          ##__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning about approximated or suspicious behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Plain status message for the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Developer-level trace message, off by default. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace triarch

#endif // TRIARCH_SIM_LOGGING_HH
