/**
 * @file
 * Cycle-attribution tracing: a thread-safe TraceSession collecting
 * Chrome trace-event JSON (loadable in chrome://tracing and
 * Perfetto) with span ("ph":"X") and counter ("ph":"C") events, and
 * an RAII TraceScope helper that tags each span with the deltas of a
 * StatGroup's scalar counters across the scope.
 *
 * Instrumentation sites stay in the simulator hot paths permanently;
 * the whole subsystem reduces to a single relaxed atomic load and
 * one branch when no session is active, and the disabled path
 * performs no allocation. Exactly one session can be active at a
 * time (started with TraceSession::start(), removed with stop());
 * events carry wall-clock microseconds since session construction
 * and land on a per-thread lane assigned in arrival order.
 *
 * Timestamps are wall-clock, so trace files are NOT deterministic
 * across runs or thread counts — attribution of *where time went*
 * is inherently a measurement. Deterministic observability lives in
 * metrics.hh (the triarch.stats.v1 document).
 */

#ifndef TRIARCH_SIM_TRACE_HH
#define TRIARCH_SIM_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace triarch::trace
{

/** One numeric span argument: name plus value. */
using Arg = std::pair<std::string, double>;

class TraceSession
{
  public:
    TraceSession();
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Install as the process-wide active session; panics if some
     *  other session is already active. */
    void start();

    /**
     * Remove from the active slot; buffered events survive for
     * writeJson(). Instrumented code that grabbed the session
     * pointer before stop() may still append events — the buffer
     * stays valid until destruction — so stop the session only
     * after in-flight runners have drained.
     */
    void stop();

    /** True while this session is the active one. */
    bool running() const;

    /** Microseconds since this session was constructed. */
    double nowUs() const;

    /** Emit a complete span on the calling thread's lane. */
    void span(const std::string &name, const char *category,
              double start_us, double duration_us,
              const std::vector<Arg> &args = {});

    /** Emit a counter sample (current wall clock, calling lane). */
    void counter(const std::string &name, double value);

    /**
     * Emit a counter sample at an explicit timestamp (microseconds
     * since the session epoch). This is how deterministic epoch
     * samples (hw_report.hh) are placed inside an already-measured
     * cell span so Perfetto renders the utilization track under it.
     */
    void counterAt(const std::string &name, double ts_us,
                   double value);

    /** Name the calling thread's lane in the rendered trace. */
    void nameThread(const std::string &thread_name);

    /** Number of buffered events (metadata excluded). */
    std::size_t events() const;

    /** Render the Chrome trace-event document (one event per line). */
    void writeJson(std::ostream &os) const;

    /** Render to @p path; fatal if the file cannot be written. */
    void writeJsonFile(const std::string &path) const;

    /** The active session, or nullptr when tracing is off. */
    static TraceSession *
    active()
    {
        return activeSession.load(std::memory_order_acquire);
    }

    /** The compiled-in fast path: one load + one branch. */
    static bool
    enabled()
    {
        return activeSession.load(std::memory_order_relaxed) != nullptr;
    }

  private:
    struct Event
    {
        std::string name;
        const char *category;
        char phase;         //!< 'X' span or 'C' counter
        unsigned lane;
        double ts;          //!< microseconds since session epoch
        double dur;         //!< spans only
        double value;       //!< counters only
        std::string args;   //!< prerendered JSON object body, or ""
    };

    /** Lane id for the calling thread (assigned in arrival order);
     *  callers must hold @ref mu. */
    unsigned laneLocked();

    static std::atomic<TraceSession *> activeSession;

    const std::chrono::steady_clock::time_point epoch;

    mutable std::mutex mu;
    std::vector<Event> buffer;
    std::map<std::thread::id, unsigned> lanes;
    std::map<unsigned, std::string> laneNames;
};

/**
 * RAII span helper: opens at construction, emits one complete event
 * on the calling thread's lane at destruction. When constructed with
 * a StatGroup, the scalar counters are snapshotted and every counter
 * that moved during the scope is attached to the span's args as
 * "<name>_delta" — this is how machine-model phase spans carry their
 * cycle attribution.
 *
 * When no session is active the constructor is one branch and the
 * object holds only trivially-constructed members (no allocation).
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name, const char *category = "sim",
                        const stats::StatGroup *deltas = nullptr);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Emit the span now instead of at destruction (idempotent) —
     *  lets sequential phases of one function share a scope slot. */
    void end();

  private:
    TraceSession *sess;         //!< nullptr = disabled, do nothing
    const char *name;
    const char *category;
    const stats::StatGroup *group;
    double startUs = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> snapshot;
};

/** Emit a counter sample on the active session, if any. */
inline void
counter(const std::string &name, double value)
{
    if (TraceSession *sess = TraceSession::active())
        sess->counter(name, value);
}

/**
 * Emit a counter sample at an explicit session timestamp, if a
 * session is active. Takes const char* so the disabled path is one
 * load and one branch with no string construction — counter emission
 * must allocate nothing when tracing is off (tests/test_trace.cc).
 */
inline void
counterAt(const char *name, double ts_us, double value)
{
    if (TraceSession *sess = TraceSession::active())
        sess->counterAt(name, ts_us, value);
}

} // namespace triarch::trace

#endif // TRIARCH_SIM_TRACE_HH
