/**
 * @file
 * Hardware-counter observability (D14): the versioned triarch.hw.v1
 * per-cell utilization report, the deterministic epoch sampler that
 * turns run-loop events into fixed-length counter timelines, and the
 * process-wide HwRegistry the kernel mappings capture into.
 *
 * The D9 cycle account says *where* a cell's cycles went; this layer
 * says *why*, by rolling every component StatGroup (caches, TLB,
 * DRAM channels, ports, mesh FIFOs, vector lanes, stream units) into
 * derived utilization metrics, attaching a bottleneck verdict that
 * is cross-checked against the cycle partition, and sampling the
 * busiest counters over simulated time.
 *
 * Everything here is deterministic: epoch boundaries are simulated-
 * cycle positions (never wall clock), the sampler's result is
 * independent of the order events are recorded in (required because
 * the Raw co-batch replays per-chain cycle ranges out of order), and
 * the registry renders label-sorted — so hw documents are
 * byte-identical at any worker-thread count and under both the Span
 * and Reference memory models (D13).
 */

#ifndef TRIARCH_SIM_HW_REPORT_HH
#define TRIARCH_SIM_HW_REPORT_HH

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/cycle_account.hh"
#include "sim/types.hh"

namespace triarch::hw
{

/** Fixed slot budget of every epoch timeline (and so the maximum
 *  number of epochs a cell can report). */
inline constexpr std::size_t kEpochSlots = 64;

/**
 * One sampled counter track: per-epoch event counts for a named
 * hardware signal (e.g. "vmu_busy", "dram_stall").
 */
struct EpochChannel
{
    std::string name;
    std::vector<std::uint64_t> counts;      //!< one entry per epoch

    friend bool operator==(const EpochChannel &,
                           const EpochChannel &) = default;
};

/** A cell's epoch-sampled counter timelines. */
struct HwTimeline
{
    /** Simulated cycles the timeline covers (the measured run
     *  length; for Raw CSLC this is the unbalanced wall clock the
     *  events actually happened on, not the reported extrapolation). */
    Cycles cycles = 0;
    /** Epoch length in cycles; always a power of two. */
    Cycles epochCycles = 1;
    std::vector<EpochChannel> channels;

    /** Number of epochs (== every channel's counts.size()). */
    std::size_t
    epochs() const
    {
        return channels.empty() ? 0 : channels.front().counts.size();
    }

    friend bool operator==(const HwTimeline &,
                           const HwTimeline &) = default;
};

/** One derived figure; rates are validated to lie in [0, 1]. */
struct HwMetric
{
    std::string name;
    double value = 0.0;
    bool rate = false;

    friend bool operator==(const HwMetric &,
                           const HwMetric &) = default;
};

/**
 * The bottleneck attribution: which hardware component dominated the
 * cell and why. The category must equal the dominant D9 category of
 * the cell's breakdown (ties resolve in category priority order) and
 * the component must belong to that category per
 * componentCategory() — both are enforced by the parser.
 */
struct HwVerdict
{
    std::string component;      //!< e.g. "dram", "l2", "mesh"
    stats::CycleCategory category = stats::CycleCategory::Compute;
    std::string detail;         //!< human one-liner with the numbers

    friend bool operator==(const HwVerdict &,
                           const HwVerdict &) = default;
};

/** Everything triarch.hw.v1 knows about one (machine, kernel) cell. */
struct HwCell
{
    std::string machine;        //!< machine token ("viram", ...)
    std::string kernel;         //!< kernel token ("ct", ...)
    Cycles cycles = 0;          //!< reported cycles (= breakdown.total)
    stats::CycleBreakdown breakdown;
    std::vector<HwMetric> metrics;
    HwVerdict verdict;
    HwTimeline timeline;

    friend bool operator==(const HwCell &, const HwCell &) = default;
};

/** A full triarch.hw.v1 document. */
struct HwReport
{
    /** Hex workload-config hash; empty = omitted from the document. */
    std::string configHash;
    std::vector<HwCell> cells;

    friend bool operator==(const HwReport &,
                           const HwReport &) = default;
};

/**
 * The category every known component belongs to; nullopt for unknown
 * component names. This is the fixed table the parser uses to reject
 * verdicts whose component contradicts their category.
 */
std::optional<stats::CycleCategory>
componentCategory(const std::string &component);

/** The dominant category of a breakdown: the largest share, ties
 *  resolved in declaration (priority) order. */
stats::CycleCategory dominantCategory(const stats::CycleBreakdown &b);

/** Deterministic two-decimal rendering ("0.31") for verdict detail
 *  strings; locale-independent. */
std::string fmt2(double v);

/**
 * Accumulates per-cycle event counts into at most kEpochSlots
 * equal-length epochs whose length is a power of two.
 *
 * The sampler starts at one cycle per epoch and doubles the epoch
 * length (merging slots pairwise) whenever a recorded cycle falls
 * past the current capacity, so recording is O(1) amortized and the
 * final array depends only on the set of (cycle, count) additions —
 * never on the order they arrive in. That order-independence is a
 * correctness requirement: the Raw event stepper credits bulk cycle
 * ranges out of order relative to the reference stepper, and both
 * must produce identical timelines.
 */
class EpochSampler
{
  public:
    explicit EpochSampler(std::vector<std::string> channel_names);

    std::size_t channels() const { return names.size(); }

    /** Record @p count events on @p channel at @p cycle. */
    void
    addAt(std::size_t channel, Cycles cycle, std::uint64_t count = 1)
    {
        fit(cycle);
        slots[channel][cycle >> shift] += count;
    }

    /** Record one event per cycle of [@p start, @p end) on
     *  @p channel, split exactly across the epochs it covers. */
    void addRange(std::size_t channel, Cycles start, Cycles end);

    /** Forget all samples (channel names are kept); the machines'
     *  resetTiming() calls this so a kernel starts a fresh timeline. */
    void reset();

    /**
     * Close the sampler against the authoritative run length and
     * return the timeline: epochs = ceil(total / epochCycles) with
     * the smallest power-of-two epoch length that fits kEpochSlots.
     * Events recorded past @p total_cycles (possible only by
     * sub-cycle rounding on fractional-clock machines) fold into the
     * final epoch so counts are conserved.
     */
    HwTimeline finalize(Cycles total_cycles);

  private:
    void
    fit(Cycles cycle)
    {
        while ((cycle >> shift) >= kEpochSlots)
            grow();
    }

    /** Double the epoch length: merge slots pairwise. */
    void grow();

    unsigned shift = 0;         //!< epoch length = 1 << shift
    std::vector<std::string> names;
    std::vector<std::array<std::uint64_t, kEpochSlots>> slots;
};

/** Render @p report as a triarch.hw.v1 document. */
void writeHwReport(std::ostream &os, const HwReport &report,
                   bool compact = false);

/** writeHwReport() to a string. */
std::string renderHwReport(const HwReport &report,
                           bool compact = false);

/**
 * Parse and validate a triarch.hw.v1 document. Beyond shape, this
 * enforces the semantic invariants: every rate metric in [0, 1],
 * each cell's breakdown an exact partition of its cycles, the
 * verdict category equal to the breakdown's dominant category, the
 * verdict component consistent with that category, and every
 * timeline channel sized to ceil(cycles / epochCycles) with a
 * power-of-two epoch length. On failure returns nullopt with the
 * reason in @p error.
 */
std::optional<HwReport> parseHwReport(const std::string &text,
                                      std::string *error);

/** Parse @p path (errors are prefixed with the path). */
std::optional<HwReport> loadHwReportFile(const std::string &path,
                                         std::string *error);

/**
 * Process-wide store of the most recent HwCell per (machine, kernel)
 * label, captured by the kernel mappings right where the machine
 * model's StatGroups are captured into the MetricsRegistry. Per-cell
 * simulation is deterministic, so re-running a cell recaptures an
 * identical value; report() renders label-sorted, so the document is
 * independent of execution order and thread count.
 */
class HwRegistry
{
  public:
    void capture(HwCell cell);

    std::size_t size() const;
    void clear();

    /** The captured cell for (machine, kernel) tokens, if any. */
    std::optional<HwCell> find(const std::string &machine,
                               const std::string &kernel) const;

    /** Snapshot every captured cell into a report. */
    HwReport report(std::string config_hash = {}) const;

    static HwRegistry &global();

  private:
    mutable std::mutex mu;
    std::map<std::string, HwCell> cells;
};

} // namespace triarch::hw

#endif // TRIARCH_SIM_HW_REPORT_HH
