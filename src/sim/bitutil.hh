/**
 * @file
 * Small bit-manipulation and integer helpers used across the timing
 * models (address mapping, lane math, and the like).
 */

#ifndef TRIARCH_SIM_BITUTIL_HH
#define TRIARCH_SIM_BITUTIL_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace triarch
{

/** True iff @p v is a non-zero power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned n = 0;
    while (v >>= 1)
        ++n;
    return n;
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t a, std::uint64_t align)
{
    return ceilDiv(a, align) * align;
}

/**
 * Round @p a up to the next multiple of @p align without wrapping:
 * writes the result to @p out and returns true, or returns false
 * when the rounded value does not fit in 64 bits. Plain roundUp()
 * computes ceilDiv(a, align) * align, which wraps silently near the
 * top of the range — callers guarding allocation bounds need the
 * checked form.
 */
constexpr bool
roundUpChecked(std::uint64_t a, std::uint64_t align, std::uint64_t &out)
{
    const std::uint64_t rem = a % align;
    if (rem == 0) {
        out = a;
        return true;
    }
    const std::uint64_t pad = align - rem;
    if (a > ~std::uint64_t{0} - pad)
        return false;
    out = a + pad;
    return true;
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
}

/** Reverse the low @p nbits bits of @p v (used by FFT reordering). */
constexpr std::uint32_t
reverseBits(std::uint32_t v, unsigned nbits)
{
    std::uint32_t r = 0;
    for (unsigned i = 0; i < nbits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

/** Bit-cast a float to the 32-bit word that carries it in memory. */
inline std::uint32_t
floatToWord(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

/** Bit-cast a 32-bit memory word back to the float it carries. */
inline float
wordToFloat(std::uint32_t w)
{
    return std::bit_cast<float>(w);
}

} // namespace triarch

#endif // TRIARCH_SIM_BITUTIL_HH
