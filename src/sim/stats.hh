/**
 * @file
 * A small statistics package in the spirit of gem5's: named scalar
 * counters, averages, and distributions owned by a StatGroup that can
 * render itself to a stream and answer queries by name.
 *
 * Every simulator component (DRAM model, cache, vector unit, ...)
 * owns a StatGroup; the study framework reads the groups to explain
 * where cycles went (e.g. VIRAM precharge overhead, Imagine memory
 * stall fraction).
 *
 * Threading model: Scalar/Average/Distribution are single-owner
 * stats — each machine model (and everything it owns) is confined
 * to the one worker thread running its cell, so its stats need no
 * synchronization and stay cheap in simulator hot loops. Counters
 * shared *across* worker threads (scheduler progress, cache
 * hit/miss tallies) use AtomicScalar instead.
 */

#ifndef TRIARCH_SIM_STATS_HH
#define TRIARCH_SIM_STATS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace triarch::stats
{

/** A named 64-bit counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(std::uint64_t v) { count += v; return *this; }
    Scalar &operator++() { ++count; return *this; }
    void set(std::uint64_t v) { count = v; }
    void reset() { count = 0; }
    std::uint64_t value() const { return count; }

  private:
    std::uint64_t count = 0;
};

/**
 * A named 64-bit counter safe to bump from many threads at once
 * (relaxed ordering — a tally, not a synchronization point). Used
 * for cross-thread accounting in the parallel experiment engine;
 * per-machine simulator stats stay on the unsynchronized Scalar.
 */
class AtomicScalar
{
  public:
    AtomicScalar() = default;

    AtomicScalar &
    operator+=(std::uint64_t v)
    {
        count.fetch_add(v, std::memory_order_relaxed);
        return *this;
    }

    AtomicScalar &
    operator++()
    {
        count.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    void set(std::uint64_t v) { count.store(v, std::memory_order_relaxed); }
    void reset() { set(0); }

    std::uint64_t
    value() const
    {
        return count.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count{0};
};

/** Running mean of sampled values. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    void reset() { sum = 0; n = 0; }
    double mean() const { return n ? sum / n : 0.0; }
    std::uint64_t samples() const { return n; }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
};

/** Fixed-bucket histogram over [lo, hi). */
class Distribution
{
  public:
    Distribution() : Distribution(0.0, 1.0, 1) {}

    Distribution(double lo, double hi, unsigned nbuckets)
        : _low(lo), _high(hi), buckets(nbuckets, 0)
    {
    }

    /** Record one sample; out-of-range samples land in under/over. */
    void
    sample(double v)
    {
        ++n;
        sum += v;
        if (v < _low) {
            ++underflow;
        } else if (v >= _high) {
            ++overflow;
        } else {
            auto idx = static_cast<std::size_t>(
                (v - _low) / (_high - _low) * buckets.size());
            if (idx >= buckets.size())
                idx = buckets.size() - 1;
            ++buckets[idx];
        }
    }

    /** Zero every bucket and tally; the bucket layout is kept. */
    void
    reset()
    {
        for (auto &b : buckets)
            b = 0;
        underflow = 0;
        overflow = 0;
        n = 0;
        sum = 0.0;
    }

    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / n : 0.0; }
    std::uint64_t bucket(std::size_t i) const { return buckets.at(i); }
    std::uint64_t under() const { return underflow; }
    std::uint64_t over() const { return overflow; }
    std::size_t numBuckets() const { return buckets.size(); }
    double low() const { return _low; }
    double high() const { return _high; }

  private:
    double _low;
    double _high;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t n = 0;
    double sum = 0.0;
};

/**
 * A log-bucketed histogram over unsigned 64-bit samples (host-time
 * nanoseconds in practice), safe to record from many threads at once
 * (relaxed tallies, like AtomicScalar). Bucket boundaries are fixed
 * powers of two — bucket 0 holds exactly {0}, bucket k >= 1 covers
 * [2^(k-1), 2^k) — so the same samples always land in the same
 * buckets regardless of recording order or thread count, and two
 * histograms with the same samples render byte-identically.
 *
 * Quantiles are estimated deterministically: find the bucket holding
 * the ceil(q*n)-th sample, interpolate linearly inside it, clamp to
 * the exact observed [min, max].
 */
class Histogram
{
  public:
    /** Bucket 0 plus one bucket per bit of a 64-bit sample. */
    static constexpr std::size_t NumBuckets = 65;

    Histogram() = default;

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Bucket index a sample lands in (0 for 0, else bit width). */
    static std::size_t
    bucketIndex(std::uint64_t v)
    {
        return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
    }

    /** Inclusive lower bound of bucket @p i. */
    static std::uint64_t
    bucketLow(std::size_t i)
    {
        return i <= 1 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /** Exclusive upper bound of bucket @p i (max for the last). */
    static std::uint64_t
    bucketHigh(std::size_t i)
    {
        if (i == 0)
            return 1;
        if (i >= 64)
            return ~std::uint64_t{0};
        return std::uint64_t{1} << i;
    }

    void
    record(std::uint64_t v)
    {
        counts[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        n.fetch_add(1, std::memory_order_relaxed);
        total.fetch_add(v, std::memory_order_relaxed);
        relaxedMin(lowest, v);
        relaxedMax(highest, v);
    }

    std::uint64_t count() const
    {
        return n.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const
    {
        return total.load(std::memory_order_relaxed);
    }

    /** Smallest recorded sample (0 when empty). */
    std::uint64_t
    minValue() const
    {
        return count() ? lowest.load(std::memory_order_relaxed) : 0;
    }

    /** Largest recorded sample (0 when empty). */
    std::uint64_t
    maxValue() const
    {
        return highest.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bucket(std::size_t i) const
    {
        return counts.at(i).load(std::memory_order_relaxed);
    }

    /** Deterministic quantile estimate (see class comment); 0 when
     *  empty. @p q must be in [0, 1]. */
    double quantile(double q) const;

    double median() const { return quantile(0.5); }
    double p95() const { return quantile(0.95); }

    void
    reset()
    {
        for (auto &c : counts)
            c.store(0, std::memory_order_relaxed);
        n.store(0, std::memory_order_relaxed);
        total.store(0, std::memory_order_relaxed);
        lowest.store(~std::uint64_t{0}, std::memory_order_relaxed);
        highest.store(0, std::memory_order_relaxed);
    }

  private:
    static void
    relaxedMin(std::atomic<std::uint64_t> &slot, std::uint64_t v)
    {
        std::uint64_t cur = slot.load(std::memory_order_relaxed);
        while (v < cur
               && !slot.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }

    static void
    relaxedMax(std::atomic<std::uint64_t> &slot, std::uint64_t v)
    {
        std::uint64_t cur = slot.load(std::memory_order_relaxed);
        while (v > cur
               && !slot.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }

    std::array<std::atomic<std::uint64_t>, NumBuckets> counts{};
    std::atomic<std::uint64_t> n{0};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> lowest{~std::uint64_t{0}};
    std::atomic<std::uint64_t> highest{0};
};

/** Snapshot of one scalar (plain or atomic) for serialization. */
struct ScalarReading
{
    std::string name;
    std::string desc;
    std::uint64_t value;
};

/** Snapshot of one average for serialization. */
struct AverageReading
{
    std::string name;
    std::string desc;
    double mean;
    std::uint64_t samples;
};

/** Snapshot of one distribution for serialization. */
struct DistributionReading
{
    std::string name;
    std::string desc;
    double low;
    double high;
    double mean;
    std::uint64_t samples;
    std::uint64_t under;
    std::uint64_t over;
    std::vector<std::uint64_t> buckets;
};

/**
 * Snapshot of one histogram for serialization. Only non-zero
 * buckets are kept, as (index, count) pairs in index order; median
 * and p95 are precomputed so consumers (the stats document, the
 * --statsz client) need no bucket math.
 */
struct HistogramReading
{
    std::string name;
    std::string desc;
    std::uint64_t count;
    std::uint64_t sum;
    std::uint64_t min;
    std::uint64_t max;
    double median;
    double p95;
    std::vector<std::pair<unsigned, std::uint64_t>> buckets;
};

/**
 * A named collection of statistics. Components register their stats
 * once at construction; the group does not own the stat storage.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name)
        : _name(std::move(group_name))
    {
    }

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under @p stat_name. */
    void addScalar(const std::string &stat_name, Scalar *s,
                   const std::string &desc = "");

    /** Register a cross-thread atomic scalar under @p stat_name. */
    void addAtomicScalar(const std::string &stat_name, AtomicScalar *s,
                         const std::string &desc = "");

    /** Register an average under @p stat_name. */
    void addAverage(const std::string &stat_name, Average *a,
                    const std::string &desc = "");

    /** Register a distribution under @p stat_name. */
    void addDistribution(const std::string &stat_name, Distribution *d,
                         const std::string &desc = "");

    /** Register a log-bucketed histogram under @p stat_name. */
    void addHistogram(const std::string &stat_name, Histogram *h,
                      const std::string &desc = "");

    /** Value of a registered scalar (plain or atomic); panics on
     *  unknown names. */
    std::uint64_t scalar(const std::string &stat_name) const;

    /** Mean of a registered average; panics on unknown names. */
    double average(const std::string &stat_name) const;

    /** A registered distribution; panics on unknown names. */
    const Distribution &distribution(const std::string &stat_name) const;

    /** A registered histogram; panics on unknown names. */
    const Histogram &histogram(const std::string &stat_name) const;

    /** True if a scalar (plain or atomic) with this name was
     *  registered. */
    bool hasScalar(const std::string &stat_name) const;

    /** Reset every registered stat to zero. */
    void resetAll();

    /** Render "group.stat value  # desc" lines (all stat kinds). */
    void dump(std::ostream &os) const;

    const std::string &name() const { return _name; }

    /** Names of all registered scalars (plain then atomic), in
     *  registration order. */
    std::vector<std::string> scalarNames() const;

    /** Snapshots of all scalars (plain then atomic), in
     *  registration order. */
    std::vector<ScalarReading> scalarReadings() const;

    /** Snapshots of all averages, in registration order. */
    std::vector<AverageReading> averageReadings() const;

    /** Snapshots of all distributions, in registration order. */
    std::vector<DistributionReading> distributionReadings() const;

    /**
     * Snapshots of the histograms that recorded at least one sample,
     * in registration order. Empty histograms are deliberately
     * invisible: a group whose host-time histograms never fired
     * (profiling off) renders byte-identically to a group without
     * them.
     */
    std::vector<HistogramReading> histogramReadings() const;

  private:
    struct ScalarEntry
    {
        std::string name;
        Scalar *stat;
        std::string desc;
    };

    struct AtomicEntry
    {
        std::string name;
        AtomicScalar *stat;
        std::string desc;
    };

    struct AverageEntry
    {
        std::string name;
        Average *stat;
        std::string desc;
    };

    struct DistributionEntry
    {
        std::string name;
        Distribution *stat;
        std::string desc;
    };

    struct HistogramEntry
    {
        std::string name;
        Histogram *stat;
        std::string desc;
    };

    std::string _name;
    std::vector<ScalarEntry> scalars;
    std::vector<AtomicEntry> atomics;
    std::vector<AverageEntry> averages;
    std::vector<DistributionEntry> distributions;
    std::vector<HistogramEntry> histograms;
};

} // namespace triarch::stats

#endif // TRIARCH_SIM_STATS_HH
