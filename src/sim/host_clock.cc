#include "host_clock.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#if defined(__linux__)
#include <sched.h>
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "sim/logging.hh"

namespace triarch::host
{

namespace
{

std::atomic<bool> profilingOn{false};

} // namespace

void
setProfiling(bool on)
{
    profilingOn.store(on, std::memory_order_relaxed);
}

bool
profilingEnabled()
{
    return profilingOn.load(std::memory_order_relaxed);
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace
{

/** Linear-interpolated quantile of an already-sorted sample set. */
double
sortedQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto below = static_cast<std::size_t>(pos);
    if (below + 1 >= sorted.size())
        return sorted.back();
    const double frac = pos - static_cast<double>(below);
    return sorted[below] + (sorted[below + 1] - sorted[below]) * frac;
}

} // namespace

MeasurementStats
summarizeSamples(std::vector<double> samples_ns)
{
    MeasurementStats out;
    if (samples_ns.empty())
        return out;
    std::sort(samples_ns.begin(), samples_ns.end());
    out.repetitions = samples_ns.size();
    out.minNs = samples_ns.front();
    out.maxNs = samples_ns.back();
    double sum = 0.0;
    for (double v : samples_ns)
        sum += v;
    out.meanNs = sum / static_cast<double>(samples_ns.size());
    out.medianNs = sortedQuantile(samples_ns, 0.5);
    out.p95Ns = sortedQuantile(samples_ns, 0.95);
    double var = 0.0;
    for (double v : samples_ns)
        var += (v - out.meanNs) * (v - out.meanNs);
    out.stddevNs =
        std::sqrt(var / static_cast<double>(samples_ns.size()));
    return out;
}

bool
pinToCpu(int cpu)
{
    if (cpu < 0)
        return false;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu), &set);
    return ::sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    return false;
#endif
}

std::size_t
peakRssBytes()
{
#if defined(__linux__)
    rusage usage{};
    if (::getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // ru_maxrss is kilobytes on Linux.
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#else
    return 0;
#endif
}

Measurement
measureRepeated(const MeasureOptions &opts,
                const std::function<void()> &fn)
{
    triarch_assert(fn != nullptr, "null measurement body");
    Measurement out;
    if (opts.pinCpu >= 0)
        out.pinned = pinToCpu(opts.pinCpu);

    for (unsigned i = 0; i < opts.warmup; ++i)
        fn();

    const unsigned reps = std::max(opts.repetitions, 1u);
    std::vector<double> samples;
    samples.reserve(reps);
    for (unsigned i = 0; i < reps; ++i) {
        HostTimer timer;
        fn();
        samples.push_back(static_cast<double>(timer.ns()));
    }
    out.stats = summarizeSamples(std::move(samples));
    out.peakRssBytes = peakRssBytes();
    return out;
}

void
HostPhases::addTo(stats::StatGroup &group)
{
    group.addHistogram("host_setup_ns", &setupNs,
                       "host ns preparing the cell (machine + inputs)");
    group.addHistogram("host_run_ns", &runNs,
                       "host ns executing the kernel mapping");
    group.addHistogram("host_readback_ns", &readbackNs,
                       "host ns validating and packaging the result");
}

PhaseSplit::PhaseSplit() : on(profilingEnabled())
{
    if (on)
        setupStartNs = nowNs();
}

void
PhaseSplit::startRun()
{
    if (on)
        runStartNs = nowNs();
}

void
PhaseSplit::startReadback()
{
    if (on)
        readbackStartNs = nowNs();
}

void
PhaseSplit::record(HostPhases &phases)
{
    if (!on)
        return;
    const std::uint64_t end = nowNs();
    // Unmarked phases get zero-length samples, not garbage: a
    // mapping that never called startReadback() simply charges
    // everything after startRun() to the run phase.
    const std::uint64_t runAt =
        std::max(runStartNs ? runStartNs : end, setupStartNs);
    const std::uint64_t backAt =
        std::max(readbackStartNs ? readbackStartNs : end, runAt);
    phases.setupNs.record(runAt - setupStartNs);
    phases.runNs.record(backAt - runAt);
    phases.readbackNs.record(end - backAt);
}

} // namespace triarch::host
