#include "trace.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace triarch::trace
{

std::atomic<TraceSession *> TraceSession::activeSession{nullptr};

namespace
{

/** JSON string escape (quotes, backslash, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream os;
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c);
                out += os.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a double without locale surprises, round-trippable. */
std::string
jsonNumber(double v)
{
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

/** Render span args ({"a": 1, ...}) from name/value pairs. */
std::string
renderArgs(const std::vector<Arg> &args)
{
    if (args.empty())
        return {};
    std::string out = "{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + jsonEscape(args[i].first)
               + "\": " + jsonNumber(args[i].second);
    }
    out += "}";
    return out;
}

} // namespace

TraceSession::TraceSession() : epoch(std::chrono::steady_clock::now())
{
}

TraceSession::~TraceSession()
{
    if (running())
        stop();
}

void
TraceSession::start()
{
    TraceSession *expected = nullptr;
    if (!activeSession.compare_exchange_strong(
            expected, this, std::memory_order_acq_rel)) {
        triarch_panic("a trace session is already active");
    }
    nameThread("main");
}

void
TraceSession::stop()
{
    TraceSession *expected = this;
    activeSession.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel);
}

bool
TraceSession::running() const
{
    return activeSession.load(std::memory_order_acquire) == this;
}

double
TraceSession::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

unsigned
TraceSession::laneLocked()
{
    const auto id = std::this_thread::get_id();
    auto it = lanes.find(id);
    if (it == lanes.end())
        it = lanes.emplace(id, static_cast<unsigned>(lanes.size())).first;
    return it->second;
}

void
TraceSession::span(const std::string &name, const char *category,
                   double start_us, double duration_us,
                   const std::vector<Arg> &args)
{
    std::lock_guard<std::mutex> lock(mu);
    buffer.push_back({name, category, 'X', laneLocked(), start_us,
                      duration_us, 0.0, renderArgs(args)});
}

void
TraceSession::counter(const std::string &name, double value)
{
    counterAt(name, nowUs(), value);
}

void
TraceSession::counterAt(const std::string &name, double ts_us,
                        double value)
{
    std::lock_guard<std::mutex> lock(mu);
    buffer.push_back({name, "counter", 'C', laneLocked(), ts_us, 0.0,
                      value, {}});
}

void
TraceSession::nameThread(const std::string &thread_name)
{
    std::lock_guard<std::mutex> lock(mu);
    laneNames[laneLocked()] = thread_name;
}

std::size_t
TraceSession::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return buffer.size();
}

void
TraceSession::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu);

    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"name\": \"triarch\"}}";
    for (const auto &[lane, lane_name] : laneNames) {
        os << ",\n{\"ph\": \"M\", \"name\": \"thread_name\", "
              "\"pid\": 1, \"tid\": "
           << lane << ", \"args\": {\"name\": \""
           << jsonEscape(lane_name) << "\"}}";
    }
    for (const Event &e : buffer) {
        os << ",\n{\"name\": \"" << jsonEscape(e.name)
           << "\", \"cat\": \"" << e.category << "\", \"ph\": \""
           << e.phase << "\", \"pid\": 1, \"tid\": " << e.lane
           << ", \"ts\": " << jsonNumber(e.ts);
        if (e.phase == 'X')
            os << ", \"dur\": " << jsonNumber(e.dur);
        if (e.phase == 'C') {
            os << ", \"args\": {\"value\": " << jsonNumber(e.value)
               << "}";
        } else if (!e.args.empty()) {
            os << ", \"args\": " << e.args;
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
TraceSession::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        triarch_fatal("cannot open '", path, "' for writing");
    writeJson(os);
    if (!os.good())
        triarch_fatal("failed writing trace JSON to '", path, "'");
}

TraceScope::TraceScope(const char *scope_name, const char *cat,
                       const stats::StatGroup *deltas)
    : sess(TraceSession::active()), name(scope_name), category(cat),
      group(deltas)
{
    if (!sess)
        return;
    startUs = sess->nowUs();
    if (group) {
        for (const auto &stat_name : group->scalarNames())
            snapshot.emplace_back(stat_name, group->scalar(stat_name));
    }
}

TraceScope::~TraceScope()
{
    end();
}

void
TraceScope::end()
{
    if (!sess)
        return;
    const double endUs = sess->nowUs();
    std::vector<Arg> args;
    for (const auto &[stat_name, before] : snapshot) {
        const std::uint64_t after = group->scalar(stat_name);
        if (after != before) {
            args.emplace_back(stat_name + "_delta",
                              static_cast<double>(after - before));
        }
    }
    sess->span(name, category, startUs, endUs - startUs, args);
    sess = nullptr;
}

} // namespace triarch::trace
