/**
 * @file
 * A zero-initialized byte buffer backed by calloc. For the tens of
 * megabytes the machine models use as global DRAM, a
 * std::vector<uint8_t>(n, 0) touches (faults and clears) every page
 * up front — tens of milliseconds per construction — while calloc
 * of the same size is served by fresh anonymous pages the kernel
 * already guarantees to be zero, so pages are only faulted in when
 * the simulated program actually reaches them. Models allocate far
 * more DRAM than any single workload touches, which makes machine
 * construction (and repeated construction under the host-time
 * measurement contract) effectively free.
 */

#ifndef TRIARCH_SIM_ZERO_BUFFER_HH
#define TRIARCH_SIM_ZERO_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#include "sim/logging.hh"

namespace triarch
{

/** A fixed-size, lazily-faulted, zero-filled byte buffer. */
class ZeroBuffer
{
  public:
    explicit ZeroBuffer(std::size_t n)
        : bytes(n),
          buf(static_cast<std::uint8_t *>(std::calloc(n ? n : 1, 1)))
    {
        if (buf == nullptr)
            triarch_fatal("failed to allocate ", n, " byte buffer");
    }

    ~ZeroBuffer() { std::free(buf); }

    ZeroBuffer(const ZeroBuffer &) = delete;
    ZeroBuffer &operator=(const ZeroBuffer &) = delete;

    ZeroBuffer(ZeroBuffer &&other) noexcept
        : bytes(other.bytes), buf(other.buf)
    {
        other.bytes = 0;
        other.buf = nullptr;
    }

    std::uint8_t *data() { return buf; }
    const std::uint8_t *data() const { return buf; }
    std::size_t size() const { return bytes; }

  private:
    std::size_t bytes;
    std::uint8_t *buf;
};

} // namespace triarch

#endif // TRIARCH_SIM_ZERO_BUFFER_HH
