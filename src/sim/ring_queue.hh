/**
 * @file
 * A flat power-of-two ring buffer with deque-like front/back
 * semantics for trivially-copyable elements. std::deque allocates
 * and frees fixed-size blocks as elements flow through, which shows
 * up badly in interpreter hot loops that push and pop a few words
 * per simulated cycle; the ring reuses one contiguous allocation and
 * indexes with a mask. Grows by doubling (relinearizing the live
 * elements) when full, so a reserve() of the steady-state capacity
 * makes push/pop allocation-free for the rest of the queue's life.
 */

#ifndef TRIARCH_SIM_RING_QUEUE_HH
#define TRIARCH_SIM_RING_QUEUE_HH

#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

namespace triarch
{

template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Oldest element; undefined when empty. */
    const T &front() const { return buf_[head_]; }
    T &front() { return buf_[head_]; }

    /** The @p i-th element from the front; undefined past size(). */
    const T &operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    /** Ensure capacity for @p n elements without further growth. */
    void reserve(std::size_t n)
    {
        if (n > buf_.size())
            grow(std::bit_ceil(n));
    }

    void push_back(const T &v)
    {
        if (count_ == buf_.size())
            grow(buf_.empty() ? 8 : buf_.size() * 2);
        buf_[(head_ + count_) & mask_] = v;
        ++count_;
    }

    template <typename... Args>
    void emplace_back(Args &&...args)
    {
        push_back(T(std::forward<Args>(args)...));
    }

    void pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    void grow(std::size_t cap)
    {
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(next);
        mask_ = cap - 1;
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace triarch

#endif // TRIARCH_SIM_RING_QUEUE_HH
