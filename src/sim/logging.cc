#include "logging.hh"

#include <cstdlib>
#include <iostream>

namespace triarch
{

namespace
{
LogLevel globalLevel = LogLevel::Inform;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Inform)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace triarch
