#include "logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace triarch
{

namespace
{
// Atomic so the parallel experiment engine's workers can log while
// another thread adjusts the verbosity.
std::atomic<LogLevel> globalLevel{LogLevel::Inform};
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Inform)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace triarch
