/**
 * @file
 * Host-time measurement: where does *wall-clock* time go, as opposed
 * to the simulated cycles the rest of sim/ accounts for. Three
 * pieces:
 *
 *  - HostTimer / nowNs(): a steady-clock stopwatch with nanosecond
 *    reads, the one clock every host-time instrumentation site uses;
 *  - RepeatedMeasurement (measureRepeated + summarizeSamples): the
 *    measurement contract from ROADMAP item 2 — configurable warmup
 *    iterations, 30+ repetitions, min/median/P95/stddev summary,
 *    optional core pinning via sched_setaffinity, and peak-RSS
 *    sampling — so every reported host number is a robust statistic,
 *    never a single noisy sample;
 *  - a process-wide profiling gate (setProfiling/profilingEnabled)
 *    and the HostPhases/PhaseSplit helpers behind the coarse
 *    setup/run/readback split every machine model records.
 *
 * The gate matters for determinism: triarch.stats.v1 documents are
 * bit-identical across thread counts *because* they carry only
 * simulated counts. Host-time histograms are therefore recorded only
 * while profiling is enabled (--host-stats, triarchd), and an empty
 * histogram is invisible in every rendering, so profiling-off output
 * stays byte-identical to the pre-host-clock repo.
 */

#ifndef TRIARCH_SIM_HOST_CLOCK_HH
#define TRIARCH_SIM_HOST_CLOCK_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/stats.hh"

namespace triarch::host
{

/** Turn host-time profiling on or off process-wide. */
void setProfiling(bool on);

/** The compiled-in fast path at every sample site: one relaxed
 *  atomic load. */
bool profilingEnabled();

/** Monotonic nanoseconds (steady clock, arbitrary epoch). */
std::uint64_t nowNs();

/** A steady-clock stopwatch. */
class HostTimer
{
  public:
    HostTimer() : startNs(nowNs()) {}

    void reset() { startNs = nowNs(); }

    /** Nanoseconds since construction or the last reset(). */
    std::uint64_t ns() const { return nowNs() - startNs; }

    double us() const { return static_cast<double>(ns()) / 1e3; }
    double ms() const { return static_cast<double>(ns()) / 1e6; }

  private:
    std::uint64_t startNs;
};

/** Robust summary of repeated wall-clock samples (nanoseconds). */
struct MeasurementStats
{
    std::uint64_t repetitions = 0;
    double minNs = 0.0;
    double maxNs = 0.0;
    double meanNs = 0.0;
    double medianNs = 0.0;
    double p95Ns = 0.0;
    double stddevNs = 0.0;

    friend bool operator==(const MeasurementStats &,
                           const MeasurementStats &) = default;
};

/**
 * Order statistics over @p samples_ns (copied and sorted): median
 * and P95 by linear interpolation between order statistics, stddev
 * as the population standard deviation. Empty input yields zeros.
 */
MeasurementStats summarizeSamples(std::vector<double> samples_ns);

/** The measurement contract's knobs. */
struct MeasureOptions
{
    unsigned warmup = 3;          //!< unmeasured priming iterations
    unsigned repetitions = 30;    //!< measured iterations (min 1)
    int pinCpu = -1;              //!< >= 0: pin the thread to this core
};

/** One repeated measurement: statistics plus run metadata. */
struct Measurement
{
    MeasurementStats stats;
    bool pinned = false;          //!< pin requested and it succeeded
    std::size_t peakRssBytes = 0; //!< process peak RSS after the run
};

/**
 * Run @p fn opts.warmup times unmeasured, then opts.repetitions
 * times with one HostTimer sample each, and summarize. When
 * opts.pinCpu >= 0 the calling thread is pinned first (best effort;
 * Measurement::pinned reports whether it took).
 */
Measurement measureRepeated(const MeasureOptions &opts,
                            const std::function<void()> &fn);

/** Pin the calling thread to @p cpu; false when unsupported or the
 *  core does not exist. */
bool pinToCpu(int cpu);

/** Peak resident set size of this process in bytes (0 if unknown). */
std::size_t peakRssBytes();

/**
 * The coarse setup/run/readback host-time split every machine model
 * carries in its StatGroup: three log-bucketed histograms fed once
 * per cell by the registry mappings (via PhaseSplit).
 */
struct HostPhases
{
    stats::Histogram setupNs;
    stats::Histogram runNs;
    stats::Histogram readbackNs;

    /** Register the three histograms (host_setup_ns / host_run_ns /
     *  host_readback_ns) in @p group. */
    void addTo(stats::StatGroup &group);
};

/**
 * Phase marker for one cell execution: setup runs from construction
 * to startRun(), the kernel from startRun() to startReadback(), and
 * readback from startReadback() to record(). When profiling is off
 * every call is a no-op (construction is one atomic load).
 */
class PhaseSplit
{
  public:
    PhaseSplit();

    void startRun();
    void startReadback();

    /** Sample all three phase durations into @p phases. */
    void record(HostPhases &phases);

  private:
    bool on;
    std::uint64_t setupStartNs = 0;
    std::uint64_t runStartNs = 0;
    std::uint64_t readbackStartNs = 0;
};

} // namespace triarch::host

#endif // TRIARCH_SIM_HOST_CLOCK_HH
