#include "hw_report.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace triarch::hw
{

namespace
{

std::nullopt_t
reject(std::string *error, std::string why)
{
    if (error)
        *error = std::move(why);
    return std::nullopt;
}

std::optional<stats::CycleCategory>
parseCategoryToken(const std::string &token)
{
    for (stats::CycleCategory c : stats::allCycleCategories()) {
        if (stats::cycleCategoryToken(c) == token)
            return c;
    }
    return std::nullopt;
}

} // namespace

std::optional<stats::CycleCategory>
componentCategory(const std::string &component)
{
    using C = stats::CycleCategory;
    // The fixed component -> category table: a verdict naming one of
    // these components is only consistent with the mapped category.
    static const std::map<std::string, C> table = {
        {"alu", C::Compute},        // PPC issue/execute
        {"vau", C::Compute},        // VIRAM vector arithmetic units
        {"cluster", C::Compute},    // Imagine arithmetic clusters
        {"tiles", C::Compute},      // Raw tile pipelines
        {"l1", C::CacheStall},      // PPC L1 data cache
        {"l2", C::CacheStall},      // PPC L2
        {"dcache", C::CacheStall},  // Raw tile data caches
        {"tlb", C::CacheStall},     // VIRAM TLB
        {"dram", C::DramDma},       // DRAM banks / row machinery
        {"fsb", C::DramDma},        // PPC front-side bus
        {"dma", C::DramDma},        // Raw peripheral DMA ports
        {"vmu", C::DramDma},        // VIRAM vector memory unit
        {"stream", C::DramDma},     // Imagine memory streams
        {"mesh", C::NetworkSync},   // Raw static network / FIFOs
        {"network", C::NetworkSync},
        {"host", C::SetupReadback}, // host issue / readback
        {"scalar", C::SetupReadback},
    };
    auto it = table.find(component);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

stats::CycleCategory
dominantCategory(const stats::CycleBreakdown &b)
{
    stats::CycleCategory best = stats::CycleCategory::Compute;
    std::uint64_t bestCycles = 0;
    bool first = true;
    for (stats::CycleCategory c : stats::allCycleCategories()) {
        // Strict > keeps the first (highest-priority) category on
        // ties, matching the timeline resolution rule.
        if (first || b[c] > bestCycles) {
            best = c;
            bestCycles = b[c];
            first = false;
        }
    }
    return best;
}

std::string
fmt2(double v)
{
    // Hand-rolled fixed-point rendering: snprintf("%f") honors the
    // process locale's decimal separator, which would make verdict
    // strings environment-dependent.
    std::string out;
    if (v < 0) {
        out += '-';
        v = -v;
    }
    const auto hundredths =
        static_cast<std::uint64_t>(std::llround(v * 100.0));
    out += std::to_string(hundredths / 100);
    out += '.';
    out += static_cast<char>('0' + hundredths / 10 % 10);
    out += static_cast<char>('0' + hundredths % 10);
    return out;
}

// ----------------------------------------------------------------
// EpochSampler.
// ----------------------------------------------------------------

EpochSampler::EpochSampler(std::vector<std::string> channel_names)
    : names(std::move(channel_names)), slots(names.size())
{
    for (auto &s : slots)
        s.fill(0);
}

void
EpochSampler::grow()
{
    ++shift;
    for (auto &s : slots) {
        for (std::size_t i = 0; i < kEpochSlots / 2; ++i)
            s[i] = s[2 * i] + s[2 * i + 1];
        std::fill(s.begin() + kEpochSlots / 2, s.end(), 0);
    }
}

void
EpochSampler::reset()
{
    shift = 0;
    for (auto &s : slots)
        s.fill(0);
}

void
EpochSampler::addRange(std::size_t channel, Cycles start, Cycles end)
{
    if (end <= start)
        return;
    fit(end - 1);
    auto &s = slots[channel];
    const std::size_t first = start >> shift;
    const std::size_t last = (end - 1) >> shift;
    for (std::size_t i = first; i <= last; ++i) {
        const Cycles lo =
            std::max<Cycles>(start, Cycles{i} << shift);
        const Cycles hi =
            std::min<Cycles>(end, Cycles{i + 1} << shift);
        s[i] += hi - lo;
    }
}

HwTimeline
EpochSampler::finalize(Cycles total_cycles)
{
    HwTimeline t;
    t.cycles = total_cycles;
    if (total_cycles == 0) {
        t.epochCycles = 1;
        for (const std::string &n : names)
            t.channels.push_back({n, {}});
        return t;
    }
    fit(total_cycles - 1);
    t.epochCycles = Cycles{1} << shift;
    const std::size_t epochs = static_cast<std::size_t>(
        (total_cycles + t.epochCycles - 1) >> shift);
    for (std::size_t ch = 0; ch < names.size(); ++ch) {
        EpochChannel channel;
        channel.name = names[ch];
        channel.counts.assign(slots[ch].begin(),
                              slots[ch].begin() + epochs);
        // Sub-cycle rounding on fractional-clock machines can leave
        // events one slot past ceil(total / len); conserve them.
        for (std::size_t i = epochs; i < kEpochSlots; ++i)
            channel.counts.back() += slots[ch][i];
        t.channels.push_back(std::move(channel));
    }
    return t;
}

// ----------------------------------------------------------------
// triarch.hw.v1 writer.
// ----------------------------------------------------------------

namespace
{

void
writeCell(json::Writer &w, const HwCell &cell)
{
    w.beginObject();
    w.member("machine", cell.machine);
    w.member("kernel", cell.kernel);
    w.member("cycles", cell.cycles);

    w.key("breakdown").beginObject(json::Writer::Style::Compact);
    for (stats::CycleCategory c : stats::allCycleCategories())
        w.member(stats::cycleCategoryToken(c), cell.breakdown[c]);
    w.endObject();

    w.key("metrics").beginObject(json::Writer::Style::Compact);
    for (const HwMetric &m : cell.metrics) {
        w.key(m.name).beginObject();
        w.member("value", m.value);
        w.member("rate", m.rate);
        w.endObject();
    }
    w.endObject();

    w.key("verdict").beginObject(json::Writer::Style::Compact);
    w.member("component", cell.verdict.component);
    w.member("category",
             stats::cycleCategoryToken(cell.verdict.category));
    w.member("detail", cell.verdict.detail);
    w.endObject();

    w.key("timeline").beginObject();
    w.member("cycles", cell.timeline.cycles);
    w.member("epoch_cycles", cell.timeline.epochCycles);
    w.key("channels").beginObject();
    for (const EpochChannel &ch : cell.timeline.channels) {
        w.key(ch.name).beginArray(json::Writer::Style::Compact);
        for (std::uint64_t v : ch.counts)
            w.value(v);
        w.endArray();
    }
    w.endObject();
    w.endObject();

    w.endObject();
}

} // namespace

void
writeHwReport(std::ostream &os, const HwReport &report, bool compact)
{
    const auto style = compact ? json::Writer::Style::Compact
                               : json::Writer::Style::Pretty;
    json::Writer w(os);
    w.beginObject(style);
    w.member("schema", "triarch.hw.v1");
    if (!report.configHash.empty())
        w.member("config_hash", report.configHash);
    w.member("epoch_slots", kEpochSlots);
    w.key("cells").beginArray(style);
    for (const HwCell &cell : report.cells)
        writeCell(w, cell);
    w.endArray();
    w.endObject();
    w.finish();
    if (!compact)
        os << "\n";
}

std::string
renderHwReport(const HwReport &report, bool compact)
{
    std::ostringstream os;
    writeHwReport(os, report, compact);
    return os.str();
}

// ----------------------------------------------------------------
// triarch.hw.v1 parser + validator.
// ----------------------------------------------------------------

namespace
{

bool
parseTimeline(const json::Value &v, HwTimeline &out,
              const std::string &where, std::string *error)
{
    if (!v.isObject()) {
        reject(error, where + ": timeline is not an object");
        return false;
    }
    const json::Value *cycles = v.field("cycles");
    if (!cycles || !cycles->asU64(out.cycles)) {
        reject(error, where + ": timeline has no integer 'cycles'");
        return false;
    }
    const json::Value *epochCycles = v.field("epoch_cycles");
    if (!epochCycles || !epochCycles->asU64(out.epochCycles) ||
        out.epochCycles == 0 ||
        (out.epochCycles & (out.epochCycles - 1)) != 0) {
        reject(error, where + ": timeline 'epoch_cycles' must be a "
                              "power of two");
        return false;
    }
    const json::Value *channels = v.field("channels");
    if (!channels || !channels->isObject()) {
        reject(error, where + ": timeline has no 'channels' object");
        return false;
    }
    const std::size_t epochs =
        out.cycles == 0
            ? 0
            : static_cast<std::size_t>(
                  (out.cycles + out.epochCycles - 1) / out.epochCycles);
    if (epochs > kEpochSlots) {
        reject(error, where + ": epoch_cycles " +
                          std::to_string(out.epochCycles) +
                          " yields " + std::to_string(epochs) +
                          " epochs (max " +
                          std::to_string(kEpochSlots) + ")");
        return false;
    }
    std::set<std::string> seen;
    for (const auto &[name, counts] : channels->fields) {
        if (name.empty() || !seen.insert(name).second) {
            reject(error,
                   where + ": empty or duplicate channel name");
            return false;
        }
        if (!counts.isArray()) {
            reject(error, where + ": channel '" + name +
                              "' is not an array");
            return false;
        }
        if (counts.items.size() != epochs) {
            reject(error,
                   where + ": channel '" + name + "' has " +
                       std::to_string(counts.items.size()) +
                       " epochs, expected " + std::to_string(epochs));
            return false;
        }
        EpochChannel channel;
        channel.name = name;
        for (const json::Value &item : counts.items) {
            std::uint64_t n = 0;
            if (!item.asU64(n)) {
                reject(error, where + ": channel '" + name +
                                  "' has a non-integer count");
                return false;
            }
            channel.counts.push_back(n);
        }
        out.channels.push_back(std::move(channel));
    }
    return true;
}

bool
parseCell(const json::Value &v, HwCell &out, std::string *error)
{
    if (!v.isObject()) {
        reject(error, "cell is not an object");
        return false;
    }
    const json::Value *machine = v.field("machine");
    const json::Value *kernel = v.field("kernel");
    if (!machine || !machine->isString() || machine->text.empty() ||
        !kernel || !kernel->isString() || kernel->text.empty()) {
        reject(error, "cell lacks machine/kernel tokens");
        return false;
    }
    out.machine = machine->text;
    out.kernel = kernel->text;
    const std::string where = out.machine + "/" + out.kernel;

    const json::Value *cycles = v.field("cycles");
    if (!cycles || !cycles->asU64(out.cycles)) {
        reject(error, where + ": no integer 'cycles'");
        return false;
    }

    const json::Value *breakdown = v.field("breakdown");
    if (!breakdown || !breakdown->isObject()) {
        reject(error, where + ": no 'breakdown' object");
        return false;
    }
    for (stats::CycleCategory c : stats::allCycleCategories()) {
        const std::string &token = stats::cycleCategoryToken(c);
        const json::Value *cat = breakdown->field(token);
        std::uint64_t n = 0;
        if (!cat || !cat->asU64(n)) {
            reject(error, where + ": breakdown lacks integer '" +
                              token + "'");
            return false;
        }
        out.breakdown.cycles[static_cast<unsigned>(c)] = n;
    }
    out.breakdown.total = out.cycles;
    if (out.breakdown.categorySum() != out.cycles) {
        reject(error,
               where + ": breakdown sums to " +
                   std::to_string(out.breakdown.categorySum()) +
                   ", not the cell's " + std::to_string(out.cycles) +
                   " cycles");
        return false;
    }

    const json::Value *metrics = v.field("metrics");
    if (!metrics || !metrics->isObject()) {
        reject(error, where + ": no 'metrics' object");
        return false;
    }
    std::set<std::string> metricNames;
    for (const auto &[name, metric] : metrics->fields) {
        if (name.empty() || !metricNames.insert(name).second) {
            reject(error, where + ": empty or duplicate metric name");
            return false;
        }
        HwMetric m;
        m.name = name;
        const json::Value *value =
            metric.isObject() ? metric.field("value") : nullptr;
        const json::Value *rate =
            metric.isObject() ? metric.field("rate") : nullptr;
        if (!value || !value->asDouble(m.value) || !rate ||
            !rate->isBool()) {
            reject(error, where + ": metric '" + name +
                              "' needs numeric 'value' and boolean "
                              "'rate'");
            return false;
        }
        m.rate = rate->boolean;
        if (!std::isfinite(m.value)) {
            reject(error,
                   where + ": metric '" + name + "' is not finite");
            return false;
        }
        if (m.rate && (m.value < 0.0 || m.value > 1.0)) {
            reject(error, where + ": rate '" + name + "' is " +
                              json::formatDouble(m.value) +
                              ", outside [0, 1]");
            return false;
        }
        out.metrics.push_back(std::move(m));
    }

    const json::Value *verdict = v.field("verdict");
    if (!verdict || !verdict->isObject()) {
        reject(error, where + ": no 'verdict' object");
        return false;
    }
    const json::Value *component = verdict->field("component");
    const json::Value *category = verdict->field("category");
    const json::Value *detail = verdict->field("detail");
    if (!component || !component->isString() || !category ||
        !category->isString() || !detail || !detail->isString()) {
        reject(error, where + ": verdict needs component/category/"
                              "detail strings");
        return false;
    }
    out.verdict.component = component->text;
    out.verdict.detail = detail->text;
    const auto cat = parseCategoryToken(category->text);
    if (!cat) {
        reject(error, where + ": unknown verdict category '" +
                          category->text + "'");
        return false;
    }
    out.verdict.category = *cat;

    // The cross-checks: the verdict must agree with the D9 cycle
    // partition, and the named component must be one that can
    // dominate that category.
    const stats::CycleCategory dominant =
        dominantCategory(out.breakdown);
    if (*cat != dominant) {
        reject(error,
               where + ": verdict category '" + category->text +
                   "' contradicts the dominant breakdown category '" +
                   stats::cycleCategoryToken(dominant) + "'");
        return false;
    }
    const auto componentCat = componentCategory(out.verdict.component);
    if (!componentCat) {
        reject(error, where + ": unknown verdict component '" +
                          out.verdict.component + "'");
        return false;
    }
    if (*componentCat != *cat) {
        reject(error,
               where + ": component '" + out.verdict.component +
                   "' belongs to category '" +
                   stats::cycleCategoryToken(*componentCat) +
                   "', not '" + category->text + "'");
        return false;
    }

    const json::Value *timeline = v.field("timeline");
    if (!timeline) {
        reject(error, where + ": no 'timeline' object");
        return false;
    }
    std::string timelineError;
    if (!parseTimeline(*timeline, out.timeline, where,
                       &timelineError)) {
        reject(error, timelineError);
        return false;
    }
    return true;
}

} // namespace

std::optional<HwReport>
parseHwReport(const std::string &text, std::string *error)
{
    std::string parseError;
    const auto root = json::parse(text, &parseError);
    if (!root)
        return reject(error, "JSON parse error: " + parseError);
    if (!root->isObject())
        return reject(error, "document root is not an object");

    const json::Value *schema = root->field("schema");
    if (!schema || !schema->isString())
        return reject(error, "document has no schema tag");
    if (schema->text != "triarch.hw.v1") {
        return reject(error, "unsupported schema '" + schema->text +
                                 "' (want triarch.hw.v1)");
    }

    HwReport report;
    if (const json::Value *hash = root->field("config_hash")) {
        if (!hash->isString())
            return reject(error, "config_hash is not a string");
        report.configHash = hash->text;
    }

    const json::Value *slots = root->field("epoch_slots");
    std::uint64_t slotCount = 0;
    if (!slots || !slots->asU64(slotCount) ||
        slotCount != kEpochSlots) {
        return reject(error, "epoch_slots must be " +
                                 std::to_string(kEpochSlots));
    }

    const json::Value *cells = root->field("cells");
    if (!cells || !cells->isArray())
        return reject(error, "document has no cells array");

    std::set<std::pair<std::string, std::string>> seen;
    for (const json::Value &cellValue : cells->items) {
        HwCell cell;
        std::string cellError;
        if (!parseCell(cellValue, cell, &cellError))
            return reject(error, cellError);
        if (!seen.emplace(cell.machine, cell.kernel).second) {
            return reject(error, "duplicate cell " + cell.machine +
                                     "/" + cell.kernel);
        }
        report.cells.push_back(std::move(cell));
    }
    return report;
}

std::optional<HwReport>
loadHwReportFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is)
        return reject(error, path + ": cannot open for reading");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string nested;
    auto report = parseHwReport(buffer.str(), &nested);
    if (!report)
        return reject(error, path + ": " + nested);
    return report;
}

// ----------------------------------------------------------------
// HwRegistry.
// ----------------------------------------------------------------

void
HwRegistry::capture(HwCell cell)
{
    triarch_assert(!cell.machine.empty() && !cell.kernel.empty(),
                   "hw cell capture without machine/kernel tokens");
    const std::string label = cell.machine + "." + cell.kernel;
    std::lock_guard<std::mutex> lock(mu);
    cells.insert_or_assign(label, std::move(cell));
}

std::size_t
HwRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cells.size();
}

void
HwRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    cells.clear();
}

std::optional<HwCell>
HwRegistry::find(const std::string &machine,
                 const std::string &kernel) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = cells.find(machine + "." + kernel);
    if (it == cells.end())
        return std::nullopt;
    return it->second;
}

HwReport
HwRegistry::report(std::string config_hash) const
{
    HwReport out;
    out.configHash = std::move(config_hash);
    std::lock_guard<std::mutex> lock(mu);
    out.cells.reserve(cells.size());
    for (const auto &[label, cell] : cells)
        out.cells.push_back(cell);
    return out;
}

HwRegistry &
HwRegistry::global()
{
    static HwRegistry registry;
    return registry;
}

} // namespace triarch::hw
