#include "stats.hh"

#include "logging.hh"

namespace triarch::stats
{

void
StatGroup::addScalar(const std::string &stat_name, Scalar *s,
                     const std::string &desc)
{
    triarch_assert(s != nullptr, "null scalar for ", stat_name);
    scalars.push_back({stat_name, s, desc});
}

void
StatGroup::addAverage(const std::string &stat_name, Average *a,
                      const std::string &desc)
{
    triarch_assert(a != nullptr, "null average for ", stat_name);
    averages.push_back({stat_name, a, desc});
}

std::uint64_t
StatGroup::scalar(const std::string &stat_name) const
{
    for (const auto &e : scalars) {
        if (e.name == stat_name)
            return e.stat->value();
    }
    triarch_panic("unknown scalar stat '", stat_name, "' in group ", _name);
}

double
StatGroup::average(const std::string &stat_name) const
{
    for (const auto &e : averages) {
        if (e.name == stat_name)
            return e.stat->mean();
    }
    triarch_panic("unknown average stat '", stat_name, "' in group ",
                  _name);
}

bool
StatGroup::hasScalar(const std::string &stat_name) const
{
    for (const auto &e : scalars) {
        if (e.name == stat_name)
            return true;
    }
    return false;
}

void
StatGroup::resetAll()
{
    for (auto &e : scalars)
        e.stat->reset();
    for (auto &e : averages)
        e.stat->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : scalars) {
        os << _name << "." << e.name << " " << e.stat->value();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &e : averages) {
        os << _name << "." << e.name << " " << e.stat->mean();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
}

std::vector<std::string>
StatGroup::scalarNames() const
{
    std::vector<std::string> names;
    names.reserve(scalars.size());
    for (const auto &e : scalars)
        names.push_back(e.name);
    return names;
}

} // namespace triarch::stats
