#include "stats.hh"

#include <cmath>

#include "logging.hh"

namespace triarch::stats
{

double
Histogram::quantile(double q) const
{
    triarch_assert(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    const std::uint64_t total_count = count();
    if (total_count == 0)
        return 0.0;
    // Rank of the sample we want, 1-based; q = 0 asks for the first.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_count)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < NumBuckets; ++i) {
        const std::uint64_t in_bucket = bucket(i);
        if (in_bucket == 0)
            continue;
        if (seen + in_bucket < rank) {
            seen += in_bucket;
            continue;
        }
        const auto lo = static_cast<double>(bucketLow(i));
        const auto hi = static_cast<double>(bucketHigh(i));
        const auto within = static_cast<double>(rank - seen);
        double est =
            lo + (hi - lo) * within / static_cast<double>(in_bucket);
        est = std::max(est, static_cast<double>(minValue()));
        est = std::min(est, static_cast<double>(maxValue()));
        return est;
    }
    return static_cast<double>(maxValue());
}

void
StatGroup::addScalar(const std::string &stat_name, Scalar *s,
                     const std::string &desc)
{
    triarch_assert(s != nullptr, "null scalar for ", stat_name);
    scalars.push_back({stat_name, s, desc});
}

void
StatGroup::addAtomicScalar(const std::string &stat_name, AtomicScalar *s,
                           const std::string &desc)
{
    triarch_assert(s != nullptr, "null atomic scalar for ", stat_name);
    atomics.push_back({stat_name, s, desc});
}

void
StatGroup::addAverage(const std::string &stat_name, Average *a,
                      const std::string &desc)
{
    triarch_assert(a != nullptr, "null average for ", stat_name);
    averages.push_back({stat_name, a, desc});
}

void
StatGroup::addDistribution(const std::string &stat_name, Distribution *d,
                           const std::string &desc)
{
    triarch_assert(d != nullptr, "null distribution for ", stat_name);
    distributions.push_back({stat_name, d, desc});
}

void
StatGroup::addHistogram(const std::string &stat_name, Histogram *h,
                        const std::string &desc)
{
    triarch_assert(h != nullptr, "null histogram for ", stat_name);
    histograms.push_back({stat_name, h, desc});
}

std::uint64_t
StatGroup::scalar(const std::string &stat_name) const
{
    for (const auto &e : scalars) {
        if (e.name == stat_name)
            return e.stat->value();
    }
    for (const auto &e : atomics) {
        if (e.name == stat_name)
            return e.stat->value();
    }
    triarch_panic("unknown scalar stat '", stat_name, "' in group ", _name);
}

double
StatGroup::average(const std::string &stat_name) const
{
    for (const auto &e : averages) {
        if (e.name == stat_name)
            return e.stat->mean();
    }
    triarch_panic("unknown average stat '", stat_name, "' in group ",
                  _name);
}

const Distribution &
StatGroup::distribution(const std::string &stat_name) const
{
    for (const auto &e : distributions) {
        if (e.name == stat_name)
            return *e.stat;
    }
    triarch_panic("unknown distribution stat '", stat_name,
                  "' in group ", _name);
}

const Histogram &
StatGroup::histogram(const std::string &stat_name) const
{
    for (const auto &e : histograms) {
        if (e.name == stat_name)
            return *e.stat;
    }
    triarch_panic("unknown histogram stat '", stat_name, "' in group ",
                  _name);
}

bool
StatGroup::hasScalar(const std::string &stat_name) const
{
    for (const auto &e : scalars) {
        if (e.name == stat_name)
            return true;
    }
    for (const auto &e : atomics) {
        if (e.name == stat_name)
            return true;
    }
    return false;
}

void
StatGroup::resetAll()
{
    for (auto &e : scalars)
        e.stat->reset();
    for (auto &e : atomics)
        e.stat->reset();
    for (auto &e : averages)
        e.stat->reset();
    for (auto &e : distributions)
        e.stat->reset();
    for (auto &e : histograms)
        e.stat->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : scalars) {
        os << _name << "." << e.name << " " << e.stat->value();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &e : atomics) {
        os << _name << "." << e.name << " " << e.stat->value();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &e : averages) {
        os << _name << "." << e.name << " " << e.stat->mean();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &e : distributions) {
        const Distribution &d = *e.stat;
        os << _name << "." << e.name << " mean " << d.mean()
           << " samples " << d.samples();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
        const double width =
            (d.high() - d.low()) / static_cast<double>(d.numBuckets());
        if (d.under()) {
            os << _name << "." << e.name << "[<" << d.low() << "] "
               << d.under() << "\n";
        }
        for (std::size_t i = 0; i < d.numBuckets(); ++i) {
            if (!d.bucket(i))
                continue;
            const double lo = d.low() + width * static_cast<double>(i);
            os << _name << "." << e.name << "[" << lo << ","
               << lo + width << ") " << d.bucket(i) << "\n";
        }
        if (d.over()) {
            os << _name << "." << e.name << "[>=" << d.high() << "] "
               << d.over() << "\n";
        }
    }
    // One line per non-empty histogram; empty ones are invisible so
    // a profiling-off dump is byte-identical to the pre-host repo.
    for (const auto &e : histograms) {
        const Histogram &h = *e.stat;
        if (h.count() == 0)
            continue;
        os << _name << "." << e.name << " count " << h.count()
           << " median " << h.median() << " p95 " << h.p95()
           << " min " << h.minValue() << " max " << h.maxValue();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
}

std::vector<std::string>
StatGroup::scalarNames() const
{
    std::vector<std::string> names;
    names.reserve(scalars.size() + atomics.size());
    for (const auto &e : scalars)
        names.push_back(e.name);
    for (const auto &e : atomics)
        names.push_back(e.name);
    return names;
}

std::vector<ScalarReading>
StatGroup::scalarReadings() const
{
    std::vector<ScalarReading> out;
    out.reserve(scalars.size() + atomics.size());
    for (const auto &e : scalars)
        out.push_back({e.name, e.desc, e.stat->value()});
    for (const auto &e : atomics)
        out.push_back({e.name, e.desc, e.stat->value()});
    return out;
}

std::vector<AverageReading>
StatGroup::averageReadings() const
{
    std::vector<AverageReading> out;
    out.reserve(averages.size());
    for (const auto &e : averages)
        out.push_back({e.name, e.desc, e.stat->mean(),
                       e.stat->samples()});
    return out;
}

std::vector<DistributionReading>
StatGroup::distributionReadings() const
{
    std::vector<DistributionReading> out;
    out.reserve(distributions.size());
    for (const auto &e : distributions) {
        const Distribution &d = *e.stat;
        DistributionReading r{e.name, e.desc, d.low(), d.high(),
                              d.mean(), d.samples(), d.under(),
                              d.over(), {}};
        r.buckets.reserve(d.numBuckets());
        for (std::size_t i = 0; i < d.numBuckets(); ++i)
            r.buckets.push_back(d.bucket(i));
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<HistogramReading>
StatGroup::histogramReadings() const
{
    std::vector<HistogramReading> out;
    for (const auto &e : histograms) {
        const Histogram &h = *e.stat;
        if (h.count() == 0)
            continue;
        HistogramReading r{e.name,       e.desc,     h.count(),
                           h.sum(),      h.minValue(), h.maxValue(),
                           h.median(),   h.p95(),    {}};
        for (std::size_t i = 0; i < Histogram::NumBuckets; ++i) {
            if (const std::uint64_t c = h.bucket(i))
                r.buckets.emplace_back(static_cast<unsigned>(i), c);
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace triarch::stats
