/**
 * @file
 * Fundamental types shared by every simulator in triarch.
 */

#ifndef TRIARCH_SIM_TYPES_HH
#define TRIARCH_SIM_TYPES_HH

#include <cstdint>

namespace triarch
{

/** Simulated cycle count. All timing models count in machine cycles. */
using Cycles = std::uint64_t;

/** Byte address into a simulated memory. */
using Addr = std::uint64_t;

/** 32-bit machine word; floats travel through memory bit-cast to this. */
using Word = std::uint32_t;

} // namespace triarch

#endif // TRIARCH_SIM_TYPES_HH
