#include "cycle_account.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace triarch::stats
{

const std::array<CycleCategory, kNumCycleCategories> &
allCycleCategories()
{
    static const std::array<CycleCategory, kNumCycleCategories> all = {
        CycleCategory::Compute,       CycleCategory::CacheStall,
        CycleCategory::DramDma,       CycleCategory::NetworkSync,
        CycleCategory::SetupReadback,
    };
    return all;
}

const std::string &
cycleCategoryToken(CycleCategory c)
{
    static const std::array<std::string, kNumCycleCategories> tokens = {
        "compute", "cache_stall", "dram_dma", "network_sync",
        "setup_readback",
    };
    const auto i = static_cast<unsigned>(c);
    triarch_assert(i < kNumCycleCategories, "bad cycle category ", i);
    return tokens[i];
}

const std::string &
cycleCategoryDesc(CycleCategory c)
{
    static const std::array<std::string, kNumCycleCategories> descs = {
        "issue/compute cycles (incl. dependency latency)",
        "cycles stalled on cache misses",
        "DRAM access / DMA or stream transfer cycles",
        "network waits, load-imbalance and sync idle",
        "host issue, setup and readback overhead",
    };
    const auto i = static_cast<unsigned>(c);
    triarch_assert(i < kNumCycleCategories, "bad cycle category ", i);
    return descs[i];
}

std::uint64_t
CycleBreakdown::categorySum() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : cycles)
        sum += c;
    return sum;
}

double
CycleBreakdown::fraction(CycleCategory c) const
{
    return total ? static_cast<double>((*this)[c])
                       / static_cast<double>(total)
                 : 0.0;
}

void
CycleAccount::charge(CycleCategory c, double cycles)
{
    triarch_assert(cycles >= 0.0, "negative cycle charge ", cycles,
                   " to ", cycleCategoryToken(c));
    acc[static_cast<unsigned>(c)] += cycles;
}

double
CycleAccount::charged(CycleCategory c) const
{
    return acc[static_cast<unsigned>(c)];
}

double
CycleAccount::chargedTotal() const
{
    double sum = 0.0;
    for (double a : acc)
        sum += a;
    return sum;
}

void
CycleAccount::reset()
{
    acc.fill(0.0);
}

namespace
{

/**
 * Turn non-negative per-category quotas (summing to ~total) into an
 * integer partition summing exactly to @p total: floor each, then
 * distribute the leftover cycles by largest fractional remainder
 * (ties broken by category order for determinism).
 */
CycleBreakdown
integerize(const std::array<double, kNumCycleCategories> &quota,
           std::uint64_t total)
{
    CycleBreakdown b;
    b.total = total;

    std::uint64_t assigned = 0;
    std::array<double, kNumCycleCategories> frac{};
    for (unsigned i = 0; i < kNumCycleCategories; ++i) {
        const double q = std::max(0.0, quota[i]);
        const auto whole = static_cast<std::uint64_t>(q);
        b.cycles[i] = whole;
        frac[i] = q - static_cast<double>(whole);
        assigned += whole;
    }
    // Floating-point error can overshoot by a cycle or two; trim from
    // the largest categories first.
    while (assigned > total) {
        const auto largest = static_cast<unsigned>(
            std::max_element(b.cycles.begin(), b.cycles.end())
            - b.cycles.begin());
        triarch_assert(b.cycles[largest] > 0,
                       "cycle integerization underflow");
        --b.cycles[largest];
        --assigned;
    }
    while (assigned < total) {
        unsigned pick = 0;
        for (unsigned i = 1; i < kNumCycleCategories; ++i) {
            if (frac[i] > frac[pick])
                pick = i;
        }
        ++b.cycles[pick];
        frac[pick] = -1.0;
        ++assigned;
    }
    triarch_assert(b.categorySum() == b.total,
                   "cycle breakdown does not sum to total");
    return b;
}

} // namespace

CycleBreakdown
CycleAccount::finalize(std::uint64_t total, CycleCategory residual) const
{
    const double charged = chargedTotal();
    const double slack =
        std::max(2.0, 1e-6 * static_cast<double>(total));
    triarch_assert(charged <= static_cast<double>(total) + slack,
                   "cycle account over-attributed: charged ", charged,
                   " of ", total, " total cycles");

    std::array<double, kNumCycleCategories> quota = acc;
    const double leftover = static_cast<double>(total) - charged;
    if (leftover > 0.0)
        quota[static_cast<unsigned>(residual)] += leftover;
    return integerize(quota, total);
}

CycleBreakdown
CycleAccount::finalizeScaled(std::uint64_t total) const
{
    const double charged = chargedTotal();
    if (charged <= 0.0 || total == 0)
        return integerize({}, total);
    const double scale = static_cast<double>(total) / charged;
    std::array<double, kNumCycleCategories> quota{};
    for (unsigned i = 0; i < kNumCycleCategories; ++i)
        quota[i] = acc[i] * scale;
    return integerize(quota, total);
}

void
CycleTimeline::clear()
{
    intervals.clear();
    lastIdx.fill(SIZE_MAX);
    recorded = 0;
}

CycleBreakdown
CycleTimeline::resolve(std::uint64_t total, CycleCategory gap) const
{
    // Sweep sorted open/close events; between two consecutive event
    // positions the covering set is constant, so the whole segment
    // goes to the best active category. Events pack into one 64-bit
    // key — (position << 4) | (category << 1) | is_close — so the
    // sort runs over flat integers (positions stay far below 2^60;
    // the order of same-position events is irrelevant because every
    // event at a position applies before the next segment is
    // credited).
    std::vector<std::uint64_t> events;
    events.reserve(intervals.size() * 2);
    for (const Interval &iv : intervals) {
        const Cycles s = std::min<Cycles>(iv.start, total);
        const Cycles e = std::min<Cycles>(iv.end, total);
        if (e <= s)
            continue;
        events.push_back((s << 4) | (iv.cat << 1));
        events.push_back((e << 4) | (iv.cat << 1) | 1);
    }
    std::sort(events.begin(), events.end());

    CycleBreakdown b;
    b.total = total;
    std::array<std::int64_t, kNumCycleCategories> active{};
    auto credit = [&](Cycles from, Cycles to) {
        if (to <= from)
            return;
        unsigned winner = static_cast<unsigned>(gap);
        for (unsigned c = 0; c < kNumCycleCategories; ++c) {
            if (active[c] > 0) {
                winner = c;
                break;
            }
        }
        b.cycles[winner] += to - from;
    };

    Cycles prev = 0;
    std::size_t i = 0;
    while (i < events.size()) {
        const Cycles pos = events[i] >> 4;
        credit(prev, pos);
        while (i < events.size() && (events[i] >> 4) == pos) {
            const unsigned cat = (events[i] >> 1) & 0x7;
            active[cat] += (events[i] & 1) ? -1 : 1;
            ++i;
        }
        prev = pos;
    }
    credit(prev, total);
    triarch_assert(b.categorySum() == b.total,
                   "timeline resolution does not sum to total");
    return b;
}

void
BreakdownStats::registerIn(StatGroup &group)
{
    for (CycleCategory c : allCycleCategories()) {
        group.addScalar("account_" + cycleCategoryToken(c),
                        &cats[static_cast<unsigned>(c)],
                        cycleCategoryDesc(c));
    }
    group.addScalar("account_total", &total,
                    "total cycles the account partitions");
}

void
BreakdownStats::record(const CycleBreakdown &b)
{
    for (CycleCategory c : allCycleCategories())
        cats[static_cast<unsigned>(c)].set(b[c]);
    total.set(b.total);
}

} // namespace triarch::stats
