#include "json.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace triarch::json
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream os;
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c);
                out += os.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

// ----------------------------------------------------------------
// Writer.
// ----------------------------------------------------------------

void
Writer::indent()
{
    os << '\n';
    for (std::size_t i = 0; i < stack.size(); ++i)
        os << "  ";
}

void
Writer::beforeElement()
{
    if (stack.empty()) {
        triarch_assert(!rootWritten,
                       "JSON writer: two root values in one document");
        rootWritten = true;
        return;
    }
    Frame &top = stack.back();
    if (top.keyPending) {
        // The separator after the key was already written.
        top.keyPending = false;
        return;
    }
    if (!top.empty)
        os << (top.style == Style::Pretty ? "," : ", ");
    if (top.style == Style::Pretty)
        indent();
    top.empty = false;
}

Writer &
Writer::beginObject(Style style)
{
    // Nested containers of a Compact container stay on its line.
    if (!stack.empty() && stack.back().style == Style::Compact)
        style = Style::Compact;
    beforeElement();
    os << '{';
    stack.push_back({'}', style});
    return *this;
}

Writer &
Writer::beginArray(Style style)
{
    if (!stack.empty() && stack.back().style == Style::Compact)
        style = Style::Compact;
    beforeElement();
    os << '[';
    stack.push_back({']', style});
    return *this;
}

Writer &
Writer::endObject()
{
    triarch_assert(!stack.empty() && stack.back().closer == '}',
                   "JSON writer: endObject with no open object");
    triarch_assert(!stack.back().keyPending,
                   "JSON writer: object closed after a dangling key");
    const Frame top = stack.back();
    stack.pop_back();
    if (top.style == Style::Pretty && !top.empty)
        indent();
    os << '}';
    return *this;
}

Writer &
Writer::endArray()
{
    triarch_assert(!stack.empty() && stack.back().closer == ']',
                   "JSON writer: endArray with no open array");
    const Frame top = stack.back();
    stack.pop_back();
    if (top.style == Style::Pretty && !top.empty)
        indent();
    os << ']';
    return *this;
}

Writer &
Writer::key(const std::string &name)
{
    triarch_assert(!stack.empty() && stack.back().closer == '}',
                   "JSON writer: key() outside an object");
    triarch_assert(!stack.back().keyPending,
                   "JSON writer: two keys in a row");
    beforeElement();
    os << '"' << escape(name) << "\": ";
    stack.back().keyPending = true;
    return *this;
}

Writer &
Writer::value(const std::string &v)
{
    beforeElement();
    os << '"' << escape(v) << '"';
    return *this;
}

Writer &
Writer::value(const char *v)
{
    return value(std::string(v));
}

Writer &
Writer::value(bool v)
{
    beforeElement();
    os << (v ? "true" : "false");
    return *this;
}

Writer &
Writer::value(double v)
{
    beforeElement();
    os << formatDouble(v);
    return *this;
}

Writer &
Writer::valueInt(std::int64_t v)
{
    beforeElement();
    os << v;
    return *this;
}

Writer &
Writer::valueUint(std::uint64_t v)
{
    beforeElement();
    os << v;
    return *this;
}

Writer &
Writer::rawValue(const std::string &rendered)
{
    beforeElement();
    os << rendered;
    return *this;
}

void
Writer::finish()
{
    triarch_assert(stack.empty(),
                   "JSON writer: document finished with ", stack.size(),
                   " unclosed container(s)");
    triarch_assert(rootWritten, "JSON writer: empty document");
}

// ----------------------------------------------------------------
// Reader.
// ----------------------------------------------------------------

const Value *
Value::field(const std::string &name) const
{
    for (const auto &[key, value] : fields) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

bool
Value::asU64(std::uint64_t &out) const
{
    if (kind != Kind::Number)
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return errno == 0 && end && *end == '\0'
           && text.find('-') == std::string::npos;
}

bool
Value::asDouble(double &out) const
{
    if (kind != Kind::Number)
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return errno == 0 && end && *end == '\0' && end != text.c_str();
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : in(text) {}

    std::optional<Value>
    parse(std::string *error)
    {
        err = error;
        Value root;
        if (!parseValue(root))
            return std::nullopt;
        skipWs();
        if (pos != in.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return root;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (err && err->empty()) {
            *err = "JSON error at offset " + std::to_string(pos) + ": "
                   + why;
        }
    }

    void
    skipWs()
    {
        while (pos < in.size()
               && std::isspace(static_cast<unsigned char>(in[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (in.compare(pos, n, word) != 0) {
            fail(std::string("expected '") + word + "'");
            return false;
        }
        pos += n;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= in.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (in[pos]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.text);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out)
    {
        out.kind = Value::Kind::Object;
        ++pos;     // '{'
        skipWs();
        if (pos < in.size() && in[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= in.size() || in[pos] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= in.size() || in[pos] != ':') {
                fail("expected ':' after key");
                return false;
            }
            ++pos;
            Value value;
            if (!parseValue(value))
                return false;
            out.fields.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos < in.size() && in[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < in.size() && in[pos] == '}') {
                ++pos;
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    parseArray(Value &out)
    {
        out.kind = Value::Kind::Array;
        ++pos;     // '['
        skipWs();
        if (pos < in.size() && in[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            Value value;
            if (!parseValue(value))
                return false;
            out.items.push_back(std::move(value));
            skipWs();
            if (pos < in.size() && in[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < in.size() && in[pos] == ']') {
                ++pos;
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos;      // opening quote
        while (pos < in.size() && in[pos] != '"') {
            char c = in[pos];
            if (c == '\\') {
                if (pos + 1 >= in.size()) {
                    fail("dangling escape");
                    return false;
                }
                const char esc = in[pos + 1];
                pos += 2;
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > in.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    const unsigned code = static_cast<unsigned>(
                        std::strtoul(in.substr(pos, 4).c_str(),
                                     nullptr, 16));
                    pos += 4;
                    // Only the ASCII subset our writers emit.
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return false;
                }
            } else {
                out += c;
                ++pos;
            }
        }
        if (pos >= in.size()) {
            fail("unterminated string");
            return false;
        }
        ++pos;      // closing quote
        return true;
    }

    bool
    parseNumber(Value &out)
    {
        out.kind = Value::Kind::Number;
        const std::size_t start = pos;
        if (pos < in.size() && (in[pos] == '-' || in[pos] == '+'))
            ++pos;
        while (pos < in.size()
               && (std::isdigit(static_cast<unsigned char>(in[pos]))
                   || in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E'
                   || in[pos] == '-' || in[pos] == '+'))
            ++pos;
        if (pos == start) {
            fail("expected a value");
            return false;
        }
        out.text = in.substr(start, pos - start);
        return true;
    }

    const std::string &in;
    std::size_t pos = 0;
    std::string *err = nullptr;
};

} // namespace

std::optional<Value>
parse(const std::string &text, std::string *error)
{
    return Parser(text).parse(error);
}

namespace
{

void
renderInto(std::string &out, const Value &v)
{
    switch (v.kind) {
      case Value::Kind::Null:
        out += "null";
        break;
      case Value::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case Value::Kind::Number:
        // Raw text, not a reformatted double: bit-exact round trip.
        out += v.text;
        break;
      case Value::Kind::String:
        out += '"';
        out += escape(v.text);
        out += '"';
        break;
      case Value::Kind::Array:
        out += '[';
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            if (i)
                out += ", ";
            renderInto(out, v.items[i]);
        }
        out += ']';
        break;
      case Value::Kind::Object:
        out += '{';
        for (std::size_t i = 0; i < v.fields.size(); ++i) {
            if (i)
                out += ", ";
            out += '"';
            out += escape(v.fields[i].first);
            out += "\": ";
            renderInto(out, v.fields[i].second);
        }
        out += '}';
        break;
    }
}

} // namespace

std::string
render(const Value &v)
{
    std::string out;
    renderInto(out, v);
    return out;
}

} // namespace triarch::json
