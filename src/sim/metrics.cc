#include "metrics.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace triarch::metrics
{

namespace
{

/** JSON string escape (control characters, quotes, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream os;
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c);
                out += os.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a double with enough digits to round-trip. */
std::string
jsonNumber(double v)
{
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

GroupSnapshot
snapshotOf(const stats::StatGroup &group)
{
    return {group.name(), group.scalarReadings(),
            group.averageReadings(), group.distributionReadings()};
}

void
writeGroup(std::ostream &os, const std::string &label,
           const GroupSnapshot &snap)
{
    os << "    {\"label\": \"" << jsonEscape(label)
       << "\", \"group\": \"" << jsonEscape(snap.group) << "\",\n";

    os << "     \"scalars\": {";
    for (std::size_t i = 0; i < snap.scalars.size(); ++i) {
        os << (i ? ", " : "") << "\""
           << jsonEscape(snap.scalars[i].name)
           << "\": " << snap.scalars[i].value;
    }
    os << "},\n";

    os << "     \"averages\": {";
    for (std::size_t i = 0; i < snap.averages.size(); ++i) {
        const auto &a = snap.averages[i];
        os << (i ? ", " : "") << "\"" << jsonEscape(a.name)
           << "\": {\"mean\": " << jsonNumber(a.mean)
           << ", \"samples\": " << a.samples << "}";
    }
    os << "},\n";

    os << "     \"distributions\": {";
    for (std::size_t i = 0; i < snap.distributions.size(); ++i) {
        const auto &d = snap.distributions[i];
        os << (i ? ", " : "") << "\"" << jsonEscape(d.name)
           << "\": {\"low\": " << jsonNumber(d.low)
           << ", \"high\": " << jsonNumber(d.high)
           << ", \"mean\": " << jsonNumber(d.mean)
           << ", \"samples\": " << d.samples
           << ", \"under\": " << d.under << ", \"over\": " << d.over
           << ", \"buckets\": [";
        for (std::size_t b = 0; b < d.buckets.size(); ++b)
            os << (b ? ", " : "") << d.buckets[b];
        os << "]}";
    }
    os << "}}";
}

} // namespace

void
MetricsRegistry::registerLive(const stats::StatGroup *group)
{
    triarch_assert(group != nullptr, "null live stat group");
    std::lock_guard<std::mutex> lock(mu);
    if (std::find(live.begin(), live.end(), group) == live.end())
        live.push_back(group);
}

void
MetricsRegistry::unregisterLive(const stats::StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu);
    live.erase(std::remove(live.begin(), live.end(), group),
               live.end());
}

void
MetricsRegistry::capture(const stats::StatGroup &group,
                         const std::string &label)
{
    GroupSnapshot snap = snapshotOf(group);
    std::lock_guard<std::mutex> lock(mu);
    snapshots.insert_or_assign(label, std::move(snap));
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return snapshots.size() + live.size();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    snapshots.clear();
    live.clear();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    // Merge live groups (read now) into the snapshot map so the
    // document comes out in one label-sorted sweep regardless of
    // registration order.
    std::map<std::string, GroupSnapshot> merged;
    {
        std::lock_guard<std::mutex> lock(mu);
        merged = snapshots;
        for (const stats::StatGroup *g : live)
            merged.insert_or_assign(g->name(), snapshotOf(*g));
    }

    os << "{\n  \"schema\": \"triarch.stats.v1\",\n";
    os << "  \"groups\": [\n";
    std::size_t i = 0;
    for (const auto &[label, snap] : merged) {
        writeGroup(os, label, snap);
        os << (++i < merged.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        triarch_fatal("cannot open '", path, "' for writing");
    writeJson(os);
    if (!os.good())
        triarch_fatal("failed writing stats JSON to '", path, "'");
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace triarch::metrics
