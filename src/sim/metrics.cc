#include "metrics.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace triarch::metrics
{

namespace
{

GroupSnapshot
snapshotOf(const stats::StatGroup &group)
{
    return {group.name(), group.scalarReadings(),
            group.averageReadings(), group.distributionReadings(),
            group.histogramReadings()};
}

void
writeGroup(json::Writer &w, const std::string &label,
           const GroupSnapshot &snap)
{
    w.beginObject();
    w.member("label", label);
    w.member("group", snap.group);

    w.key("scalars").beginObject(json::Writer::Style::Compact);
    for (const auto &s : snap.scalars)
        w.member(s.name, s.value);
    w.endObject();

    w.key("averages").beginObject(json::Writer::Style::Compact);
    for (const auto &a : snap.averages) {
        w.key(a.name).beginObject();
        w.member("mean", a.mean);
        w.member("samples", a.samples);
        w.endObject();
    }
    w.endObject();

    w.key("distributions").beginObject(json::Writer::Style::Compact);
    for (const auto &d : snap.distributions) {
        w.key(d.name).beginObject();
        w.member("low", d.low);
        w.member("high", d.high);
        w.member("mean", d.mean);
        w.member("samples", d.samples);
        w.member("under", d.under);
        w.member("over", d.over);
        w.key("buckets").beginArray();
        for (std::uint64_t b : d.buckets)
            w.value(b);
        w.endArray();
        w.endObject();
    }
    w.endObject();

    // Host-time histograms carry wall-clock samples, so the key is
    // emitted only when something was recorded: a profiling-off run
    // renders this group byte-identically to the pre-host repo.
    if (!snap.histograms.empty()) {
        w.key("histograms").beginObject(json::Writer::Style::Compact);
        for (const auto &h : snap.histograms) {
            w.key(h.name).beginObject();
            w.member("count", h.count);
            w.member("sum", h.sum);
            w.member("min", h.min);
            w.member("max", h.max);
            w.member("median", h.median);
            w.member("p95", h.p95);
            w.key("buckets").beginArray();
            for (const auto &[index, bucket_count] : h.buckets) {
                w.beginArray();
                w.value(index);
                w.value(bucket_count);
                w.endArray();
            }
            w.endArray();
            w.endObject();
        }
        w.endObject();
    }

    w.endObject();
}

} // namespace

void
MetricsRegistry::registerLive(const stats::StatGroup *group)
{
    triarch_assert(group != nullptr, "null live stat group");
    std::lock_guard<std::mutex> lock(mu);
    if (std::find(live.begin(), live.end(), group) == live.end())
        live.push_back(group);
}

void
MetricsRegistry::unregisterLive(const stats::StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu);
    live.erase(std::remove(live.begin(), live.end(), group),
               live.end());
}

void
MetricsRegistry::capture(const stats::StatGroup &group,
                         const std::string &label)
{
    GroupSnapshot snap = snapshotOf(group);
    std::lock_guard<std::mutex> lock(mu);
    snapshots.insert_or_assign(label, std::move(snap));
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return snapshots.size() + live.size();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    snapshots.clear();
    live.clear();
}

void
MetricsRegistry::writeJson(std::ostream &os, bool compact) const
{
    // Merge live groups (read now) into the snapshot map so the
    // document comes out in one label-sorted sweep regardless of
    // registration order.
    std::map<std::string, GroupSnapshot> merged;
    {
        std::lock_guard<std::mutex> lock(mu);
        merged = snapshots;
        for (const stats::StatGroup *g : live)
            merged.insert_or_assign(g->name(), snapshotOf(*g));
    }

    const auto style = compact ? json::Writer::Style::Compact
                               : json::Writer::Style::Pretty;
    json::Writer w(os);
    w.beginObject(style);
    w.member("schema", "triarch.stats.v1");
    w.key("groups").beginArray(style);
    for (const auto &[label, snap] : merged)
        writeGroup(w, label, snap);
    w.endArray();
    w.endObject();
    w.finish();
    if (!compact)
        os << "\n";
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    writeJson(os, /*compact=*/true);
    return os.str();
}

void
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        triarch_fatal("cannot open '", path, "' for writing");
    writeJson(os);
    if (!os.good())
        triarch_fatal("failed writing stats JSON to '", path, "'");
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace triarch::metrics
