#include "metrics.hh"

#include <algorithm>
#include <fstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace triarch::metrics
{

namespace
{

GroupSnapshot
snapshotOf(const stats::StatGroup &group)
{
    return {group.name(), group.scalarReadings(),
            group.averageReadings(), group.distributionReadings()};
}

void
writeGroup(json::Writer &w, const std::string &label,
           const GroupSnapshot &snap)
{
    w.beginObject();
    w.member("label", label);
    w.member("group", snap.group);

    w.key("scalars").beginObject(json::Writer::Style::Compact);
    for (const auto &s : snap.scalars)
        w.member(s.name, s.value);
    w.endObject();

    w.key("averages").beginObject(json::Writer::Style::Compact);
    for (const auto &a : snap.averages) {
        w.key(a.name).beginObject();
        w.member("mean", a.mean);
        w.member("samples", a.samples);
        w.endObject();
    }
    w.endObject();

    w.key("distributions").beginObject(json::Writer::Style::Compact);
    for (const auto &d : snap.distributions) {
        w.key(d.name).beginObject();
        w.member("low", d.low);
        w.member("high", d.high);
        w.member("mean", d.mean);
        w.member("samples", d.samples);
        w.member("under", d.under);
        w.member("over", d.over);
        w.key("buckets").beginArray();
        for (std::uint64_t b : d.buckets)
            w.value(b);
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

} // namespace

void
MetricsRegistry::registerLive(const stats::StatGroup *group)
{
    triarch_assert(group != nullptr, "null live stat group");
    std::lock_guard<std::mutex> lock(mu);
    if (std::find(live.begin(), live.end(), group) == live.end())
        live.push_back(group);
}

void
MetricsRegistry::unregisterLive(const stats::StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu);
    live.erase(std::remove(live.begin(), live.end(), group),
               live.end());
}

void
MetricsRegistry::capture(const stats::StatGroup &group,
                         const std::string &label)
{
    GroupSnapshot snap = snapshotOf(group);
    std::lock_guard<std::mutex> lock(mu);
    snapshots.insert_or_assign(label, std::move(snap));
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return snapshots.size() + live.size();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    snapshots.clear();
    live.clear();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    // Merge live groups (read now) into the snapshot map so the
    // document comes out in one label-sorted sweep regardless of
    // registration order.
    std::map<std::string, GroupSnapshot> merged;
    {
        std::lock_guard<std::mutex> lock(mu);
        merged = snapshots;
        for (const stats::StatGroup *g : live)
            merged.insert_or_assign(g->name(), snapshotOf(*g));
    }

    json::Writer w(os);
    w.beginObject();
    w.member("schema", "triarch.stats.v1");
    w.key("groups").beginArray();
    for (const auto &[label, snap] : merged)
        writeGroup(w, label, snap);
    w.endArray();
    w.endObject();
    w.finish();
    os << "\n";
}

void
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        triarch_fatal("cannot open '", path, "' for writing");
    writeJson(os);
    if (!os.good())
        triarch_fatal("failed writing stats JSON to '", path, "'");
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace triarch::metrics
