/**
 * @file
 * Machine-readable stats export: a MetricsRegistry that knows every
 * interesting StatGroup — long-lived groups (experiment scheduler,
 * result cache) registered live, short-lived groups (the per-cell
 * machine models, destroyed when their mapping returns) captured as
 * snapshots — and serializes them all as one versioned
 * "triarch.stats.v1" JSON document next to the existing
 * "triarch.results.v1".
 *
 * Unlike trace.hh, this document is fully deterministic: it carries
 * only simulated counts, never wall-clock, so the same study config
 * produces a bit-identical file at any worker-thread count. Groups
 * are serialized in label order, not registration order, to keep the
 * byte stream independent of scheduling.
 */

#ifndef TRIARCH_SIM_METRICS_HH
#define TRIARCH_SIM_METRICS_HH

#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace triarch::metrics
{

/** Deep snapshot of one StatGroup at capture time. */
struct GroupSnapshot
{
    std::string group;      //!< the StatGroup's own name
    std::vector<stats::ScalarReading> scalars;
    std::vector<stats::AverageReading> averages;
    std::vector<stats::DistributionReading> distributions;
    /** Non-empty histograms only (host-time observability); a group
     *  that never recorded one renders exactly as before. */
    std::vector<stats::HistogramReading> histograms;
};

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Track a process-lifetime group; it is read afresh at every
     * writeJson(). The caller must unregister (or clear the
     * registry) before the group dies. Labeled by the group's name.
     */
    void registerLive(const stats::StatGroup *group);

    /** Stop tracking a live group. */
    void unregisterLive(const stats::StatGroup *group);

    /**
     * Snapshot @p group now under @p label (e.g. "viram.ct" for the
     * VIRAM machine that ran corner turn). Re-capturing a label
     * replaces the previous snapshot — per-cell simulation is
     * deterministic, so a cell that runs twice captures the same
     * values.
     */
    void capture(const stats::StatGroup &group, const std::string &label);

    /** Number of snapshots + live groups currently held. */
    std::size_t size() const;

    /** Drop all snapshots and live registrations. */
    void clear();

    /** Render the "triarch.stats.v1" document. With @p compact the
     *  whole document lands on one line (no trailing newline) — the
     *  form the daemon's stats wire response embeds. */
    void writeJson(std::ostream &os, bool compact = false) const;

    /** The compact one-line rendering as a string. */
    std::string toJson() const;

    /** Render to @p path; fatal if the file cannot be written. */
    void writeJsonFile(const std::string &path) const;

    /** The process-wide registry the study layer reports into. */
    static MetricsRegistry &global();

  private:
    mutable std::mutex mu;
    std::map<std::string, GroupSnapshot> snapshots;
    std::vector<const stats::StatGroup *> live;
};

} // namespace triarch::metrics

#endif // TRIARCH_SIM_METRICS_HH
