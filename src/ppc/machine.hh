/**
 * @file
 * The PowerPC G4 + AltiVec timing model. Unlike the research-chip
 * models, this machine holds no data: instrumented kernel loops
 * compute on host arrays and report their operations and memory
 * accesses here; the model advances a cycle counter through the
 * issue model, the L1/L2 cache simulation, and the front-side bus.
 */

#ifndef TRIARCH_PPC_MACHINE_HH
#define TRIARCH_PPC_MACHINE_HH

#include <string>

#include <utility>
#include <vector>

#include "mem/cache.hh"
#include "mem/port.hh"
#include "ppc/config.hh"
#include "sim/cycle_account.hh"
#include "sim/host_clock.hh"
#include "sim/hw_report.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace triarch::ppc
{

/** The G4 baseline: issue model + caches + front-side bus. */
class PpcMachine
{
  public:
    explicit PpcMachine(const PpcConfig &machine_config = {});

    const PpcConfig &config() const { return cfg; }

    // ------------------------------------------------------------
    // Operation reporting (the instrumented kernels call these).
    // ------------------------------------------------------------

    /** @p n integer ops; dependent chains issue one per cycle. */
    void
    intOps(unsigned n, bool dependent = false)
    {
        _intOps += n;
        now += dependent
                   ? static_cast<double>(n) * cfg.intChainLatency
                   : n / cfg.intIssueWidth;
    }

    /** @p n scalar FP ops; dependent chains pay the FP latency. */
    void
    fpOps(unsigned n, bool dependent = false)
    {
        _fpOps += n;
        now += dependent
                   ? static_cast<double>(n) * cfg.fpChainLatency
                   : n / cfg.fpIssueWidth;
    }

    /**
     * Scalar FP ops in compiled kernel code whose operands
     * round-trip through memory (adds fpMemOverhead per op).
     */
    void
    fpOpsCompiled(unsigned n)
    {
        _fpOps += n;
        now += static_cast<double>(n)
               * (cfg.fpChainLatency + cfg.fpMemOverhead);
    }

    /** @p n AltiVec (4 x 32-bit) vector ops. */
    void
    vecOps(unsigned n, bool dependent = false)
    {
        _vecOps += n;
        now += dependent
                   ? static_cast<double>(n) * cfg.vecChainLatency
                   : n / cfg.vecIssueWidth;
    }

    // The load/store fast paths live in the header so the span-mode
    // way-predicted L1 hit — the per-element common case in
    // streaming kernels — is a handful of inlined instructions;
    // misses (and reference mode) fall into the out-of-line cache
    // walk.

    /** A 4-byte scalar load / store at @p addr. */
    void
    load(Addr addr)
    {
        ++_loads;
        // L1 hit on the set's memoized line: accessFast applies the
        // exact hit effects (LRU stamp, hit counter), and the hit
        // charge matches the scan path below.
        if (spanMem && l1.accessFast(addr, false)) {
            now += static_cast<double>(cfg.l1HitCycles);
            return;
        }
        memAccess(addr, false, true);
    }

    void
    store(Addr addr)
    {
        ++_stores;
        if (spanMem && l1.accessFast(addr, true)) {
            now += 0.5;
            return;
        }
        memAccess(addr, true, false);
    }

    /** A 16-byte AltiVec load / store at @p addr. */
    void
    vecLoad(Addr addr)
    {
        ++_loads;
        if (spanMem && l1.accessFast(addr, false)) {
            now += static_cast<double>(cfg.l1HitCycles);
            return;
        }
        memAccess(addr, false, true);
    }

    void
    vecStore(Addr addr)
    {
        ++_stores;
        if (spanMem && l1.accessFast(addr, true)) {
            now += 0.5;
            return;
        }
        memAccess(addr, true, false);
    }

    // ------------------------------------------------------------
    // Timing.
    // ------------------------------------------------------------

    Cycles cycles() const;
    void resetTiming();

    /**
     * Finalize the cycle account against @p total (normally
     * cycles()): L2-hit stalls went to cache_stall, DRAM stalls to
     * dram_dma as they occurred, and everything else — the issue-
     * limited pipeline time — is the compute residual. Also records
     * the breakdown into the stat group's account_* scalars.
     */
    stats::CycleBreakdown cycleBreakdown(Cycles total);

    stats::StatGroup &statGroup() { return group; }

    /** The component StatGroups (caches, bus) behind the main group,
     *  as (label-suffix, group) pairs for per-cell capture. */
    std::vector<std::pair<std::string, stats::StatGroup *>>
    componentGroups()
    {
        return {{"l1", &l1.statGroup()},
                {"l2", &l2.statGroup()},
                {"fsb", &fsb.statGroup()}};
    }

    /**
     * Roll the component counters into the cell's hardware report:
     * cache hit rates, FSB utilization, the memAccess epoch
     * timeline, and a bottleneck verdict consistent with
     * @p breakdown (hw_report.hh, D14).
     */
    hw::HwCell hwCell(Cycles total,
                      const stats::CycleBreakdown &breakdown);

    /** Where the registry mapping samples this cell's coarse
     *  setup/run/readback host-time split (profiling-gated). */
    host::HostPhases &hostTime() { return hostPhases; }

    std::uint64_t l1Misses() const { return l1.misses(); }
    std::uint64_t l2Misses() const { return l2.misses(); }
    std::uint64_t fsbWords() const { return fsb.wordsMoved(); }
    std::uint64_t memStallCycles() const { return _memStall.value(); }

    /** Description of the baseline platform. */
    std::string describe() const;

  private:
    /** Cache access for one granule; advances time appropriately. */
    void memAccess(Addr addr, bool write, bool charge_hit);

    PpcConfig cfg;
    /** Resolved cfg.memModel != Reference, fixed at construction. */
    bool spanMem;
    mem::SetAssocCache l1;
    mem::SetAssocCache l2;
    mem::BandwidthPort fsb;

    double now = 0.0;

    stats::CycleAccount account;
    /** Epoch channels sampled only on the memAccess miss paths, so
     *  span-mode way-predicted L1 hits (which skip memAccess) cannot
     *  diverge from reference mode (D13). */
    hw::EpochSampler hwSamp{{"l1_miss", "cache_stall", "dram_stall"}};

    stats::StatGroup group;
    stats::Scalar _intOps;
    stats::Scalar _fpOps;
    stats::Scalar _vecOps;
    stats::Scalar _loads;
    stats::Scalar _stores;
    stats::Scalar _memStall;
    stats::BreakdownStats accountStats;
    host::HostPhases hostPhases;
};

} // namespace triarch::ppc

#endif // TRIARCH_PPC_MACHINE_HH
