#include "machine.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace triarch::ppc
{

namespace
{

mem::CacheConfig
l1Config(const PpcConfig &cfg)
{
    return {"ppc.l1", cfg.l1Bytes, cfg.l1Assoc, cfg.lineBytes};
}

mem::CacheConfig
l2Config(const PpcConfig &cfg)
{
    return {"ppc.l2", cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes};
}

} // namespace

PpcMachine::PpcMachine(const PpcConfig &machine_config)
    : cfg(machine_config),
      spanMem(mem::resolveMemModel(cfg.memModel)
              != mem::MemModel::Reference),
      l1(l1Config(cfg)), l2(l2Config(cfg)),
      fsb("ppc.fsb", cfg.fsbWordsNum, cfg.fsbCyclesDen), group("ppc")
{
    group.addScalar("int_ops", &_intOps, "integer operations");
    group.addScalar("fp_ops", &_fpOps, "scalar FP operations");
    group.addScalar("vec_ops", &_vecOps, "AltiVec operations");
    group.addScalar("loads", &_loads, "load accesses");
    group.addScalar("stores", &_stores, "store accesses");
    group.addScalar("mem_stall", &_memStall,
                    "cycles stalled on L2/DRAM");
    accountStats.registerIn(group);
    hostPhases.addTo(group);
}

void
PpcMachine::memAccess(Addr addr, bool write, bool charge_hit)
{
    auto r1 = l1.access(addr, write);
    if (r1.hit) {
        // Store hits retire through the store queue off the critical
        // path; load hits pay the load-use latency.
        now += charge_hit ? static_cast<double>(cfg.l1HitCycles) : 0.5;
        return;
    }
    // Both memory models reach this point for exactly the same
    // accesses at the same `now` (accessFast only filters true
    // hits), so the epoch samples are mode-identical.
    hwSamp.addAt(0, static_cast<Cycles>(now));
    if (r1.writebackAddr) {
        // Dirty L1 victim moves into L2 (and possibly onward). A
        // way-predicted L2 hit (span mode) has no writeback.
        if (!(spanMem && l2.accessFast(*r1.writebackAddr, true))) {
            auto rwb = l2.access(*r1.writebackAddr, true);
            if (!rwb.hit && rwb.writebackAddr)
                fsb.transfer(cfg.lineBytes / 4,
                             static_cast<Cycles>(now));
        }
    }

    if (spanMem && l2.accessFast(addr, false)) {
        const double l2Stall =
            charge_hit ? static_cast<double>(cfg.l2HitCycles)
                       : static_cast<double>(cfg.storeL2HitCycles);
        hwSamp.addRange(1, static_cast<Cycles>(now),
                        static_cast<Cycles>(now + l2Stall));
        now += l2Stall;
        account.charge(stats::CycleCategory::CacheStall, l2Stall);
        _memStall += cfg.l2HitCycles;
        return;
    }
    auto r2 = l2.access(addr, false);
    if (r2.hit) {
        const double l2Stall =
            charge_hit ? static_cast<double>(cfg.l2HitCycles)
                       : static_cast<double>(cfg.storeL2HitCycles);
        hwSamp.addRange(1, static_cast<Cycles>(now),
                        static_cast<Cycles>(now + l2Stall));
        now += l2Stall;
        account.charge(stats::CycleCategory::CacheStall, l2Stall);
        _memStall += cfg.l2HitCycles;
        return;
    }
    if (r2.writebackAddr)
        fsb.transfer(cfg.lineBytes / 4, static_cast<Cycles>(now));

    // DRAM fill through the front-side bus.
    const Cycles fillDone = fsb.transfer(
        cfg.lineBytes / 4, static_cast<Cycles>(now));
    const double stallFrom = now;
    if (charge_hit) {
        // Loads block: pay the latency, or the bus backlog if the
        // workload is bandwidth bound.
        now = std::max(now + static_cast<double>(cfg.memLatency),
                       static_cast<double>(fillDone));
    } else {
        // Store misses drain through the store queue: latency is
        // hidden, but a deep bus backlog eventually throttles.
        now += 1.0;
        const double backlogLimit =
            static_cast<double>(fillDone)
            - static_cast<double>(cfg.storeQueueSlack);
        now = std::max(now, backlogLimit);
    }
    account.charge(stats::CycleCategory::DramDma, now - stallFrom);
    _memStall += static_cast<Cycles>(now - stallFrom);
    hwSamp.addRange(2, static_cast<Cycles>(stallFrom),
                    static_cast<Cycles>(now));
}

Cycles
PpcMachine::cycles() const
{
    return static_cast<Cycles>(std::llround(now));
}

stats::CycleBreakdown
PpcMachine::cycleBreakdown(Cycles total)
{
    const stats::CycleBreakdown b =
        account.finalize(total, stats::CycleCategory::Compute);
    accountStats.record(b);
    return b;
}

hw::HwCell
PpcMachine::hwCell(Cycles total, const stats::CycleBreakdown &breakdown)
{
    auto rate = [](std::uint64_t part, std::uint64_t whole) {
        return whole ? static_cast<double>(part) / whole : 0.0;
    };
    const double l1Hit = rate(l1.hits(), l1.hits() + l1.misses());
    const double l2Hit = rate(l2.hits(), l2.hits() + l2.misses());
    const double busUtil =
        total ? std::min(1.0, static_cast<double>(fsb.busyCycles())
                                  / static_cast<double>(total))
              : 0.0;

    hw::HwCell cell;
    cell.cycles = total;
    cell.breakdown = breakdown;
    cell.metrics = {
        {"l1_hit_rate", l1Hit, true},
        {"l2_hit_rate", l2Hit, true},
        {"fsb_bus_utilization", busUtil, true},
        {"mem_stall_fraction",
         total ? std::min(1.0, rate(_memStall.value(), total)) : 0.0,
         true},
        {"fsb_words_per_cycle",
         total ? static_cast<double>(fsb.wordsMoved())
                     / static_cast<double>(total)
               : 0.0,
         false},
    };

    cell.verdict.category = hw::dominantCategory(breakdown);
    switch (cell.verdict.category) {
      case stats::CycleCategory::Compute:
        cell.verdict.component = "alu";
        cell.verdict.detail = "issue-limited, l1 hit "
                              + hw::fmt2(l1Hit) + ", mem stall frac "
                              + hw::fmt2(rate(_memStall.value(),
                                              total ? total : 1));
        break;
      case stats::CycleCategory::CacheStall:
        cell.verdict.component = "l2";
        cell.verdict.detail = "bound by L2-hit stalls, l1 hit "
                              + hw::fmt2(l1Hit) + ", l2 hit "
                              + hw::fmt2(l2Hit);
        break;
      case stats::CycleCategory::DramDma:
        cell.verdict.component = "dram";
        cell.verdict.detail = "bound by DRAM fills over the FSB, "
                              "bus util "
                              + hw::fmt2(busUtil) + ", l2 hit "
                              + hw::fmt2(l2Hit);
        break;
      case stats::CycleCategory::NetworkSync:
        cell.verdict.component = "network";
        cell.verdict.detail = "network/sync idle dominates";
        break;
      case stats::CycleCategory::SetupReadback:
        cell.verdict.component = "host";
        cell.verdict.detail = "setup/readback dominates";
        break;
    }

    cell.timeline = hwSamp.finalize(cycles());
    return cell;
}

void
PpcMachine::resetTiming()
{
    now = 0.0;
    account.reset();
    hwSamp.reset();
    l1.flush();
    l2.flush();
    fsb.resetState();
    group.resetAll();
    l1.statGroup().resetAll();
    l2.statGroup().resetAll();
    fsb.statGroup().resetAll();
}

std::string
PpcMachine::describe() const
{
    std::ostringstream os;
    os << "PowerPC G4 with AltiVec (Apple PowerMac G4, "
       << cfg.clockMhz << " MHz)\n"
       << "  superscalar core, 1 FPU (dependent latency "
       << cfg.fpChainLatency << "), AltiVec 4 x 32-bit vector unit\n"
       << "  L1 " << cfg.l1Bytes / 1024 << " KB / L2 "
       << cfg.l2Bytes / 1024 << " KB, " << cfg.lineBytes
       << "-byte lines\n"
       << "  front-side bus ~" << (cfg.fsbWordsNum * 4 * cfg.clockMhz
                                   / cfg.fsbCyclesDen / 1000)
       << " MB/s peak; DRAM latency " << cfg.memLatency << " cycles\n"
       << "  peak 5 GFLOPS (4-wide AltiVec + FPU)\n";
    return os.str();
}

} // namespace triarch::ppc
