/**
 * @file
 * Configuration of the PowerPC G4 baseline model (Section 4.1): a
 * 1 GHz PowerMac G4 with the AltiVec vector extension, measured in
 * the paper with mach_absolute_time() on real hardware.
 *
 * The model captures what dominates the G4's Table 3 numbers:
 *  - an L1/L2 cache hierarchy in front of a thin front-side bus
 *    (the bus runs at a tenth of the core clock), which caps the
 *    corner turn regardless of AltiVec (Section 4.5);
 *  - a single scalar FPU with multi-cycle dependent latency, which
 *    makes compiled scalar FFT code slow and gives AltiVec its ~6x
 *    CSLC win;
 *  - a 4 x 32-bit AltiVec unit with its own dependent latency,
 *    worth ~2x on beam steering where issue and memory dominate.
 */

#ifndef TRIARCH_PPC_CONFIG_HH
#define TRIARCH_PPC_CONFIG_HH

#include "mem/mem_mode.hh"
#include "sim/types.hh"

namespace triarch::ppc
{

/** All G4 model parameters. */
struct PpcConfig
{
    unsigned clockMhz = 1000;

    // Issue model.
    double intIssueWidth = 2.0;     //!< independent int ops per cycle
    Cycles intChainLatency = 1;     //!< dependent int op latency
    Cycles fpChainLatency = 5;      //!< dependent FP latency (1 FPU)
    double fpIssueWidth = 1.0;      //!< independent FP throughput
    Cycles vecChainLatency = 3;     //!< dependent AltiVec latency
    double vecIssueWidth = 1.0;     //!< AltiVec ops per cycle

    /**
     * Effective cost of one scalar FP operation in compiled (not
     * hand-scheduled) kernel code, where operands round-trip through
     * the stack: added on top of the chain latency.
     */
    Cycles fpMemOverhead = 4;

    // Memory hierarchy.
    std::uint64_t l1Bytes = 32 * 1024;
    unsigned l1Assoc = 8;
    std::uint64_t l2Bytes = 256 * 1024;
    unsigned l2Assoc = 8;
    unsigned lineBytes = 32;

    Cycles l1HitCycles = 2;         //!< load-use on an L1 hit
    Cycles l2HitCycles = 9;
    /**
     * Cost of a store that misses L1 but hits L2: the refill
     * occupies the L1/L2 interface and the in-order core stalls
     * behind a full store queue.
     */
    Cycles storeL2HitCycles = 8;
    Cycles memLatency = 110;        //!< DRAM access via the FSB

    /** Front-side bus: words per cycle (100 MHz 64-bit vs 1 GHz). */
    unsigned fsbWordsNum = 4;
    unsigned fsbCyclesDen = 5;

    /**
     * How far (in cycles) the store queue and write buffers let the
     * front-side bus lag behind execution before stores throttle.
     */
    Cycles storeQueueSlack = 300;

    /** Memory-model walk selection (D13); Default follows the
     *  process-wide mem::defaultMemModel(). */
    mem::MemModel memModel = mem::MemModel::Default;
};

} // namespace triarch::ppc

#endif // TRIARCH_PPC_CONFIG_HH
