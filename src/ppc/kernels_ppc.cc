#include "kernels_ppc.hh"

#include <algorithm>

#include "kernels/fft.hh"
#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace triarch::ppc
{

using kernels::cfloat;

namespace
{

// Synthetic address map for the timing model (the data itself lives
// in host arrays): regions spaced far apart so they never alias.
constexpr Addr srcRegion = 0x0000'0000;
constexpr Addr dstRegion = 0x0100'0000;
constexpr Addr auxRegion = 0x0200'0000;
constexpr Addr weightRegion = 0x0300'0000;
constexpr Addr outRegion = 0x0400'0000;
constexpr Addr scratchRegion = 0x0500'0000;
constexpr Addr twiddleRegion = 0x0501'0000;

} // namespace

Cycles
cornerTurnPpc(PpcMachine &machine, const kernels::WordMatrix &src,
              kernels::WordMatrix &dst, bool altivec,
              unsigned blockEdge)
{
    triarch_assert(blockEdge >= 4 && blockEdge % 4 == 0,
                   "block edge must be a positive multiple of 4");
    machine.resetTiming();

    dst = kernels::WordMatrix(src.cols, src.rows);
    const unsigned rows = src.rows, cols = src.cols;

    auto srcAddr = [&](unsigned r, unsigned c) {
        return srcRegion + (static_cast<Addr>(r) * cols + c) * 4;
    };
    auto dstAddr = [&](unsigned r, unsigned c) {
        return dstRegion + (static_cast<Addr>(r) * rows + c) * 4;
    };

    for (unsigned br = 0; br < rows; br += blockEdge) {
        trace::TraceScope span("ppc.ct.block_row", "ppc",
                               &machine.statGroup());
        const unsigned rEnd = std::min(br + blockEdge, rows);
        for (unsigned bc = 0; bc < cols; bc += blockEdge) {
            const unsigned cEnd = std::min(bc + blockEdge, cols);
            if (!altivec) {
                for (unsigned r = br; r < rEnd; ++r) {
                    for (unsigned c = bc; c < cEnd; ++c) {
                        machine.load(srcAddr(r, c));
                        machine.store(dstAddr(c, r));
                        machine.intOps(2);      // index arithmetic
                        dst.at(c, r) = src.at(r, c);
                    }
                    machine.intOps(2);          // loop overhead
                }
            } else {
                // 4x4 register transposes: 4 quadword loads, a
                // vperm merge network, 4 quadword stores.
                for (unsigned r = br; r < rEnd; r += 4) {
                    for (unsigned c = bc; c < cEnd; c += 4) {
                        for (unsigned i = 0; i < 4; ++i)
                            machine.vecLoad(srcAddr(r + i, c));
                        machine.vecOps(8);      // vmrgh/vmrgl network
                        for (unsigned i = 0; i < 4; ++i)
                            machine.vecStore(dstAddr(c + i, r));
                        machine.intOps(4);
                        for (unsigned i = 0; i < 4; ++i) {
                            for (unsigned j = 0; j < 4; ++j)
                                dst.at(c + j, r + i) =
                                    src.at(r + i, c + j);
                        }
                    }
                    machine.intOps(2);
                }
            }
        }
    }
    return machine.cycles();
}

namespace
{

/**
 * Instrumented in-place radix-2 FFT over @p data (128 complex
 * values parked at @p base in the timing model's address space).
 * Scalar mode models compiled C (operands through memory, FPU
 * chains); AltiVec mode models the hand-vectorized four-butterfly
 * inner loop.
 */
void
instrumentedFft(PpcMachine &machine, std::vector<cfloat> &data,
                Addr base, bool inverse, bool altivec)
{
    const unsigned n = static_cast<unsigned>(data.size());
    static const auto twiddles = kernels::twiddleTable(128);
    triarch_assert(n == 128, "instrumented FFT is 128-point");

    auto elemAddr = [base](unsigned i) { return base + i * 8; };

    // Bit-reversal permutation.
    for (unsigned i = 0; i < n; ++i) {
        const unsigned j = reverseBits(i, 7);
        if (j <= i)
            continue;
        std::swap(data[i], data[j]);
        machine.load(elemAddr(i));
        machine.load(elemAddr(i) + 4);
        machine.load(elemAddr(j));
        machine.load(elemAddr(j) + 4);
        machine.store(elemAddr(i));
        machine.store(elemAddr(i) + 4);
        machine.store(elemAddr(j));
        machine.store(elemAddr(j) + 4);
        machine.intOps(4);
    }

    for (unsigned len = 2; len <= n; len <<= 1) {
        const unsigned half = len >> 1;
        const unsigned step = n / len;
        for (unsigned basep = 0; basep < n; basep += len) {
            for (unsigned k = 0; k < half; ++k) {
                const cfloat w0 = twiddles[k * step];
                const cfloat w = inverse ? std::conj(w0) : w0;
                const unsigned iu = basep + k;
                const unsigned iv = iu + half;
                const cfloat t = w * data[iv];
                const cfloat u = data[iu];
                data[iu] = u + t;
                data[iv] = u - t;

                if (!altivec) {
                    machine.load(elemAddr(iu));
                    machine.load(elemAddr(iu) + 4);
                    machine.load(elemAddr(iv));
                    machine.load(elemAddr(iv) + 4);
                    machine.load(twiddleRegion + k * step * 8);
                    machine.load(twiddleRegion + k * step * 8 + 4);
                    machine.fpOpsCompiled(10);
                    machine.store(elemAddr(iu));
                    machine.store(elemAddr(iu) + 4);
                    machine.store(elemAddr(iv));
                    machine.store(elemAddr(iv) + 4);
                    machine.intOps(5);
                } else if (k % 4 == 0) {
                    // Four butterflies per AltiVec iteration; short
                    // stages (half < 4) pay extra element shuffles.
                    machine.vecLoad(elemAddr(iu));
                    machine.vecLoad(elemAddr(iu) + 16);
                    machine.vecLoad(elemAddr(iv));
                    machine.vecLoad(elemAddr(iv) + 16);
                    machine.vecLoad(twiddleRegion + k * step * 8);
                    machine.vecLoad(twiddleRegion + k * step * 8 + 16);
                    // Hand-vectorized code interleaves independent
                    // butterfly groups, hiding the vector latency.
                    machine.vecOps(10);
                    machine.vecOps(half < 4 ? 6 : 4);   // shuffles
                    machine.vecStore(elemAddr(iu));
                    machine.vecStore(elemAddr(iu) + 16);
                    machine.vecStore(elemAddr(iv));
                    machine.vecStore(elemAddr(iv) + 16);
                    machine.intOps(3);
                }
            }
        }
    }

    if (inverse) {
        const float scale = 1.0f / n;
        for (auto &v : data)
            v *= scale;
        if (!altivec) {
            for (unsigned i = 0; i < n; ++i) {
                machine.load(elemAddr(i));
                machine.load(elemAddr(i) + 4);
                machine.fpOpsCompiled(2);
                machine.store(elemAddr(i));
                machine.store(elemAddr(i) + 4);
                machine.intOps(2);
            }
        } else {
            for (unsigned i = 0; i < n; i += 2) {
                machine.vecLoad(elemAddr(i));
                machine.vecOps(1);
                machine.vecStore(elemAddr(i));
                machine.intOps(1);
            }
        }
    }
}

} // namespace

Cycles
cslcPpc(PpcMachine &machine, const kernels::CslcConfig &cfg,
        const kernels::CslcInput &in,
        const kernels::CslcWeights &weights, kernels::CslcOutput &out,
        bool altivec)
{
    triarch_assert(cfg.subBandLen == 128,
                   "PPC CSLC mapping is built for 128-point sub-bands");
    machine.resetTiming();

    out.main.assign(cfg.mainChannels,
        std::vector<cfloat>(static_cast<std::size_t>(cfg.subBands)
                            * 128));

    const unsigned nch = cfg.channels();
    auto chanAddr = [&](unsigned ch, unsigned sample) {
        return auxRegion + (static_cast<Addr>(ch) * cfg.samples
                            + sample) * 8;
    };

    for (unsigned b = 0; b < cfg.subBands; ++b) {
        trace::TraceScope span("ppc.cslc.subband", "ppc",
                               &machine.statGroup());
        const unsigned off = b * cfg.subBandStride;

        // Extract + transform every channel into scratch spectra.
        std::vector<std::vector<cfloat>> spectra(nch);
        for (unsigned ch = 0; ch < nch; ++ch) {
            const auto &series =
                ch < cfg.auxChannels ? in.aux[ch]
                                     : in.main[ch - cfg.auxChannels];
            spectra[ch].assign(series.begin() + off,
                               series.begin() + off + 128);
            // Copy into the FFT scratch buffer.
            const Addr scratch = scratchRegion + ch * 0x1000;
            for (unsigned i = 0; i < 128; ++i) {
                if (!altivec) {
                    machine.load(chanAddr(ch, off + i));
                    machine.load(chanAddr(ch, off + i) + 4);
                    machine.store(scratch + i * 8);
                    machine.store(scratch + i * 8 + 4);
                    machine.intOps(2);
                } else if (i % 2 == 0) {
                    machine.vecLoad(chanAddr(ch, off + i));
                    machine.vecStore(scratch + i * 8);
                    machine.intOps(1);
                }
            }
            instrumentedFft(machine, spectra[ch],
                            scratchRegion + ch * 0x1000, false,
                            altivec);
        }

        for (unsigned m = 0; m < cfg.mainChannels; ++m) {
            auto &spec = spectra[cfg.auxChannels + m];
            const Addr mBase =
                scratchRegion + (cfg.auxChannels + m) * 0x1000;

            // Weight application.
            for (unsigned k = 0; k < 128; ++k) {
                for (unsigned a = 0; a < cfg.auxChannels; ++a) {
                    spec[k] -= weights.w[m][a][b * 128ULL + k]
                               * spectra[a][k];
                }
                const Addr wAddr = weightRegion
                    + ((static_cast<Addr>(m) * 2) * cfg.subBands + b)
                      * 1024 + k * 8;
                if (!altivec) {
                    machine.load(mBase + k * 8);
                    machine.load(mBase + k * 8 + 4);
                    for (unsigned a = 0; a < 2; ++a) {
                        machine.load(wAddr + a * 0x80000);
                        machine.load(wAddr + a * 0x80000 + 4);
                        machine.load(scratchRegion + a * 0x1000
                                     + k * 8);
                        machine.load(scratchRegion + a * 0x1000
                                     + k * 8 + 4);
                    }
                    machine.fpOpsCompiled(16);
                    machine.store(mBase + k * 8);
                    machine.store(mBase + k * 8 + 4);
                    machine.intOps(4);
                } else if (k % 2 == 0) {
                    machine.vecLoad(mBase + k * 8);
                    for (unsigned a = 0; a < 2; ++a) {
                        machine.vecLoad(wAddr + a * 0x80000);
                        machine.vecLoad(scratchRegion + a * 0x1000
                                        + k * 8);
                    }
                    machine.vecOps(8, true);
                    machine.vecOps(4);      // re/im shuffles
                    machine.vecStore(mBase + k * 8);
                    machine.intOps(2);
                }
            }

            instrumentedFft(machine, spec, mBase, true, altivec);

            // Write the cancelled block to the output region.
            const Addr outAddr = outRegion
                + (static_cast<Addr>(m) * cfg.subBands + b) * 1024;
            for (unsigned i = 0; i < 128; ++i) {
                out.main[m][b * 128ULL + i] = spec[i];
                if (!altivec) {
                    machine.load(mBase + i * 8);
                    machine.load(mBase + i * 8 + 4);
                    machine.store(outAddr + i * 8);
                    machine.store(outAddr + i * 8 + 4);
                    machine.intOps(2);
                } else if (i % 2 == 0) {
                    machine.vecLoad(mBase + i * 8);
                    machine.vecStore(outAddr + i * 8);
                    machine.intOps(1);
                }
            }
        }
    }
    return machine.cycles();
}

Cycles
beamSteeringPpc(PpcMachine &machine, const kernels::BeamConfig &cfg,
                const kernels::BeamTables &tables,
                std::vector<std::int32_t> &out, bool altivec)
{
    machine.resetTiming();
    out.assign(cfg.outputs(), 0);

    auto coarseAddr = [](unsigned e) {
        return srcRegion + static_cast<Addr>(e) * 4;
    };
    auto fineAddr = [](unsigned e) {
        return srcRegion + 0x10000 + static_cast<Addr>(e) * 4;
    };

    std::size_t idx = 0;
    for (unsigned dw = 0; dw < cfg.dwells; ++dw) {
        trace::TraceScope span("ppc.bs.dwell", "ppc",
                               &machine.statGroup());
        for (unsigned dir = 0; dir < cfg.directions; ++dir) {
            std::int32_t acc = tables.steerBase[dir];
            for (unsigned e = 0; e < cfg.elements; ++e) {
                acc += tables.steerDelta[dir];
                std::int32_t t =
                    tables.calCoarse[e] + tables.calFine[e];
                t += acc;
                t += tables.dwellOffset[dw];
                t += tables.bias;
                out[idx] = t >> cfg.shift;

                if (!altivec) {
                    machine.load(coarseAddr(e));
                    machine.load(fineAddr(e));
                    machine.intOps(6, true);    // 5 adds + shift
                    machine.store(dstRegion + idx * 4);
                    machine.intOps(2);          // loop overhead
                } else if (e % 4 == 0) {
                    machine.vecLoad(coarseAddr(e));
                    machine.vecLoad(fineAddr(e));
                    machine.vecOps(6, true);    // 5 vadd + vsra
                    machine.vecOps(2);          // acc ramp update
                    machine.vecStore(dstRegion + idx * 4);
                    machine.intOps(3);
                }
                ++idx;
            }
        }
    }
    return machine.cycles();
}

} // namespace triarch::ppc
