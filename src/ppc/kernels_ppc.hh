/**
 * @file
 * The three study kernels on the PowerPC G4 baseline, in scalar and
 * AltiVec variants (Sections 4.1, 4.5). Each function computes the
 * real kernel output on host data while reporting every operation
 * and memory access to the PpcMachine timing model:
 *
 *  - corner turn: 32x32 cache-blocked transpose; AltiVec moves
 *    quadwords and transposes 4x4 in registers with vperm, but the
 *    kernel stays front-side-bus bound (AltiVec gains ~nothing);
 *  - CSLC: radix-2 FFT pipeline; compiled scalar FP code pays the
 *    FPU chain latency plus operand traffic, hand-vectorized
 *    AltiVec processes four butterflies at a time (~6x);
 *  - beam steering: table-driven integer loop; AltiVec is ~2x
 *    because issue and memory, not arithmetic, dominate.
 */

#ifndef TRIARCH_PPC_KERNELS_PPC_HH
#define TRIARCH_PPC_KERNELS_PPC_HH

#include <cstdint>
#include <vector>

#include "kernels/beam_steering.hh"
#include "kernels/corner_turn.hh"
#include "kernels/cslc.hh"
#include "ppc/machine.hh"

namespace triarch::ppc
{

/** Corner turn (32x32 blocked); @p altivec selects the vector code. */
Cycles cornerTurnPpc(PpcMachine &machine,
                     const kernels::WordMatrix &src,
                     kernels::WordMatrix &dst, bool altivec,
                     unsigned blockEdge = 32);

/** CSLC (radix-2); @p altivec selects the vectorized FFT/weights. */
Cycles cslcPpc(PpcMachine &machine, const kernels::CslcConfig &cfg,
               const kernels::CslcInput &in,
               const kernels::CslcWeights &weights,
               kernels::CslcOutput &out, bool altivec);

/** Beam steering; @p altivec vectorizes the element loop 4-wide. */
Cycles beamSteeringPpc(PpcMachine &machine,
                       const kernels::BeamConfig &cfg,
                       const kernels::BeamTables &tables,
                       std::vector<std::int32_t> &out, bool altivec);

} // namespace triarch::ppc

#endif // TRIARCH_PPC_KERNELS_PPC_HH
