/**
 * @file
 * The Imagine machine model: stream loads/stores between off-chip
 * SDRAM and the SRF, and software-pipelined SIMD kernels over the
 * eight ALU clusters.
 *
 * Programs drive the machine exactly the way Imagine applications
 * are structured: the host issues stream loads, kernel invocations,
 * and stream stores; the machine tracks when each stream becomes
 * ready and overlaps memory transfers with kernel execution subject
 * to the stream-descriptor-register limit. Kernels carry both a
 * functional body (a C++ callable operating on real SRF data) and a
 * VLIW schedule model (per-iteration op counts -> initiation
 * interval; pipeline depth -> prologue), mirroring kernel-C loops.
 */

#ifndef TRIARCH_IMAGINE_MACHINE_HH
#define TRIARCH_IMAGINE_MACHINE_HH

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "imagine/config.hh"
#include "imagine/srf.hh"
#include "mem/dram.hh"
#include "sim/cycle_account.hh"
#include "sim/zero_buffer.hh"
#include "sim/host_clock.hh"
#include "sim/hw_report.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace triarch::imagine
{

/** A memory access pattern for one stream transfer. */
struct MemPattern
{
    Addr base = 0;
    unsigned recordWords = 1;   //!< contiguous words per record
    Addr strideBytes = 4;       //!< distance between record starts
    unsigned records = 0;       //!< number of records

    unsigned
    totalWords() const
    {
        return recordWords * records;
    }

    /** A flat sequential pattern of @p words starting at @p base. */
    static MemPattern
    sequential(Addr base, unsigned words)
    {
        return {base, words, static_cast<Addr>(words) * 4, 1};
    }
};

/**
 * Static description of one kernel-C loop: per-iteration operation
 * counts (one iteration processes one record per cluster, i.e. 8
 * records) and software-pipeline depth. The machine derives the
 * initiation interval from the cluster resources.
 */
struct KernelDesc
{
    std::string name;
    unsigned iterations = 0;
    unsigned adds = 0;          //!< adder-class ops (incl. shifts)
    unsigned mults = 0;
    unsigned divs = 0;
    unsigned comm = 0;          //!< inter-cluster words exchanged
    unsigned srfWords = 0;      //!< SRF words read+written
    unsigned pipelineDepth = 8; //!< prologue iterations
    /** Algorithmically useful flops per invocation (for stats). */
    std::uint64_t usefulFlops = 0;
};

/** The Imagine stream processor + its two SDRAM channels. */
class ImagineMachine
{
  public:
    explicit ImagineMachine(const ImagineConfig &machine_config = {});

    const ImagineConfig &config() const { return cfg; }

    // ------------------------------------------------------------
    // Host-side memory and SRF management.
    // ------------------------------------------------------------

    /** Bump-allocate off-chip DRAM. */
    Addr allocMem(std::uint64_t bytes, const std::string &what);

    void pokeWords(Addr addr, std::span<const Word> words);
    std::vector<Word> peekWords(Addr addr, std::size_t count) const;

    /** Allocate / free an SRF stream. */
    StreamRef allocStream(unsigned words, const std::string &what);
    void freeStream(const StreamRef &ref);

    /** Raw view of a stream's SRF storage (functional data). */
    std::span<Word> srfData(const StreamRef &ref);
    std::span<const Word> srfData(const StreamRef &ref) const;

    // ------------------------------------------------------------
    // Timed stream operations.
    // ------------------------------------------------------------

    /** DRAM -> SRF transfer on the earliest-free memory engine. */
    void loadStream(const StreamRef &ref, const MemPattern &pattern);

    /** SRF -> DRAM transfer (waits until the stream is produced). */
    void storeStream(const StreamRef &ref, const MemPattern &pattern);

    /**
     * Run a kernel. @p fn is the functional body and executes
     * immediately against SRF contents; timing follows the VLIW
     * schedule model. Inputs gate the start; outputs become ready at
     * completion.
     */
    void runKernel(const KernelDesc &desc,
                   std::initializer_list<const StreamRef *> inputs,
                   std::initializer_list<const StreamRef *> outputs,
                   const std::function<void()> &fn);

    /** Initiation interval implied by a kernel's op counts. */
    Cycles kernelIi(const KernelDesc &desc) const;

    // ------------------------------------------------------------
    // Timing and statistics.
    // ------------------------------------------------------------

    Cycles completionTime() const;
    void resetTiming();

    /**
     * Finalize the cycle account against @p total (normally
     * completionTime()): cluster-array kernel execution is compute,
     * stream-engine transfer windows are dram_dma, host issue
     * overhead is setup_readback, and uncovered cycles (stream-
     * readiness and descriptor waits) are network/sync idle. Kernel
     * execution takes priority over overlapped transfers, so a
     * fully-overlapped memory system shows up as pure compute —
     * and cache_stall is structurally zero in stream mode. Also
     * records the breakdown into the stat group's account_* scalars.
     */
    stats::CycleBreakdown cycleBreakdown(Cycles total);

    stats::StatGroup &statGroup() { return group; }

    /** The component StatGroups (one per SDRAM channel) behind the
     *  main group, as (label-suffix, group) pairs for per-cell
     *  capture. */
    std::vector<std::pair<std::string, stats::StatGroup *>>
    componentGroups();

    /**
     * Roll the cluster/stream-engine counters into the cell's
     * hardware report: ALU utilization, DRAM row-hit rate, bus
     * utilization, stream-op occupancy, the busy epoch timeline, and
     * a bottleneck verdict consistent with @p breakdown
     * (hw_report.hh, D14).
     */
    hw::HwCell hwCell(Cycles total,
                      const stats::CycleBreakdown &breakdown);

    /** Where the registry mapping samples this cell's coarse
     *  setup/run/readback host-time split (profiling-gated). */
    host::HostPhases &hostTime() { return hostPhases; }

    std::uint64_t clusterBusy() const { return _clusterBusy.value(); }
    std::uint64_t memBusy() const { return _memBusy.value(); }
    std::uint64_t memWords() const { return _memWords.value(); }
    std::uint64_t hostCycles() const { return _hostCycles.value(); }
    std::uint64_t usefulFlops() const { return _usefulFlops.value(); }
    std::uint64_t commOps() const { return _commOps.value(); }

    /** Useful flops / (cycles x peak flops per cycle). */
    double aluUtilization() const;

    /** Fraction of total time the memory engines were moving data. */
    double memoryFraction() const;

    /** One-paragraph block-diagram description (Figure 2). */
    std::string describe() const;

  private:
    /** Apply host issue cost and the descriptor-register limit. */
    Cycles issueOp();

    Cycles streamReady(const StreamRef &ref) const;
    void setStreamReady(const StreamRef &ref, Cycles when);

    ImagineConfig cfg;
    bool spanMem;

    // Functional state.
    ZeroBuffer dram;
    std::vector<Word> srf;
    SrfAllocator allocator;
    Addr allocNext = 64;

    // Timing state.
    Cycles hostCycle = 0;
    Cycles clusterFree = 0;
    std::vector<Cycles> engineFree;
    std::vector<std::unique_ptr<mem::DramModel>> channels;
    std::vector<std::pair<unsigned, Cycles>> readyList;  //!< id->cycle
    std::deque<Cycles> inflight;    //!< outstanding stream ops
    Cycles lastFinish = 0;

    // Busy intervals for the wall-clock cycle account.
    stats::CycleTimeline timeline;

    /** Epoch channels sampled over the cluster-array and
     *  stream-engine busy windows. The transfer windows come from
     *  DramModel, whose span path is bit-identical to the reference
     *  walk (D13), so the timeline is mode-identical. */
    hw::EpochSampler hwSamp{{"cluster_busy", "mem_busy"}};

    // Statistics.
    stats::StatGroup group;
    stats::Scalar _clusterBusy;
    stats::Scalar _memBusy;
    stats::Scalar _memWords;
    stats::Scalar _hostCycles;
    stats::Scalar _usefulFlops;
    stats::Scalar _commOps;
    stats::Scalar _kernels;
    stats::Scalar _streamOps;
    stats::Scalar _descStalls;
    stats::Average _avgKernelIi;
    stats::BreakdownStats accountStats;
    host::HostPhases hostPhases;
};

} // namespace triarch::imagine

#endif // TRIARCH_IMAGINE_MACHINE_HH
