/**
 * @file
 * Stream register file allocator: streams occupy whole 128-byte
 * blocks and can start only at block boundaries (Section 2.2). The
 * allocator is first-fit over the block map; kernels that need more
 * SRF than exists must strip-mine their data, exactly like the
 * paper's corner-turn implementation.
 */

#ifndef TRIARCH_IMAGINE_SRF_HH
#define TRIARCH_IMAGINE_SRF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace triarch::imagine
{

/** Handle to an allocated SRF stream. */
struct StreamRef
{
    unsigned id = ~0u;          //!< allocation id (for readiness)
    unsigned offsetWords = 0;   //!< word offset into the SRF
    unsigned words = 0;         //!< stream length in 32-bit words

    bool valid() const { return id != ~0u; }
};

/** Block-granular first-fit allocator over the SRF. */
class SrfAllocator
{
  public:
    SrfAllocator(std::uint64_t srf_bytes, unsigned block_bytes);

    /**
     * Allocate a stream of @p words 32-bit words; fatal if the SRF
     * is exhausted (the kernel mapping must strip-mine instead).
     */
    StreamRef alloc(unsigned words, const std::string &what);

    /** Release a stream's blocks. */
    void free(const StreamRef &ref);

    /** Blocks currently allocated. */
    unsigned blocksInUse() const { return usedBlocks; }

    unsigned totalBlocks() const
    {
        return static_cast<unsigned>(used.size());
    }

    /** High-water mark of block usage (for occupancy stats). */
    unsigned peakBlocks() const { return _peak; }

  private:
    unsigned blockBytes;
    std::vector<bool> used;
    std::vector<std::pair<unsigned, unsigned>> live;   //!< id->block,count
    unsigned nextId = 0;
    unsigned usedBlocks = 0;
    unsigned _peak = 0;
};

} // namespace triarch::imagine

#endif // TRIARCH_IMAGINE_SRF_HH
