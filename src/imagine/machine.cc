#include "machine.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace triarch::imagine
{

ImagineMachine::ImagineMachine(const ImagineConfig &machine_config)
    : cfg(machine_config),
      spanMem(mem::resolveMemModel(cfg.memModel)
              != mem::MemModel::Reference),
      dram(cfg.memBytes),
      srf(cfg.srfBytes / 4, 0),
      allocator(cfg.srfBytes, cfg.srfBlockBytes),
      engineFree(cfg.memEngines, 0), group("imagine")
{
    for (unsigned e = 0; e < cfg.memEngines; ++e) {
        channels.push_back(
            std::make_unique<mem::DramModel>(cfg.dramChannel(e)));
    }
    group.addScalar("cluster_busy", &_clusterBusy,
                    "cycles the cluster array executed kernels");
    group.addScalar("mem_busy", &_memBusy,
                    "engine cycles spent on stream transfers");
    group.addScalar("mem_words", &_memWords, "words moved to/from DRAM");
    group.addScalar("host_cycles", &_hostCycles,
                    "host issue overhead cycles");
    group.addScalar("useful_flops", &_usefulFlops,
                    "algorithmically required flops");
    group.addScalar("comm_ops", &_commOps, "inter-cluster words");
    group.addScalar("kernels", &_kernels, "kernel invocations");
    group.addScalar("stream_ops", &_streamOps, "stream load/store ops");
    group.addScalar("desc_stalls", &_descStalls,
                    "issues stalled on stream descriptor registers");
    group.addAverage("avg_kernel_ii", &_avgKernelIi,
                     "mean initiation interval per kernel invocation");
    accountStats.registerIn(group);
    hostPhases.addTo(group);
}

Addr
ImagineMachine::allocMem(std::uint64_t bytes, const std::string &what)
{
    const Addr addr = roundUp(allocNext, 64);
    if (addr + bytes > dram.size()) {
        triarch_fatal("Imagine DRAM exhausted allocating ", bytes,
                      " bytes for ", what);
    }
    allocNext = addr + bytes;
    return addr;
}

void
ImagineMachine::pokeWords(Addr addr, std::span<const Word> words)
{
    triarch_assert(addr + words.size() * 4 <= dram.size(),
                   "poke outside DRAM");
    std::memcpy(dram.data() + addr, words.data(), words.size() * 4);
}

std::vector<Word>
ImagineMachine::peekWords(Addr addr, std::size_t count) const
{
    triarch_assert(addr + count * 4 <= dram.size(), "peek outside DRAM");
    std::vector<Word> out(count);
    std::memcpy(out.data(), dram.data() + addr, count * 4);
    return out;
}

StreamRef
ImagineMachine::allocStream(unsigned words, const std::string &what)
{
    return allocator.alloc(words, what);
}

void
ImagineMachine::freeStream(const StreamRef &ref)
{
    allocator.free(ref);
    for (auto it = readyList.begin(); it != readyList.end(); ++it) {
        if (it->first == ref.id) {
            readyList.erase(it);
            break;
        }
    }
}

std::span<Word>
ImagineMachine::srfData(const StreamRef &ref)
{
    triarch_assert(ref.valid(), "invalid stream");
    return {srf.data() + ref.offsetWords, ref.words};
}

std::span<const Word>
ImagineMachine::srfData(const StreamRef &ref) const
{
    triarch_assert(ref.valid(), "invalid stream");
    return {srf.data() + ref.offsetWords, ref.words};
}

Cycles
ImagineMachine::streamReady(const StreamRef &ref) const
{
    for (const auto &[id, when] : readyList) {
        if (id == ref.id)
            return when;
    }
    return 0;
}

void
ImagineMachine::setStreamReady(const StreamRef &ref, Cycles when)
{
    for (auto &[id, entry] : readyList) {
        if (id == ref.id) {
            entry = when;
            return;
        }
    }
    readyList.emplace_back(ref.id, when);
}

Cycles
ImagineMachine::issueOp()
{
    hostCycle += cfg.hostIssueCycles;
    _hostCycles += cfg.hostIssueCycles;
    timeline.add(stats::CycleCategory::SetupReadback,
                 hostCycle - cfg.hostIssueCycles, hostCycle);
    if (inflight.size() >= cfg.streamDescRegs) {
        const Cycles oldest = inflight.front();
        inflight.pop_front();
        if (oldest > hostCycle) {
            ++_descStalls;
            hostCycle = oldest;
        }
    }
    return hostCycle;
}

void
ImagineMachine::loadStream(const StreamRef &ref,
                           const MemPattern &pattern)
{
    trace::TraceScope scope("imagine.load_stream", "imagine", &group);
    triarch_assert(pattern.totalWords() == ref.words,
                   "stream/pattern length mismatch");
    triarch_assert(pattern.base
                       + (pattern.records - 1) * pattern.strideBytes
                       + pattern.recordWords * 4 <= dram.size(),
                   "stream load outside DRAM");

    // Functional copy DRAM -> SRF, record by record (one flat copy
    // when the records abut).
    Word *dst = srf.data() + ref.offsetWords;
    if (pattern.strideBytes
        == static_cast<Addr>(pattern.recordWords) * 4) {
        std::memcpy(dst, dram.data() + pattern.base,
                    static_cast<std::size_t>(pattern.totalWords()) * 4);
    } else {
        for (unsigned r = 0; r < pattern.records; ++r) {
            std::memcpy(dst + static_cast<std::size_t>(r)
                        * pattern.recordWords,
                        dram.data() + pattern.base
                        + r * pattern.strideBytes,
                        pattern.recordWords * 4);
        }
    }

    const Cycles issued = issueOp();
    const unsigned e = static_cast<unsigned>(
        std::min_element(engineFree.begin(), engineFree.end())
        - engineFree.begin());
    const Cycles start = std::max(issued, engineFree[e]);

    mem::AccessWindow window{start, start};
    if (spanMem && pattern.records > 0) {
        window = channels[e]->accessPattern(pattern.base,
                                            pattern.strideBytes,
                                            pattern.records,
                                            pattern.recordWords, start);
    } else {
        for (unsigned r = 0; r < pattern.records; ++r) {
            window = channels[e]->access(
                pattern.base + r * pattern.strideBytes,
                pattern.recordWords, start);
        }
    }
    // The engine itself moves at most one word per cycle.
    const Cycles engineTime = start + pattern.totalWords();
    const Cycles finish = std::max(window.finish, engineTime);

    engineFree[e] = finish;
    setStreamReady(ref, finish);
    inflight.push_back(finish);
    lastFinish = std::max(lastFinish, finish);
    timeline.add(stats::CycleCategory::DramDma, start, finish);
    hwSamp.addRange(1, start, finish);
    _memBusy += finish - start;
    _memWords += pattern.totalWords();
    ++_streamOps;
}

void
ImagineMachine::storeStream(const StreamRef &ref,
                            const MemPattern &pattern)
{
    trace::TraceScope scope("imagine.store_stream", "imagine", &group);
    triarch_assert(pattern.totalWords() == ref.words,
                   "stream/pattern length mismatch");

    // Functional copy SRF -> DRAM (one flat copy when the records
    // abut).
    const Word *src = srf.data() + ref.offsetWords;
    if (pattern.strideBytes
        == static_cast<Addr>(pattern.recordWords) * 4) {
        std::memcpy(dram.data() + pattern.base, src,
                    static_cast<std::size_t>(pattern.totalWords()) * 4);
    } else {
        for (unsigned r = 0; r < pattern.records; ++r) {
            std::memcpy(dram.data() + pattern.base
                        + r * pattern.strideBytes,
                        src + static_cast<std::size_t>(r)
                        * pattern.recordWords,
                        pattern.recordWords * 4);
        }
    }

    const Cycles issued = issueOp();
    const unsigned e = static_cast<unsigned>(
        std::min_element(engineFree.begin(), engineFree.end())
        - engineFree.begin());
    const Cycles start =
        std::max({issued, engineFree[e], streamReady(ref)});

    mem::AccessWindow window{start, start};
    if (spanMem && pattern.records > 0) {
        window = channels[e]->accessPattern(pattern.base,
                                            pattern.strideBytes,
                                            pattern.records,
                                            pattern.recordWords, start);
    } else {
        for (unsigned r = 0; r < pattern.records; ++r) {
            window = channels[e]->access(
                pattern.base + r * pattern.strideBytes,
                pattern.recordWords, start);
        }
    }
    const Cycles engineTime = start + pattern.totalWords();
    const Cycles finish = std::max(window.finish, engineTime);

    engineFree[e] = finish;
    inflight.push_back(finish);
    lastFinish = std::max(lastFinish, finish);
    timeline.add(stats::CycleCategory::DramDma, start, finish);
    hwSamp.addRange(1, start, finish);
    _memBusy += finish - start;
    _memWords += pattern.totalWords();
    ++_streamOps;
}

Cycles
ImagineMachine::kernelIi(const KernelDesc &desc) const
{
    const Cycles ii = std::max<Cycles>(
        {1,
         ceilDiv(desc.adds, cfg.addersPerCluster),
         ceilDiv(desc.mults, cfg.multsPerCluster),
         ceilDiv(desc.divs, cfg.dividersPerCluster),
         ceilDiv(desc.comm, cfg.commPerCluster),
         ceilDiv(desc.srfWords, cfg.srfWordsPerClusterCycle)});
    return ii;
}

void
ImagineMachine::runKernel(const KernelDesc &desc,
                          std::initializer_list<const StreamRef *> inputs,
                          std::initializer_list<const StreamRef *> outputs,
                          const std::function<void()> &fn)
{
    trace::TraceScope scope(desc.name.c_str(), "imagine", &group);

    // Functional execution against current SRF contents.
    fn();

    hostCycle += cfg.hostIssueCycles;
    _hostCycles += cfg.hostIssueCycles;
    timeline.add(stats::CycleCategory::SetupReadback,
                 hostCycle - cfg.hostIssueCycles, hostCycle);

    Cycles start = std::max(hostCycle, clusterFree);
    for (const StreamRef *in : inputs) {
        if (in->valid())
            start = std::max(start, streamReady(*in));
    }

    const Cycles ii = kernelIi(desc);
    const Cycles busy =
        (static_cast<Cycles>(desc.iterations) + desc.pipelineDepth) * ii;
    const Cycles finish = start + busy;

    clusterFree = finish;
    for (const StreamRef *out : outputs) {
        if (out->valid())
            setStreamReady(*out, finish);
    }
    lastFinish = std::max(lastFinish, finish);

    timeline.add(stats::CycleCategory::Compute, start, finish);
    hwSamp.addRange(0, start, finish);
    _clusterBusy += busy;
    _avgKernelIi.sample(static_cast<double>(ii));
    _usefulFlops += desc.usefulFlops;
    _commOps += static_cast<std::uint64_t>(desc.comm) * desc.iterations
                * cfg.clusters;
    ++_kernels;
}

Cycles
ImagineMachine::completionTime() const
{
    return std::max(lastFinish, hostCycle);
}

stats::CycleBreakdown
ImagineMachine::cycleBreakdown(Cycles total)
{
    const stats::CycleBreakdown b =
        timeline.resolve(total, stats::CycleCategory::NetworkSync);
    accountStats.record(b);
    return b;
}

std::vector<std::pair<std::string, stats::StatGroup *>>
ImagineMachine::componentGroups()
{
    std::vector<std::pair<std::string, stats::StatGroup *>> out;
    for (unsigned e = 0; e < channels.size(); ++e)
        out.emplace_back("dram" + std::to_string(e),
                         &channels[e]->statGroup());
    return out;
}

hw::HwCell
ImagineMachine::hwCell(Cycles total,
                       const stats::CycleBreakdown &breakdown)
{
    std::uint64_t rowHits = 0, rowMisses = 0, transfer = 0;
    for (const auto &ch : channels) {
        rowHits += ch->rowHits();
        rowMisses += ch->rowMisses();
        transfer += ch->transferCycles();
    }
    const std::uint64_t rowTotal = rowHits + rowMisses;
    const double rowHitRate =
        rowTotal ? static_cast<double>(rowHits) / rowTotal : 0.0;
    const double engineCap =
        static_cast<double>(total) * cfg.memEngines;
    const double busUtil =
        total ? std::min(1.0, static_cast<double>(transfer) / engineCap)
              : 0.0;
    const double streamOcc = memoryFraction();
    const double aluUtil = std::min(1.0, aluUtilization());
    const double clusterOcc =
        total ? std::min(1.0, static_cast<double>(_clusterBusy.value())
                                  / static_cast<double>(total))
              : 0.0;

    hw::HwCell cell;
    cell.cycles = total;
    cell.breakdown = breakdown;
    cell.metrics = {
        {"alu_utilization", aluUtil, true},
        {"cluster_occupancy", clusterOcc, true},
        {"dram_row_hit_rate", rowHitRate, true},
        {"bus_utilization", busUtil, true},
        {"stream_op_occupancy", streamOcc, true},
        {"mem_words_per_cycle",
         total ? static_cast<double>(_memWords.value())
                     / static_cast<double>(total)
               : 0.0,
         false},
    };

    cell.verdict.category = hw::dominantCategory(breakdown);
    switch (cell.verdict.category) {
      case stats::CycleCategory::Compute:
        cell.verdict.component = "cluster";
        cell.verdict.detail = "bound by the cluster array, alu util "
                              + hw::fmt2(aluUtil) + ", occupancy "
                              + hw::fmt2(clusterOcc);
        break;
      case stats::CycleCategory::CacheStall:
        // Structurally unreachable: stream mode has no cache.
        cell.verdict.component = "dcache";
        cell.verdict.detail = "unexpected cache stalls";
        break;
      case stats::CycleCategory::DramDma:
        // Within the memory category, blame the SDRAM banks when row
        // misses dominate the access mix, else the stream engines.
        if (rowMisses >= rowHits) {
            cell.verdict.component = "dram";
            cell.verdict.detail = "bound by SDRAM row misses, "
                                  "row-hit "
                                  + hw::fmt2(rowHitRate)
                                  + ", bus util " + hw::fmt2(busUtil);
        } else {
            cell.verdict.component = "stream";
            cell.verdict.detail = "bound by stream transfers, "
                                  "bus util "
                                  + hw::fmt2(busUtil) + ", row-hit "
                                  + hw::fmt2(rowHitRate);
        }
        break;
      case stats::CycleCategory::NetworkSync:
        cell.verdict.component = "network";
        cell.verdict.detail =
            "stream-readiness/descriptor waits dominate, "
            "desc stalls "
            + std::to_string(_descStalls.value());
        break;
      case stats::CycleCategory::SetupReadback:
        cell.verdict.component = "host";
        cell.verdict.detail = "host issue overhead dominates";
        break;
    }

    cell.timeline = hwSamp.finalize(completionTime());
    return cell;
}

void
ImagineMachine::resetTiming()
{
    hostCycle = 0;
    clusterFree = 0;
    std::fill(engineFree.begin(), engineFree.end(), Cycles{0});
    for (auto &ch : channels)
        ch->resetState();
    readyList.clear();
    inflight.clear();
    lastFinish = 0;
    timeline.clear();
    hwSamp.reset();
    group.resetAll();
    for (auto &ch : channels)
        ch->statGroup().resetAll();
}

double
ImagineMachine::aluUtilization() const
{
    const Cycles total = completionTime();
    if (total == 0)
        return 0.0;
    const double peakPerCycle =
        static_cast<double>(cfg.clusters)
        * (cfg.addersPerCluster + cfg.multsPerCluster
           + cfg.dividersPerCluster);
    return static_cast<double>(_usefulFlops.value())
           / (static_cast<double>(total) * peakPerCycle);
}

double
ImagineMachine::memoryFraction() const
{
    const Cycles total = completionTime();
    if (total == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(_memBusy.value())
                    / static_cast<double>(total * cfg.memEngines));
}

std::string
ImagineMachine::describe() const
{
    std::ostringstream os;
    os << "Imagine (stream processor, Stanford)\n"
       << "  " << cfg.clusters << " SIMD ALU clusters x ("
       << cfg.addersPerCluster << " adders + " << cfg.multsPerCluster
       << " multipliers + " << cfg.dividersPerCluster
       << " divider + comm unit)\n"
       << "  stream register file: " << cfg.srfBytes / 1024
       << " KB in " << cfg.srfBlockBytes << "-byte blocks\n"
       << "  " << cfg.memEngines
       << " memory stream engines, 1 word/cycle each, off-chip SDRAM\n"
       << "  clock " << cfg.clockMhz << " MHz, peak "
       << (cfg.clockMhz / 1000.0 * cfg.clusters
           * (cfg.addersPerCluster + cfg.multsPerCluster
              + cfg.dividersPerCluster))
       << " GFLOPS (32-bit)\n";
    return os.str();
}

} // namespace triarch::imagine
