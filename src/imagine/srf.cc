#include "srf.hh"

#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::imagine
{

SrfAllocator::SrfAllocator(std::uint64_t srf_bytes, unsigned block_bytes)
    : blockBytes(block_bytes),
      used(srf_bytes / block_bytes, false)
{
    triarch_assert(srf_bytes % block_bytes == 0,
                   "SRF size must be a multiple of the block size");
}

StreamRef
SrfAllocator::alloc(unsigned words, const std::string &what)
{
    triarch_assert(words > 0, "empty stream allocation for ", what);
    const unsigned blocks = static_cast<unsigned>(
        ceilDiv(static_cast<std::uint64_t>(words) * 4, blockBytes));

    // First fit over the block map.
    unsigned run = 0;
    for (unsigned b = 0; b < used.size(); ++b) {
        run = used[b] ? 0 : run + 1;
        if (run == blocks) {
            const unsigned start = b + 1 - blocks;
            for (unsigned i = start; i <= b; ++i)
                used[i] = true;
            usedBlocks += blocks;
            _peak = std::max(_peak, usedBlocks);

            StreamRef ref;
            ref.id = nextId++;
            ref.offsetWords = start * (blockBytes / 4);
            ref.words = words;
            live.emplace_back(ref.id, (start << 16) | blocks);
            return ref;
        }
    }
    triarch_fatal("SRF exhausted allocating ", words, " words for ",
                  what, " (", usedBlocks, "/", used.size(),
                  " blocks in use) — strip-mine the stream");
}

void
SrfAllocator::free(const StreamRef &ref)
{
    for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->first == ref.id) {
            const unsigned start = it->second >> 16;
            const unsigned blocks = it->second & 0xFFFF;
            for (unsigned i = start; i < start + blocks; ++i) {
                triarch_assert(used[i], "SRF double free");
                used[i] = false;
            }
            usedBlocks -= blocks;
            live.erase(it);
            return;
        }
    }
    triarch_panic("freeing unknown SRF stream id ", ref.id);
}

} // namespace triarch::imagine
