#include "kernels_imagine.hh"

#include <cstring>
#include <span>

#include "kernels/fft.hh"
#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::imagine
{

using kernels::cfloat;

Cycles
cornerTurnImagine(ImagineMachine &machine,
                  const kernels::WordMatrix &src,
                  kernels::WordMatrix &dst)
{
    constexpr unsigned strip = cornerTurnStripRows;
    triarch_assert(src.rows % strip == 0 && src.cols % 8 == 0,
                   "corner turn needs rows % 8 == 0 and cols % 8 == 0");

    const Addr srcBase = machine.allocMem(
        static_cast<std::uint64_t>(src.rows) * src.cols * 4, "ct src");
    const Addr dstBase = machine.allocMem(
        static_cast<std::uint64_t>(src.rows) * src.cols * 4, "ct dst");
    machine.pokeWords(srcBase, src.data);

    machine.resetTiming();

    // The reorder kernel: every iteration each of the 8 clusters
    // assembles one 8-word output record (a column slice of the
    // strip) from the four input streams. SRF traffic is 8 words in
    // + 8 out per cluster; the gather uses the inter-cluster network
    // because consecutive words of one record live in different
    // clusters' stream slices.
    KernelDesc reorder;
    reorder.name = "ct_reorder";
    reorder.iterations = src.cols / 8;
    reorder.adds = 4;       // address bookkeeping
    reorder.comm = 7;       // 7 of 8 record words cross clusters
    reorder.srfWords = 16;
    reorder.pipelineDepth = 8;

    const unsigned rowWords = src.cols;
    for (unsigned s = 0; s < src.rows / strip; ++s) {
        StreamRef in[4];
        for (unsigned i = 0; i < 4; ++i) {
            in[i] = machine.allocStream(2 * rowWords, "ct in");
            machine.loadStream(
                in[i], MemPattern::sequential(
                    srcBase + (static_cast<Addr>(s) * strip + 2 * i)
                    * rowWords * 4,
                    2 * rowWords));
        }
        StreamRef outStream =
            machine.allocStream(strip * rowWords, "ct out");

        machine.runKernel(
            reorder, {&in[0], &in[1], &in[2], &in[3]}, {&outStream},
            [&] {
                auto out = machine.srfData(outStream);
                const std::span<Word> rows[4] = {
                    machine.srfData(in[0]), machine.srfData(in[1]),
                    machine.srfData(in[2]), machine.srfData(in[3])};
                for (unsigned c = 0; c < src.cols; ++c) {
                    for (unsigned r = 0; r < strip; ++r) {
                        out[static_cast<std::size_t>(c) * strip + r] =
                            rows[r / 2][(r % 2) * rowWords + c];
                    }
                }
            });

        // Each 8-word record is one destination-row segment; records
        // stride one destination row (src.rows words) apart.
        MemPattern outPattern;
        outPattern.base = dstBase + static_cast<Addr>(s) * strip * 4;
        outPattern.recordWords = strip;
        outPattern.strideBytes = static_cast<Addr>(src.rows) * 4;
        outPattern.records = src.cols;
        machine.storeStream(outStream, outPattern);

        for (auto &stream : in)
            machine.freeStream(stream);
        machine.freeStream(outStream);
    }

    const Cycles cycles = machine.completionTime();

    dst = kernels::WordMatrix(src.cols, src.rows);
    auto words = machine.peekWords(
        dstBase, static_cast<std::size_t>(src.rows) * src.cols);
    std::copy(words.begin(), words.end(), dst.data.begin());
    return cycles;
}

namespace
{

/** Copy a 128-point complex block out of an SRF stream. */
std::vector<cfloat>
readComplex(const ImagineMachine &machine, const StreamRef &ref)
{
    auto data = machine.srfData(ref);
    std::vector<cfloat> x(data.size() / 2);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = cfloat(wordToFloat(data[2 * i]),
                      wordToFloat(data[2 * i + 1]));
    }
    return x;
}

/** Write a complex block into an SRF stream (interleaved). */
void
writeComplex(ImagineMachine &machine, const StreamRef &ref,
             const std::vector<cfloat> &x)
{
    auto data = machine.srfData(ref);
    triarch_assert(data.size() == 2 * x.size(), "stream size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) {
        data[2 * i] = floatToWord(x[i].real());
        data[2 * i + 1] = floatToWord(x[i].imag());
    }
}

/**
 * VLIW schedule model for the parallelized mixed-radix 128-point
 * FFT: 7 butterfly-equivalent stages x 64 butterflies over 8
 * clusters = 56 iterations. Each butterfly is ~6 adds + 4 multiplies
 * and exchanges 4 words with sibling clusters (the paper's
 * inter-cluster communication overhead: II is comm-bound at 4
 * cycles where the arithmetic alone would need 2).
 */
KernelDesc
fft128Desc(const char *name)
{
    KernelDesc desc;
    desc.name = name;
    desc.iterations = 56;
    desc.adds = 6;
    desc.mults = 4;
    desc.comm = 4;
    desc.srfWords = 9;      // 256 in + 256 out words / 56 iterations
    desc.pipelineDepth = 32;    // short stream: prologue hurts
    desc.usefulFlops = kernels::mixed128Ops().flops();
    return desc;
}

} // namespace

Cycles
cslcImagine(ImagineMachine &machine, const kernels::CslcConfig &cfg,
            const kernels::CslcInput &in,
            const kernels::CslcWeights &weights,
            kernels::CslcOutput &out)
{
    triarch_assert(cfg.subBandLen == 128,
                   "Imagine CSLC mapping is built for 128-point bands");

    // DRAM layout: channel time series, weights, output blocks, all
    // interleaved complex.
    auto pokeComplex = [&machine](Addr base,
                                  const std::vector<cfloat> &x) {
        std::vector<Word> words(2 * x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
            words[2 * i] = floatToWord(x[i].real());
            words[2 * i + 1] = floatToWord(x[i].imag());
        }
        machine.pokeWords(base, words);
    };

    std::vector<Addr> mainBase(cfg.mainChannels), auxBase(cfg.auxChannels);
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        mainBase[m] = machine.allocMem(cfg.samples * 8ULL, "cslc main");
        pokeComplex(mainBase[m], in.main[m]);
    }
    for (unsigned a = 0; a < cfg.auxChannels; ++a) {
        auxBase[a] = machine.allocMem(cfg.samples * 8ULL, "cslc aux");
        pokeComplex(auxBase[a], in.aux[a]);
    }

    std::vector<std::vector<Addr>> wBase(cfg.mainChannels,
        std::vector<Addr>(cfg.auxChannels));
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        for (unsigned a = 0; a < cfg.auxChannels; ++a) {
            wBase[m][a] = machine.allocMem(
                static_cast<std::uint64_t>(cfg.subBands) * 128 * 8,
                "cslc weights");
            pokeComplex(wBase[m][a], weights.w[m][a]);
        }
    }

    std::vector<Addr> outBase(cfg.mainChannels);
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        outBase[m] = machine.allocMem(
            static_cast<std::uint64_t>(cfg.subBands) * 128 * 8,
            "cslc out");
    }

    machine.resetTiming();

    // Weight application: per iteration each cluster handles one
    // bin: two complex multiplies (8 mults + 4 adds) plus two
    // complex subtracts (4 adds); 12 SRF words in, 2 out.
    KernelDesc weightDesc;
    weightDesc.name = "cslc_weights";
    weightDesc.iterations = 16;
    weightDesc.adds = 8;
    weightDesc.mults = 8;
    weightDesc.srfWords = 14;
    weightDesc.pipelineDepth = 16;
    weightDesc.usefulFlops = 128 * 16;

    const unsigned blockWords = 256;
    for (unsigned b = 0; b < cfg.subBands; ++b) {
        const Addr off = static_cast<Addr>(b) * cfg.subBandStride * 8;

        // Load and transform the aux channels.
        StreamRef auxTime[2], auxSpec[2];
        for (unsigned a = 0; a < cfg.auxChannels; ++a) {
            auxTime[a] = machine.allocStream(blockWords, "aux time");
            auxSpec[a] = machine.allocStream(blockWords, "aux spec");
            machine.loadStream(
                auxTime[a],
                MemPattern::sequential(auxBase[a] + off, blockWords));
            machine.runKernel(
                fft128Desc("cslc_fft_aux"), {&auxTime[a]}, {&auxSpec[a]},
                [&] {
                    auto x = readComplex(machine, auxTime[a]);
                    kernels::fftMixed128(x);
                    writeComplex(machine, auxSpec[a], x);
                });
        }

        for (unsigned m = 0; m < cfg.mainChannels; ++m) {
            StreamRef mainTime =
                machine.allocStream(blockWords, "main time");
            StreamRef mainSpec =
                machine.allocStream(blockWords, "main spec");
            machine.loadStream(
                mainTime,
                MemPattern::sequential(mainBase[m] + off, blockWords));
            machine.runKernel(
                fft128Desc("cslc_fft_main"), {&mainTime}, {&mainSpec},
                [&] {
                    auto x = readComplex(machine, mainTime);
                    kernels::fftMixed128(x);
                    writeComplex(machine, mainSpec, x);
                });

            // Load this sub-band's weights for both aux channels.
            StreamRef w[2];
            for (unsigned a = 0; a < cfg.auxChannels; ++a) {
                w[a] = machine.allocStream(blockWords, "weights");
                machine.loadStream(
                    w[a], MemPattern::sequential(
                        wBase[m][a] + static_cast<Addr>(b) * 128 * 8,
                        blockWords));
            }

            StreamRef cancelled =
                machine.allocStream(blockWords, "cancelled");
            machine.runKernel(
                weightDesc,
                {&mainSpec, &auxSpec[0], &auxSpec[1], &w[0], &w[1]},
                {&cancelled},
                [&] {
                    auto ms = readComplex(machine, mainSpec);
                    auto a0 = readComplex(machine, auxSpec[0]);
                    auto a1 = readComplex(machine, auxSpec[1]);
                    auto w0 = readComplex(machine, w[0]);
                    auto w1 = readComplex(machine, w[1]);
                    // Subtract the aux products one at a time, in
                    // the reference's operation order: summing them
                    // first rounds differently, which shows up when
                    // a degenerate config (e.g. 2 sub-bands) lets
                    // the canceller null the output entirely and
                    // only rounding noise remains.
                    for (unsigned k = 0; k < 128; ++k) {
                        ms[k] -= w0[k] * a0[k];
                        ms[k] -= w1[k] * a1[k];
                    }
                    writeComplex(machine, cancelled, ms);
                });

            StreamRef outTime =
                machine.allocStream(blockWords, "out time");
            machine.runKernel(
                fft128Desc("cslc_ifft"), {&cancelled}, {&outTime},
                [&] {
                    auto x = readComplex(machine, cancelled);
                    kernels::ifftMixed128(x);
                    writeComplex(machine, outTime, x);
                });

            machine.storeStream(
                outTime, MemPattern::sequential(
                    outBase[m] + static_cast<Addr>(b) * 128 * 8,
                    blockWords));

            machine.freeStream(mainTime);
            machine.freeStream(mainSpec);
            machine.freeStream(w[0]);
            machine.freeStream(w[1]);
            machine.freeStream(cancelled);
            machine.freeStream(outTime);
        }

        for (unsigned a = 0; a < cfg.auxChannels; ++a) {
            machine.freeStream(auxTime[a]);
            machine.freeStream(auxSpec[a]);
        }
    }

    const Cycles cycles = machine.completionTime();

    out.main.assign(cfg.mainChannels,
        std::vector<cfloat>(static_cast<std::size_t>(cfg.subBands)
                            * 128));
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        auto words = machine.peekWords(
            outBase[m], static_cast<std::size_t>(cfg.subBands) * 256);
        for (std::size_t i = 0; i < out.main[m].size(); ++i) {
            out.main[m][i] = cfloat(wordToFloat(words[2 * i]),
                                    wordToFloat(words[2 * i + 1]));
        }
    }
    return cycles;
}

Cycles
cslcImagineIndependent(ImagineMachine &machine,
                       const kernels::CslcConfig &cfg,
                       const kernels::CslcInput &in,
                       const kernels::CslcWeights &weights,
                       kernels::CslcOutput &out)
{
    triarch_assert(cfg.subBandLen == 128,
                   "Imagine CSLC mapping is built for 128-point bands");

    auto pokeComplex = [&machine](Addr base,
                                  const std::vector<cfloat> &x) {
        std::vector<Word> words(2 * x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
            words[2 * i] = floatToWord(x[i].real());
            words[2 * i + 1] = floatToWord(x[i].imag());
        }
        machine.pokeWords(base, words);
    };

    std::vector<Addr> chBase(4);
    for (unsigned a = 0; a < cfg.auxChannels; ++a) {
        chBase[a] = machine.allocMem(cfg.samples * 8ULL, "cslc aux");
        pokeComplex(chBase[a], in.aux[a]);
    }
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        chBase[2 + m] =
            machine.allocMem(cfg.samples * 8ULL, "cslc main");
        pokeComplex(chBase[2 + m], in.main[m]);
    }

    std::vector<std::vector<Addr>> wBase(2, std::vector<Addr>(2));
    for (unsigned m = 0; m < 2; ++m) {
        for (unsigned a = 0; a < 2; ++a) {
            wBase[m][a] = machine.allocMem(
                static_cast<std::uint64_t>(cfg.subBands) * 128 * 8,
                "cslc weights");
            pokeComplex(wBase[m][a], weights.w[m][a]);
        }
    }
    std::vector<Addr> outBase(2);
    for (unsigned m = 0; m < 2; ++m) {
        outBase[m] = machine.allocMem(
            static_cast<std::uint64_t>(cfg.subBands) * 128 * 8,
            "cslc out");
    }

    machine.resetTiming();

    // Each cluster transforms a whole 128-point block of its own:
    // no comm; per iteration every cluster executes one butterfly
    // (6 adds + 4 multiplies) of its private transform.
    KernelDesc fftBatch;
    fftBatch.name = "cslc_fft_independent";
    fftBatch.iterations = static_cast<unsigned>(
        ceilDiv(kernels::mixed128Ops().flops(), 10));
    fftBatch.adds = 6;
    fftBatch.mults = 4;
    fftBatch.comm = 0;
    fftBatch.srfWords = 2;
    fftBatch.pipelineDepth = 32;

    KernelDesc weightDesc;
    weightDesc.name = "cslc_weights";
    weightDesc.iterations = 16;
    weightDesc.adds = 8;
    weightDesc.mults = 8;
    weightDesc.srfWords = 14;
    weightDesc.pipelineDepth = 16;
    weightDesc.usefulFlops = 128 * 16;

    const unsigned blockWords = 256;
    // Process sub-bands in pairs: 2 bands x 4 channels = 8
    // independent forward transforms, one per cluster; then the
    // pair's 4 IFFTs run as a half-occupied batch.
    for (unsigned b0 = 0; b0 < cfg.subBands; b0 += 2) {
        const unsigned bands = std::min(2u, cfg.subBands - b0);
        const unsigned fwd = bands * 4;

        StreamRef time[8], spec[8];
        for (unsigned i = 0; i < fwd; ++i) {
            const unsigned b = b0 + i / 4;
            const unsigned ch = i % 4;
            time[i] = machine.allocStream(blockWords, "time");
            spec[i] = machine.allocStream(blockWords, "spec");
            machine.loadStream(
                time[i],
                MemPattern::sequential(
                    chBase[ch]
                        + static_cast<Addr>(b) * cfg.subBandStride * 8,
                    blockWords));
        }

        KernelDesc fwdDesc = fftBatch;
        fwdDesc.usefulFlops = static_cast<std::uint64_t>(fwd)
                              * kernels::mixed128Ops().flops();
        // Invalid (default) StreamRefs in the gating lists are
        // ignored by the ready tracking, so passing all eight slots
        // is safe when the tail pair has only one band.
        machine.runKernel(
            fwdDesc,
            {&time[0], &time[1], &time[2], &time[3], &time[4],
             &time[5], &time[6], &time[7]},
            {&spec[0], &spec[1], &spec[2], &spec[3], &spec[4],
             &spec[5], &spec[6], &spec[7]},
            [&] {
                for (unsigned i = 0; i < fwd; ++i) {
                    auto x = readComplex(machine, time[i]);
                    kernels::fftMixed128(x);
                    writeComplex(machine, spec[i], x);
                }
            });

        // Weight application for every (band, main) of the pair,
        // collecting the cancelled spectra...
        StreamRef cancelled[4], w[4][2];
        const unsigned nout = bands * 2;
        for (unsigned i = 0; i < bands; ++i) {
            const unsigned b = b0 + i;
            for (unsigned m = 0; m < 2; ++m) {
                const unsigned o = i * 2 + m;
                for (unsigned a = 0; a < 2; ++a) {
                    w[o][a] = machine.allocStream(blockWords,
                                                  "weights");
                    machine.loadStream(
                        w[o][a],
                        MemPattern::sequential(
                            wBase[m][a] + static_cast<Addr>(b) * 1024,
                            blockWords));
                }
                cancelled[o] =
                    machine.allocStream(blockWords, "cancelled");
                const StreamRef &mainSpec = spec[i * 4 + 2 + m];
                const StreamRef &a0 = spec[i * 4 + 0];
                const StreamRef &a1 = spec[i * 4 + 1];
                machine.runKernel(
                    weightDesc,
                    {&mainSpec, &a0, &a1, &w[o][0], &w[o][1]},
                    {&cancelled[o]},
                    [&, o] {
                        auto ms = readComplex(machine, mainSpec);
                        auto s0 = readComplex(machine, a0);
                        auto s1 = readComplex(machine, a1);
                        auto w0 = readComplex(machine, w[o][0]);
                        auto w1 = readComplex(machine, w[o][1]);
                        // Same operation order as the reference
                        // (see cslcImagine above): subtract each
                        // aux product separately.
                        for (unsigned k = 0; k < 128; ++k) {
                            ms[k] -= w0[k] * s0[k];
                            ms[k] -= w1[k] * s1[k];
                        }
                        writeComplex(machine, cancelled[o], ms);
                    });
            }
        }

        // ...then inverse-transform them as one independent batch
        // (2-4 clusters busy; the rest idle, as the real mapping
        // would leave them).
        StreamRef outTime[4];
        for (unsigned o = 0; o < nout; ++o)
            outTime[o] = machine.allocStream(blockWords, "out time");
        KernelDesc invDesc = fftBatch;
        invDesc.name = "cslc_ifft_independent";
        invDesc.usefulFlops = static_cast<std::uint64_t>(nout)
                              * kernels::mixed128Ops().flops();
        machine.runKernel(
            invDesc,
            {&cancelled[0], &cancelled[1], &cancelled[2],
             &cancelled[3]},
            {&outTime[0], &outTime[1], &outTime[2], &outTime[3]},
            [&] {
                for (unsigned o = 0; o < nout; ++o) {
                    auto x = readComplex(machine, cancelled[o]);
                    kernels::ifftMixed128(x);
                    writeComplex(machine, outTime[o], x);
                }
            });

        for (unsigned i = 0; i < bands; ++i) {
            const unsigned b = b0 + i;
            for (unsigned m = 0; m < 2; ++m) {
                const unsigned o = i * 2 + m;
                machine.storeStream(
                    outTime[o],
                    MemPattern::sequential(
                        outBase[m] + static_cast<Addr>(b) * 1024,
                        blockWords));
            }
        }
        for (unsigned o = 0; o < nout; ++o) {
            machine.freeStream(w[o][0]);
            machine.freeStream(w[o][1]);
            machine.freeStream(cancelled[o]);
            machine.freeStream(outTime[o]);
        }

        for (unsigned i = 0; i < fwd; ++i) {
            machine.freeStream(time[i]);
            machine.freeStream(spec[i]);
        }
    }

    const Cycles cycles = machine.completionTime();

    out.main.assign(cfg.mainChannels,
        std::vector<cfloat>(static_cast<std::size_t>(cfg.subBands)
                            * 128));
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        auto words = machine.peekWords(
            outBase[m], static_cast<std::size_t>(cfg.subBands) * 256);
        for (std::size_t i = 0; i < out.main[m].size(); ++i) {
            out.main[m][i] = cfloat(wordToFloat(words[2 * i]),
                                    wordToFloat(words[2 * i + 1]));
        }
    }
    return cycles;
}

Cycles
beamSteeringImagine(ImagineMachine &machine,
                    const kernels::BeamConfig &cfg,
                    const kernels::BeamTables &tables,
                    std::vector<std::int32_t> &out)
{
    const Addr coarseBase =
        machine.allocMem(cfg.elements * 4ULL, "bs coarse");
    const Addr fineBase =
        machine.allocMem(cfg.elements * 4ULL, "bs fine");
    const Addr outBase =
        machine.allocMem(cfg.outputs() * 4ULL, "bs out");

    auto pokeI32 = [&machine](Addr base,
                              const std::vector<std::int32_t> &v) {
        std::vector<Word> w(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            w[i] = static_cast<Word>(v[i]);
        machine.pokeWords(base, w);
    };
    pokeI32(coarseBase, tables.calCoarse);
    pokeI32(fineBase, tables.calFine);

    machine.resetTiming();

    // Per iteration each cluster computes one output: five adds and
    // one shift on the adder class; 2 SRF words in, 1 out.
    KernelDesc steer;
    steer.name = "beam_steer";
    steer.iterations = static_cast<unsigned>(
        ceilDiv(cfg.elements, machine.config().clusters));
    steer.adds = 6;
    steer.srfWords = 3;
    steer.pipelineDepth = 16;
    steer.usefulFlops = 0;  // integer kernel

    for (unsigned dw = 0; dw < cfg.dwells; ++dw) {
        for (unsigned dir = 0; dir < cfg.directions; ++dir) {
            StreamRef coarse =
                machine.allocStream(cfg.elements, "coarse");
            StreamRef fine = machine.allocStream(cfg.elements, "fine");
            machine.loadStream(
                coarse, MemPattern::sequential(coarseBase,
                                               cfg.elements));
            machine.loadStream(
                fine, MemPattern::sequential(fineBase, cfg.elements));

            StreamRef result =
                machine.allocStream(cfg.elements, "result");
            machine.runKernel(
                steer, {&coarse, &fine}, {&result},
                [&] {
                    auto c = machine.srfData(coarse);
                    auto f = machine.srfData(fine);
                    auto r = machine.srfData(result);
                    std::int32_t acc = tables.steerBase[dir];
                    for (unsigned e = 0; e < cfg.elements; ++e) {
                        acc += tables.steerDelta[dir];
                        std::int32_t t =
                            static_cast<std::int32_t>(c[e])
                            + static_cast<std::int32_t>(f[e]);
                        t += acc;
                        t += tables.dwellOffset[dw];
                        t += tables.bias;
                        r[e] = static_cast<Word>(t >> cfg.shift);
                    }
                });

            machine.storeStream(
                result, MemPattern::sequential(
                    outBase + (static_cast<Addr>(dw) * cfg.directions
                               + dir) * cfg.elements * 4,
                    cfg.elements));

            machine.freeStream(coarse);
            machine.freeStream(fine);
            machine.freeStream(result);
        }
    }

    const Cycles cycles = machine.completionTime();

    auto words = machine.peekWords(outBase, cfg.outputs());
    out.resize(words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
        out[i] = static_cast<std::int32_t>(words[i]);
    return cycles;
}

} // namespace triarch::imagine
