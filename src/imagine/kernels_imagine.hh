/**
 * @file
 * The three study kernels mapped onto Imagine (Section 3):
 *
 *  - corner turn: multi-row strips streamed through the SRF with
 *    four input streams and one output stream; the clusters reorder
 *    data and the output is written as short blocks with a non-unit
 *    stride (Section 3.1);
 *  - CSLC: per sub-band FFT kernels on the clusters (mixed-radix,
 *    parallelized across clusters with inter-cluster communication —
 *    the paper's ~30% comm overhead), a weight-application kernel,
 *    and IFFT kernels, with all working sets resident in the SRF
 *    (Section 3.2);
 *  - beam steering: table streams loaded into the SRF and consumed
 *    by a short arithmetic kernel; memory-bound at the two words per
 *    cycle the stream engines provide (Sections 3.3, 4.4).
 */

#ifndef TRIARCH_IMAGINE_KERNELS_IMAGINE_HH
#define TRIARCH_IMAGINE_KERNELS_IMAGINE_HH

#include <cstdint>
#include <vector>

#include "imagine/machine.hh"
#include "kernels/beam_steering.hh"
#include "kernels/corner_turn.hh"
#include "kernels/cslc.hh"

namespace triarch::imagine
{

/** Rows per corner-turn strip (4 streams x 2 rows). */
constexpr unsigned cornerTurnStripRows = 8;

/** Corner turn on Imagine; requires rows % 8 == 0 and cols % 8 == 0. */
Cycles cornerTurnImagine(ImagineMachine &machine,
                         const kernels::WordMatrix &src,
                         kernels::WordMatrix &dst);

/** CSLC on Imagine (mixed-radix cluster FFTs). */
Cycles cslcImagine(ImagineMachine &machine,
                   const kernels::CslcConfig &cfg,
                   const kernels::CslcInput &in,
                   const kernels::CslcWeights &weights,
                   kernels::CslcOutput &out);

/**
 * CSLC on Imagine with *independent* per-cluster FFTs — the
 * alternative Section 4.3 describes but the paper did not complete:
 * sub-bands are processed in pairs so the eight clusters each
 * transform a whole 128-point block of their own (no inter-cluster
 * communication; the comm-bound initiation interval drops from 4 to
 * the arithmetic-bound 2).
 */
Cycles cslcImagineIndependent(ImagineMachine &machine,
                              const kernels::CslcConfig &cfg,
                              const kernels::CslcInput &in,
                              const kernels::CslcWeights &weights,
                              kernels::CslcOutput &out);

/** Beam steering on Imagine (table streams + arithmetic kernel). */
Cycles beamSteeringImagine(ImagineMachine &machine,
                           const kernels::BeamConfig &cfg,
                           const kernels::BeamTables &tables,
                           std::vector<std::int32_t> &out);

} // namespace triarch::imagine

#endif // TRIARCH_IMAGINE_KERNELS_IMAGINE_HH
