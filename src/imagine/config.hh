/**
 * @file
 * Configuration of the Imagine stream processor model (Section 2.2):
 * eight SIMD ALU clusters fed from a 128 KB stream register file,
 * with two memory-stream engines to off-chip SDRAM.
 *
 * Facts the model reproduces:
 *  - 8 clusters x (3 adders + 2 multipliers + 1 divider + 1 comm
 *    unit), lockstep SIMD, 300 MHz -> 14.4 GFLOPS peak;
 *  - SRF of 128 KB allocated in 128-byte blocks; streams must fit or
 *    be strip-mined;
 *  - two memory address generators, one word per cycle each (the
 *    implementation choice that caps the corner turn);
 *  - stream descriptor registers limit how many stream operations
 *    can be in flight, which prevented full software pipelining in
 *    the paper's corner turn (13% unoverlapped kernel cycles);
 *  - kernels are software-pipelined VLIW loops: a prologue of
 *    pipelineDepth iterations precedes the steady-state II.
 */

#ifndef TRIARCH_IMAGINE_CONFIG_HH
#define TRIARCH_IMAGINE_CONFIG_HH

#include "mem/dram.hh"
#include "mem/mem_mode.hh"
#include "sim/types.hh"

namespace triarch::imagine
{

/** All Imagine model parameters; defaults mirror the prototype. */
struct ImagineConfig
{
    unsigned clockMhz = 300;

    // Cluster array.
    unsigned clusters = 8;
    unsigned addersPerCluster = 3;
    unsigned multsPerCluster = 2;
    unsigned dividersPerCluster = 1;
    unsigned commPerCluster = 1;    //!< inter-cluster words per cycle
    unsigned srfWordsPerClusterCycle = 4;   //!< SRF port bandwidth

    // Stream register file.
    std::uint64_t srfBytes = 128 * 1024;
    unsigned srfBlockBytes = 128;

    // Memory system: two independent stream engines, one word per
    // cycle each, each with its own SDRAM channel.
    unsigned memEngines = 2;
    std::uint64_t memBytes = 64 * 1024 * 1024;

    /**
     * Memory-timing walk selection (D13): Span collapses same-row
     * record runs in stream transfers to closed-form accounting,
     * Reference keeps the per-record DRAM walk. Both produce
     * bit-identical cycles, counters, and documents.
     */
    mem::MemModel memModel = mem::MemModel::Default;

    /** Cycles the host processor needs to issue one stream/kernel op. */
    Cycles hostIssueCycles = 24;
    /** In-flight stream operations allowed by descriptor registers. */
    unsigned streamDescRegs = 6;

    /** SDRAM channel timing (in 300 MHz core cycles). */
    mem::DramConfig
    dramChannel(unsigned idx) const
    {
        mem::DramConfig cfg;
        cfg.name = "imagine.sdram" + std::to_string(idx);
        cfg.banks = 4;
        cfg.rowBytes = 2048;
        cfg.bankInterleaveBytes = 2048;
        cfg.timing.tCas = 4;
        cfg.timing.tRcd = 8;
        cfg.timing.tRp = 8;
        cfg.timing.busWordsPerCycle = 1;
        return cfg;
    }
};

} // namespace triarch::imagine

#endif // TRIARCH_IMAGINE_CONFIG_HH
