/**
 * @file
 * The three study kernels mapped onto Raw (Section 3), as real
 * assembled tile programs:
 *
 *  - corner turn: the MIT-designed block algorithm — each tile
 *    streams 64x64-word blocks from its DRAM port through the static
 *    network, transposes them in local SRAM using exactly one store
 *    (network -> local) and one load (local -> network) per word,
 *    and streams them back out (Sections 3.1, 4.2);
 *  - CSLC: MIMD mode — each tile independently processes whole
 *    sub-band sets from cached global memory with an assembled
 *    radix-2 FFT (radix-2 avoids the register spilling the paper
 *    hit with radix-4; ~1.5x the operations), exposing the 73-on-16
 *    load imbalance the paper reports (Sections 3.2, 4.3);
 *  - beam steering: stream mode — calibration data is streamed from
 *    the ports straight into the tiles' $csti network registers and
 *    results leave through $csto, so the inner loop has no loads or
 *    stores at all (Sections 3.3, 4.4).
 */

#ifndef TRIARCH_RAW_KERNELS_RAW_HH
#define TRIARCH_RAW_KERNELS_RAW_HH

#include <cstdint>
#include <vector>

#include "kernels/beam_steering.hh"
#include "kernels/corner_turn.hh"
#include "kernels/cslc.hh"
#include "raw/assembler.hh"
#include "raw/machine.hh"

namespace triarch::raw
{

/** Block edge for the corner turn (64x64 words fits tile SRAM). */
constexpr unsigned cornerTurnBlock = 64;

/**
 * Corner turn on Raw. Requires rows == cols, divisible by 64, and
 * rows/64 >= the mesh tile count is not required (tiles share block
 * rows round-robin).
 */
Cycles cornerTurnRaw(RawMachine &machine,
                     const kernels::WordMatrix &src,
                     kernels::WordMatrix &dst);

/** Result of the CSLC run, including the load-balance breakdown. */
struct RawCslcResult
{
    Cycles cycles = 0;          //!< measured wall clock
    /**
     * Perfect-load-balance extrapolation the paper reports in Table
     * 3: measured time scaled by (subBands / tiles) / maxSetsPerTile
     * (Section 4.3: input sets arrive continuously in a real system).
     */
    Cycles balancedCycles = 0;
    double idleFraction = 0.0;  //!< tile-cycles idle due to imbalance
};

/**
 * CSLC on Raw (data-parallel MIMD, radix-2 FFT, cached memory).
 * @p intervals processes the interval that many times with the sets
 * handed out round-robin across tiles, modelling the continuously
 * arriving input of a real system (Section 4.3: with a continuous
 * queue the 73-on-16 imbalance amortizes away).
 */
RawCslcResult cslcRaw(RawMachine &machine,
                      const kernels::CslcConfig &cfg,
                      const kernels::CslcInput &in,
                      const kernels::CslcWeights &weights,
                      kernels::CslcOutput &out,
                      unsigned intervals = 1);

/**
 * CSLC on Raw in stream mode — the variant Section 4.3 sketches but
 * the paper did not complete: sub-band blocks and weights are
 * streamed to each tile through the static network by the DRAM
 * ports (input words are stored once at bit-reversed offsets as
 * they arrive; weight words are consumed directly from $csti as
 * instruction operands) and results leave through $csto, so the
 * kernel performs no cached global-memory accesses at all and
 * cache-miss stalls disappear.
 */
RawCslcResult cslcRawStreamed(RawMachine &machine,
                              const kernels::CslcConfig &cfg,
                              const kernels::CslcInput &in,
                              const kernels::CslcWeights &weights,
                              kernels::CslcOutput &out);

/** Beam steering on Raw (stream mode, no loads/stores per output). */
Cycles beamSteeringRaw(RawMachine &machine,
                       const kernels::BeamConfig &cfg,
                       const kernels::BeamTables &tables,
                       std::vector<std::int32_t> &out);

/**
 * Emit an in-place radix-2 128-point FFT over a local-SRAM buffer of
 * interleaved complex floats; exposed for tests and the radix
 * ablation bench. @p tw_local points at a 128-entry complex twiddle
 * table (forward or conjugated for the inverse transform). Pass
 * @p skip_bitrev = true when the buffer was filled in bit-reversed
 * order already (by the bit-reversing copy).
 */
void emitFft128Local(Assembler &as, std::int32_t buf_local,
                     std::int32_t tw_local, bool skip_bitrev = false,
                     bool inverse = false);

} // namespace triarch::raw

#endif // TRIARCH_RAW_KERNELS_RAW_HH
