#include "machine.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::raw
{

RawMachine::RawMachine(const RawConfig &machine_config)
    : cfg(machine_config), hot(cfg.tiles()), cold(cfg.tiles()),
      wake(cfg.tiles(), kNever), ports(cfg.tiles()),
      global(cfg.globalBytes), group("raw")
{
    if (isPowerOf2(cfg.portRowBytes))
        portRowShift = static_cast<int>(floorLog2(cfg.portRowBytes));
    for (unsigned t = 0; t < cfg.tiles(); ++t) {
        cold[t].sram.assign(cfg.sramBytes, 0);
        mem::CacheConfig cc;
        cc.name = "raw.tile" + std::to_string(t) + ".dcache";
        cc.sizeBytes = cfg.cacheBytes;
        cc.assoc = cfg.cacheAssoc;
        cc.lineBytes = cfg.cacheLineBytes;
        cold[t].cache = std::make_unique<mem::SetAssocCache>(cc);
        hot[t].sram = cold[t].sram.data();
        hot[t].cache = cold[t].cache.get();
        hot[t].halted = true;       // no program yet
        // The input FIFO is capacity-limited, so reserving it here
        // makes every later push allocation-free.
        hot[t].inFifo.reserve(cfg.fifoCapacity);
    }
    group.addScalar("instructions", &_instrs, "instructions retired");
    group.addScalar("net_stalls", &_netStalls,
                    "cycles stalled on empty network FIFO");
    group.addScalar("dep_stalls", &_depStalls,
                    "stalls on operand latency");
    group.addScalar("cache_stall_cycles", &_cacheStalls,
                    "cycles stalled on cache misses");
    group.addScalar("loads_stores", &_ldst, "lw/sw instructions");
    group.addScalar("fp_ops", &_fpops, "floating-point instructions");
    group.addScalar("dma_in_words", &_wordsDmaIn, "words streamed in");
    group.addScalar("dma_out_words", &_wordsDmaOut,
                    "words streamed out");
    group.addScalar("cycles", &_cycles, "total machine cycles");
    group.addDistribution("tile_instr_share", &_tileShare,
                          "per-tile instructions relative to the "
                          "busiest tile");
    accountStats.registerIn(group);
    hostPhases.addTo(group);
}

Addr
RawMachine::allocGlobal(std::uint64_t bytes, const std::string &what)
{
    Addr addr = 0;
    // Checked arithmetic throughout: a huge `bytes` (or an allocNext
    // near the top of the address space) must exhaust, not wrap the
    // bound check and hand out overlapping memory.
    if (!roundUpChecked(allocNext, 64, addr) || bytes > global.size()
        || addr > global.size() - bytes) {
        triarch_fatal("Raw global DRAM exhausted allocating ", bytes,
                      " bytes for ", what);
    }
    allocNext = addr + bytes;
    return globalBase + addr;
}

void
RawMachine::pokeGlobal(Addr addr, std::span<const Word> words)
{
    triarch_assert(addr >= globalBase, "poke below global base");
    const Addr off = addr - globalBase;
    triarch_assert(off + words.size() * 4 <= global.size(),
                   "poke outside global DRAM");
    std::memcpy(global.data() + off, words.data(), words.size() * 4);
}

std::vector<Word>
RawMachine::peekGlobal(Addr addr, std::size_t count) const
{
    std::vector<Word> out(count);
    peekGlobalInto(addr, out);
    return out;
}

void
RawMachine::peekGlobalInto(Addr addr, std::span<Word> out) const
{
    triarch_assert(addr >= globalBase, "peek below global base");
    const Addr off = addr - globalBase;
    triarch_assert(off + out.size() * 4 <= global.size(),
                   "peek outside global DRAM");
    std::memcpy(out.data(), global.data() + off, out.size() * 4);
}

void
RawMachine::setProgram(unsigned tile, std::vector<Instr> program)
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    TileCold &c = cold[tile];
    TileHot &h = hot[tile];
    const bool wasHalted = h.halted;
    c.program = std::move(program);
    h.prog = c.program.data();
    h.progLen = static_cast<std::uint32_t>(c.program.size());
    h.pc = 0;
    h.halted = c.program.empty();
    if (wasHalted && !h.halted)
        ++liveTiles;
    else if (!wasHalted && h.halted)
        --liveTiles;
}

void
RawMachine::pokeLocal(unsigned tile, Addr byte_offset,
                      std::span<const Word> words)
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    triarch_assert(byte_offset + words.size() * 4 <= cfg.sramBytes,
                   "poke outside tile SRAM");
    std::memcpy(cold[tile].sram.data() + byte_offset, words.data(),
                words.size() * 4);
}

std::vector<Word>
RawMachine::peekLocal(unsigned tile, Addr byte_offset,
                      std::size_t count) const
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    triarch_assert(byte_offset + count * 4 <= cfg.sramBytes,
                   "peek outside tile SRAM");
    std::vector<Word> out(count);
    std::memcpy(out.data(), cold[tile].sram.data() + byte_offset,
                count * 4);
    return out;
}

void
RawMachine::setRoute(unsigned tile, unsigned endpoint)
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    triarch_assert(endpoint < cfg.tiles()
                       || (endpoint >= 1000
                           && endpoint < 1000 + cfg.tiles()),
                   "bad route endpoint");
    hot[tile].route = endpoint;
}

void
RawMachine::dmaIn(unsigned port, unsigned dstTile, Addr base,
                  unsigned words)
{
    triarch_assert(port < ports.size() && dstTile < cfg.tiles(),
                   "bad port or tile");
    triarch_assert(base >= globalBase, "DMA below global base");
    // A zero-word segment is a no-op. Queueing it would wedge the
    // port: stepPorts() only retires a segment after streaming a
    // word, so done (1, 2, ...) never equals words (0) and the run
    // loop spins forever waiting for the queue to drain.
    if (words == 0)
        return;
    hot[dstTile].dmaFed = true;
    ports[port].inQueue.push_back({base - globalBase, words, dstTile});
    ++ports[port].work;
    ++portWork;
}

void
RawMachine::dmaOut(unsigned port, Addr base, unsigned words)
{
    triarch_assert(port < ports.size(), "bad port");
    triarch_assert(base >= globalBase, "DMA below global base");
    if (words == 0)
        return;
    ports[port].outQueue.push_back({base - globalBase, words, 0});
    ++ports[port].work;
    ++portWork;
}

unsigned
RawMachine::hops(unsigned a, unsigned b) const
{
    const int ar = a / cfg.meshWidth, ac = a % cfg.meshWidth;
    const int br = b / cfg.meshWidth, bc = b % cfg.meshWidth;
    return static_cast<unsigned>(std::abs(ar - br) + std::abs(ac - bc));
}

void
RawMachine::noteFifoPush(unsigned t)
{
    // If the tile went to sleep on $csti with too few queued words
    // to know its wake cycle, this push may be the one it awaits.
    TileHot &h = hot[t];
    if (h.waitPops != 0 && h.inFifo.size() >= h.waitPops) {
        wake[t] = h.inFifo[h.waitPops - 1].first;
        h.waitPops = 0;
    }
}

void
RawMachine::send(unsigned t, Word value, Cycles now)
{
    const unsigned route = hot[t].route;
    triarch_assert(route != ~0u, "tile ", t,
                   " writes $csto without a configured route");
    if (route >= 1000) {
        // Peripheral port: one hop from the attached tile.
        ports[route - 1000].arrivals.emplace_back(
            now + cfg.netBaseLatency + 1, value);
        ++ports[route - 1000].work;
        ++portWork;
    } else {
        const Cycles arrival =
            now + cfg.netBaseLatency + std::max(1u, hops(t, route));
        hot[route].inFifo.emplace_back(arrival, value);
        noteFifoPush(route);
    }
}

void
RawMachine::tallyStall(TileStall kind, Cycles now)
{
    switch (kind) {
      case TileStall::Dep:
        ++tcDep;
        break;
      case TileStall::Cache:
        ++tcCache;
        break;
      case TileStall::Net:
        ++tcNet;
        break;
      case TileStall::Dma:
        ++tcDma;
        break;
      case TileStall::None:
        // Every path that pushes stallUntil into the future records
        // why; a future stall with no kind is a modelling bug.
        triarch_panic("Raw tile stalled with no recorded stall kind");
    }
    // Epoch channel index = TileStall ordinal - 1 (None panics above).
    hwSamp.addAt(static_cast<std::size_t>(kind) - 1, now);
}

void
RawMachine::stepTile(unsigned t, Cycles now)
{
    TileHot &tile = hot[t];
    if (tile.halted) {
        ++tcIdle;
        hwSamp.addAt(4, now);
        wake[t] = kNever;
        return;
    }
    if (tile.stallUntil > now) {
        tallyStall(tile.stallKind, now);
        // The scalar has to agree with the tallies: re-stall cycles
        // of a network-kind stall (Dsend injection occupancy) are
        // network stall cycles too.
        if (tile.stallKind == TileStall::Net
            || tile.stallKind == TileStall::Dma) {
            ++_netStalls;
        }
        wake[t] = tile.stallUntil;
        return;
    }
    triarch_assert(tile.pc < tile.progLen,
                   "tile ", t, " ran off its program");
    const Instr &in = tile.prog[tile.pc];
    const OpInfo info = opInfo(in.op);

    // Source operands: each $csti source pops one network word; the
    // others are scoreboarded register reads.
    unsigned pops = 0;
    Cycles rdy = 0;
    if (info.readsRs) {
        if (in.rs == regCsti)
            ++pops;
        else if (in.rs != 0)
            rdy = std::max(rdy, tile.ready[in.rs]);
    }
    if (info.readsRt) {
        if (in.rt == regCsti)
            ++pops;
        else if (in.rt != 0)
            rdy = std::max(rdy, tile.ready[in.rt]);
    }

    // Network-input availability.
    if (pops > 0) {
        if (tile.inFifo.size() < pops
            || tile.inFifo[pops - 1].first > now) {
            ++_netStalls;
            tile.stallKind =
                tile.dmaFed ? TileStall::Dma : TileStall::Net;
            tallyStall(tile.stallKind, now);
            tile.stallUntil = now + 1;
            if (tile.inFifo.size() >= pops) {
                wake[t] = tile.inFifo[pops - 1].first;
            } else {
                tile.waitPops = static_cast<std::uint8_t>(pops);
                wake[t] = kNever;
            }
            return;
        }
    }

    // Dynamic-network receive availability.
    if (in.op == Op::Drecv) {
        if (tile.dynFifo.empty() || tile.dynFifo.front().first > now) {
            ++_netStalls;
            tile.stallKind = TileStall::Net;
            tallyStall(tile.stallKind, now);
            tile.stallUntil = now + 1;
            if (!tile.dynFifo.empty()) {
                wake[t] = tile.dynFifo.front().first;
            } else {
                tile.waitDyn = true;
                wake[t] = kNever;
            }
            return;
        }
    }

    // Operand readiness (scoreboarded latencies).
    if (rdy > now) {
        ++_depStalls;
        tile.stallKind = TileStall::Dep;
        tallyStall(tile.stallKind, now);
        tile.stallUntil = rdy;
        wake[t] = rdy;
        return;
    }

    // If this instruction sends to a tile whose FIFO is full, block.
    // No wake cycle is knowable (the consumer frees a slot whenever
    // it happens to pop), so re-poll every cycle like the reference.
    if (info.sendEligible && in.rd == regCsto && tile.route < 1000
        && hot[tile.route].inFifo.size() >= cfg.fifoCapacity) {
        ++_netStalls;
        tile.stallKind = TileStall::Net;
        tallyStall(tile.stallKind, now);
        tile.stallUntil = now + 1;
        wake[t] = now + 1;
        return;
    }

    auto readReg = [&](unsigned r) -> std::uint32_t {
        if (r == regCsti) {
            // Availability was checked above, so arrival <= now; the
            // difference is the word's FIFO residency.
            fifoWordCycles += now - tile.inFifo.front().first;
            const Word v = tile.inFifo.front().second;
            tile.inFifo.pop_front();
            return v;
        }
        return r == 0 ? 0 : tile.regs[r];
    };

    auto writeReg = [&](unsigned rd, std::uint32_t v, Cycles lat) {
        if (rd == regCsto) {
            send(t, v, now);
        } else if (rd != 0) {
            tile.regs[rd] = v;
            tile.ready[rd] = now + lat;
        }
    };

    bool branched = false;
    switch (in.op) {
      case Op::Nop:
        break;
      case Op::Add:
        writeReg(in.rd, readReg(in.rs) + readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Addi:
        writeReg(in.rd, readReg(in.rs)
                 + static_cast<std::uint32_t>(in.imm), cfg.intLatency);
        break;
      case Op::Sub:
        writeReg(in.rd, readReg(in.rs) - readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Mul:
        writeReg(in.rd, readReg(in.rs) * readReg(in.rt),
                 cfg.mulLatency);
        break;
      case Op::Sll:
        writeReg(in.rd, readReg(in.rs) << (in.imm & 31),
                 cfg.intLatency);
        break;
      case Op::Sra:
        writeReg(in.rd, static_cast<std::uint32_t>(
                     static_cast<std::int32_t>(readReg(in.rs))
                     >> (in.imm & 31)), cfg.intLatency);
        break;
      case Op::Srl:
        writeReg(in.rd, readReg(in.rs) >> (in.imm & 31),
                 cfg.intLatency);
        break;
      case Op::And:
        writeReg(in.rd, readReg(in.rs) & readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Or:
        writeReg(in.rd, readReg(in.rs) | readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Xor:
        writeReg(in.rd, readReg(in.rs) ^ readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Li:
        writeReg(in.rd, static_cast<std::uint32_t>(in.imm),
                 cfg.intLatency);
        break;
      case Op::FAdd:
        writeReg(in.rd, floatToWord(wordToFloat(readReg(in.rs))
                                    + wordToFloat(readReg(in.rt))),
                 cfg.fpLatency);
        ++_fpops;
        break;
      case Op::FSub:
        writeReg(in.rd, floatToWord(wordToFloat(readReg(in.rs))
                                    - wordToFloat(readReg(in.rt))),
                 cfg.fpLatency);
        ++_fpops;
        break;
      case Op::FMul:
        writeReg(in.rd, floatToWord(wordToFloat(readReg(in.rs))
                                    * wordToFloat(readReg(in.rt))),
                 cfg.fpLatency);
        ++_fpops;
        break;
      case Op::Lw: {
        // The address operand is peeked, not popped: a fused chain
        // run must park on a global access before any state changes
        // (D13), and the committed pop below replays readReg exactly.
        const std::uint32_t rsv =
            in.rs == regCsti ? tile.inFifo.front().second
            : in.rs == 0     ? 0
                             : tile.regs[in.rs];
        const Addr addr = rsv + static_cast<std::uint32_t>(in.imm);
        if (addr >= globalBase) {
            if (chainMode) [[unlikely]] {
                chainParked = true;
                wake[t] = now;
                return;
            }
            if (!hazardBoxes.empty()) [[unlikely]]
                checkChainHazard(t, addr);
        }
        if (in.rs == regCsti) {
            fifoWordCycles += now - tile.inFifo.front().first;
            tile.inFifo.pop_front();
        }
        Word value = 0;
        Cycles extra = 0;
        if (addr >= globalBase) {
            const Addr off = addr - globalBase;
            triarch_assert(off + 4 <= global.size(),
                           "tile ", t, " lw outside global DRAM");
            std::memcpy(&value, global.data() + off, 4);
            // Way-predicted hit fast path (D13): exact by
            // construction, so no mode gate — a matching memo is a
            // proof of residency and a hit charges nothing extra.
            if (!tile.cache->accessFast(addr, false)) {
                auto res = tile.cache->access(addr, false);
                if (!res.hit) {
                    extra = cfg.cacheMissPenalty;
                    if (res.writebackAddr)
                        extra += cfg.writebackPenalty;
                    _cacheStalls += extra;
                }
            }
        } else {
            triarch_assert(addr + 4 <= cfg.sramBytes,
                           "tile ", t, " lw outside SRAM @", addr);
            std::memcpy(&value, tile.sram + addr, 4);
        }
        writeReg(in.rd, value, extra + cfg.loadLatency);
        if (extra > 0) {
            tile.stallKind = TileStall::Cache;
            tile.stallUntil = now + 1 + extra;
        }
        ++_ldst;
        break;
      }
      case Op::Sw: {
        // Same peek-before-pop dance as Lw, for the same reason.
        const std::uint32_t rsv =
            in.rs == regCsti ? tile.inFifo.front().second
            : in.rs == 0     ? 0
                             : tile.regs[in.rs];
        const Addr addr = rsv + static_cast<std::uint32_t>(in.imm);
        if (addr >= globalBase) {
            if (chainMode) [[unlikely]] {
                chainParked = true;
                wake[t] = now;
                return;
            }
            if (!hazardBoxes.empty()) [[unlikely]]
                checkChainHazard(t, addr);
        }
        if (in.rs == regCsti) {
            fifoWordCycles += now - tile.inFifo.front().first;
            tile.inFifo.pop_front();
        }
        const Word value = readReg(in.rt);
        if (addr >= globalBase) {
            const Addr off = addr - globalBase;
            triarch_assert(off + 4 <= global.size(),
                           "tile ", t, " sw outside global DRAM");
            std::memcpy(global.data() + off, &value, 4);
            // Way-predicted hit fast path (D13): exact, no mode
            // gate — a store hit stalls nothing.
            if (!tile.cache->accessFast(addr, true)) {
                auto res = tile.cache->access(addr, true);
                if (!res.hit) {
                    Cycles extra = cfg.cacheMissPenalty;
                    if (res.writebackAddr)
                        extra += cfg.writebackPenalty;
                    _cacheStalls += extra;
                    tile.stallKind = TileStall::Cache;
                    tile.stallUntil = now + 1 + extra;
                }
            }
        } else {
            triarch_assert(addr + 4 <= cfg.sramBytes,
                           "tile ", t, " sw outside SRAM @", addr);
            std::memcpy(tile.sram + addr, &value, 4);
        }
        ++_ldst;
        break;
      }
      case Op::Dsend: {
        const unsigned dest = readReg(in.rs);
        const Word value = readReg(in.rt);
        triarch_assert(dest < cfg.tiles(),
                       "tile ", t, " dsend to bad tile ", dest);
        const Cycles arrival =
            now + cfg.dynBaseLatency + std::max(1u, hops(t, dest));
        hot[dest].dynFifo.emplace_back(arrival, value);
        if (hot[dest].waitDyn) {
            hot[dest].waitDyn = false;
            wake[dest] = arrival;
        }
        // The packet (header + data) occupies the injection port.
        tile.stallKind = TileStall::Net;
        tile.stallUntil = now + cfg.dynSendOccupancy;
        break;
      }
      case Op::Drecv:
        writeReg(in.rd, tile.dynFifo.front().second, cfg.intLatency);
        tile.dynFifo.pop_front();
        break;
      case Op::Beq:
        branched = readReg(in.rs) == readReg(in.rt);
        break;
      case Op::Bne:
        branched = readReg(in.rs) != readReg(in.rt);
        break;
      case Op::Blt:
        branched = static_cast<std::int32_t>(readReg(in.rs))
                   < static_cast<std::int32_t>(readReg(in.rt));
        break;
      case Op::Bge:
        branched = static_cast<std::int32_t>(readReg(in.rs))
                   >= static_cast<std::int32_t>(readReg(in.rt));
        break;
      case Op::Jump:
        branched = true;
        break;
      case Op::Halt:
        tile.halted = true;
        cold[t].haltCycle = now;
        --liveTiles;
        break;
    }

    if (branched)
        tile.pc = static_cast<unsigned>(in.imm);
    else if (!tile.halted)
        ++tile.pc;

    ++tile.instrs;

    if (debugTrace) [[unlikely]] {
        debugLog("raw tile ", t, " @", now, ": ",
                 disassemble(in));
    }

    // A retire with no pending stall window can keep going: as long
    // as the following instructions touch only tile-private state,
    // nothing else in the machine can observe the difference, so the
    // whole run executes in one call (event stepper only). The first
    // instruction's break test runs inline so streaming code (whose
    // every instruction touches the network) skips the call.
    if (batching && !tile.halted && tile.stallUntil <= now + 1
        && tile.pc < tile.progLen) {
        const Instr &nx = tile.prog[tile.pc];
        const OpInfo ni = opInfo(nx.op);
        if (nx.op != Op::Dsend && nx.op != Op::Drecv
            && !(ni.readsRs && nx.rs == regCsti)
            && !(ni.readsRt && nx.rt == regCsti)
            && !(ni.sendEligible && nx.rd == regCsto)) {
            batchTile(t, now + 1);
            return;
        }
    }

    // Next wake: immediately unless the retire scheduled a stall
    // window (cache-miss service, Dsend injection occupancy).
    wake[t] = tile.halted ? kNever : std::max(now + 1, tile.stallUntil);
}

/**
 * Execute a run of tile-local instructions — register/SRAM compute,
 * branches, halt — in one call, advancing a private cycle cursor.
 *
 * Soundness: while a tile executes only local operations, no other
 * actor reads its private state (FIFO pushes append without looking
 * at registers or SRAM), and the tile reads nothing another actor
 * writes. The batch therefore commutes with the rest of the cycle
 * interleaving and every counter lands on exactly the value the
 * cycle-at-a-time reference accrues: busy cycles are the retired
 * instruction count, operand-latency gaps add to tcDep in bulk with
 * one dep_stalls event each, exactly like the reference's stall
 * entry plus its per-cycle stallUntil re-polls.
 *
 * The batch breaks BEFORE any externally-visible instruction:
 * $csti/$csto traffic, dynamic network ops, and loads/stores that
 * reach global DRAM (other tiles and DMA ports share it, and the
 * cache model bills those accesses); the instruction re-runs through
 * the normal stepTile path at the cursor cycle.
 */
void
RawMachine::batchTile(unsigned t, Cycles cur)
{
    TileHot &tile = hot[t];
    const Cycles limit = cfg.maxCycles;
    while (cur <= limit) {
        triarch_assert(tile.pc < tile.progLen,
                       "tile ", t, " ran off its program");
        const Instr &in = tile.prog[tile.pc];
        const OpInfo info = opInfo(in.op);
        if (in.op == Op::Dsend || in.op == Op::Drecv)
            break;
        if ((info.readsRs && in.rs == regCsti)
            || (info.readsRt && in.rt == regCsti))
            break;
        if (info.sendEligible && in.rd == regCsto)
            break;

        Cycles rdy = 0;
        if (info.readsRs && in.rs != 0)
            rdy = std::max(rdy, tile.ready[in.rs]);
        if (info.readsRt && in.rt != 0)
            rdy = std::max(rdy, tile.ready[in.rt]);
        if (rdy > cur) {
            tcDep += rdy - cur;
            hwSamp.addRange(0, cur, rdy);
            ++_depStalls;
            cur = rdy;
        }

        const auto rs = [&]() -> std::uint32_t {
            return in.rs == 0 ? 0 : tile.regs[in.rs];
        };
        const auto rt = [&]() -> std::uint32_t {
            return in.rt == 0 ? 0 : tile.regs[in.rt];
        };
        const auto wr = [&](std::uint32_t v, Cycles lat) {
            if (in.rd != 0) {
                tile.regs[in.rd] = v;
                tile.ready[in.rd] = cur + lat;
            }
        };

        bool branched = false;
        switch (in.op) {
          case Op::Nop:
            break;
          case Op::Add:
            wr(rs() + rt(), cfg.intLatency);
            break;
          case Op::Addi:
            wr(rs() + static_cast<std::uint32_t>(in.imm),
               cfg.intLatency);
            break;
          case Op::Sub:
            wr(rs() - rt(), cfg.intLatency);
            break;
          case Op::Mul:
            wr(rs() * rt(), cfg.mulLatency);
            break;
          case Op::Sll:
            wr(rs() << (in.imm & 31), cfg.intLatency);
            break;
          case Op::Sra:
            wr(static_cast<std::uint32_t>(
                   static_cast<std::int32_t>(rs()) >> (in.imm & 31)),
               cfg.intLatency);
            break;
          case Op::Srl:
            wr(rs() >> (in.imm & 31), cfg.intLatency);
            break;
          case Op::And:
            wr(rs() & rt(), cfg.intLatency);
            break;
          case Op::Or:
            wr(rs() | rt(), cfg.intLatency);
            break;
          case Op::Xor:
            wr(rs() ^ rt(), cfg.intLatency);
            break;
          case Op::Li:
            wr(static_cast<std::uint32_t>(in.imm), cfg.intLatency);
            break;
          case Op::FAdd:
            wr(floatToWord(wordToFloat(rs()) + wordToFloat(rt())),
               cfg.fpLatency);
            ++_fpops;
            break;
          case Op::FSub:
            wr(floatToWord(wordToFloat(rs()) - wordToFloat(rt())),
               cfg.fpLatency);
            ++_fpops;
            break;
          case Op::FMul:
            wr(floatToWord(wordToFloat(rs()) * wordToFloat(rt())),
               cfg.fpLatency);
            ++_fpops;
            break;
          case Op::Lw: {
            const Addr addr =
                rs() + static_cast<std::uint32_t>(in.imm);
            if (addr >= globalBase)
                goto out;       // cached access: slow path bills it
            triarch_assert(addr + 4 <= cfg.sramBytes,
                           "tile ", t, " lw outside SRAM @", addr);
            Word value = 0;
            std::memcpy(&value, tile.sram + addr, 4);
            wr(value, cfg.loadLatency);
            ++_ldst;
            break;
          }
          case Op::Sw: {
            const Addr addr =
                rs() + static_cast<std::uint32_t>(in.imm);
            if (addr >= globalBase)
                goto out;
            triarch_assert(addr + 4 <= cfg.sramBytes,
                           "tile ", t, " sw outside SRAM @", addr);
            const Word value = rt();
            std::memcpy(tile.sram + addr, &value, 4);
            ++_ldst;
            break;
          }
          case Op::Beq:
            branched = rs() == rt();
            break;
          case Op::Bne:
            branched = rs() != rt();
            break;
          case Op::Blt:
            branched = static_cast<std::int32_t>(rs())
                       < static_cast<std::int32_t>(rt());
            break;
          case Op::Bge:
            branched = static_cast<std::int32_t>(rs())
                       >= static_cast<std::int32_t>(rt());
            break;
          case Op::Jump:
            branched = true;
            break;
          case Op::Halt:
            tile.halted = true;
            cold[t].haltCycle = cur;
            --liveTiles;
            ++tile.instrs;
            tile.talliedThrough = cur + 1;
            wake[t] = kNever;
            if (cur + 1 > batchedHaltEnd)
                batchedHaltEnd = cur + 1;
            return;
          case Op::Dsend:
          case Op::Drecv:
            triarch_panic("network op reached the local batch");
        }

        if (branched)
            tile.pc = static_cast<unsigned>(in.imm);
        else
            ++tile.pc;
        ++tile.instrs;
        ++cur;
    }
out:
    // The instruction at `pc` issues at `cur` through the normal
    // path; every cycle below `cur` is accounted (busy via the
    // per-tile retire count, waits via tcDep).
    tile.talliedThrough = cur;
    wake[t] = cur;
}

void
RawMachine::stepPort(Port &port, Cycles now)
{
    std::uint8_t *const dram = global.data();
    // DMA in: stream one word per cycle into the tile FIFO.
    if (!port.inQueue.empty() && port.inFree <= now) {
        DmaSegment &seg = port.inQueue.front();
        TileHot &dst = hot[seg.dstTile];
        if (dst.inFifo.size() < cfg.fifoCapacity) {
            const Addr a = seg.base + static_cast<Addr>(seg.done) * 4;
            Word v = 0;
            std::memcpy(&v, dram + a, 4);
            dst.inFifo.emplace_back(now + cfg.netBaseLatency + 1, v);
            noteFifoPush(seg.dstTile);
            ++_wordsDmaIn;

            Cycles cost = 1;
            const Addr row = rowOf(a);
            if (row != port.inLastRow) {
                cost += cfg.portRowMissPenalty;
                port.inLastRow = row;
            }
            port.inFree = now + cost;
            if (++seg.done == seg.words) {
                port.inQueue.pop_front();
                --port.work;
                --portWork;
            }
        }
    }

    // DMA out: drain one arrived word per cycle to memory.
    if (!port.outQueue.empty() && port.outFree <= now
        && !port.arrivals.empty()
        && port.arrivals.front().first <= now) {
        DmaSegment &seg = port.outQueue.front();
        const Word v = port.arrivals.front().second;
        port.arrivals.pop_front();
        --port.work;
        --portWork;
        const Addr a = seg.base + static_cast<Addr>(seg.done) * 4;
        std::memcpy(dram + a, &v, 4);
        ++_wordsDmaOut;

        Cycles cost = 1;
        const Addr row = rowOf(a);
        if (row != port.outLastRow) {
            cost += cfg.portRowMissPenalty;
            port.outLastRow = row;
        }
        port.outFree = now + cost;
        if (++seg.done == seg.words) {
            port.outQueue.pop_front();
            --port.work;
            --portWork;
        }
    }
}

void
RawMachine::stepPorts(Cycles now)
{
    for (auto &port : ports) {
        if (port.inQueue.empty() && port.outQueue.empty())
            continue;
        stepPort(port, now);
    }
}

bool
RawMachine::allDone() const
{
    for (const auto &tile : hot) {
        if (!tile.halted)
            return false;
    }
    for (const auto &port : ports) {
        if (!port.inQueue.empty() || !port.outQueue.empty())
            return false;
        if (!port.arrivals.empty())
            return false;
    }
    return true;
}

void
RawMachine::creditSleep(unsigned t, Cycles now)
{
    TileHot &tile = hot[t];
    if (now <= tile.talliedThrough)
        return;
    const Cycles from = tile.talliedThrough;
    const std::uint64_t delta = now - from;
    tile.talliedThrough = now;
    // A sleeping tile's state cannot change, so every skipped cycle
    // tallies exactly what a cycle-at-a-time loop would have: idle
    // for halted tiles, otherwise the recorded stall kind. The
    // event-count scalars (dep_stalls, cache_stall_cycles) were
    // already bumped when the stall began; net_stalls counts
    // per-cycle and follows the tally. The epoch samples land on the
    // same cycles the reference loop's per-cycle tallies would.
    if (tile.halted) {
        tcIdle += delta;
        hwSamp.addRange(4, from, now);
        return;
    }
    switch (tile.stallKind) {
      case TileStall::Dep:
        tcDep += delta;
        break;
      case TileStall::Cache:
        tcCache += delta;
        break;
      case TileStall::Net:
        tcNet += delta;
        _netStalls += delta;
        break;
      case TileStall::Dma:
        tcDma += delta;
        _netStalls += delta;
        break;
      case TileStall::None:
        triarch_panic("Raw tile slept with no recorded stall kind");
    }
    hwSamp.addRange(static_cast<std::size_t>(tile.stallKind) - 1,
                    from, now);
}

Cycles
RawMachine::nextEventCycle(Cycles from) const
{
    Cycles next = kNever;
    for (const Cycles w : wake)
        next = std::min(next, w);
    // Candidates below clamp to `from`, so nothing can beat it: the
    // all-tiles-busy steady state (ct, bs) exits here without ever
    // touching the port scan.
    if (next <= from)
        return from;
    if (portWork == 0)
        return next;
    for (const Port &port : ports) {
        // A port with queued DMA-in work can act as soon as it is
        // free, unless the destination FIFO is full — then its next
        // chance strictly follows a consumer pop, which is itself a
        // tile-wake event, so no candidate is needed here.
        if (!port.inQueue.empty()
            && hot[port.inQueue.front().dstTile].inFifo.size()
                   < cfg.fifoCapacity) {
            next = std::min(next, std::max(port.inFree, from));
        }
        if (!port.outQueue.empty() && !port.arrivals.empty()) {
            next = std::min(
                next, std::max({port.outFree,
                                port.arrivals.front().first, from}));
        }
        if (next <= from)
            return from;
    }
    return next;
}

bool
RawMachine::coBatchEligible()
{
    // Tile side: every live tile must keep all its traffic inside
    // its own (tile t, port t) chain — static route to its own port
    // (or none), and no dynamic-network instructions anywhere in the
    // program (Dsend/Drecv cross chains by construction).
    for (unsigned t = 0; t < cfg.tiles(); ++t) {
        if (hot[t].halted)
            continue;
        if (hot[t].route != ~0u && hot[t].route != portEndpoint(t))
            return false;
        for (const Instr &in : cold[t].program) {
            if (in.op == Op::Dsend || in.op == Op::Drecv)
                return false;
        }
    }

    // Port side: every DMA-in segment on port p must feed tile p,
    // and DMA footprints must be order-independent across chains.
    // DMA-in only reads DRAM, so in-in overlap is harmless; any
    // write range overlapping another chain's footprint is not.
    //
    // Intervals are globalBase-relative [lo, hi) byte ranges. The
    // corpus queues its write segments in ascending address order
    // per port (out-of-order ports get a local sort — they are rare
    // and short), so the cross-port write check is a 16-way merge
    // rather than a global sort of tens of thousands of segments.
    struct Box
    {
        Addr lo = ~Addr{0};
        Addr hi = 0;
        bool
        overlaps(const Box &other) const
        {
            return lo < other.hi && other.lo < hi;
        }
    };
    const unsigned n = static_cast<unsigned>(ports.size());
    std::vector<Box> readBox(n), writeBox(n);
    std::vector<std::vector<Box>> writes(n);
    chainBoxes.assign(cfg.tiles(), {});
    for (unsigned p = 0; p < n; ++p) {
        const Port &port = ports[p];
        if (!port.arrivals.empty())
            return false;
        for (std::size_t i = 0; i < port.inQueue.size(); ++i) {
            const DmaSegment &seg = port.inQueue[i];
            if (seg.dstTile != p)
                return false;
            const Addr hi = seg.base + static_cast<Addr>(seg.words) * 4;
            readBox[p].lo = std::min(readBox[p].lo, seg.base);
            readBox[p].hi = std::max(readBox[p].hi, hi);
        }
        bool sorted = true;
        writes[p].reserve(port.outQueue.size());
        for (std::size_t i = 0; i < port.outQueue.size(); ++i) {
            const DmaSegment &seg = port.outQueue[i];
            const Addr hi = seg.base + static_cast<Addr>(seg.words) * 4;
            sorted = sorted
                     && (writes[p].empty()
                         || writes[p].back().lo <= seg.base);
            writes[p].push_back({seg.base, hi});
            writeBox[p].lo = std::min(writeBox[p].lo, seg.base);
            writeBox[p].hi = std::max(writeBox[p].hi, hi);
        }
        if (!sorted) {
            std::sort(writes[p].begin(), writes[p].end(),
                      [](const Box &a, const Box &b) {
                          return a.lo < b.lo;
                      });
        }
        chainBoxes[p].owner = p;
        chainBoxes[p].lo = std::min(readBox[p].lo, writeBox[p].lo);
        chainBoxes[p].hi = std::max(readBox[p].hi, writeBox[p].hi);
    }

    // Reads vs writes: box-level check. Every corpus kernel reads
    // and writes disjoint allocations, so a box overlap means an
    // unusual layout — fall back to the plain event loop rather
    // than resolving it segment by segment.
    for (unsigned p = 0; p < n; ++p) {
        if (readBox[p].hi == 0)
            continue;
        for (unsigned q = 0; q < n; ++q) {
            if (q != p && readBox[p].overlaps(writeBox[q]))
                return false;
        }
    }

    // Writes vs writes: merge the per-port sorted lists in ascending
    // lo order, tracking the largest end seen (maxHi1, from port1)
    // and the largest end seen from any other port (maxHi2). A new
    // interval conflicts iff it starts before the furthest end among
    // OTHER ports' intervals — same-port overlap stays ordered
    // inside its chain and is fine.
    std::vector<std::size_t> head(n, 0);
    Addr maxHi1 = 0, maxHi2 = 0;
    unsigned port1 = ~0u;
    for (;;) {
        unsigned best = ~0u;
        for (unsigned p = 0; p < n; ++p) {
            if (head[p] < writes[p].size()
                && (best == ~0u
                    || writes[p][head[p]].lo < writes[best][head[best]].lo)) {
                best = p;
            }
        }
        if (best == ~0u)
            break;
        const Box &b = writes[best][head[best]++];
        const Addr otherHi = best == port1 ? maxHi2 : maxHi1;
        if (b.lo < otherHi)
            return false;
        if (best == port1) {
            maxHi1 = std::max(maxHi1, b.hi);
        } else if (b.hi >= maxHi1) {
            // New furthest end; the old one came from a different
            // port, so it is exactly the new runner-up.
            maxHi2 = maxHi1;
            maxHi1 = b.hi;
            port1 = best;
        } else {
            maxHi2 = std::max(maxHi2, b.hi);
        }
    }
    return true;
}

Cycles
RawMachine::runChain(unsigned t)
{
    // The private two-actor event loop: same structure as runEvent,
    // restricted to tile t and port t. The eligibility gate proved
    // no other actor can observe or influence this pair, so stepping
    // it in isolation visits exactly the cycles the global loop
    // would and leaves identical state and tallies.
    TileHot &tile = hot[t];
    Port &port = ports[t];
    Cycles now = 0;
    while (!tile.halted || port.work != 0) {
        if (port.work != 0)
            stepPort(port, now);
        if (wake[t] <= now) {
            if (now > tile.talliedThrough)
                creditSleep(t, now);
            stepTile(t, now);
            if (chainParked)
                return now;
            if (tile.talliedThrough < now + 1)
                tile.talliedThrough = now + 1;
        }
        ++now;
        if (now > cfg.maxCycles) {
            triarch_fatal("Raw simulation exceeded ", cfg.maxCycles,
                          " cycles — deadlock or runaway program");
        }
        if (tile.halted && port.work == 0)
            break;
        Cycles next = wake[t];
        // Busy steady state: the tile runs this very cycle, and the
        // port candidates below clamp to >= now, so they cannot move
        // the cursor earlier — skip computing them.
        if (next > now && port.work != 0) {
            // Mirror nextEventCycle's port candidates for this port.
            if (!port.inQueue.empty()
                && tile.inFifo.size() < cfg.fifoCapacity) {
                next = std::min(next, std::max(port.inFree, now));
            }
            if (!port.outQueue.empty() && !port.arrivals.empty()) {
                next = std::min(
                    next, std::max({port.outFree,
                                    port.arrivals.front().first, now}));
            }
        }
        if (next > cfg.maxCycles) {
            triarch_fatal("Raw simulation exceeded ", cfg.maxCycles,
                          " cycles — deadlock or runaway program");
        }
        now = next;
    }
    return now;
}

Cycles
RawMachine::runCoBatch(bool &poisoned)
{
    chainMode = true;
    Cycles end = 0;
    for (unsigned t = 0; t < cfg.tiles(); ++t) {
        chainParked = false;
        const Cycles chainEnd = runChain(t);
        if (chainParked) {
            poisoned = true;
            chainMode = false;
            // Chains 0..t ran ahead of global time (chain t exactly
            // up to its park cycle). Any later global access into
            // their DMA footprints — except the parked chain's own
            // tile touching its own footprint, which stays in exact
            // cycle order — would observe future memory; arm the
            // traps.
            for (unsigned c = 0; c <= t; ++c) {
                if (chainBoxes[c].hi > chainBoxes[c].lo)
                    hazardBoxes.push_back(chainBoxes[c]);
            }
            // The general loop's cursor can exit behind the chains
            // that already completed; fold their ends into the
            // existing exit clamp.
            batchedHaltEnd = std::max(batchedHaltEnd, end);
            return end;
        }
        end = std::max(end, chainEnd);
    }
    chainMode = false;

    if (batchedHaltEnd > end)
        end = batchedHaltEnd;
    if (end > cfg.maxCycles) {
        triarch_fatal("Raw simulation exceeded ", cfg.maxCycles,
                      " cycles — deadlock or runaway program");
    }
    // Settle the books exactly like runEvent's epilogue: every tile
    // sleeps from its own chain's end to the machine-wide end.
    for (unsigned t = 0; t < cfg.tiles(); ++t)
        creditSleep(t, end);
    return end;
}

void
RawMachine::checkChainHazard(unsigned t, Addr addr) const
{
    const Addr off = addr - globalBase;
    for (const ChainBox &box : hazardBoxes) {
        if (t != box.owner && off + 4 > box.lo && off < box.hi) {
            triarch_fatal(
                "Raw tile ", t, " global access @", addr,
                " lands in the DMA footprint of chain ", box.owner,
                ", which a fused co-batch run already completed "
                "ahead of global time; this access cannot be "
                "ordered correctly (DESIGN D13) — run with the "
                "reference stepper");
        }
    }
}

Cycles
RawMachine::runReference()
{
    Cycles now = 0;
    while (!allDone()) {
        stepPorts(now);
        for (unsigned t = 0; t < cfg.tiles(); ++t)
            stepTile(t, now);
        ++now;
        if (now > cfg.maxCycles) {
            triarch_fatal("Raw simulation exceeded ", cfg.maxCycles,
                          " cycles — deadlock or runaway program");
        }
    }
    return now;
}

Cycles
RawMachine::runEvent()
{
    // Re-arm the scheduler state (a machine can run more than once):
    // tallies restart at cycle 0, and a tile left with a pending
    // stall window re-enters through stepTile's stallUntil branch
    // exactly like the reference loop re-polling it from cycle 0.
    for (unsigned t = 0; t < cfg.tiles(); ++t) {
        hot[t].talliedThrough = 0;
        hot[t].waitPops = 0;
        hot[t].waitDyn = false;
        wake[t] = hot[t].halted ? kNever : 0;
    }
    batchedHaltEnd = 0;

    // Grid-wide fast path (D13): when the machine decomposes into
    // independent (tile t, port t) chains, run each chain to
    // completion in a fused two-actor loop instead of interleaving
    // all 32 actors cycle by cycle. Bit-identical by construction;
    // a dynamic global lw/sw parks its tile and falls back to the
    // general loop below, which resumes every tile from its exact
    // per-tile progress (talliedThrough / wake are already correct)
    // while checkChainHazard() traps accesses into footprints that
    // completed chains already touched ahead of global time.
    if (batching && portWork != 0 && coBatchEligible()) {
        bool poisoned = false;
        const Cycles end = runCoBatch(poisoned);
        if (!poisoned)
            return end;
    }

    Cycles now = 0;
    while (liveTiles != 0 || portWork != 0) {
        if (portWork != 0)
            stepPorts(now);
        for (unsigned t = 0; t < cfg.tiles(); ++t) {
            if (wake[t] <= now) {
                if (now > hot[t].talliedThrough)
                    creditSleep(t, now);
                stepTile(t, now);
                if (hot[t].talliedThrough < now + 1)
                    hot[t].talliedThrough = now + 1;
            }
        }
        ++now;
        if (now > cfg.maxCycles) {
            triarch_fatal("Raw simulation exceeded ", cfg.maxCycles,
                          " cycles — deadlock or runaway program");
        }
        if (liveTiles == 0 && portWork == 0)
            break;
        const Cycles next = nextEventCycle(now);
        if (next > cfg.maxCycles) {
            // Nothing can happen before the cap: the reference loop
            // would spin there tallying sleep, then die the same way.
            triarch_fatal("Raw simulation exceeded ", cfg.maxCycles,
                          " cycles — deadlock or runaway program");
        }
        now = next;
    }

    // The loop cursor can exit behind a halt that executed inside a
    // batch: the reference loop's allDone() only releases the run
    // once every tile's halt cycle has passed, and its maxCycles
    // check fires on the way there.
    if (batchedHaltEnd > now) {
        now = batchedHaltEnd;
        if (now > cfg.maxCycles) {
            triarch_fatal("Raw simulation exceeded ", cfg.maxCycles,
                          " cycles — deadlock or runaway program");
        }
    }

    // Settle the books: cycles [talliedThrough, now) of every tile
    // were slept through (all remaining tiles are halted), so the
    // per-tile tally count reaches exactly `now`, the same partition
    // the reference loop accrues cycle by cycle.
    for (unsigned t = 0; t < cfg.tiles(); ++t)
        creditSleep(t, now);
    return now;
}

Cycles
RawMachine::run()
{
    debugTrace = logLevel() >= LogLevel::Debug;
    hazardBoxes.clear();
    const RawStepper mode = cfg.stepper == RawStepper::Default
                                ? defaultRawStepper()
                                : cfg.stepper;
    // Batched execution changes the order debug-trace lines
    // interleave across tiles (never their content), so tracing runs
    // stay cycle-at-a-time.
    batching = mode == RawStepper::Event && !debugTrace;
    const Cycles now = mode == RawStepper::Reference ? runReference()
                                                     : runEvent();
    _cycles.set(now);

    // Close the FIFO-residency integral: words still queued at the
    // end of the run occupied their FIFO from arrival to the final
    // wall clock. Both steppers end at the same `now` with the same
    // queue contents, so this stays stepper-identical.
    for (const TileHot &tile : hot) {
        for (std::size_t i = 0; i < tile.inFifo.size(); ++i) {
            if (tile.inFifo[i].first < now)
                fifoWordCycles += now - tile.inFifo[i].first;
        }
    }

    // The per-instruction retire bookkeeping keeps only the per-tile
    // counter; the machine-wide scalar and the busy tally are its
    // exact (cumulative) sum, settled once per run.
    std::uint64_t retired = 0;
    for (const TileHot &tile : hot)
        retired += tile.instrs;
    _instrs.set(retired);
    tcBusy = retired;

    // Load-balance fingerprint: each tile's instruction count
    // relative to the busiest tile.
    std::uint64_t busiest = 0;
    for (const TileHot &t : hot)
        busiest = std::max(busiest, t.instrs);
    if (busiest > 0) {
        for (const TileHot &t : hot) {
            _tileShare.sample(static_cast<double>(t.instrs)
                              / static_cast<double>(busiest));
        }
    }

    // The net_stalls scalar counts per stalled cycle, so it must
    // track the network tile-cycle tallies exactly.
    triarch_assert(_netStalls.value() == tcNet + tcDma,
                   "net_stalls (", _netStalls.value(),
                   ") out of sync with network tile-cycle tallies (",
                   tcNet + tcDma, ")");
    return now;
}

stats::CycleBreakdown
RawMachine::cycleBreakdown(Cycles total)
{
    stats::CycleAccount account;
    // Average the per-tile-cycle tallies over the mesh: tiles() of
    // them accrue per wall cycle, so dividing by tiles() partitions
    // the wall clock. tiles() is a power of two, so the divisions
    // are exact in binary floating point and the exact finalize()
    // path holds when total is the measured wall clock.
    const double tiles = static_cast<double>(cfg.tiles());
    account.charge(stats::CycleCategory::Compute,
                   static_cast<double>(tcBusy + tcDep) / tiles);
    account.charge(stats::CycleCategory::CacheStall,
                   static_cast<double>(tcCache) / tiles);
    account.charge(stats::CycleCategory::DramDma,
                   static_cast<double>(tcDma) / tiles);
    account.charge(stats::CycleCategory::NetworkSync,
                   static_cast<double>(tcNet + tcIdle) / tiles);
    const stats::CycleBreakdown b =
        total == _cycles.value()
            ? account.finalize(total, stats::CycleCategory::NetworkSync)
            : account.finalizeScaled(total);
    accountStats.record(b);
    return b;
}

std::vector<std::pair<std::string, stats::StatGroup *>>
RawMachine::componentGroups()
{
    std::vector<std::pair<std::string, stats::StatGroup *>> out;
    for (unsigned t = 0; t < cfg.tiles(); ++t)
        out.emplace_back("dcache" + std::to_string(t),
                         &cold[t].cache->statGroup());
    return out;
}

hw::HwCell
RawMachine::hwCell(Cycles total, const stats::CycleBreakdown &breakdown)
{
    const Cycles measured = _cycles.value();
    const double tileCycles =
        static_cast<double>(cfg.tiles())
        * static_cast<double>(measured ? measured : 1);
    auto frac = [&](std::uint64_t part) {
        return measured
                   ? std::min(1.0, static_cast<double>(part)
                                       / tileCycles)
                   : 0.0;
    };

    std::uint64_t dHits = 0, dMisses = 0;
    for (const TileCold &c : cold) {
        dHits += c.cache->hits();
        dMisses += c.cache->misses();
    }
    const std::uint64_t dTotal = dHits + dMisses;
    const double dcacheHit =
        dTotal ? static_cast<double>(dHits) / dTotal : 0.0;
    const double fifoOcc =
        measured
            ? std::min(1.0, static_cast<double>(fifoWordCycles)
                                / (tileCycles * cfg.fifoCapacity))
            : 0.0;
    const double busyFrac = frac(tcBusy);
    const double idleFrac = frac(tcIdle);

    hw::HwCell cell;
    cell.cycles = total;
    cell.breakdown = breakdown;
    cell.metrics = {
        {"dcache_hit_rate", dcacheHit, true},
        {"mesh_fifo_occupancy", fifoOcc, true},
        {"tile_busy_fraction", busyFrac, true},
        {"idle_fraction", idleFrac, true},
        {"net_stall_fraction", frac(tcNet), true},
        {"dma_words_per_cycle",
         measured ? static_cast<double>(_wordsDmaIn.value()
                                        + _wordsDmaOut.value())
                        / static_cast<double>(measured)
                  : 0.0,
         false},
    };

    cell.verdict.category = hw::dominantCategory(breakdown);
    switch (cell.verdict.category) {
      case stats::CycleCategory::Compute:
        cell.verdict.component = "tiles";
        cell.verdict.detail = "issue-limited across the mesh, "
                              "busy frac "
                              + hw::fmt2(busyFrac) + ", dcache hit "
                              + hw::fmt2(dcacheHit);
        break;
      case stats::CycleCategory::CacheStall:
        cell.verdict.component = "dcache";
        cell.verdict.detail = "bound by tile cache misses, "
                              "dcache hit "
                              + hw::fmt2(dcacheHit);
        break;
      case stats::CycleCategory::DramDma:
        cell.verdict.component = "dma";
        cell.verdict.detail = "bound by DMA-fed FIFO waits, "
                              "fifo occ "
                              + hw::fmt2(fifoOcc) + ", busy frac "
                              + hw::fmt2(busyFrac);
        break;
      case stats::CycleCategory::NetworkSync:
        cell.verdict.component = "mesh";
        cell.verdict.detail = "bound by network waits and imbalance "
                              "idle, idle frac "
                              + hw::fmt2(idleFrac) + ", fifo occ "
                              + hw::fmt2(fifoOcc);
        break;
      case stats::CycleCategory::SetupReadback:
        cell.verdict.component = "host";
        cell.verdict.detail = "host setup dominates";
        break;
    }

    // The timeline closes over the measured wall clock — for the
    // CSLC extrapolated cell, events happened on the unbalanced run.
    cell.timeline = hwSamp.finalize(measured);

    // Derive the busy channel: every tile-cycle not tallied to a
    // stall or idle channel was a retire, so per epoch it is the
    // residual against tiles() x epoch span (exact; clamped only to
    // keep unsigned arithmetic safe against modelling drift).
    const std::size_t epochs = cell.timeline.epochs();
    hw::EpochChannel busy;
    busy.name = "busy";
    busy.counts.resize(epochs, 0);
    for (std::size_t e = 0; e < epochs; ++e) {
        const Cycles start =
            static_cast<Cycles>(e) * cell.timeline.epochCycles;
        const Cycles span =
            e + 1 == epochs ? measured - start
                            : cell.timeline.epochCycles;
        const std::uint64_t capacity =
            static_cast<std::uint64_t>(cfg.tiles()) * span;
        std::uint64_t others = 0;
        for (const hw::EpochChannel &ch : cell.timeline.channels)
            others += ch.counts[e];
        busy.counts[e] = capacity > others ? capacity - others : 0;
    }
    cell.timeline.channels.insert(cell.timeline.channels.begin(),
                                  std::move(busy));
    return cell;
}

std::uint64_t
RawMachine::tileInstructions(unsigned tile) const
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    return hot[tile].instrs;
}

std::uint64_t
RawMachine::tileIdleAfterHalt(unsigned tile) const
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    // A tile that never got a (non-empty) program never ran, so it
    // never *halted* — the constructor only parks it. Reporting the
    // whole run as idle-after-halt would poison imbalance metrics.
    if (cold[tile].program.empty())
        return 0;
    if (!hot[tile].halted || _cycles.value() == 0)
        return 0;
    return _cycles.value() - cold[tile].haltCycle;
}

std::string
RawMachine::describe() const
{
    std::ostringstream os;
    os << "Raw (tiled processor, MIT)\n"
       << "  " << cfg.meshWidth << "x" << cfg.meshHeight
       << " tiles, each a single-issue MIPS-like core with FPU and "
       << cfg.sramBytes / 1024 << " KB SRAM\n"
       << "  static mesh network: "
       << (cfg.netBaseLatency + 1)
       << "-cycle nearest-neighbour latency, 1 word/cycle/link, "
       << "+1 cycle per hop\n"
       << "  $csti/$csto network registers usable as instruction "
       << "operands\n"
       << "  " << cfg.tiles()
       << " peripheral DRAM ports, 1 word/cycle each\n"
       << "  clock " << cfg.clockMhz << " MHz, peak "
       << (cfg.clockMhz / 1000.0 * cfg.tiles()) << " GOPS\n";
    return os.str();
}

} // namespace triarch::raw
