#include "machine.hh"

#include <cstring>
#include <sstream>

#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::raw
{

RawMachine::RawMachine(const RawConfig &machine_config)
    : cfg(machine_config), tileState(cfg.tiles()), ports(cfg.tiles()),
      global(cfg.globalBytes, 0), group("raw")
{
    for (unsigned t = 0; t < cfg.tiles(); ++t) {
        tileState[t].sram.assign(cfg.sramBytes, 0);
        mem::CacheConfig cc;
        cc.name = "raw.tile" + std::to_string(t) + ".dcache";
        cc.sizeBytes = cfg.cacheBytes;
        cc.assoc = cfg.cacheAssoc;
        cc.lineBytes = cfg.cacheLineBytes;
        tileState[t].cache = std::make_unique<mem::SetAssocCache>(cc);
        tileState[t].halted = true;     // no program yet
    }
    group.addScalar("instructions", &_instrs, "instructions retired");
    group.addScalar("net_stalls", &_netStalls,
                    "cycles stalled on empty network FIFO");
    group.addScalar("dep_stalls", &_depStalls,
                    "stalls on operand latency");
    group.addScalar("cache_stall_cycles", &_cacheStalls,
                    "cycles stalled on cache misses");
    group.addScalar("loads_stores", &_ldst, "lw/sw instructions");
    group.addScalar("fp_ops", &_fpops, "floating-point instructions");
    group.addScalar("dma_in_words", &_wordsDmaIn, "words streamed in");
    group.addScalar("dma_out_words", &_wordsDmaOut,
                    "words streamed out");
    group.addScalar("cycles", &_cycles, "total machine cycles");
    group.addDistribution("tile_instr_share", &_tileShare,
                          "per-tile instructions relative to the "
                          "busiest tile");
    accountStats.registerIn(group);
    hostPhases.addTo(group);
}

Addr
RawMachine::allocGlobal(std::uint64_t bytes, const std::string &what)
{
    const Addr addr = roundUp(allocNext, 64);
    if (addr + bytes > global.size()) {
        triarch_fatal("Raw global DRAM exhausted allocating ", bytes,
                      " bytes for ", what);
    }
    allocNext = addr + bytes;
    return globalBase + addr;
}

void
RawMachine::pokeGlobal(Addr addr, std::span<const Word> words)
{
    triarch_assert(addr >= globalBase, "poke below global base");
    const Addr off = addr - globalBase;
    triarch_assert(off + words.size() * 4 <= global.size(),
                   "poke outside global DRAM");
    std::memcpy(global.data() + off, words.data(), words.size() * 4);
}

std::vector<Word>
RawMachine::peekGlobal(Addr addr, std::size_t count) const
{
    triarch_assert(addr >= globalBase, "peek below global base");
    const Addr off = addr - globalBase;
    triarch_assert(off + count * 4 <= global.size(),
                   "peek outside global DRAM");
    std::vector<Word> out(count);
    std::memcpy(out.data(), global.data() + off, count * 4);
    return out;
}

void
RawMachine::setProgram(unsigned tile, std::vector<Instr> program)
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    tileState[tile].program = std::move(program);
    tileState[tile].pc = 0;
    tileState[tile].halted = tileState[tile].program.empty();
}

void
RawMachine::pokeLocal(unsigned tile, Addr byte_offset,
                      std::span<const Word> words)
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    triarch_assert(byte_offset + words.size() * 4 <= cfg.sramBytes,
                   "poke outside tile SRAM");
    std::memcpy(tileState[tile].sram.data() + byte_offset, words.data(),
                words.size() * 4);
}

std::vector<Word>
RawMachine::peekLocal(unsigned tile, Addr byte_offset,
                      std::size_t count) const
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    triarch_assert(byte_offset + count * 4 <= cfg.sramBytes,
                   "peek outside tile SRAM");
    std::vector<Word> out(count);
    std::memcpy(out.data(), tileState[tile].sram.data() + byte_offset,
                count * 4);
    return out;
}

void
RawMachine::setRoute(unsigned tile, unsigned endpoint)
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    triarch_assert(endpoint < cfg.tiles()
                       || (endpoint >= 1000
                           && endpoint < 1000 + cfg.tiles()),
                   "bad route endpoint");
    tileState[tile].route = endpoint;
}

void
RawMachine::dmaIn(unsigned port, unsigned dstTile, Addr base,
                  unsigned words)
{
    triarch_assert(port < ports.size() && dstTile < cfg.tiles(),
                   "bad port or tile");
    triarch_assert(base >= globalBase, "DMA below global base");
    // A zero-word segment is a no-op. Queueing it would wedge the
    // port: stepPorts() only retires a segment after streaming a
    // word, so done (1, 2, ...) never equals words (0) and the run
    // loop spins forever waiting for the queue to drain.
    if (words == 0)
        return;
    tileState[dstTile].dmaFed = true;
    ports[port].inQueue.push_back({base - globalBase, words, dstTile});
}

void
RawMachine::dmaOut(unsigned port, Addr base, unsigned words)
{
    triarch_assert(port < ports.size(), "bad port");
    triarch_assert(base >= globalBase, "DMA below global base");
    if (words == 0)
        return;
    ports[port].outQueue.push_back({base - globalBase, words, 0});
}

unsigned
RawMachine::hops(unsigned a, unsigned b) const
{
    const int ar = a / cfg.meshWidth, ac = a % cfg.meshWidth;
    const int br = b / cfg.meshWidth, bc = b % cfg.meshWidth;
    return static_cast<unsigned>(std::abs(ar - br) + std::abs(ac - bc));
}

void
RawMachine::send(unsigned t, Word value, Cycles now)
{
    const unsigned route = tileState[t].route;
    triarch_assert(route != ~0u, "tile ", t,
                   " writes $csto without a configured route");
    if (route >= 1000) {
        // Peripheral port: one hop from the attached tile.
        ports[route - 1000].arrivals.emplace_back(
            now + cfg.netBaseLatency + 1, value);
    } else {
        const Cycles arrival =
            now + cfg.netBaseLatency + std::max(1u, hops(t, route));
        tileState[route].inFifo.emplace_back(arrival, value);
    }
}

void
RawMachine::tallyStall(TileStall kind)
{
    switch (kind) {
      case TileStall::Dep:
        ++tcDep;
        break;
      case TileStall::Cache:
        ++tcCache;
        break;
      case TileStall::Net:
        ++tcNet;
        break;
      case TileStall::Dma:
        ++tcDma;
        break;
      case TileStall::None:
        // Every path that pushes stallUntil into the future records
        // why; a future stall with no kind is a modelling bug.
        triarch_panic("Raw tile stalled with no recorded stall kind");
    }
}

void
RawMachine::stepTile(unsigned t, Cycles now)
{
    Tile &tile = tileState[t];
    if (tile.halted) {
        ++tcIdle;
        return;
    }
    if (tile.stallUntil > now) {
        tallyStall(tile.stallKind);
        return;
    }
    triarch_assert(tile.pc < tile.program.size(),
                   "tile ", t, " ran off its program");
    const Instr &in = tile.program[tile.pc];

    // Gather source registers for this opcode.
    unsigned srcs[2];
    unsigned nsrc = 0;
    switch (in.op) {
      case Op::Add: case Op::Sub: case Op::Mul:
      case Op::And: case Op::Or: case Op::Xor:
      case Op::FAdd: case Op::FSub: case Op::FMul:
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
        srcs[nsrc++] = in.rs;
        srcs[nsrc++] = in.rt;
        break;
      case Op::Addi: case Op::Sll: case Op::Sra: case Op::Srl:
      case Op::Lw:
        srcs[nsrc++] = in.rs;
        break;
      case Op::Sw:
      case Op::Dsend:
        srcs[nsrc++] = in.rs;
        srcs[nsrc++] = in.rt;
        break;
      default:
        break;
    }

    // Network-input availability: each $csti source pops one word.
    unsigned pops = 0;
    for (unsigned i = 0; i < nsrc; ++i) {
        if (srcs[i] == regCsti)
            ++pops;
    }
    if (pops > 0) {
        if (tile.inFifo.size() < pops
            || tile.inFifo[pops - 1].first > now) {
            ++_netStalls;
            tile.stallKind =
                tile.dmaFed ? TileStall::Dma : TileStall::Net;
            tallyStall(tile.stallKind);
            tile.stallUntil = now + 1;
            return;
        }
    }

    // Dynamic-network receive availability.
    if (in.op == Op::Drecv) {
        if (tile.dynFifo.empty() || tile.dynFifo.front().first > now) {
            ++_netStalls;
            tile.stallKind = TileStall::Net;
            tallyStall(tile.stallKind);
            tile.stallUntil = now + 1;
            return;
        }
    }

    // Operand readiness (scoreboarded latencies).
    Cycles rdy = 0;
    for (unsigned i = 0; i < nsrc; ++i) {
        if (srcs[i] != regCsti && srcs[i] != 0)
            rdy = std::max(rdy, tile.ready[srcs[i]]);
    }
    if (rdy > now) {
        ++_depStalls;
        tile.stallKind = TileStall::Dep;
        tallyStall(tile.stallKind);
        tile.stallUntil = rdy;
        return;
    }

    // If this instruction sends to a tile whose FIFO is full, block.
    const bool sendsNet =
        (in.op != Op::Sw && in.op != Op::Beq && in.op != Op::Bne
         && in.op != Op::Blt && in.op != Op::Bge && in.op != Op::Jump
         && in.op != Op::Halt && in.op != Op::Nop)
        && in.rd == regCsto;
    if (sendsNet && tile.route < 1000
        && tileState[tile.route].inFifo.size() >= cfg.fifoCapacity) {
        ++_netStalls;
        tile.stallKind = TileStall::Net;
        tallyStall(tile.stallKind);
        tile.stallUntil = now + 1;
        return;
    }

    auto readReg = [&](unsigned r) -> std::uint32_t {
        if (r == regCsti) {
            const Word v = tile.inFifo.front().second;
            tile.inFifo.pop_front();
            return v;
        }
        return r == 0 ? 0 : tile.regs[r];
    };

    auto writeReg = [&](unsigned rd, std::uint32_t v, Cycles lat) {
        if (rd == regCsto) {
            send(t, v, now);
        } else if (rd != 0) {
            tile.regs[rd] = v;
            tile.ready[rd] = now + lat;
        }
    };

    bool branched = false;
    switch (in.op) {
      case Op::Nop:
        break;
      case Op::Add:
        writeReg(in.rd, readReg(in.rs) + readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Addi:
        writeReg(in.rd, readReg(in.rs)
                 + static_cast<std::uint32_t>(in.imm), cfg.intLatency);
        break;
      case Op::Sub:
        writeReg(in.rd, readReg(in.rs) - readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Mul:
        writeReg(in.rd, readReg(in.rs) * readReg(in.rt),
                 cfg.mulLatency);
        break;
      case Op::Sll:
        writeReg(in.rd, readReg(in.rs) << (in.imm & 31),
                 cfg.intLatency);
        break;
      case Op::Sra:
        writeReg(in.rd, static_cast<std::uint32_t>(
                     static_cast<std::int32_t>(readReg(in.rs))
                     >> (in.imm & 31)), cfg.intLatency);
        break;
      case Op::Srl:
        writeReg(in.rd, readReg(in.rs) >> (in.imm & 31),
                 cfg.intLatency);
        break;
      case Op::And:
        writeReg(in.rd, readReg(in.rs) & readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Or:
        writeReg(in.rd, readReg(in.rs) | readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Xor:
        writeReg(in.rd, readReg(in.rs) ^ readReg(in.rt),
                 cfg.intLatency);
        break;
      case Op::Li:
        writeReg(in.rd, static_cast<std::uint32_t>(in.imm),
                 cfg.intLatency);
        break;
      case Op::FAdd:
        writeReg(in.rd, floatToWord(wordToFloat(readReg(in.rs))
                                    + wordToFloat(readReg(in.rt))),
                 cfg.fpLatency);
        ++_fpops;
        break;
      case Op::FSub:
        writeReg(in.rd, floatToWord(wordToFloat(readReg(in.rs))
                                    - wordToFloat(readReg(in.rt))),
                 cfg.fpLatency);
        ++_fpops;
        break;
      case Op::FMul:
        writeReg(in.rd, floatToWord(wordToFloat(readReg(in.rs))
                                    * wordToFloat(readReg(in.rt))),
                 cfg.fpLatency);
        ++_fpops;
        break;
      case Op::Lw: {
        const Addr addr = readReg(in.rs)
                          + static_cast<std::uint32_t>(in.imm);
        Word value = 0;
        Cycles extra = 0;
        if (addr >= globalBase) {
            const Addr off = addr - globalBase;
            triarch_assert(off + 4 <= global.size(),
                           "tile ", t, " lw outside global DRAM");
            std::memcpy(&value, global.data() + off, 4);
            auto res = tile.cache->access(addr, false);
            if (!res.hit) {
                extra = cfg.cacheMissPenalty;
                if (res.writebackAddr)
                    extra += cfg.writebackPenalty;
                _cacheStalls += extra;
            }
        } else {
            triarch_assert(addr + 4 <= cfg.sramBytes,
                           "tile ", t, " lw outside SRAM @", addr);
            std::memcpy(&value, tile.sram.data() + addr, 4);
        }
        writeReg(in.rd, value, extra + cfg.loadLatency);
        if (extra > 0) {
            tile.stallKind = TileStall::Cache;
            tile.stallUntil = now + 1 + extra;
        }
        ++_ldst;
        break;
      }
      case Op::Sw: {
        const Addr addr = readReg(in.rs)
                          + static_cast<std::uint32_t>(in.imm);
        const Word value = readReg(in.rt);
        if (addr >= globalBase) {
            const Addr off = addr - globalBase;
            triarch_assert(off + 4 <= global.size(),
                           "tile ", t, " sw outside global DRAM");
            std::memcpy(global.data() + off, &value, 4);
            auto res = tile.cache->access(addr, true);
            if (!res.hit) {
                Cycles extra = cfg.cacheMissPenalty;
                if (res.writebackAddr)
                    extra += cfg.writebackPenalty;
                _cacheStalls += extra;
                tile.stallKind = TileStall::Cache;
                tile.stallUntil = now + 1 + extra;
            }
        } else {
            triarch_assert(addr + 4 <= cfg.sramBytes,
                           "tile ", t, " sw outside SRAM @", addr);
            std::memcpy(tile.sram.data() + addr, &value, 4);
        }
        ++_ldst;
        break;
      }
      case Op::Dsend: {
        const unsigned dest = readReg(in.rs);
        const Word value = readReg(in.rt);
        triarch_assert(dest < cfg.tiles(),
                       "tile ", t, " dsend to bad tile ", dest);
        tileState[dest].dynFifo.emplace_back(
            now + cfg.dynBaseLatency + std::max(1u, hops(t, dest)),
            value);
        // The packet (header + data) occupies the injection port.
        tile.stallKind = TileStall::Net;
        tile.stallUntil = now + cfg.dynSendOccupancy;
        break;
      }
      case Op::Drecv:
        writeReg(in.rd, tile.dynFifo.front().second, cfg.intLatency);
        tile.dynFifo.pop_front();
        break;
      case Op::Beq:
        branched = readReg(in.rs) == readReg(in.rt);
        break;
      case Op::Bne:
        branched = readReg(in.rs) != readReg(in.rt);
        break;
      case Op::Blt:
        branched = static_cast<std::int32_t>(readReg(in.rs))
                   < static_cast<std::int32_t>(readReg(in.rt));
        break;
      case Op::Bge:
        branched = static_cast<std::int32_t>(readReg(in.rs))
                   >= static_cast<std::int32_t>(readReg(in.rt));
        break;
      case Op::Jump:
        branched = true;
        break;
      case Op::Halt:
        tile.halted = true;
        tile.haltCycle = now;
        break;
    }

    if (branched)
        tile.pc = static_cast<unsigned>(in.imm);
    else if (!tile.halted)
        ++tile.pc;

    ++tile.instrs;
    ++_instrs;
    ++tcBusy;

    if (logLevel() >= LogLevel::Debug) {
        debugLog("raw tile ", t, " @", now, ": ",
                 disassemble(in));
    }
}

void
RawMachine::stepPorts(Cycles now)
{
    for (auto &port : ports) {
        // DMA in: stream one word per cycle into the tile FIFO.
        if (!port.inQueue.empty() && port.inFree <= now) {
            DmaSegment &seg = port.inQueue.front();
            Tile &dst = tileState[seg.dstTile];
            if (dst.inFifo.size() < cfg.fifoCapacity) {
                const Addr a = seg.base + static_cast<Addr>(seg.done)
                               * 4;
                Word v = 0;
                std::memcpy(&v, global.data() + a, 4);
                dst.inFifo.emplace_back(
                    now + cfg.netBaseLatency + 1, v);
                ++_wordsDmaIn;

                Cycles cost = 1;
                const Addr row = a / cfg.portRowBytes;
                if (row != port.inLastRow) {
                    cost += cfg.portRowMissPenalty;
                    port.inLastRow = row;
                }
                port.inFree = now + cost;
                if (++seg.done == seg.words)
                    port.inQueue.pop_front();
            }
        }

        // DMA out: drain one arrived word per cycle to memory.
        if (!port.outQueue.empty() && port.outFree <= now
            && !port.arrivals.empty()
            && port.arrivals.front().first <= now) {
            DmaSegment &seg = port.outQueue.front();
            const Word v = port.arrivals.front().second;
            port.arrivals.pop_front();
            const Addr a = seg.base + static_cast<Addr>(seg.done) * 4;
            std::memcpy(global.data() + a, &v, 4);
            ++_wordsDmaOut;

            Cycles cost = 1;
            const Addr row = a / cfg.portRowBytes;
            if (row != port.outLastRow) {
                cost += cfg.portRowMissPenalty;
                port.outLastRow = row;
            }
            port.outFree = now + cost;
            if (++seg.done == seg.words)
                port.outQueue.pop_front();
        }
    }
}

bool
RawMachine::allDone() const
{
    for (const auto &tile : tileState) {
        if (!tile.halted)
            return false;
    }
    for (const auto &port : ports) {
        if (!port.inQueue.empty() || !port.outQueue.empty())
            return false;
        if (!port.arrivals.empty())
            return false;
    }
    return true;
}

Cycles
RawMachine::run()
{
    Cycles now = 0;
    while (!allDone()) {
        stepPorts(now);
        for (unsigned t = 0; t < cfg.tiles(); ++t)
            stepTile(t, now);
        ++now;
        if (now > cfg.maxCycles) {
            triarch_fatal("Raw simulation exceeded ", cfg.maxCycles,
                          " cycles — deadlock or runaway program");
        }
    }
    _cycles.set(now);

    // Load-balance fingerprint: each tile's instruction count
    // relative to the busiest tile.
    std::uint64_t busiest = 0;
    for (const Tile &t : tileState)
        busiest = std::max(busiest, t.instrs);
    if (busiest > 0) {
        for (const Tile &t : tileState) {
            _tileShare.sample(static_cast<double>(t.instrs)
                              / static_cast<double>(busiest));
        }
    }
    return now;
}

stats::CycleBreakdown
RawMachine::cycleBreakdown(Cycles total)
{
    stats::CycleAccount account;
    // Average the per-tile-cycle tallies over the mesh: tiles() of
    // them accrue per wall cycle, so dividing by tiles() partitions
    // the wall clock. tiles() is a power of two, so the divisions
    // are exact in binary floating point and the exact finalize()
    // path holds when total is the measured wall clock.
    const double tiles = static_cast<double>(cfg.tiles());
    account.charge(stats::CycleCategory::Compute,
                   static_cast<double>(tcBusy + tcDep) / tiles);
    account.charge(stats::CycleCategory::CacheStall,
                   static_cast<double>(tcCache) / tiles);
    account.charge(stats::CycleCategory::DramDma,
                   static_cast<double>(tcDma) / tiles);
    account.charge(stats::CycleCategory::NetworkSync,
                   static_cast<double>(tcNet + tcIdle) / tiles);
    const stats::CycleBreakdown b =
        total == _cycles.value()
            ? account.finalize(total, stats::CycleCategory::NetworkSync)
            : account.finalizeScaled(total);
    accountStats.record(b);
    return b;
}

std::uint64_t
RawMachine::tileInstructions(unsigned tile) const
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    return tileState[tile].instrs;
}

std::uint64_t
RawMachine::tileIdleAfterHalt(unsigned tile) const
{
    triarch_assert(tile < cfg.tiles(), "tile out of range");
    if (!tileState[tile].halted || _cycles.value() == 0)
        return 0;
    return _cycles.value() - tileState[tile].haltCycle;
}

std::string
RawMachine::describe() const
{
    std::ostringstream os;
    os << "Raw (tiled processor, MIT)\n"
       << "  " << cfg.meshWidth << "x" << cfg.meshHeight
       << " tiles, each a single-issue MIPS-like core with FPU and "
       << cfg.sramBytes / 1024 << " KB SRAM\n"
       << "  static mesh network: "
       << (cfg.netBaseLatency + 1)
       << "-cycle nearest-neighbour latency, 1 word/cycle/link, "
       << "+1 cycle per hop\n"
       << "  $csti/$csto network registers usable as instruction "
       << "operands\n"
       << "  " << cfg.tiles()
       << " peripheral DRAM ports, 1 word/cycle each\n"
       << "  clock " << cfg.clockMhz << " MHz, peak "
       << (cfg.clockMhz / 1000.0 * cfg.tiles()) << " GOPS\n";
    return os.str();
}

} // namespace triarch::raw
