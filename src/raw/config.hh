/**
 * @file
 * Configuration of the Raw machine model (Section 2.3): 16 tiles in
 * a 4x4 mesh, each a single-issue MIPS-like core with local SRAM,
 * connected by a low-latency static network, with DRAM ports on the
 * chip periphery.
 *
 * Facts the model reproduces:
 *  - 16 single-issue tiles at 300 MHz (peak 4.8 GOPS);
 *  - static network: 3-cycle nearest-neighbour latency, one word
 *    per cycle per link, +1 cycle per additional hop;
 *  - instructions read the network input FIFO ($csti) and write the
 *    static route ($csto) directly as register operands;
 *  - peripheral DRAM ports, one word per cycle each, with row-miss
 *    penalties on sequential streams;
 *  - cached (MIMD) mode: per-tile data cache over global DRAM, used
 *    by the CSLC mapping; misses stall the tile.
 */

#ifndef TRIARCH_RAW_CONFIG_HH
#define TRIARCH_RAW_CONFIG_HH

#include <atomic>
#include <cstdint>

#include "sim/types.hh"

namespace triarch::raw
{

/** Byte addresses at or above this go to global DRAM (cached). */
constexpr Addr globalBase = 0x10000000;

/**
 * Which interpreter loop RawMachine::run() uses. Both produce
 * bit-identical cycle counts, statistics documents, and cycle-account
 * tallies (pinned by the differential test in test_raw_event.cc);
 * Event skips `now` over spans where every tile sleeps until a known
 * wake cycle and credits the skipped tallies in bulk, Reference spins
 * one cycle at a time like the original interpreter.
 */
enum class RawStepper : std::uint8_t
{
    Default,    //!< follow the process-wide defaultRawStepper()
    Event,      //!< event-driven: jump to the minimum pending wake
    Reference,  //!< cycle-at-a-time reference loop
};

namespace detail
{
inline std::atomic<RawStepper> rawStepperDefault{RawStepper::Event};
} // namespace detail

/** The stepper a default-constructed RawConfig resolves to. */
inline RawStepper
defaultRawStepper()
{
    return detail::rawStepperDefault.load(std::memory_order_relaxed);
}

/**
 * Override the process-wide default stepper (differential tests and
 * micro_host --raw-stepper; mappings build machines with a default
 * RawConfig, so this is the hook that reaches them).
 */
inline void
setDefaultRawStepper(RawStepper s)
{
    detail::rawStepperDefault.store(s, std::memory_order_relaxed);
}

/** All Raw model parameters; defaults mirror the MIT prototype. */
struct RawConfig
{
    unsigned clockMhz = 300;

    unsigned meshWidth = 4;
    unsigned meshHeight = 4;
    unsigned tiles() const { return meshWidth * meshHeight; }

    std::uint64_t sramBytes = 32 * 1024;    //!< per-tile data SRAM
    std::uint64_t globalBytes = 64 * 1024 * 1024;

    // Instruction latencies (results ready N cycles after issue).
    Cycles intLatency = 1;
    Cycles mulLatency = 2;
    Cycles fpLatency = 3;
    Cycles loadLatency = 3;     //!< local SRAM or cache hit

    // Static network.
    Cycles netBaseLatency = 2;  //!< 3 cycles nearest neighbour = 2+1hop
    unsigned fifoCapacity = 8;  //!< tile input FIFO words

    // Dynamic network: packetized (header + data), so per-word
    // latency and occupancy are higher than the static network's.
    Cycles dynBaseLatency = 5;
    Cycles dynSendOccupancy = 2;    //!< header flit + data flit

    // Peripheral DRAM ports (one per tile in this model).
    Cycles portRowMissPenalty = 12;
    Addr portRowBytes = 2048;

    // Per-tile data cache over global DRAM.
    std::uint64_t cacheBytes = 32 * 1024;
    unsigned cacheAssoc = 2;
    unsigned cacheLineBytes = 32;
    Cycles cacheMissPenalty = 24;
    Cycles writebackPenalty = 4;

    /** Hard cap on simulated cycles (deadlock guard). */
    Cycles maxCycles = 200'000'000;

    /** Interpreter loop selection (Default = process-wide setting). */
    RawStepper stepper = RawStepper::Default;
};

} // namespace triarch::raw

#endif // TRIARCH_RAW_CONFIG_HH
