/**
 * @file
 * A macro-assembler for the Raw tile mini-ISA. Kernel mappings emit
 * real instruction sequences (loops, unrolled bodies, address
 * arithmetic) through this builder; labels resolve to instruction
 * indices on finish().
 */

#ifndef TRIARCH_RAW_ASSEMBLER_HH
#define TRIARCH_RAW_ASSEMBLER_HH

#include <cstdint>
#include <vector>

#include "raw/isa.hh"

namespace triarch::raw
{

/** Forward-referencable branch target. */
struct Label
{
    unsigned id = ~0u;
};

/** Builds a tile program; emit instructions then call finish(). */
class Assembler
{
  public:
    /** Create a label (bind it later with bind()). */
    Label label();

    /** Bind @p l to the next emitted instruction. */
    void bind(Label l);

    // Arithmetic / logic.
    void add(unsigned rd, unsigned rs, unsigned rt);
    void addi(unsigned rd, unsigned rs, std::int32_t imm);
    void sub(unsigned rd, unsigned rs, unsigned rt);
    void mul(unsigned rd, unsigned rs, unsigned rt);
    void sll(unsigned rd, unsigned rs, unsigned sh);
    void sra(unsigned rd, unsigned rs, unsigned sh);
    void srl(unsigned rd, unsigned rs, unsigned sh);
    void and_(unsigned rd, unsigned rs, unsigned rt);
    void or_(unsigned rd, unsigned rs, unsigned rt);
    void xor_(unsigned rd, unsigned rs, unsigned rt);
    void li(unsigned rd, std::int32_t imm);
    /** rd = rs (assembles to add rd, rs, r0). */
    void move(unsigned rd, unsigned rs);

    // Floating point (on register bit patterns).
    void fadd(unsigned rd, unsigned rs, unsigned rt);
    void fsub(unsigned rd, unsigned rs, unsigned rt);
    void fmul(unsigned rd, unsigned rs, unsigned rt);

    // Memory.
    void lw(unsigned rd, unsigned rs, std::int32_t imm);
    void sw(unsigned rt, unsigned rs, std::int32_t imm);

    // Dynamic network.
    /** Send the word in @p rt to the tile id held in @p rs. */
    void dsend(unsigned rs, unsigned rt);
    /** Blocking receive from the dynamic network into @p rd. */
    void drecv(unsigned rd);

    // Control.
    void beq(unsigned rs, unsigned rt, Label target);
    void bne(unsigned rs, unsigned rt, Label target);
    void blt(unsigned rs, unsigned rt, Label target);
    void bge(unsigned rs, unsigned rt, Label target);
    void jump(Label target);
    void halt();

    /** Number of instructions emitted so far. */
    std::size_t size() const { return code.size(); }

    /** Resolve labels and return the program; the builder resets. */
    std::vector<Instr> finish();

  private:
    void emit(Op op, unsigned rd, unsigned rs, unsigned rt,
              std::int32_t imm);
    void emitBranch(Op op, unsigned rs, unsigned rt, Label target);

    std::vector<Instr> code;
    std::vector<std::int64_t> labelTargets;     //!< -1 = unbound
    std::vector<std::pair<unsigned, unsigned>> fixups; //!< instr,label
};

} // namespace triarch::raw

#endif // TRIARCH_RAW_ASSEMBLER_HH
