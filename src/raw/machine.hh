/**
 * @file
 * The Raw machine model: a cycle-stepped interpreter over 16 tile
 * cores, the static mesh network, peripheral DRAM ports with DMA
 * stream sessions, and per-tile data caches for the MIMD mode.
 *
 * Execution model per cycle: every tile retires at most one
 * instruction; a tile stalls when a source register is not ready
 * (scoreboarded latencies), when it reads $csti and the input FIFO
 * is empty, or while a cache miss is serviced. DMA-in ports stream
 * global memory into tile FIFOs at one word per cycle (plus row-miss
 * penalties); DMA-out ports drain words the tiles route to them and
 * write global memory sequentially.
 *
 * Two interchangeable run loops execute that model (DESIGN D12): the
 * reference stepper spins one cycle at a time calling every tile,
 * while the event-driven stepper keeps a next-wake cycle per tile,
 * jumps `now` to the minimum pending wake, and credits the skipped
 * cycles to the sleeping tiles' stall tallies in bulk. Both produce
 * bit-identical cycle counts and statistics.
 *
 * On top of the event stepper sits the fused DMA co-batch (DESIGN
 * D13): when the machine decomposes into independent (tile t, port t)
 * chains — every live tile routes $csto to its own port, every DMA
 * segment on port t targets tile t, no dynamic-network traffic, and
 * no cross-chain DMA footprint overlap — each chain runs to
 * completion in a private two-actor loop before the next one starts.
 * Chains share no observable state, so the per-chain runs commute
 * with the global cycle interleaving and every counter, tally, and
 * memory byte lands exactly where the plain event loop puts it.
 */

#ifndef TRIARCH_RAW_MACHINE_HH
#define TRIARCH_RAW_MACHINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mem/cache.hh"
#include "raw/config.hh"
#include "raw/isa.hh"
#include "sim/cycle_account.hh"
#include "sim/host_clock.hh"
#include "sim/hw_report.hh"
#include "sim/ring_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "sim/zero_buffer.hh"

namespace triarch::raw
{

/** Route endpoint: tiles are 0..15, port p is portEndpoint(p). */
constexpr unsigned
portEndpoint(unsigned port)
{
    return 1000 + port;
}

/** The 16-tile Raw chip plus its memory ports. */
class RawMachine
{
  public:
    explicit RawMachine(const RawConfig &machine_config = {});

    const RawConfig &config() const { return cfg; }

    // ------------------------------------------------------------
    // Host-side setup (not timed).
    // ------------------------------------------------------------

    /** Bump-allocate global DRAM; returns a globalBase-relative
     *  absolute address usable in tile programs. */
    Addr allocGlobal(std::uint64_t bytes, const std::string &what);

    void pokeGlobal(Addr addr, std::span<const Word> words);
    std::vector<Word> peekGlobal(Addr addr, std::size_t count) const;
    /** Copy-free variant: read global DRAM straight into @p out. */
    void peekGlobalInto(Addr addr, std::span<Word> out) const;

    /** Load a program into a tile (pc resets to 0). */
    void setProgram(unsigned tile, std::vector<Instr> program);

    /** Host write into a tile's local SRAM. */
    void pokeLocal(unsigned tile, Addr byte_offset,
                   std::span<const Word> words);
    std::vector<Word> peekLocal(unsigned tile, Addr byte_offset,
                                std::size_t count) const;

    /** Configure a tile's static route for $csto writes. */
    void setRoute(unsigned tile, unsigned endpoint);

    /**
     * Queue a DMA-in segment: port @p port streams @p words global
     * words from @p base into tile @p dstTile's input FIFO.
     */
    void dmaIn(unsigned port, unsigned dstTile, Addr base,
               unsigned words);

    /**
     * Queue a DMA-out segment: the next @p words words arriving at
     * port @p port are written sequentially to global @p base.
     */
    void dmaOut(unsigned port, Addr base, unsigned words);

    // ------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------

    /**
     * Run until every tile halts and all DMA queues drain; returns
     * the cycle count. Fatal if cfg.maxCycles is exceeded (deadlock
     * or runaway program).
     */
    Cycles run();

    // ------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------

    stats::StatGroup &statGroup() { return group; }

    /** Where the registry mapping samples this cell's coarse
     *  setup/run/readback host-time split (profiling-gated). */
    host::HostPhases &hostTime() { return hostPhases; }

    std::uint64_t instructions() const { return _instrs.value(); }
    std::uint64_t netStalls() const { return _netStalls.value(); }
    std::uint64_t depStalls() const { return _depStalls.value(); }
    std::uint64_t cacheStallCycles() const
    {
        return _cacheStalls.value();
    }
    std::uint64_t loadStores() const { return _ldst.value(); }
    std::uint64_t fpOps() const { return _fpops.value(); }

    /** Instructions retired by one tile (load-balance studies). */
    std::uint64_t tileInstructions(unsigned tile) const;

    /** Cycles tile spent fully idle after halting. A tile that was
     *  never given a (non-empty) program never ran and never halted,
     *  so it reports 0 rather than the whole run. */
    std::uint64_t tileIdleAfterHalt(unsigned tile) const;

    /**
     * The raw per-tile-cycle tallies behind cycleBreakdown(): each
     * tile accrues exactly one tally per run() cycle, so the fields
     * sum to tiles() x cycles. Exposed so tests can pin accounting
     * invariants (net == net_stalls - dma, partition sum, ...).
     */
    struct StallTallies
    {
        std::uint64_t busy;     //!< retired an instruction
        std::uint64_t dep;      //!< operand-latency stall
        std::uint64_t cache;    //!< cache-miss stall
        std::uint64_t net;      //!< network wait / send occupancy
        std::uint64_t dma;      //!< DMA-fed FIFO wait
        std::uint64_t idle;     //!< halted (imbalance idle)
    };
    StallTallies stallTallies() const
    {
        return {tcBusy, tcDep, tcCache, tcNet, tcDma, tcIdle};
    }

    /**
     * Finalize the cycle account against @p total. Every tile is in
     * exactly one state each cycle of run() — retiring (compute),
     * stalled on an operand (compute: pipeline latency), stalled on
     * a cache miss (cache_stall), waiting on a DMA-fed FIFO
     * (dram_dma), waiting on the network or another tile
     * (network_sync), or halted (network_sync: imbalance idle) —
     * and the wall clock is attributed by averaging the tile-cycle
     * tallies over the mesh. When @p total differs from the
     * measured wall clock (the Raw CSLC perfect-load-balance
     * extrapolation of Section 4.3), the measured proportions are
     * rescaled to @p total. Also records the breakdown into the
     * stat group's account_* scalars.
     */
    stats::CycleBreakdown cycleBreakdown(Cycles total);

    /** The component StatGroups (one per tile data cache) behind the
     *  main group, as (label-suffix, group) pairs for per-cell
     *  capture. */
    std::vector<std::pair<std::string, stats::StatGroup *>>
    componentGroups();

    /**
     * Roll the mesh counters into the cell's hardware report:
     * aggregate dcache hit rate, FIFO occupancy, tile busy/idle
     * fractions, the per-stall-kind epoch timeline (with the busy
     * channel derived as the tile-cycle residual), and a bottleneck
     * verdict consistent with @p breakdown (hw_report.hh, D14).
     * @p total may be the CSLC balanced extrapolation; the timeline
     * always closes over the measured wall clock.
     */
    hw::HwCell hwCell(Cycles total,
                      const stats::CycleBreakdown &breakdown);

    /** One-paragraph block-diagram description (Figure 3). */
    std::string describe() const;

  private:
    struct DmaSegment
    {
        Addr base;
        unsigned words;
        unsigned dstTile;   //!< DMA-in only
        unsigned done = 0;
    };

    /** Why a tile is not retiring this cycle (for the account). */
    enum class TileStall : std::uint8_t { None, Dep, Cache, Net, Dma };

    /** A tile's next-wake cycle of "never" (halted / unknown). */
    static constexpr Cycles kNever = ~Cycles{0};

    /**
     * Per-tile state the interpreter touches every step, laid out
     * contiguously (one vector element per tile). Cold bulk — the
     * program and SRAM backing stores, the cache object, halt
     * bookkeeping — lives in TileCold; the hot struct carries raw
     * pointers into it.
     */
    struct TileHot
    {
        unsigned pc = 0;
        std::uint32_t progLen = 0;
        const Instr *prog = nullptr;
        Cycles stallUntil = 0;
        TileStall stallKind = TileStall::None;
        bool halted = false;
        bool dmaFed = false;    //!< a DMA-in segment targets this tile
        /** Event stepper: csti words awaited while the FIFO is too
         *  short to know a wake cycle (0 = not waiting on a push). */
        std::uint8_t waitPops = 0;
        /** Event stepper: blocked on an empty dynamic-network FIFO. */
        bool waitDyn = false;
        unsigned route = ~0u;
        /** Event stepper: stall tallies cover cycles
         *  [0, talliedThrough); the gap up to `now` is credited in
         *  bulk before the tile steps again. */
        Cycles talliedThrough = 0;
        std::uint8_t *sram = nullptr;
        mem::SetAssocCache *cache = nullptr;
        std::uint64_t instrs = 0;
        std::array<std::uint32_t, numRegs> regs{};
        std::array<Cycles, numRegs> ready{};
        RingQueue<std::pair<Cycles, Word>> inFifo;  //!< arrival,value
        RingQueue<std::pair<Cycles, Word>> dynFifo; //!< dynamic net
    };

    struct TileCold
    {
        std::vector<Instr> program;
        std::vector<std::uint8_t> sram;
        std::unique_ptr<mem::SetAssocCache> cache;
        Cycles haltCycle = 0;
    };

    struct Port
    {
        RingQueue<DmaSegment> inQueue;
        RingQueue<DmaSegment> outQueue;
        RingQueue<std::pair<Cycles, Word>> arrivals; //!< from tiles
        Cycles inFree = 0;
        Cycles outFree = 0;
        Addr inLastRow = ~Addr{0};
        Addr outLastRow = ~Addr{0};
        /** This port's share of portWork (queued segments plus
         *  in-flight arrivals), so a fused chain run can test "this
         *  chain's port is drained" in O(1). */
        std::uint64_t work = 0;
    };

    /** Bounding box of one chain's DMA footprint (globalBase-
     *  relative bytes), armed as a hazard trap when a co-batch run
     *  is abandoned after some chains already ran ahead of global
     *  time (D13). */
    struct ChainBox
    {
        Addr lo = ~Addr{0};
        Addr hi = 0;
        unsigned owner = 0;     //!< chain (tile/port) index
    };

    /** Step one tile by one cycle; records one tally and refreshes
     *  the tile's next-wake cycle (ignored by the reference loop). */
    void stepTile(unsigned t, Cycles now);
    void batchTile(unsigned t, Cycles cur);

    /** Account one cycle of @p kind for a tile at cycle @p now. */
    void tallyStall(TileStall kind, Cycles now);

    /** Advance DMA engines for one cycle. */
    void stepPorts(Cycles now);

    /** Advance one DMA engine for one cycle. */
    void stepPort(Port &port, Cycles now);

    /** Deliver a $csto write from tile @p t. */
    void send(unsigned t, Word value, Cycles now);

    /** XY-hop count between two tiles. */
    unsigned hops(unsigned a, unsigned b) const;

    /** Event stepper: credit a sleeping tile's tallies for cycles
     *  [talliedThrough, now) in one addition. */
    void creditSleep(unsigned t, Cycles now);

    /** Event stepper: earliest cycle >= @p from where any tile wakes
     *  or any DMA port can act; kNever when nothing is pending. */
    Cycles nextEventCycle(Cycles from) const;

    /** Event stepper: a word was pushed into tile @p t's input FIFO
     *  — wake the tile if it was waiting for the push. */
    void noteFifoPush(unsigned t);

    /** The original cycle-at-a-time loop (kept as the differential
     *  reference for the event stepper). */
    Cycles runReference();

    /** The event-driven loop: jump to the minimum pending wake. */
    Cycles runEvent();

    /**
     * Fused co-batch gate (D13): true when every live tile and every
     * queued DMA segment stays inside its own (tile t, port t) chain
     * and no DMA write range can overlap another chain's DMA
     * footprint. Side effect: fills chainBoxes. Global lw/sw cannot
     * be ruled out statically (addresses are register-computed);
     * runChain() parks on one dynamically instead.
     */
    bool coBatchEligible();

    /**
     * Run every chain to completion back to back; returns the wall
     * clock (max chain end) with all tallies settled. When a tile
     * parks on a global lw/sw, sets @p poisoned, arms the hazard
     * boxes of the chains that already ran ahead, and returns with
     * per-tile progress exact so the general event loop can resume
     * from cycle 0.
     */
    Cycles runCoBatch(bool &poisoned);

    /** Run the (tile t, port t) chain until both are done; returns
     *  the first cycle with nothing left (or the park cycle). */
    Cycles runChain(unsigned t);

    /** Trap a post-poison global access into a completed chain's DMA
     *  footprint — the co-batch ran that chain ahead of global time,
     *  so the access cannot be ordered correctly any more. */
    void checkChainHazard(unsigned t, Addr addr) const;

    bool allDone() const;

    RawConfig cfg;
    std::vector<TileHot> hot;
    std::vector<TileCold> cold;
    /** Per-tile next-wake cycles, contiguous for the min-scan. */
    std::vector<Cycles> wake;
    std::vector<Port> ports;
    /** Global DRAM: lazily-faulted zero pages, so constructing the
     *  64 MB model costs microseconds, not a 64 MB memset. */
    ZeroBuffer global;
    Addr allocNext = 64;
    /** DRAM row of @p a (shift when portRowBytes is a power of 2;
     *  the division sits on every streamed word otherwise). */
    Addr rowOf(Addr a) const
    {
        return portRowShift >= 0 ? a >> portRowShift
                                 : a / cfg.portRowBytes;
    }
    int portRowShift = -1;
    /** logLevel() is an out-of-line call; sampled once per run() so
     *  the per-instruction debug check is a flag test. */
    bool debugTrace = false;
    /** Event-stepper runs may execute tile-local instruction runs in
     *  one stepTile call; always false for the reference stepper. */
    bool batching = false;
    /** Latest halt-cycle + 1 executed inside a batch (or fused chain)
     *  this run; the event loop's cursor can exit behind it. */
    Cycles batchedHaltEnd = 0;
    /** A fused chain run is active: stepTile parks the tile on a
     *  global lw/sw instead of executing it (D13). */
    bool chainMode = false;
    /** The active chain run parked its tile on a global access. */
    bool chainParked = false;
    /** Per-chain DMA footprints, filled by coBatchEligible(). */
    std::vector<ChainBox> chainBoxes;
    /** Non-empty only after a poisoned co-batch: footprints of the
     *  chains that ran ahead; stepTile checks global accesses
     *  against them (owner-tile accesses are exempt — a chain's own
     *  progress is cycle-exact relative to itself). */
    std::vector<ChainBox> hazardBoxes;
    /** O(1) allDone for the event loop: non-halted tiles ... */
    unsigned liveTiles = 0;
    /** ... plus undrained port work items (queued DMA segments and
     *  in-flight port arrivals). */
    std::uint64_t portWork = 0;

    /** Epoch channels mirroring the stall tallies (busy is derived
     *  at finalize time as the tile-cycle residual). Both steppers
     *  credit the same per-cycle tallies — the event loop in bulk
     *  ranges, the reference loop cycle by cycle — and the sampler
     *  is order-independent, so the timelines are bit-identical. */
    hw::EpochSampler hwSamp{{"dep", "cache", "net", "dma", "idle"}};
    /** Sum over popped static-network words of (pop cycle - arrival
     *  cycle): the FIFO-residency integral behind the mesh FIFO
     *  occupancy metric. run() adds the residual of unconsumed
     *  words against the final wall clock. */
    std::uint64_t fifoWordCycles = 0;

    // Tile-cycle tallies: each tile contributes exactly one tally
    // per run() cycle, so their sum is tiles() x wall cycles.
    std::uint64_t tcBusy = 0;   //!< retired an instruction
    std::uint64_t tcDep = 0;    //!< operand-latency stall
    std::uint64_t tcCache = 0;  //!< cache-miss stall
    std::uint64_t tcNet = 0;    //!< network wait / send occupancy
    std::uint64_t tcDma = 0;    //!< DMA-fed FIFO wait
    std::uint64_t tcIdle = 0;   //!< halted (imbalance idle)

    stats::StatGroup group;
    stats::Scalar _instrs;
    stats::Scalar _netStalls;
    stats::Scalar _depStalls;
    stats::Scalar _cacheStalls;
    stats::Scalar _ldst;
    stats::Scalar _fpops;
    stats::Scalar _wordsDmaIn;
    stats::Scalar _wordsDmaOut;
    stats::Scalar _cycles;
    /** Per-tile instruction share of the busiest tile, sampled once
     *  per tile per run(); hi is 1.1 so a share of exactly 1.0 lands
     *  in the top bucket instead of the overflow counter. */
    stats::Distribution _tileShare{0.0, 1.1, 11};
    stats::BreakdownStats accountStats;
    host::HostPhases hostPhases;
};

} // namespace triarch::raw

#endif // TRIARCH_RAW_MACHINE_HH
