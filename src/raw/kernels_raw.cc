#include "kernels_raw.hh"

#include <cstring>

#include "kernels/fft.hh"
#include "raw/assembler.hh"
#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace triarch::raw
{

using kernels::cfloat;

// ----------------------------------------------------------------
// Corner turn.
// ----------------------------------------------------------------

namespace
{

/**
 * Tile program for the corner turn: per block, receive 64x64 words
 * from $csti storing each word once into local SRAM at the
 * transposed offset, then load each word once sending it to $csto —
 * the paper's "one load and one store operation for each
 * DRAM-to-DRAM transfer".
 */
std::vector<Instr>
cornerTurnProgram(unsigned num_blocks)
{
    constexpr unsigned edge = cornerTurnBlock;
    Assembler as;

    if (num_blocks == 0) {
        as.halt();
        return as.finish();
    }

    as.li(5, static_cast<std::int32_t>(num_blocks));
    Label blockLoop = as.label();
    as.bind(blockLoop);

    // Phase 1: store $csti words at transposed local offsets.
    // Receive order is row-major (r, c); local layout is c*64 + r.
    as.li(1, 0);                            // r * 4
    as.li(4, edge * 4);                     // bound
    Label outer = as.label();
    as.bind(outer);
    as.move(2, 1);                          // addr = r*4
    as.li(3, 4);                            // 4 groups of 16 columns
    Label inner = as.label();
    as.bind(inner);
    for (unsigned k = 0; k < 16; ++k)
        as.sw(regCsti, 2, static_cast<std::int32_t>(k * edge * 4));
    as.addi(2, 2, 16 * edge * 4);
    as.addi(3, 3, -1);
    as.bne(3, 0, inner);
    as.addi(1, 1, 4);
    as.bne(1, 4, outer);

    // Phase 2: stream the block back out in transposed order.
    as.li(2, 0);
    as.li(4, static_cast<std::int32_t>(edge * edge * 4));
    Label out = as.label();
    as.bind(out);
    for (unsigned k = 0; k < 16; ++k)
        as.lw(regCsto, 2, static_cast<std::int32_t>(k * 4));
    as.addi(2, 2, 64);
    as.bne(2, 4, out);

    as.addi(5, 5, -1);
    as.bne(5, 0, blockLoop);
    as.halt();
    return as.finish();
}

} // namespace

Cycles
cornerTurnRaw(RawMachine &machine, const kernels::WordMatrix &src,
              kernels::WordMatrix &dst)
{
    trace::TraceScope setup("raw.ct.setup", "raw");
    constexpr unsigned edge = cornerTurnBlock;
    triarch_assert(src.rows == src.cols && src.rows % edge == 0,
                   "Raw corner turn needs a square matrix, rows % 64 == 0");
    const unsigned n = src.rows;
    const unsigned grid = n / edge;
    const unsigned tiles = machine.config().tiles();

    const Addr srcBase = machine.allocGlobal(
        static_cast<std::uint64_t>(n) * n * 4, "ct src");
    const Addr dstBase = machine.allocGlobal(
        static_cast<std::uint64_t>(n) * n * 4, "ct dst");
    machine.pokeGlobal(srcBase, src.data);

    // Tile t owns block rows t, t + tiles, ...; its DMA port feeds
    // source block rows in and writes transposed blocks out.
    std::vector<unsigned> blocksPerTile(tiles, 0);
    for (unsigned br = 0; br < grid; ++br) {
        const unsigned t = br % tiles;
        ++blocksPerTile[t];
        for (unsigned bc = 0; bc < grid; ++bc) {
            for (unsigned r = 0; r < edge; ++r) {
                machine.dmaIn(t, t,
                              srcBase + ((static_cast<Addr>(br) * edge
                                          + r) * n + bc * edge) * 4,
                              edge);
            }
            for (unsigned r2 = 0; r2 < edge; ++r2) {
                machine.dmaOut(t,
                               dstBase + ((static_cast<Addr>(bc) * edge
                                           + r2) * n + br * edge) * 4,
                               edge);
            }
        }
    }

    for (unsigned t = 0; t < tiles; ++t) {
        machine.setRoute(t, portEndpoint(t));
        machine.setProgram(t,
                           cornerTurnProgram(blocksPerTile[t] * grid));
    }

    setup.end();
    trace::TraceScope runScope("raw.ct.run", "raw",
                               &machine.statGroup());
    const Cycles cycles = machine.run();
    runScope.end();

    trace::TraceScope readback("raw.ct.readback", "raw");
    dst = kernels::WordMatrix(n, n);
    machine.peekGlobalInto(dstBase, dst.data);
    return cycles;
}

// ----------------------------------------------------------------
// CSLC.
// ----------------------------------------------------------------

namespace
{

// Local SRAM layout for the CSLC tile program.
constexpr std::int32_t twFwdLocal = 0;          // 128 complex
constexpr std::int32_t twInvLocal = 1024;
constexpr std::int32_t bufA0Local = 2048;       // aux0 spectrum
constexpr std::int32_t bufA1Local = 3072;
constexpr std::int32_t bufMLocal = 4096;        // main work buffer
constexpr std::int32_t descLocal = 5120;
constexpr unsigned descWords = 10;

/**
 * Emit: copy 128 complex values from the global address in r1 into
 * local @p dst in bit-reversed order, folding the FFT input
 * reordering into the copy (straight-line; the store offsets are
 * baked in, so no separate reversal pass is needed).
 */
void
emitCopyInBitrev(Assembler &as, std::int32_t dst)
{
    for (unsigned group = 0; group < 32; ++group) {
        // 4 complex values (8 words) per group.
        for (unsigned k = 0; k < 8; ++k)
            as.lw(6 + k, 1, static_cast<std::int32_t>(k * 4));
        for (unsigned c = 0; c < 4; ++c) {
            const unsigned i = group * 4 + c;
            const std::int32_t at =
                dst + static_cast<std::int32_t>(reverseBits(i, 7)) * 8;
            as.sw(6 + 2 * c, 0, at);
            as.sw(6 + 2 * c + 1, 0, at + 4);
        }
        as.addi(1, 1, 32);
    }
}

/**
 * Emit: copy 256 words from local @src to the global address in r1,
 * scaling every float by the constant in r21 (the IFFT 1/N).
 */
void
emitCopyOutScaled(Assembler &as, std::int32_t src)
{
    as.li(2, src);
    as.li(3, 32);
    Label loop = as.label();
    as.bind(loop);
    for (unsigned k = 0; k < 8; ++k)
        as.lw(6 + k, 2, static_cast<std::int32_t>(k * 4));
    for (unsigned k = 0; k < 8; ++k)
        as.fmul(6 + k, 6 + k, 21);
    for (unsigned k = 0; k < 8; ++k)
        as.sw(6 + k, 1, static_cast<std::int32_t>(k * 4));
    as.addi(1, 1, 32);
    as.addi(2, 2, 32);
    as.addi(3, 3, -1);
    as.bne(3, 0, loop);
}

/**
 * Emit the weight-application loop: main buffer (local) minus
 * w0*aux0 minus w1*aux1 over 128 bins. Weight pointers (global) are
 * in r1 and r2 on entry.
 */
void
emitWeightApply(Assembler &as)
{
    as.li(3, bufA0Local);
    as.li(4, bufA1Local);
    as.li(5, bufMLocal);
    as.li(18, 128);
    Label loop = as.label();
    as.bind(loop);
    as.lw(6, 5, 0);             // m.re
    as.lw(7, 5, 4);             // m.im
    for (unsigned a = 0; a < 2; ++a) {
        const unsigned wp = 1 + a;      // weight pointer reg
        const unsigned ap = 3 + a;      // aux spectrum pointer reg
        as.lw(8, wp, 0);        // w.re
        as.lw(9, wp, 4);        // w.im
        as.lw(10, ap, 0);       // a.re
        as.lw(11, ap, 4);       // a.im
        as.fmul(12, 8, 10);
        as.fmul(13, 9, 11);
        as.fmul(14, 8, 11);
        as.fmul(15, 9, 10);
        as.fsub(16, 12, 13);    // t.re
        as.fadd(17, 14, 15);    // t.im
        as.fsub(6, 6, 16);
        as.fsub(7, 7, 17);
    }
    as.sw(6, 5, 0);
    as.sw(7, 5, 4);
    for (unsigned p : {1u, 2u, 3u, 4u, 5u})
        as.addi(p, p, 8);
    as.addi(18, 18, -1);
    as.bne(18, 0, loop);
}

} // namespace

void
emitFft128Local(Assembler &as, std::int32_t buf_local,
                std::int32_t tw_local, bool skip_bitrev, bool inverse)
{
    constexpr unsigned n = 128;

    // Bit-reversal: straight-line swaps of complex pairs (skipped
    // when the buffer was filled by emitCopyInBitrev).
    for (unsigned i = 0; !skip_bitrev && i < n; ++i) {
        const unsigned j = reverseBits(i, 7);
        if (j <= i)
            continue;
        const std::int32_t ia = buf_local
                                + static_cast<std::int32_t>(i) * 8;
        const std::int32_t ja = buf_local
                                + static_cast<std::int32_t>(j) * 8;
        as.lw(6, 0, ia);
        as.lw(7, 0, ia + 4);
        as.lw(8, 0, ja);
        as.lw(9, 0, ja + 4);
        as.sw(8, 0, ia);
        as.sw(9, 0, ia + 4);
        as.sw(6, 0, ja);
        as.sw(7, 0, ja + 4);
    }

    // Butterfly stages. The first two stages have trivial twiddles
    // (1 and -i) and are emitted multiply-free, as hand-optimized
    // radix-2 codes do; later stages use a single data pointer with
    // immediate offsets for the butterfly partner, and the loop
    // bookkeeping is slotted between dependent FP operations to
    // absorb latency.
    for (unsigned len = 2; len <= n; len <<= 1) {
        const unsigned half = len >> 1;
        const unsigned step = n / len;
        const auto off = static_cast<std::int32_t>(half * 8);

        as.li(1, buf_local);                // data pointer
        as.li(5, static_cast<std::int32_t>(n / len));   // group count
        Label groups = as.label();
        as.bind(groups);

        if (len == 2) {
            // w = 1: a = u + v, b = u - v.
            as.lw(6, 1, 0);
            as.lw(7, 1, 4);
            as.lw(8, 1, off);
            as.lw(9, 1, off + 4);
            as.fadd(18, 6, 8);
            as.fadd(19, 7, 9);
            as.fsub(20, 6, 8);
            as.fsub(21, 7, 9);
            as.sw(18, 1, 0);
            as.sw(19, 1, 4);
            as.sw(20, 1, off);
            as.sw(21, 1, off + 4);
            as.addi(1, 1, static_cast<std::int32_t>(len * 8));
        } else if (len == 4) {
            // k = 0: w = 1.
            as.lw(6, 1, 0);
            as.lw(7, 1, 4);
            as.lw(8, 1, off);
            as.lw(9, 1, off + 4);
            as.fadd(18, 6, 8);
            as.fadd(19, 7, 9);
            as.fsub(20, 6, 8);
            as.fsub(21, 7, 9);
            as.sw(18, 1, 0);
            as.sw(19, 1, 4);
            as.sw(20, 1, off);
            as.sw(21, 1, off + 4);
            // k = 1: w = -i (forward) so t = (v.im, -v.re), or
            // w = +i (inverse) so t = (-v.im, v.re).
            as.lw(6, 1, 8);
            as.lw(7, 1, 12);
            as.lw(8, 1, off + 8);
            as.lw(9, 1, off + 12);
            if (!inverse) {
                as.fsub(17, 0, 8);      // t.im = -v.re
                as.fadd(18, 6, 9);      // a.re = u.re + v.im
                as.fadd(19, 7, 17);
                as.fsub(20, 6, 9);
                as.fsub(21, 7, 17);
            } else {
                as.fsub(16, 0, 9);      // t.re = -v.im
                as.fadd(18, 6, 16);
                as.fadd(19, 7, 8);      // a.im = u.im + v.re
                as.fsub(20, 6, 16);
                as.fsub(21, 7, 8);
            }
            as.sw(18, 1, 8);
            as.sw(19, 1, 12);
            as.sw(20, 1, off + 8);
            as.sw(21, 1, off + 12);
            as.addi(1, 1, static_cast<std::int32_t>(len * 8));
        } else {
            as.li(3, tw_local);
            as.li(4, static_cast<std::int32_t>(half));
            Label bfly = as.label();
            as.bind(bfly);
            as.lw(6, 1, 0);     // u.re
            as.lw(7, 1, 4);     // u.im
            as.lw(8, 1, off);   // v.re
            as.lw(9, 1, off + 4);
            as.lw(10, 3, 0);    // w.re
            as.lw(11, 3, 4);    // w.im
            as.fmul(12, 10, 8);
            as.fmul(13, 11, 9);
            as.fmul(14, 10, 9);
            as.fmul(15, 11, 8);
            as.fsub(16, 12, 13);    // t.re
            as.fadd(17, 14, 15);    // t.im
            as.fadd(18, 6, 16);     // a.re
            as.fadd(19, 7, 17);     // a.im
            as.addi(3, 3, static_cast<std::int32_t>(step * 8));
            as.addi(4, 4, -1);
            as.fsub(20, 6, 16);     // b.re
            as.fsub(21, 7, 17);     // b.im
            as.sw(18, 1, 0);
            as.sw(19, 1, 4);
            as.sw(20, 1, off);
            as.sw(21, 1, off + 4);
            as.addi(1, 1, 8);
            as.bne(4, 0, bfly);
            as.addi(1, 1, off);     // skip the partner half
        }

        as.addi(5, 5, -1);
        as.bne(5, 0, groups);
    }
}

RawCslcResult
cslcRaw(RawMachine &machine, const kernels::CslcConfig &cfg,
        const kernels::CslcInput &in,
        const kernels::CslcWeights &weights, kernels::CslcOutput &out,
        unsigned intervals)
{
    trace::TraceScope setup("raw.cslc.setup", "raw");
    triarch_assert(intervals >= 1, "need at least one interval");
    triarch_assert(cfg.subBandLen == 128,
                   "Raw CSLC mapping is built for 128-point sub-bands");
    triarch_assert(cfg.mainChannels == 2 && cfg.auxChannels == 2,
                   "Raw CSLC mapping assumes 2 main + 2 aux channels");
    const unsigned tiles = machine.config().tiles();

    // Global memory: channel time series, weights, output.
    auto pokeComplex = [&machine](Addr base,
                                  const std::vector<cfloat> &x) {
        std::vector<Word> words(2 * x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
            words[2 * i] = floatToWord(x[i].real());
            words[2 * i + 1] = floatToWord(x[i].imag());
        }
        machine.pokeGlobal(base, words);
    };

    std::vector<Addr> chBase(4);
    for (unsigned a = 0; a < 2; ++a) {
        chBase[a] = machine.allocGlobal(cfg.samples * 8ULL, "aux");
        pokeComplex(chBase[a], in.aux[a]);
    }
    for (unsigned m = 0; m < 2; ++m) {
        chBase[2 + m] = machine.allocGlobal(cfg.samples * 8ULL, "main");
        pokeComplex(chBase[2 + m], in.main[m]);
    }

    std::vector<std::vector<Addr>> wBase(2, std::vector<Addr>(2));
    for (unsigned m = 0; m < 2; ++m) {
        for (unsigned a = 0; a < 2; ++a) {
            wBase[m][a] = machine.allocGlobal(
                static_cast<std::uint64_t>(cfg.subBands) * 128 * 8,
                "weights");
            pokeComplex(wBase[m][a], weights.w[m][a]);
        }
    }

    std::vector<Addr> outBase(2);
    for (unsigned m = 0; m < 2; ++m) {
        outBase[m] = machine.allocGlobal(
            static_cast<std::uint64_t>(cfg.subBands) * 128 * 8, "out");
    }

    // Twiddle tables (forward and conjugate) into every tile's SRAM.
    const auto tw = kernels::twiddleTable(128);
    std::vector<Word> twF(256), twI(256);
    for (unsigned k = 0; k < 128; ++k) {
        twF[2 * k] = floatToWord(tw[k].real());
        twF[2 * k + 1] = floatToWord(tw[k].imag());
        twI[2 * k] = floatToWord(tw[k].real());
        twI[2 * k + 1] = floatToWord(-tw[k].imag());
    }

    // Per-tile sub-band descriptors and programs. With more than
    // one processing interval, sets from consecutive intervals are
    // handed out round-robin, as a continuously arriving input
    // queue would be (Section 4.3's load-balance argument).
    const unsigned totalSets = intervals * cfg.subBands;
    unsigned maxSets = 0;
    for (unsigned t = 0; t < tiles; ++t) {
        std::vector<Word> desc;
        unsigned sets = 0;
        for (unsigned sIdx = t; sIdx < totalSets;
             sIdx += tiles, ++sets) {
            const unsigned b = sIdx % cfg.subBands;
            const Addr blockOff =
                static_cast<Addr>(b) * cfg.subBandStride * 8;
            desc.push_back(static_cast<Word>(chBase[0] + blockOff));
            desc.push_back(static_cast<Word>(chBase[1] + blockOff));
            desc.push_back(static_cast<Word>(chBase[2] + blockOff));
            desc.push_back(static_cast<Word>(chBase[3] + blockOff));
            const Addr bandOff = static_cast<Addr>(b) * 128 * 8;
            desc.push_back(static_cast<Word>(wBase[0][0] + bandOff));
            desc.push_back(static_cast<Word>(wBase[0][1] + bandOff));
            desc.push_back(static_cast<Word>(wBase[1][0] + bandOff));
            desc.push_back(static_cast<Word>(wBase[1][1] + bandOff));
            desc.push_back(static_cast<Word>(outBase[0] + bandOff));
            desc.push_back(static_cast<Word>(outBase[1] + bandOff));
        }
        maxSets = std::max(maxSets, sets);

        machine.pokeLocal(t, twFwdLocal, twF);
        machine.pokeLocal(t, twInvLocal, twI);
        if (!desc.empty())
            machine.pokeLocal(t, descLocal, desc);

        Assembler as;
        if (sets == 0) {
            as.halt();
            machine.setProgram(t, as.finish());
            continue;
        }

        as.li(22, descLocal);
        as.li(23, descLocal
                  + static_cast<std::int32_t>(sets * descWords * 4));
        Label subLoop = as.label();
        as.bind(subLoop);

        // Aux channels: copy in (bit-reversing) and transform.
        as.lw(1, 22, 0);
        emitCopyInBitrev(as, bufA0Local);
        emitFft128Local(as, bufA0Local, twFwdLocal, true);
        as.lw(1, 22, 4);
        emitCopyInBitrev(as, bufA1Local);
        emitFft128Local(as, bufA1Local, twFwdLocal, true);

        for (unsigned m = 0; m < 2; ++m) {
            as.lw(1, 22, static_cast<std::int32_t>(8 + m * 4));
            emitCopyInBitrev(as, bufMLocal);
            emitFft128Local(as, bufMLocal, twFwdLocal, true);

            as.lw(1, 22, static_cast<std::int32_t>(16 + m * 8));
            as.lw(2, 22, static_cast<std::int32_t>(20 + m * 8));
            emitWeightApply(as);

            emitFft128Local(as, bufMLocal, twInvLocal, false, true);
            as.li(21, static_cast<std::int32_t>(
                          floatToWord(1.0f / 128.0f)));
            as.lw(1, 22, static_cast<std::int32_t>(32 + m * 4));
            emitCopyOutScaled(as, bufMLocal);
        }

        as.addi(22, 22, descWords * 4);
        as.bne(22, 23, subLoop);
        as.halt();
        machine.setProgram(t, as.finish());
    }

    setup.end();
    trace::TraceScope runScope("raw.cslc.run", "raw",
                               &machine.statGroup());
    const Cycles cycles = machine.run();
    runScope.end();

    trace::TraceScope readback("raw.cslc.readback", "raw");
    RawCslcResult result;
    result.cycles = cycles;
    // Section 4.3: report perfect-load-balance extrapolation; in a
    // real system sub-band sets arrive continuously.
    const double meanSets = static_cast<double>(totalSets) / tiles;
    result.balancedCycles = static_cast<Cycles>(
        static_cast<double>(cycles) * meanSets / maxSets);
    std::uint64_t idle = 0;
    for (unsigned t = 0; t < tiles; ++t)
        idle += machine.tileIdleAfterHalt(t);
    result.idleFraction = static_cast<double>(idle)
                          / (static_cast<double>(tiles) * cycles);

    out.main.assign(2, std::vector<cfloat>(
        static_cast<std::size_t>(cfg.subBands) * 128));
    for (unsigned m = 0; m < 2; ++m) {
        auto words = machine.peekGlobal(
            outBase[m], static_cast<std::size_t>(cfg.subBands) * 256);
        for (std::size_t i = 0; i < out.main[m].size(); ++i) {
            out.main[m][i] = cfloat(wordToFloat(words[2 * i]),
                                    wordToFloat(words[2 * i + 1]));
        }
    }
    return result;
}

namespace
{

/**
 * Emit: receive 128 complex values from $csti and store them into
 * local @p dst in bit-reversed order — the stream-mode replacement
 * for the cached copy-in (no loads, no cache misses; the network
 * supplies the data in natural order and the store offsets bake in
 * the reordering).
 */
void
emitRecvBitrev(Assembler &as, std::int32_t dst)
{
    for (unsigned i = 0; i < 128; ++i) {
        const std::int32_t at =
            dst + static_cast<std::int32_t>(reverseBits(i, 7)) * 8;
        as.sw(regCsti, 0, at);
        as.sw(regCsti, 0, at + 4);
    }
}

/**
 * Emit the stream-mode weight application: weights arrive through
 * $csti interleaved per bin (w0.re, w0.im, w1.re, w1.im) and are
 * consumed as instruction operands; only the main buffer and the
 * aux spectra (all local) are loaded.
 */
void
emitWeightApplyStreamed(Assembler &as)
{
    as.li(3, bufA0Local);
    as.li(4, bufA1Local);
    as.li(5, bufMLocal);
    as.li(18, 128);
    Label loop = as.label();
    as.bind(loop);
    as.lw(6, 5, 0);             // m.re
    as.lw(7, 5, 4);             // m.im
    for (unsigned a = 0; a < 2; ++a) {
        const unsigned ap = 3 + a;
        as.move(8, regCsti);    // w.re
        as.move(9, regCsti);    // w.im
        as.lw(10, ap, 0);       // a.re
        as.lw(11, ap, 4);       // a.im
        as.fmul(12, 8, 10);
        as.fmul(13, 9, 11);
        as.fmul(14, 8, 11);
        as.fmul(15, 9, 10);
        as.fsub(16, 12, 13);
        as.fadd(17, 14, 15);
        as.fsub(6, 6, 16);
        as.fsub(7, 7, 17);
    }
    as.sw(6, 5, 0);
    as.sw(7, 5, 4);
    for (unsigned p : {3u, 4u, 5u})
        as.addi(p, p, 8);
    as.addi(18, 18, -1);
    as.bne(18, 0, loop);
}

/**
 * Emit: send 256 words from local @p src to $csto, scaling each
 * float by the constant in r21 (fused IFFT normalization + output
 * streaming; the DMA-out port writes them to memory).
 */
void
emitDrainScaled(Assembler &as, std::int32_t src)
{
    as.li(2, src);
    as.li(3, 32);
    Label loop = as.label();
    as.bind(loop);
    for (unsigned k = 0; k < 8; ++k) {
        as.lw(6 + (k % 4), 2, static_cast<std::int32_t>(k * 4));
        as.fmul(regCsto, 6 + (k % 4), 21);
    }
    as.addi(2, 2, 32);
    as.addi(3, 3, -1);
    as.bne(3, 0, loop);
}

} // namespace

RawCslcResult
cslcRawStreamed(RawMachine &machine, const kernels::CslcConfig &cfg,
                const kernels::CslcInput &in,
                const kernels::CslcWeights &weights,
                kernels::CslcOutput &out)
{
    trace::TraceScope setup("raw.cslc_stream.setup", "raw");
    triarch_assert(cfg.subBandLen == 128,
                   "Raw CSLC mapping is built for 128-point sub-bands");
    triarch_assert(cfg.mainChannels == 2 && cfg.auxChannels == 2,
                   "Raw CSLC mapping assumes 2 main + 2 aux channels");
    const unsigned tiles = machine.config().tiles();

    auto pokeComplex = [&machine](Addr base,
                                  const std::vector<cfloat> &x) {
        std::vector<Word> words(2 * x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
            words[2 * i] = floatToWord(x[i].real());
            words[2 * i + 1] = floatToWord(x[i].imag());
        }
        machine.pokeGlobal(base, words);
    };

    std::vector<Addr> chBase(4);
    for (unsigned a = 0; a < 2; ++a) {
        chBase[a] = machine.allocGlobal(cfg.samples * 8ULL, "aux");
        pokeComplex(chBase[a], in.aux[a]);
    }
    for (unsigned m = 0; m < 2; ++m) {
        chBase[2 + m] = machine.allocGlobal(cfg.samples * 8ULL, "main");
        pokeComplex(chBase[2 + m], in.main[m]);
    }

    // Stream-friendly weight layout: per (main, band), bins carry
    // (w0.re, w0.im, w1.re, w1.im) so the DMA order matches the
    // kernel's $csti consumption order.
    std::vector<Addr> wsBase(2);
    for (unsigned m = 0; m < 2; ++m) {
        wsBase[m] = machine.allocGlobal(
            static_cast<std::uint64_t>(cfg.subBands) * 128 * 16,
            "weights stream");
        std::vector<Word> words(
            static_cast<std::size_t>(cfg.subBands) * 512);
        for (unsigned b = 0; b < cfg.subBands; ++b) {
            for (unsigned k = 0; k < 128; ++k) {
                const std::size_t at =
                    static_cast<std::size_t>(b) * 512 + k * 4;
                const cfloat w0 = weights.w[m][0][b * 128ULL + k];
                const cfloat w1 = weights.w[m][1][b * 128ULL + k];
                words[at] = floatToWord(w0.real());
                words[at + 1] = floatToWord(w0.imag());
                words[at + 2] = floatToWord(w1.real());
                words[at + 3] = floatToWord(w1.imag());
            }
        }
        machine.pokeGlobal(wsBase[m], words);
    }

    std::vector<Addr> outBase(2);
    for (unsigned m = 0; m < 2; ++m) {
        outBase[m] = machine.allocGlobal(
            static_cast<std::uint64_t>(cfg.subBands) * 128 * 8, "out");
    }

    const auto tw = kernels::twiddleTable(128);
    std::vector<Word> twF(256), twI(256);
    for (unsigned k = 0; k < 128; ++k) {
        twF[2 * k] = floatToWord(tw[k].real());
        twF[2 * k + 1] = floatToWord(tw[k].imag());
        twI[2 * k] = floatToWord(tw[k].real());
        twI[2 * k + 1] = floatToWord(-tw[k].imag());
    }

    unsigned maxSets = 0;
    for (unsigned t = 0; t < tiles; ++t) {
        machine.pokeLocal(t, twFwdLocal, twF);
        machine.pokeLocal(t, twInvLocal, twI);
        machine.setRoute(t, portEndpoint(t));

        unsigned sets = 0;
        for (unsigned b = t; b < cfg.subBands; b += tiles, ++sets) {
            const Addr blockOff =
                static_cast<Addr>(b) * cfg.subBandStride * 8;
            const Addr bandOff = static_cast<Addr>(b) * 128 * 8;
            // DMA order must match program consumption order.
            machine.dmaIn(t, t, chBase[0] + blockOff, 256);
            machine.dmaIn(t, t, chBase[1] + blockOff, 256);
            for (unsigned m = 0; m < 2; ++m) {
                machine.dmaIn(t, t, chBase[2 + m] + blockOff, 256);
                machine.dmaIn(t, t,
                              wsBase[m] + static_cast<Addr>(b) * 2048,
                              512);
                machine.dmaOut(t, outBase[m] + bandOff, 256);
            }
        }
        maxSets = std::max(maxSets, sets);

        Assembler as;
        if (sets == 0) {
            as.halt();
            machine.setProgram(t, as.finish());
            continue;
        }

        as.li(23, static_cast<std::int32_t>(sets));
        Label subLoop = as.label();
        as.bind(subLoop);

        emitRecvBitrev(as, bufA0Local);
        emitFft128Local(as, bufA0Local, twFwdLocal, true);
        emitRecvBitrev(as, bufA1Local);
        emitFft128Local(as, bufA1Local, twFwdLocal, true);

        for (unsigned m = 0; m < 2; ++m) {
            emitRecvBitrev(as, bufMLocal);
            emitFft128Local(as, bufMLocal, twFwdLocal, true);
            emitWeightApplyStreamed(as);
            emitFft128Local(as, bufMLocal, twInvLocal, false, true);
            as.li(21, static_cast<std::int32_t>(
                          floatToWord(1.0f / 128.0f)));
            emitDrainScaled(as, bufMLocal);
        }

        as.addi(23, 23, -1);
        as.bne(23, 0, subLoop);
        as.halt();
        machine.setProgram(t, as.finish());
    }

    setup.end();
    trace::TraceScope runScope("raw.cslc_stream.run", "raw",
                               &machine.statGroup());
    const Cycles cycles = machine.run();
    runScope.end();

    trace::TraceScope readback("raw.cslc_stream.readback", "raw");
    RawCslcResult result;
    result.cycles = cycles;
    const double meanSets = static_cast<double>(cfg.subBands) / tiles;
    result.balancedCycles = static_cast<Cycles>(
        static_cast<double>(cycles) * meanSets / maxSets);
    std::uint64_t idle = 0;
    for (unsigned t = 0; t < tiles; ++t)
        idle += machine.tileIdleAfterHalt(t);
    result.idleFraction = static_cast<double>(idle)
                          / (static_cast<double>(tiles) * cycles);

    out.main.assign(2, std::vector<cfloat>(
        static_cast<std::size_t>(cfg.subBands) * 128));
    for (unsigned m = 0; m < 2; ++m) {
        auto words = machine.peekGlobal(
            outBase[m], static_cast<std::size_t>(cfg.subBands) * 256);
        for (std::size_t i = 0; i < out.main[m].size(); ++i) {
            out.main[m][i] = cfloat(wordToFloat(words[2 * i]),
                                    wordToFloat(words[2 * i + 1]));
        }
    }
    return result;
}

// ----------------------------------------------------------------
// Beam steering.
// ----------------------------------------------------------------

Cycles
beamSteeringRaw(RawMachine &machine, const kernels::BeamConfig &cfg,
                const kernels::BeamTables &tables,
                std::vector<std::int32_t> &out)
{
    trace::TraceScope setup("raw.bs.setup", "raw");
    const unsigned tiles = machine.config().tiles();

    // Calibration tables laid out interleaved (coarse, fine) pairs
    // so one DMA stream per tile supplies both operands in $csti
    // order.
    const Addr tabBase =
        machine.allocGlobal(cfg.elements * 8ULL, "bs tables");
    {
        std::vector<Word> words(cfg.elements * 2);
        for (unsigned e = 0; e < cfg.elements; ++e) {
            words[2 * e] = static_cast<Word>(tables.calCoarse[e]);
            words[2 * e + 1] = static_cast<Word>(tables.calFine[e]);
        }
        machine.pokeGlobal(tabBase, words);
    }
    const Addr outBase =
        machine.allocGlobal(cfg.outputs() * 4ULL, "bs out");

    const unsigned configs = cfg.dwells * cfg.directions;
    for (unsigned t = 0; t < tiles; ++t) {
        const unsigned e0 = static_cast<unsigned>(
            static_cast<std::uint64_t>(t) * cfg.elements / tiles);
        const unsigned e1 = static_cast<unsigned>(
            static_cast<std::uint64_t>(t + 1) * cfg.elements / tiles);
        const unsigned count = e1 - e0;

        machine.setRoute(t, portEndpoint(t));

        // Per-(dwell, direction) constants in local SRAM, in the
        // same order the DMA segments stream.
        std::vector<Word> cfgTable;
        for (unsigned dw = 0; dw < cfg.dwells; ++dw) {
            for (unsigned dir = 0; dir < cfg.directions; ++dir) {
                cfgTable.push_back(static_cast<Word>(
                    tables.steerBase[dir]
                    + static_cast<std::int32_t>(e0)
                      * tables.steerDelta[dir]));
                cfgTable.push_back(
                    static_cast<Word>(tables.steerDelta[dir]));
                cfgTable.push_back(
                    static_cast<Word>(tables.dwellOffset[dw]));
                cfgTable.push_back(static_cast<Word>(tables.bias));

                // Tiles left without elements (fewer elements than
                // tiles) stream nothing and just halt.
                if (count > 0) {
                    machine.dmaIn(t, t, tabBase + e0 * 8ULL,
                                  count * 2);
                    machine.dmaOut(t,
                                   outBase
                                   + ((static_cast<Addr>(dw)
                                       * cfg.directions + dir)
                                      * cfg.elements + e0) * 4,
                                   count);
                }
            }
        }
        machine.pokeLocal(t, 0, cfgTable);

        Assembler as;
        if (count == 0) {
            as.halt();
            machine.setProgram(t, as.finish());
            continue;
        }

        as.li(6, 0);                                // config pointer
        as.li(7, static_cast<std::int32_t>(configs * 16));
        Label cfgLoop = as.label();
        as.bind(cfgLoop);
        as.lw(1, 6, 0);     // acc (pre-offset for this tile's slice)
        as.lw(2, 6, 4);     // delta
        as.lw(3, 6, 8);     // dwell offset
        as.lw(4, 6, 12);    // bias

        // The six-operation output body: 5 adds + 1 shift, with
        // both table operands read straight from the network and
        // the result sent straight back out (no loads or stores).
        auto body = [&] {
            as.add(1, 1, 2);                // add 1: acc += delta
            as.add(5, regCsti, regCsti);    // add 2: coarse + fine
            as.add(5, 5, 1);                // add 3: += acc
            as.add(5, 5, 3);                // add 4: += dwell offset
            as.add(5, 5, 4);                // add 5: += bias
            as.sra(regCsto, 5, cfg.shift);  // shift and send
        };

        const unsigned unroll = 4;
        const unsigned groups = count / unroll;
        if (groups > 0) {
            as.li(8, static_cast<std::int32_t>(groups));
            Label elemLoop = as.label();
            as.bind(elemLoop);
            for (unsigned k = 0; k < unroll; ++k)
                body();
            as.addi(8, 8, -1);
            as.bne(8, 0, elemLoop);
        }
        for (unsigned k = 0; k < count % unroll; ++k)
            body();

        as.addi(6, 6, 16);
        as.bne(6, 7, cfgLoop);
        as.halt();
        machine.setProgram(t, as.finish());
    }

    setup.end();
    trace::TraceScope runScope("raw.bs.run", "raw",
                               &machine.statGroup());
    const Cycles cycles = machine.run();
    runScope.end();

    trace::TraceScope readback("raw.bs.readback", "raw");
    auto words = machine.peekGlobal(outBase, cfg.outputs());
    out.resize(words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
        out[i] = static_cast<std::int32_t>(words[i]);
    return cycles;
}

} // namespace triarch::raw
