#include "assembler.hh"

#include <sstream>

#include "sim/logging.hh"

namespace triarch::raw
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Add: return "add";
      case Op::Addi: return "addi";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Sll: return "sll";
      case Op::Sra: return "sra";
      case Op::Srl: return "srl";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Li: return "li";
      case Op::FAdd: return "fadd";
      case Op::FSub: return "fsub";
      case Op::FMul: return "fmul";
      case Op::Lw: return "lw";
      case Op::Sw: return "sw";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Jump: return "jump";
      case Op::Halt: return "halt";
      case Op::Dsend: return "dsend";
      case Op::Drecv: return "drecv";
    }
    return "?";
}

namespace
{

std::string
regName(unsigned r)
{
    if (r == regCsti)
        return "$csti";
    if (r == regCsto)
        return "$csto";
    return "r" + std::to_string(r);
}

} // namespace

std::string
disassemble(const Instr &instr)
{
    std::ostringstream os;
    os << opName(instr.op);
    switch (instr.op) {
      case Op::Nop:
      case Op::Halt:
        break;
      case Op::Li:
        os << " " << regName(instr.rd) << ", " << instr.imm;
        break;
      case Op::Addi:
      case Op::Sll:
      case Op::Sra:
      case Op::Srl:
        os << " " << regName(instr.rd) << ", " << regName(instr.rs)
           << ", " << instr.imm;
        break;
      case Op::Lw:
        os << " " << regName(instr.rd) << ", " << instr.imm << "("
           << regName(instr.rs) << ")";
        break;
      case Op::Sw:
        os << " " << regName(instr.rt) << ", " << instr.imm << "("
           << regName(instr.rs) << ")";
        break;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
        os << " " << regName(instr.rs) << ", " << regName(instr.rt)
           << ", @" << instr.imm;
        break;
      case Op::Jump:
        os << " @" << instr.imm;
        break;
      case Op::Dsend:
        os << " " << regName(instr.rs) << " -> " << regName(instr.rt);
        break;
      case Op::Drecv:
        os << " " << regName(instr.rd);
        break;
      default:
        os << " " << regName(instr.rd) << ", " << regName(instr.rs)
           << ", " << regName(instr.rt);
        break;
    }
    return os.str();
}

Label
Assembler::label()
{
    labelTargets.push_back(-1);
    return {static_cast<unsigned>(labelTargets.size() - 1)};
}

void
Assembler::bind(Label l)
{
    triarch_assert(l.id < labelTargets.size(), "unknown label");
    triarch_assert(labelTargets[l.id] < 0, "label bound twice");
    labelTargets[l.id] = static_cast<std::int64_t>(code.size());
}

void
Assembler::emit(Op op, unsigned rd, unsigned rs, unsigned rt,
                std::int32_t imm)
{
    triarch_assert(rd < numRegs && rs < numRegs && rt < numRegs,
                   "register index out of range");
    code.push_back({op, static_cast<std::uint8_t>(rd),
                    static_cast<std::uint8_t>(rs),
                    static_cast<std::uint8_t>(rt), imm});
}

void
Assembler::add(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::Add, rd, rs, rt, 0);
}

void
Assembler::addi(unsigned rd, unsigned rs, std::int32_t imm)
{
    emit(Op::Addi, rd, rs, 0, imm);
}

void
Assembler::sub(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::Sub, rd, rs, rt, 0);
}

void
Assembler::mul(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::Mul, rd, rs, rt, 0);
}

void
Assembler::sll(unsigned rd, unsigned rs, unsigned sh)
{
    emit(Op::Sll, rd, rs, 0, static_cast<std::int32_t>(sh));
}

void
Assembler::sra(unsigned rd, unsigned rs, unsigned sh)
{
    emit(Op::Sra, rd, rs, 0, static_cast<std::int32_t>(sh));
}

void
Assembler::srl(unsigned rd, unsigned rs, unsigned sh)
{
    emit(Op::Srl, rd, rs, 0, static_cast<std::int32_t>(sh));
}

void
Assembler::and_(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::And, rd, rs, rt, 0);
}

void
Assembler::or_(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::Or, rd, rs, rt, 0);
}

void
Assembler::xor_(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::Xor, rd, rs, rt, 0);
}

void
Assembler::li(unsigned rd, std::int32_t imm)
{
    emit(Op::Li, rd, 0, 0, imm);
}

void
Assembler::move(unsigned rd, unsigned rs)
{
    emit(Op::Add, rd, rs, 0, 0);
}

void
Assembler::fadd(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::FAdd, rd, rs, rt, 0);
}

void
Assembler::fsub(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::FSub, rd, rs, rt, 0);
}

void
Assembler::fmul(unsigned rd, unsigned rs, unsigned rt)
{
    emit(Op::FMul, rd, rs, rt, 0);
}

void
Assembler::dsend(unsigned rs, unsigned rt)
{
    emit(Op::Dsend, 0, rs, rt, 0);
}

void
Assembler::drecv(unsigned rd)
{
    emit(Op::Drecv, rd, 0, 0, 0);
}

void
Assembler::lw(unsigned rd, unsigned rs, std::int32_t imm)
{
    emit(Op::Lw, rd, rs, 0, imm);
}

void
Assembler::sw(unsigned rt, unsigned rs, std::int32_t imm)
{
    emit(Op::Sw, 0, rs, rt, imm);
}

void
Assembler::emitBranch(Op op, unsigned rs, unsigned rt, Label target)
{
    triarch_assert(target.id < labelTargets.size(), "unknown label");
    fixups.emplace_back(static_cast<unsigned>(code.size()), target.id);
    emit(op, 0, rs, rt, 0);
}

void
Assembler::beq(unsigned rs, unsigned rt, Label target)
{
    emitBranch(Op::Beq, rs, rt, target);
}

void
Assembler::bne(unsigned rs, unsigned rt, Label target)
{
    emitBranch(Op::Bne, rs, rt, target);
}

void
Assembler::blt(unsigned rs, unsigned rt, Label target)
{
    emitBranch(Op::Blt, rs, rt, target);
}

void
Assembler::bge(unsigned rs, unsigned rt, Label target)
{
    emitBranch(Op::Bge, rs, rt, target);
}

void
Assembler::jump(Label target)
{
    emitBranch(Op::Jump, 0, 0, target);
}

void
Assembler::halt()
{
    emit(Op::Halt, 0, 0, 0, 0);
}

std::vector<Instr>
Assembler::finish()
{
    for (auto [instr, label] : fixups) {
        triarch_assert(labelTargets[label] >= 0, "unbound label ",
                       label);
        code[instr].imm =
            static_cast<std::int32_t>(labelTargets[label]);
    }
    std::vector<Instr> out = std::move(code);
    code.clear();
    labelTargets.clear();
    fixups.clear();
    return out;
}

} // namespace triarch::raw
