/**
 * @file
 * The mini-ISA executed by Raw tiles: a MIPS-like single-issue
 * register machine extended with the static-network registers the
 * real Raw exposes ($csti / $csto). Reading regCsti pops the tile's
 * network input FIFO (blocking when empty); writing regCsto sends a
 * word along the tile's configured static route. Raw's peak modes —
 * "operating on data directly from the networks" — are therefore
 * real code paths: an instruction can use the network as both source
 * and destination.
 */

#ifndef TRIARCH_RAW_ISA_HH
#define TRIARCH_RAW_ISA_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace triarch::raw
{

/** Opcodes. Arithmetic is register-register; immediates are 32-bit. */
enum class Op : std::uint8_t
{
    Nop,
    Add,        //!< rd = rs + rt
    Addi,       //!< rd = rs + imm
    Sub,        //!< rd = rs - rt
    Mul,        //!< rd = rs * rt (integer)
    Sll,        //!< rd = rs << imm
    Sra,        //!< rd = rs >> imm (arithmetic)
    Srl,        //!< rd = rs >> imm (logical)
    And,        //!< rd = rs & rt
    Or,         //!< rd = rs | rt
    Xor,        //!< rd = rs ^ rt
    Li,         //!< rd = imm
    FAdd,       //!< rd = rs + rt (float bits)
    FSub,
    FMul,
    Lw,         //!< rd = mem[rs + imm]
    Sw,         //!< mem[rs + imm] = rt
    Beq,        //!< if (rs == rt) pc = imm
    Bne,
    Blt,        //!< signed rs < rt
    Bge,
    Jump,       //!< pc = imm
    Halt,
    /**
     * Dynamic-network send: a packet carrying the word in rt is
     * routed to the tile whose id is in rs (Section 2.3: dynamic
     * messages are packets with a header, so they cost more than
     * static-network words).
     */
    Dsend,
    /** Dynamic-network receive into rd (blocking). */
    Drecv,
};

/** One decoded instruction. */
struct Instr
{
    Op op = Op::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::int32_t imm = 0;
};

/**
 * Static per-opcode metadata. The interpreter used to re-derive an
 * instruction's source-register list with a switch on every step;
 * the table makes decode a single indexed load on the hot path and
 * keeps the operand roles in one place next to the opcode list.
 */
struct OpInfo
{
    /** The instruction reads rs as an operand. */
    std::uint8_t readsRs : 1;
    /** The instruction reads rt as an operand. */
    std::uint8_t readsRt : 1;
    /**
     * Writing rd == regCsto sends on the static route (and therefore
     * blocks while the destination FIFO is full). Mirrors the
     * interpreter's historical op set exactly: everything except
     * Sw, the branches, Jump, Halt, and Nop.
     */
    std::uint8_t sendEligible : 1;
};

/** OpInfo for every opcode, indexed by static_cast<unsigned>(Op). */
constexpr OpInfo opInfoTable[] = {
    //                        rs rt send
    /* Nop   */ OpInfo{0, 0, 0},
    /* Add   */ OpInfo{1, 1, 1},
    /* Addi  */ OpInfo{1, 0, 1},
    /* Sub   */ OpInfo{1, 1, 1},
    /* Mul   */ OpInfo{1, 1, 1},
    /* Sll   */ OpInfo{1, 0, 1},
    /* Sra   */ OpInfo{1, 0, 1},
    /* Srl   */ OpInfo{1, 0, 1},
    /* And   */ OpInfo{1, 1, 1},
    /* Or    */ OpInfo{1, 1, 1},
    /* Xor   */ OpInfo{1, 1, 1},
    /* Li    */ OpInfo{0, 0, 1},
    /* FAdd  */ OpInfo{1, 1, 1},
    /* FSub  */ OpInfo{1, 1, 1},
    /* FMul  */ OpInfo{1, 1, 1},
    /* Lw    */ OpInfo{1, 0, 1},
    /* Sw    */ OpInfo{1, 1, 0},
    /* Beq   */ OpInfo{1, 1, 0},
    /* Bne   */ OpInfo{1, 1, 0},
    /* Blt   */ OpInfo{1, 1, 0},
    /* Bge   */ OpInfo{1, 1, 0},
    /* Jump  */ OpInfo{0, 0, 0},
    /* Halt  */ OpInfo{0, 0, 0},
    /* Dsend */ OpInfo{1, 1, 1},
    /* Drecv */ OpInfo{0, 0, 1},
};

/** The metadata row for @p op. */
constexpr OpInfo
opInfo(Op op)
{
    return opInfoTable[static_cast<unsigned>(op)];
}

static_assert(sizeof(opInfoTable) / sizeof(opInfoTable[0])
                  == static_cast<unsigned>(Op::Drecv) + 1,
              "opInfoTable must cover every opcode");

/** General registers 0..23 (r0 hardwired to zero). */
constexpr unsigned numGeneralRegs = 24;
/** Reading this register pops the network input FIFO (blocking). */
constexpr unsigned regCsti = 30;
/** Writing this register sends on the tile's static route. */
constexpr unsigned regCsto = 31;
/** Total architectural register indices. */
constexpr unsigned numRegs = 32;

/** True if @p r is readable general state (not csto). */
constexpr bool
isReadableReg(unsigned r)
{
    return r < numGeneralRegs || r == regCsti;
}

/** Human-readable opcode name (for traces and tests). */
const char *opName(Op op);

/** Disassemble one instruction. */
std::string disassemble(const Instr &instr);

} // namespace triarch::raw

#endif // TRIARCH_RAW_ISA_HH
