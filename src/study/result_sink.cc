#include "result_sink.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace triarch::study
{

namespace
{

/** JSON string escape (control characters, quotes, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream os;
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c);
                out += os.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a double with enough digits to round-trip. */
std::string
jsonNumber(double v)
{
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

} // namespace

ResultSink::ResultSink(StudyConfig sink_config)
    : cfg(std::move(sink_config))
{
}

void
ResultSink::add(const RunResult &result)
{
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(result);
}

void
ResultSink::add(const std::vector<RunResult> &batch)
{
    std::lock_guard<std::mutex> lock(mu);
    results.insert(results.end(), batch.begin(), batch.end());
}

void
ResultSink::metadata(const std::string &meta_key,
                     const std::string &value)
{
    std::lock_guard<std::mutex> lock(mu);
    meta.emplace_back(meta_key, value);
}

std::size_t
ResultSink::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return results.size();
}

void
ResultSink::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu);

    os << "{\n  \"schema\": \"triarch.results.v1\",\n";

    os << "  \"config\": {\n"
       << "    \"matrix_size\": " << cfg.matrixSize << ",\n"
       << "    \"seed\": " << cfg.seed << ",\n"
       << "    \"cslc\": {\"main_channels\": " << cfg.cslc.mainChannels
       << ", \"aux_channels\": " << cfg.cslc.auxChannels
       << ", \"samples\": " << cfg.cslc.samples
       << ", \"sub_bands\": " << cfg.cslc.subBands
       << ", \"sub_band_len\": " << cfg.cslc.subBandLen
       << ", \"sub_band_stride\": " << cfg.cslc.subBandStride
       << "},\n"
       << "    \"beam\": {\"elements\": " << cfg.beam.elements
       << ", \"directions\": " << cfg.beam.directions
       << ", \"dwells\": " << cfg.beam.dwells
       << ", \"shift\": " << cfg.beam.shift << "},\n"
       << "    \"jammer_bins\": [";
    for (std::size_t i = 0; i < cfg.jammerBins.size(); ++i)
        os << (i ? ", " : "") << cfg.jammerBins[i];
    os << "],\n"
       << "    \"hash\": \"" << std::hex << studyConfigHash(cfg)
       << std::dec << "\"\n  },\n";

    os << "  \"metadata\": {";
    for (std::size_t i = 0; i < meta.size(); ++i) {
        os << (i ? ", " : "") << "\"" << jsonEscape(meta[i].first)
           << "\": \"" << jsonEscape(meta[i].second) << "\"";
    }
    os << "},\n";

    os << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        os << "    {\"machine\": \""
           << jsonEscape(machineName(r.machine)) << "\", \"machine_id\": \""
           << machineToken(r.machine) << "\", \"kernel\": \""
           << jsonEscape(kernelName(r.kernel)) << "\", \"kernel_id\": \""
           << kernelToken(r.kernel) << "\",\n     \"cycles\": "
           << r.cycles << ", \"milliseconds\": "
           << jsonNumber(r.milliseconds()) << ", \"validated\": "
           << (r.validated ? "true" : "false");
        if (r.measuredUnbalanced) {
            os << ", \"measured_unbalanced\": "
               << *r.measuredUnbalanced;
        }
        os << ",\n     \"breakdown\": {";
        for (std::size_t c = 0; c < stats::kNumCycleCategories; ++c) {
            const auto cat = stats::allCycleCategories()[c];
            os << (c ? ", " : "") << "\""
               << stats::cycleCategoryToken(cat)
               << "\": " << r.breakdown[cat];
        }
        os << "}";
        os << ",\n     \"notes\": {";
        for (std::size_t n = 0; n < r.notes.size(); ++n) {
            os << (n ? ", " : "") << "\""
               << jsonEscape(r.notes[n].first)
               << "\": " << jsonNumber(r.notes[n].second);
        }
        os << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
ResultSink::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        triarch_fatal("cannot open '", path, "' for writing");
    writeJson(os);
    if (!os.good())
        triarch_fatal("failed writing results JSON to '", path, "'");
}

} // namespace triarch::study
