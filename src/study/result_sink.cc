#include "result_sink.hh"

#include <fstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "study/study_json.hh"

namespace triarch::study
{

ResultSink::ResultSink(StudyConfig sink_config)
    : cfg(std::move(sink_config))
{
}

void
ResultSink::add(const RunResult &result)
{
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(result);
}

void
ResultSink::add(const std::vector<RunResult> &batch)
{
    std::lock_guard<std::mutex> lock(mu);
    results.insert(results.end(), batch.begin(), batch.end());
}

void
ResultSink::metadata(const std::string &meta_key,
                     const std::string &value)
{
    std::lock_guard<std::mutex> lock(mu);
    meta.emplace_back(meta_key, value);
}

std::size_t
ResultSink::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return results.size();
}

void
ResultSink::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu);

    json::Writer w(os);
    w.beginObject();
    w.member("schema", "triarch.results.v1");

    w.key("config");
    writeStudyConfig(w, cfg);

    w.key("metadata").beginObject(json::Writer::Style::Compact);
    for (const auto &[name, value] : meta)
        w.member(name, value);
    w.endObject();

    w.key("results").beginArray();
    for (const RunResult &r : results) {
        // The wire fields plus the display conveniences (names,
        // derived milliseconds) trajectory-tracking scripts read.
        w.beginObject(json::Writer::Style::Compact);
        w.member("machine", machineName(r.machine));
        w.member("machine_id", machineToken(r.machine));
        w.member("kernel", kernelName(r.kernel));
        w.member("kernel_id", kernelToken(r.kernel));
        w.member("cycles", r.cycles);
        w.member("milliseconds", r.milliseconds());
        w.member("validated", r.validated);
        if (r.measuredUnbalanced)
            w.member("measured_unbalanced", *r.measuredUnbalanced);
        w.key("breakdown");
        writeCycleBreakdown(w, r.breakdown);
        w.key("notes").beginObject(json::Writer::Style::Compact);
        for (const auto &[name, value] : r.notes)
            w.member(name, value);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.endObject();
    w.finish();
    os << "\n";
}

void
ResultSink::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        triarch_fatal("cannot open '", path, "' for writing");
    writeJson(os);
    if (!os.good())
        triarch_fatal("failed writing results JSON to '", path, "'");
}

} // namespace triarch::study
