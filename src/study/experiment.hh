/**
 * @file
 * The experiment runner: builds the paper's workloads, dispatches a
 * (machine, kernel) pair to the registered simulator mapping,
 * validates the output against the reference kernels, and returns
 * the cycle count plus explanatory statistics. This is the
 * measurement loop behind Table 3 and Figures 8-9.
 *
 * Dispatch goes through a MappingRegistry (registry.hh) rather than
 * hard-coded switches, so new architectures and kernels plug in by
 * registration, and the same cell implementations serve both the
 * serial Runner here and the ParallelRunner (parallel.hh).
 */

#ifndef TRIARCH_STUDY_EXPERIMENT_HH
#define TRIARCH_STUDY_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "kernels/beam_steering.hh"
#include "kernels/corner_turn.hh"
#include "kernels/cslc.hh"
#include "sim/cycle_account.hh"
#include "sim/types.hh"
#include "study/machine_info.hh"

namespace triarch::study
{

/** The three kernels of the study. */
enum class KernelId { CornerTurn, Cslc, BeamSteering };

const std::vector<KernelId> &allKernels();
const std::string &kernelName(KernelId id);

/** Short machine-readable kernel id ("ct", "cslc", "bs"). */
const std::string &kernelToken(KernelId id);

/** Inverse of kernelToken(); nullopt for unknown tokens. */
std::optional<KernelId> parseKernelToken(const std::string &token);

/** Workload parameters; defaults are the paper's (Section 3). */
struct StudyConfig
{
    unsigned matrixSize = 1024;             //!< corner turn n x n
    kernels::CslcConfig cslc{};
    kernels::BeamConfig beam{};
    std::vector<unsigned> jammerBins = {300, 1700, 4090};
    std::uint64_t seed = 11;

    friend bool operator==(const StudyConfig &,
                           const StudyConfig &) = default;
};

/**
 * Stable 64-bit hash over every workload-affecting field of a
 * StudyConfig. Two configs with the same hash produce the same
 * workloads and hence the same per-cell results; the ResultCache
 * keys on (machine, kernel, this hash).
 */
std::uint64_t studyConfigHash(const StudyConfig &cfg);

/** Outcome of one (machine, kernel) measurement. */
struct RunResult
{
    MachineId machine{};
    KernelId kernel{};
    /** Reported cycles (Raw CSLC: the paper's load-balance
     *  extrapolation, Section 4.3). */
    Cycles cycles = 0;
    /** Raw CSLC only: the measured (imbalanced) wall clock. */
    std::optional<Cycles> measuredUnbalanced;
    /** Where the cycles went: per-category partition of `cycles`
     *  (the categories sum exactly to it — cycle_account.hh). */
    stats::CycleBreakdown breakdown;
    /** Output checked against the reference implementation. */
    bool validated = false;
    /** Named explanatory figures (utilization, stall fractions...). */
    std::vector<std::pair<std::string, double>> notes;

    /** Wall-clock milliseconds at the machine's clock rate. */
    double milliseconds() const;

    /** Field-for-field (bit-identical) comparison. */
    friend bool operator==(const RunResult &,
                           const RunResult &) = default;
};

/**
 * Immutable shared workloads and golden outputs, built once per
 * configuration and shared (read-only) by every cell that runs
 * against it — including cells running concurrently on worker
 * threads, which is safe because nothing mutates a Workloads after
 * buildWorkloads() returns.
 */
struct Workloads
{
    // Corner turn.
    kernels::WordMatrix matrix;

    // CSLC.
    kernels::CslcInput cslcIn;
    kernels::CslcWeights weights;
    kernels::CslcOutput refMixed;
    kernels::CslcOutput refRadix2;

    // Beam steering.
    kernels::BeamTables tables;
    std::vector<std::int32_t> beamRef;
};

/**
 * Deterministically synthesize the workloads and reference outputs
 * for @p cfg (everything derives from cfg.seed). An invalid
 * configuration is a user error: it exits with the violated rule
 * from validateConfig() (config_check.hh); callers who want the
 * error as a value run the validator themselves first.
 */
std::shared_ptr<const Workloads> buildWorkloads(const StudyConfig &cfg);

/** Validate a CSLC output against the matching-radix reference. */
bool cslcOutputValid(const StudyConfig &cfg, const Workloads &work,
                     const kernels::CslcOutput &out,
                     kernels::FftAlgo algo);

/**
 * Typed error for a (machine, kernel) pair with no registered
 * mapping — returned instead of falling through a switch.
 */
struct MappingError
{
    MachineId machine{};
    KernelId kernel{};
    std::string message;
};

/** A run either measures a cell or names the missing mapping. */
using RunOutcome = std::variant<RunResult, MappingError>;

class MappingRegistry;

/**
 * Builds workloads once and runs any (machine, kernel) pair on
 * freshly constructed machine models, serially on the calling
 * thread. ParallelRunner (parallel.hh) is the concurrent,
 * result-caching equivalent; both dispatch through the same
 * MappingRegistry and produce bit-identical results.
 */
class Runner
{
  public:
    /** @p mappings defaults to MappingRegistry::builtin(). */
    explicit Runner(StudyConfig run_config = {},
                    const MappingRegistry *mappings = nullptr);
    ~Runner();

    const StudyConfig &config() const { return cfg; }

    /** The shared immutable workloads (never null). */
    const std::shared_ptr<const Workloads> &workloads() const
    {
        return work;
    }

    /** Run one cell of Table 3 (fatal if the pair is unmapped). */
    RunResult run(MachineId machine, KernelId kernel);

    /** Run one cell, or report the missing mapping as a value. */
    RunOutcome tryRun(MachineId machine, KernelId kernel);

    /** Run all 15 cells (5 platforms x 3 kernels). */
    std::vector<RunResult> runAll();

  private:
    StudyConfig cfg;
    const MappingRegistry *mappings;
    std::shared_ptr<const Workloads> work;
};

} // namespace triarch::study

#endif // TRIARCH_STUDY_EXPERIMENT_HH
