/**
 * @file
 * The experiment runner: builds the paper's workloads, dispatches a
 * (machine, kernel) pair to the right simulator mapping, validates
 * the output against the reference kernels, and returns the cycle
 * count plus explanatory statistics. This is the measurement loop
 * behind Table 3 and Figures 8-9.
 */

#ifndef TRIARCH_STUDY_EXPERIMENT_HH
#define TRIARCH_STUDY_EXPERIMENT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernels/beam_steering.hh"
#include "kernels/corner_turn.hh"
#include "kernels/cslc.hh"
#include "sim/types.hh"
#include "study/machine_info.hh"

namespace triarch::study
{

/** The three kernels of the study. */
enum class KernelId { CornerTurn, Cslc, BeamSteering };

const std::vector<KernelId> &allKernels();
const std::string &kernelName(KernelId id);

/** Workload parameters; defaults are the paper's (Section 3). */
struct StudyConfig
{
    unsigned matrixSize = 1024;             //!< corner turn n x n
    kernels::CslcConfig cslc{};
    kernels::BeamConfig beam{};
    std::vector<unsigned> jammerBins = {300, 1700, 4090};
    std::uint64_t seed = 11;
};

/** Outcome of one (machine, kernel) measurement. */
struct RunResult
{
    MachineId machine{};
    KernelId kernel{};
    /** Reported cycles (Raw CSLC: the paper's load-balance
     *  extrapolation, Section 4.3). */
    Cycles cycles = 0;
    /** Raw CSLC only: the measured (imbalanced) wall clock. */
    std::optional<Cycles> measuredUnbalanced;
    /** Output checked against the reference implementation. */
    bool validated = false;
    /** Named explanatory figures (utilization, stall fractions...). */
    std::vector<std::pair<std::string, double>> notes;

    /** Wall-clock milliseconds at the machine's clock rate. */
    double milliseconds() const;
};

/**
 * Builds workloads once and runs any (machine, kernel) pair on
 * freshly constructed machine models.
 */
class Runner
{
  public:
    explicit Runner(StudyConfig run_config = {});
    ~Runner();

    const StudyConfig &config() const { return cfg; }

    /** Run one cell of Table 3. */
    RunResult run(MachineId machine, KernelId kernel);

    /** Run all 15 cells (5 platforms x 3 kernels). */
    std::vector<RunResult> runAll();

  private:
    struct Workloads;

    RunResult runCornerTurn(MachineId machine);
    RunResult runCslc(MachineId machine);
    RunResult runBeamSteering(MachineId machine);

    /** Validate a CSLC output against the matching-radix reference. */
    bool cslcValid(const kernels::CslcOutput &out,
                   kernels::FftAlgo algo) const;

    StudyConfig cfg;
    std::unique_ptr<Workloads> work;
};

} // namespace triarch::study

#endif // TRIARCH_STUDY_EXPERIMENT_HH
