#include "machine_info.hh"

#include <iterator>

#include "sim/logging.hh"

namespace triarch::study
{

namespace
{

const std::vector<MachineInfo> registry = {
    {MachineId::PpcScalar, "PPC",
     1000, 4, 5.0,
     0.0, "", 0.0, "", 0.0, 30.0},
    {MachineId::PpcAltivec, "Altivec",
     1000, 4, 5.0,
     0.0, "", 0.0, "", 0.0, 30.0},
    {MachineId::Viram, "VIRAM",
     200, 16, 3.2,
     8.0, "on-chip DRAM", 2.0, "using DMA", 8.0, 2.0},
    {MachineId::Imagine, "Imagine",
     300, 48, 14.4,
     16.0, "SRF", 2.0, "", 48.0, 4.0},
    {MachineId::Raw, "Raw",
     300, 16, 4.64,
     16.0, "cache", 28.0, "", 16.0, 18.0},
};

} // namespace

const MachineInfo &
machineInfo(MachineId id)
{
    for (const auto &info : registry) {
        if (info.id == id)
            return info;
    }
    triarch_panic("unknown machine id");
}

const std::vector<MachineId> &
allMachines()
{
    static const std::vector<MachineId> ids = {
        MachineId::PpcScalar, MachineId::PpcAltivec, MachineId::Viram,
        MachineId::Imagine, MachineId::Raw};
    return ids;
}

const std::vector<MachineId> &
researchMachines()
{
    static const std::vector<MachineId> ids = {
        MachineId::Viram, MachineId::Imagine, MachineId::Raw};
    return ids;
}

const std::string &
machineName(MachineId id)
{
    return machineInfo(id).name;
}

const std::string &
machineToken(MachineId id)
{
    static const std::string tokens[] = {"ppc", "altivec", "viram",
                                         "imagine", "raw"};
    const auto i = static_cast<std::size_t>(id);
    if (i >= std::size(tokens))
        triarch_panic("MachineId out of range: ", i);
    return tokens[i];
}

std::optional<MachineId>
parseMachineToken(const std::string &token)
{
    for (MachineId m : allMachines()) {
        if (machineToken(m) == token)
            return m;
    }
    return std::nullopt;
}

} // namespace triarch::study
