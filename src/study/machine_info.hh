/**
 * @file
 * Static machine parameters for the comparative study: the contents
 * of the paper's Table 1 (peak words/cycle) and Table 2 (processor
 * parameters), kept in one registry so the performance model, the
 * simulators' configurations, and the report all agree.
 */

#ifndef TRIARCH_STUDY_MACHINE_INFO_HH
#define TRIARCH_STUDY_MACHINE_INFO_HH

#include <optional>
#include <string>
#include <vector>

namespace triarch::study
{

/** The five evaluated platforms. */
enum class MachineId
{
    PpcScalar,      //!< PowerPC G4, compiled scalar code
    PpcAltivec,     //!< PowerPC G4 with hand-inserted AltiVec
    Viram,          //!< Berkeley VIRAM (processor-in-memory)
    Imagine,        //!< Stanford Imagine (stream processor)
    Raw,            //!< MIT Raw (tiled processor)
};

/** Parameters mirrored from Tables 1 and 2 of the paper. */
struct MachineInfo
{
    MachineId id;
    std::string name;

    // Table 2.
    unsigned clockMhz;
    unsigned numAlus;
    double peakGflops;

    // Table 1 (32-bit words per cycle); 0 = not reported.
    double onchipWordsPerCycle;
    std::string onchipNote;
    double offchipWordsPerCycle;
    std::string offchipNote;
    double computeWordsPerCycle;

    /**
     * Typical chip power in watts (extension beyond the paper's
     * tables, from the teams' publications: VIRAM ~2 W per Section
     * 2.1 of the paper; Imagine ~4 W per Khailany et al., IEEE
     * Micro 2001; Raw ~18 W per the ISSCC 2003 paper; PowerPC G4
     * ~30 W at 1 GHz). Used by the energy-efficiency ablation.
     */
    double typicalWatts;
};

/** Lookup (panics on bad id). */
const MachineInfo &machineInfo(MachineId id);

/** All five platforms, PPC first (the comparison baselines). */
const std::vector<MachineId> &allMachines();

/** The three research architectures (Table 1 columns). */
const std::vector<MachineId> &researchMachines();

/** Short display name ("VIRAM", "Altivec", ...). */
const std::string &machineName(MachineId id);

/** Short machine-readable id ("ppc", "altivec", "viram", ...). */
const std::string &machineToken(MachineId id);

/** Inverse of machineToken(); nullopt for unknown tokens. */
std::optional<MachineId> parseMachineToken(const std::string &token);

} // namespace triarch::study

#endif // TRIARCH_STUDY_MACHINE_INFO_HH
