/**
 * @file
 * Registry-based (machine, kernel) dispatch for the study. Each
 * architecture registers one KernelMapping functor per kernel; the
 * serial Runner and the ParallelRunner look mappings up here instead
 * of switching on MachineId, and an unregistered pair surfaces as a
 * typed MappingError rather than a silent fall-through.
 *
 * A KernelMapping is a pure function of the (immutable) StudyConfig
 * and Workloads: it constructs a fresh machine model, runs the
 * kernel, validates the output against the golden reference, and
 * fills in the explanatory notes. Purity is what makes concurrent
 * execution bit-identical to serial execution.
 */

#ifndef TRIARCH_STUDY_REGISTRY_HH
#define TRIARCH_STUDY_REGISTRY_HH

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "study/experiment.hh"

namespace triarch::study
{

/** Runs one cell: fresh machine, measure, validate, annotate. */
using KernelMapping =
    std::function<RunResult(const StudyConfig &, const Workloads &)>;

class MappingRegistry
{
  public:
    MappingRegistry() = default;

    /** Register @p mapping for (machine, kernel); panics on a
     *  duplicate registration. */
    void add(MachineId machine, KernelId kernel, KernelMapping mapping);

    /** The mapping for a pair, or nullptr if none is registered. */
    const KernelMapping *find(MachineId machine,
                              KernelId kernel) const noexcept;

    /** The typed error describing an unregistered pair. */
    MappingError missing(MachineId machine, KernelId kernel) const;

    /** Registered pairs in deterministic (machine, kernel) order. */
    std::vector<std::pair<MachineId, KernelId>> registeredPairs() const;

    std::size_t size() const { return mappings.size(); }

    /**
     * The registry holding all built-in mappings: every pair in
     * allMachines() x allKernels(). Built once, thread-safe to read
     * concurrently.
     */
    static const MappingRegistry &builtin();

  private:
    using Key = std::pair<unsigned, unsigned>;

    static Key
    key(MachineId machine, KernelId kernel)
    {
        return {static_cast<unsigned>(machine),
                static_cast<unsigned>(kernel)};
    }

    std::map<Key, KernelMapping> mappings;
};

} // namespace triarch::study

#endif // TRIARCH_STUDY_REGISTRY_HH
