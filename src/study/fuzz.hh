/**
 * @file
 * Differential config-fuzzing across the four simulators. A seeded,
 * wall-clock-free enumerator sweeps boundary and random workload
 * shapes; every config that passes the ConfigValidator is run on
 * every registered (machine, kernel) cell twice — serially and
 * through the ParallelRunner — and the two result sets must agree
 * bit-for-bit with every output validating against the reference
 * kernels. A disagreement is minimized to the smallest config that
 * still fails and reported with its studyConfigHash so it can be
 * replayed exactly.
 *
 * Configs the validator rejects are part of the sweep on purpose:
 * each one must come back as a typed ConfigError, never as a panic.
 */

#ifndef TRIARCH_STUDY_FUZZ_HH
#define TRIARCH_STUDY_FUZZ_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "study/config_check.hh"
#include "study/parallel.hh"

namespace triarch::study
{

/** Shape and budget of one fuzzing run. */
struct FuzzOptions
{
    std::uint64_t seed = 11;        //!< enumerator seed
    /** Random configs on top of the fixed boundary set. */
    unsigned randomConfigs = 48;
    /** Include the hand-written boundary config list. */
    bool includeBoundary = true;
    /** Worker threads for the parallel half of each comparison. */
    unsigned threads = 2;
    /** Cells to compare per config; empty = every registered cell. */
    std::vector<Cell> cells;
    /** Mapping registry; null = MappingRegistry::builtin(). */
    const MappingRegistry *mappings = nullptr;
};

/** A config the validator rejected, with its typed error. */
struct FuzzRejection
{
    StudyConfig config;
    ConfigError error;
};

/** One minimized, reproducible cross-architecture disagreement. */
struct FuzzFailure
{
    StudyConfig config;         //!< minimized reproducer
    std::uint64_t configHash;   //!< studyConfigHash(config)
    std::string detail;         //!< first observed disagreement
};

/** Everything one runDifferentialFuzz() sweep observed. */
struct FuzzReport
{
    std::vector<StudyConfig> configs;       //!< enumerated, in order
    std::vector<FuzzRejection> rejected;
    std::uint64_t cellsChecked = 0;         //!< serial+parallel pairs
    std::vector<FuzzFailure> failures;

    bool clean() const { return failures.empty(); }
};

/**
 * The config list for @p opts: a fixed boundary set (strip/tile/
 * block edges, single-element shapes, extreme shifts, deliberately
 * invalid configs) plus opts.randomConfigs seeded random shapes.
 * A pure function of opts.seed/randomConfigs/includeBoundary — no
 * wall clock, no global state — so the same options give the same
 * list on every run and at every thread count.
 */
std::vector<StudyConfig> enumerateFuzzConfigs(const FuzzOptions &opts);

/**
 * Run every selected cell of @p cfg serially and through a
 * ParallelRunner (uncached) and compare. Returns a description of
 * the first failure — a cell whose output fails reference
 * validation, or whose parallel result is not bit-identical to the
 * serial one — or nullopt when all cells agree. @p cfg must already
 * be valid.
 */
std::optional<std::string>
checkConfigDifferential(const StudyConfig &cfg,
                        const FuzzOptions &opts);

/**
 * Greedily shrink @p cfg (fewer sub-bands, elements, dwells,
 * smaller matrix...) while checkConfigDifferential still fails, so
 * the reported reproducer is the smallest failing config found.
 */
StudyConfig minimizeFailure(const StudyConfig &cfg,
                            const FuzzOptions &opts);

/** One-line reproducer string (all fields + studyConfigHash). */
std::string describeConfig(const StudyConfig &cfg);

/** Enumerate, validate, and differentially check every config. */
FuzzReport runDifferentialFuzz(const FuzzOptions &opts);

} // namespace triarch::study

#endif // TRIARCH_STUDY_FUZZ_HH
