/**
 * @file
 * Structured JSON results emitter for bench trajectory tracking:
 * collects RunResults (and free-form metadata) and renders one
 * self-describing JSON document — config block, metadata block, and
 * a per-cell results array with cycles, wall-clock milliseconds,
 * validation status, and every explanatory note. Safe to add() from
 * multiple threads.
 */

#ifndef TRIARCH_STUDY_RESULT_SINK_HH
#define TRIARCH_STUDY_RESULT_SINK_HH

#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "study/experiment.hh"

namespace triarch::study
{

class ResultSink
{
  public:
    explicit ResultSink(StudyConfig sink_config = {});

    ResultSink(const ResultSink &) = delete;
    ResultSink &operator=(const ResultSink &) = delete;

    /** Record one cell measurement. */
    void add(const RunResult &result);

    /** Record a batch of cell measurements. */
    void add(const std::vector<RunResult> &results);

    /** Attach a free-form metadata string (threads, wall time...). */
    void metadata(const std::string &meta_key,
                  const std::string &value);

    std::size_t size() const;

    /** Render the whole document ("triarch.results.v1"). */
    void writeJson(std::ostream &os) const;

    /** Render to @p path; fatal if the file cannot be written. */
    void writeJsonFile(const std::string &path) const;

  private:
    mutable std::mutex mu;
    StudyConfig cfg;
    std::vector<RunResult> results;
    std::vector<std::pair<std::string, std::string>> meta;
};

} // namespace triarch::study

#endif // TRIARCH_STUDY_RESULT_SINK_HH
