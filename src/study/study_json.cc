#include "study_json.hh"

#include <initializer_list>
#include <limits>
#include <sstream>

#include "study/machine_info.hh"

namespace triarch::study
{

namespace
{

using json::Value;
using json::Writer;

/** Set *error (once) and return false. */
bool
reject(std::string *error, const std::string &why)
{
    if (error && error->empty())
        *error = why;
    return false;
}

bool
fieldU64(const Value &obj, const char *name, std::uint64_t *out,
         std::string *error, const char *where)
{
    const Value *v = obj.field(name);
    if (!v)
        return true;    // optional: keep the default
    if (!v->asU64(*out)) {
        return reject(error, std::string(where) + ": bad '" + name
                                 + "' field");
    }
    return true;
}

template <typename T>
bool
fieldNarrow(const Value &obj, const char *name, T *out,
            std::string *error, const char *where)
{
    std::uint64_t wide = *out;
    if (!fieldU64(obj, name, &wide, error, where))
        return false;
    if (wide > std::numeric_limits<T>::max()) {
        return reject(error, std::string(where) + ": '" + name
                                 + "' out of range");
    }
    *out = static_cast<T>(wide);
    return true;
}

bool
knownFieldsOnly(const Value &obj, std::initializer_list<const char *> known,
                std::string *error, const char *where)
{
    for (const auto &[key, value] : obj.fields) {
        bool ok = false;
        for (const char *name : known)
            ok = ok || key == name;
        if (!ok) {
            return reject(error, std::string(where)
                                     + ": unknown field '" + key + "'");
        }
    }
    return true;
}

} // namespace

std::string
studyConfigHashHex(const StudyConfig &cfg)
{
    std::ostringstream os;
    os << std::hex << studyConfigHash(cfg);
    return os.str();
}

void
writeStudyConfig(Writer &w, const StudyConfig &cfg)
{
    w.beginObject();
    w.member("matrix_size", cfg.matrixSize);
    w.member("seed", cfg.seed);
    w.key("cslc").beginObject(Writer::Style::Compact);
    w.member("main_channels", cfg.cslc.mainChannels);
    w.member("aux_channels", cfg.cslc.auxChannels);
    w.member("samples", cfg.cslc.samples);
    w.member("sub_bands", cfg.cslc.subBands);
    w.member("sub_band_len", cfg.cslc.subBandLen);
    w.member("sub_band_stride", cfg.cslc.subBandStride);
    w.endObject();
    w.key("beam").beginObject(Writer::Style::Compact);
    w.member("elements", cfg.beam.elements);
    w.member("directions", cfg.beam.directions);
    w.member("dwells", cfg.beam.dwells);
    w.member("shift", cfg.beam.shift);
    w.endObject();
    w.key("jammer_bins").beginArray(Writer::Style::Compact);
    for (unsigned bin : cfg.jammerBins)
        w.value(bin);
    w.endArray();
    w.member("hash", studyConfigHashHex(cfg));
    w.endObject();
}

bool
parseStudyConfig(const Value &v, StudyConfig *cfg, std::string *error)
{
    if (!v.isObject())
        return reject(error, "config is not an object");
    if (!knownFieldsOnly(v,
                         {"matrix_size", "seed", "cslc", "beam",
                          "jammer_bins", "hash"},
                         error, "config"))
        return false;

    StudyConfig out;    // start from the paper's defaults
    if (!fieldNarrow(v, "matrix_size", &out.matrixSize, error, "config"))
        return false;
    if (!fieldU64(v, "seed", &out.seed, error, "config"))
        return false;

    if (const Value *cslc = v.field("cslc")) {
        if (!cslc->isObject())
            return reject(error, "config: 'cslc' is not an object");
        if (!knownFieldsOnly(*cslc,
                             {"main_channels", "aux_channels", "samples",
                              "sub_bands", "sub_band_len",
                              "sub_band_stride"},
                             error, "config.cslc"))
            return false;
        if (!fieldNarrow(*cslc, "main_channels", &out.cslc.mainChannels,
                         error, "config.cslc")
            || !fieldNarrow(*cslc, "aux_channels", &out.cslc.auxChannels,
                            error, "config.cslc")
            || !fieldNarrow(*cslc, "samples", &out.cslc.samples, error,
                            "config.cslc")
            || !fieldNarrow(*cslc, "sub_bands", &out.cslc.subBands,
                            error, "config.cslc")
            || !fieldNarrow(*cslc, "sub_band_len", &out.cslc.subBandLen,
                            error, "config.cslc")
            || !fieldNarrow(*cslc, "sub_band_stride",
                            &out.cslc.subBandStride, error,
                            "config.cslc"))
            return false;
    }

    if (const Value *beam = v.field("beam")) {
        if (!beam->isObject())
            return reject(error, "config: 'beam' is not an object");
        if (!knownFieldsOnly(*beam,
                             {"elements", "directions", "dwells",
                              "shift"},
                             error, "config.beam"))
            return false;
        if (!fieldNarrow(*beam, "elements", &out.beam.elements, error,
                         "config.beam")
            || !fieldNarrow(*beam, "directions", &out.beam.directions,
                            error, "config.beam")
            || !fieldNarrow(*beam, "dwells", &out.beam.dwells, error,
                            "config.beam")
            || !fieldNarrow(*beam, "shift", &out.beam.shift, error,
                            "config.beam"))
            return false;
    }

    if (const Value *bins = v.field("jammer_bins")) {
        if (!bins->isArray())
            return reject(error, "config: 'jammer_bins' is not an array");
        out.jammerBins.clear();
        for (const Value &bin : bins->items) {
            unsigned b = 0;
            std::uint64_t wide = 0;
            if (!bin.asU64(wide)
                || wide > std::numeric_limits<unsigned>::max()) {
                return reject(error,
                              "config: bad 'jammer_bins' element");
            }
            b = static_cast<unsigned>(wide);
            out.jammerBins.push_back(b);
        }
    }

    if (const Value *hash = v.field("hash")) {
        if (!hash->isString()
            || hash->text != studyConfigHashHex(out)) {
            return reject(error,
                          "config: 'hash' does not match the config "
                          "fields (expected "
                              + studyConfigHashHex(out) + ")");
        }
    }

    *cfg = std::move(out);
    return true;
}

void
writeCycleBreakdown(Writer &w, const stats::CycleBreakdown &breakdown)
{
    w.beginObject(Writer::Style::Compact);
    for (const auto cat : stats::allCycleCategories())
        w.member(stats::cycleCategoryToken(cat), breakdown[cat]);
    w.endObject();
}

void
writeRunResult(Writer &w, const RunResult &result)
{
    w.beginObject(Writer::Style::Compact);
    w.member("machine", machineToken(result.machine));
    w.member("kernel", kernelToken(result.kernel));
    w.member("cycles", result.cycles);
    w.member("validated", result.validated);
    if (result.measuredUnbalanced)
        w.member("measured_unbalanced", *result.measuredUnbalanced);
    w.key("breakdown");
    writeCycleBreakdown(w, result.breakdown);
    w.key("notes").beginObject(Writer::Style::Compact);
    for (const auto &[name, value] : result.notes)
        w.member(name, value);
    w.endObject();
    w.endObject();
}

bool
parseRunResult(const Value &v, RunResult *result, std::string *error)
{
    if (!v.isObject())
        return reject(error, "result entry is not an object");

    RunResult out;

    const Value *machine = v.field("machine");
    if (!machine || !machine->isString())
        return reject(error, "result missing machine token");
    const auto mid = parseMachineToken(machine->text);
    if (!mid) {
        return reject(error,
                      "unknown machine token '" + machine->text + "'");
    }
    out.machine = *mid;

    const Value *kernel = v.field("kernel");
    if (!kernel || !kernel->isString())
        return reject(error, "result missing kernel token");
    const auto kid = parseKernelToken(kernel->text);
    if (!kid) {
        return reject(error,
                      "unknown kernel token '" + kernel->text + "'");
    }
    out.kernel = *kid;

    const std::string where = machine->text + "/" + kernel->text;

    const Value *cycles = v.field("cycles");
    if (!cycles || !cycles->asU64(out.cycles))
        return reject(error, where + ": bad cycles field");

    const Value *validated = v.field("validated");
    if (!validated || !validated->isBool())
        return reject(error, where + ": bad validated field");
    out.validated = validated->boolean;

    if (const Value *mu = v.field("measured_unbalanced")) {
        std::uint64_t value = 0;
        if (!mu->asU64(value))
            return reject(error, where + ": bad measured_unbalanced");
        out.measuredUnbalanced = value;
    }

    const Value *breakdown = v.field("breakdown");
    if (!breakdown || !breakdown->isObject())
        return reject(error, where + ": missing breakdown object");
    for (const auto cat : stats::allCycleCategories()) {
        const Value *c =
            breakdown->field(stats::cycleCategoryToken(cat));
        std::uint64_t value = 0;
        if (!c || !c->asU64(value)) {
            return reject(error,
                          where + ": breakdown missing category '"
                              + stats::cycleCategoryToken(cat) + "'");
        }
        out.breakdown.cycles[static_cast<unsigned>(cat)] = value;
    }
    out.breakdown.total = out.cycles;
    if (out.breakdown.categorySum() != out.cycles) {
        return reject(error,
                      where + ": breakdown sums to "
                          + std::to_string(out.breakdown.categorySum())
                          + " but cycles is "
                          + std::to_string(out.cycles));
    }

    if (const Value *notes = v.field("notes")) {
        if (!notes->isObject())
            return reject(error, where + ": notes is not an object");
        for (const auto &[name, value] : notes->fields) {
            double d = 0.0;
            if (!value.asDouble(d))
                return reject(error, where + ": bad note '" + name + "'");
            out.notes.emplace_back(name, d);
        }
    }

    *result = std::move(out);
    return true;
}

} // namespace triarch::study
