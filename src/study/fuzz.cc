#include "fuzz.hh"

#include <functional>
#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "study/registry.hh"

namespace triarch::study
{

namespace
{

/** Recompute samples so the sub-band tiling covers the interval. */
void
retune(StudyConfig &c)
{
    c.cslc.samples = (c.cslc.subBands - 1) * c.cslc.subBandStride
                     + c.cslc.subBandLen;
}

/**
 * The smallest interesting config: every kernel exercises its
 * remainder paths (33 elements is neither a multiple of the VIRAM
 * vector length nor of Raw's tile count) while a full 15-cell grid
 * stays cheap enough to run hundreds of times.
 */
StudyConfig
smallBase()
{
    StudyConfig c;
    c.matrixSize = 64;
    c.cslc.subBands = 3;
    retune(c);                      // 2*112 + 128 = 352 samples
    c.beam.elements = 33;
    c.beam.directions = 2;
    c.beam.dwells = 1;
    c.jammerBins = {5, 100};
    return c;
}

/**
 * Hand-written boundary sweep around every strip/tile/block edge the
 * mappings tile by (VIRAM 64-element vectors, Raw 16 tiles, Imagine
 * 8 clusters), plus deliberately invalid configs that must come
 * back as typed ConfigErrors.
 */
std::vector<StudyConfig>
boundaryConfigs()
{
    std::vector<StudyConfig> list;
    auto add = [&list](const std::function<void(StudyConfig &)> &mut) {
        StudyConfig c = smallBase();
        mut(c);
        list.push_back(std::move(c));
    };

    add([](StudyConfig &) {});
    add([](StudyConfig &c) { c.matrixSize = 128; });
    add([](StudyConfig &c) { c.matrixSize = 192; });

    add([](StudyConfig &c) { c.cslc.subBands = 1; retune(c); });
    add([](StudyConfig &c) { c.cslc.subBands = 2; retune(c); });
    add([](StudyConfig &c) { c.cslc.subBands = 16; retune(c); });
    add([](StudyConfig &c) { c.cslc.subBands = 17; retune(c); });
    add([](StudyConfig &c) { c.cslc.subBandStride = 128; retune(c); });
    add([](StudyConfig &c) { c.cslc.subBandStride = 1; retune(c); });

    add([](StudyConfig &c) { c.jammerBins.clear(); });
    add([](StudyConfig &c) { c.jammerBins = {0}; });
    add([](StudyConfig &c) {
        c.jammerBins = {c.cslc.samples - 1};
    });

    for (unsigned e : {1u, 2u, 7u, 8u, 15u, 16u, 17u, 63u, 64u, 65u,
                       127u, 129u})
        add([e](StudyConfig &c) { c.beam.elements = e; });
    add([](StudyConfig &c) {
        c.beam.directions = 1;
        c.beam.dwells = 1;
    });
    add([](StudyConfig &c) { c.beam.shift = 0; });
    add([](StudyConfig &c) { c.beam.shift = 31; });

    // Invalid on purpose: the sweep asserts these are rejected with
    // a typed error, never a panic.
    add([](StudyConfig &c) { c.matrixSize = 0; });
    add([](StudyConfig &c) { c.matrixSize = 100; });
    add([](StudyConfig &c) { c.cslc.subBandLen = 100; retune(c); });
    add([](StudyConfig &c) { c.cslc.subBandLen = 64; retune(c); });
    add([](StudyConfig &c) { c.cslc.samples += 1; });
    add([](StudyConfig &c) { c.cslc.subBandStride = 0; retune(c); });
    add([](StudyConfig &c) { c.cslc.subBands = 0; });
    add([](StudyConfig &c) { c.cslc.mainChannels = 1; });
    add([](StudyConfig &c) { c.cslc.auxChannels = 3; });
    add([](StudyConfig &c) { c.jammerBins = {c.cslc.samples}; });
    add([](StudyConfig &c) { c.beam.elements = 0; });
    add([](StudyConfig &c) { c.beam.directions = 0; });
    add([](StudyConfig &c) { c.beam.dwells = 0; });
    add([](StudyConfig &c) { c.beam.shift = 32; });

    return list;
}

/** Break one field so the validator has something to reject. */
void
corrupt(StudyConfig &c, Rng &rng)
{
    switch (rng.nextBelow(6)) {
      case 0:
        c.cslc.samples += 1 + static_cast<unsigned>(rng.nextBelow(7));
        break;
      case 1:
        c.beam.shift = 32 + static_cast<unsigned>(rng.nextBelow(100));
        break;
      case 2:
        c.cslc.subBandLen = 100;
        retune(c);
        break;
      case 3:
        c.matrixSize += 1 + static_cast<unsigned>(rng.nextBelow(63));
        break;
      case 4:
        c.beam.elements = 0;
        break;
      default:
        c.jammerBins.push_back(
            c.cslc.samples + static_cast<unsigned>(rng.nextBelow(100)));
        break;
    }
}

std::vector<Cell>
selectedCells(const FuzzOptions &opts)
{
    return opts.cells.empty() ? allCells() : opts.cells;
}

} // namespace

std::vector<StudyConfig>
enumerateFuzzConfigs(const FuzzOptions &opts)
{
    std::vector<StudyConfig> list;
    if (opts.includeBoundary)
        list = boundaryConfigs();

    Rng rng(opts.seed);
    for (unsigned i = 0; i < opts.randomConfigs; ++i) {
        StudyConfig c;
        c.matrixSize =
            64 * (1 + static_cast<unsigned>(rng.nextBelow(3)));
        c.cslc.subBands = 1 + static_cast<unsigned>(rng.nextBelow(12));
        c.cslc.subBandStride =
            1 + static_cast<unsigned>(rng.nextBelow(160));
        retune(c);
        c.beam.elements =
            1 + static_cast<unsigned>(rng.nextBelow(200));
        c.beam.directions =
            1 + static_cast<unsigned>(rng.nextBelow(4));
        c.beam.dwells = 1 + static_cast<unsigned>(rng.nextBelow(3));
        c.beam.shift = static_cast<unsigned>(rng.nextBelow(32));
        c.jammerBins.clear();
        const auto nbins = static_cast<unsigned>(rng.nextBelow(4));
        for (unsigned b = 0; b < nbins; ++b) {
            c.jammerBins.push_back(
                static_cast<unsigned>(rng.nextBelow(c.cslc.samples)));
        }
        c.seed = 1 + rng.nextBelow(1u << 16);

        // Every fourth config is broken on purpose so the sweep also
        // covers the rejection path.
        if (i % 4 == 3)
            corrupt(c, rng);
        list.push_back(std::move(c));
    }
    return list;
}

std::optional<std::string>
checkConfigDifferential(const StudyConfig &cfg,
                        const FuzzOptions &opts)
{
    const std::vector<Cell> cells = selectedCells(opts);

    Runner serial(cfg, opts.mappings);
    ParallelRunner par(cfg, opts.threads, opts.mappings,
                       ParallelRunner::noCache());
    const std::vector<RunOutcome> parallel = par.tryRunCells(cells);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string label = machineToken(cells[i].machine) + "/"
                                  + kernelToken(cells[i].kernel);
        RunOutcome s = serial.tryRun(cells[i].machine,
                                     cells[i].kernel);
        const auto *serialErr = std::get_if<MappingError>(&s);
        const auto *parErr = std::get_if<MappingError>(&parallel[i]);
        if (serialErr || parErr) {
            // Consistently missing mappings are fine (a partial
            // registry); disagreement about *whether* the mapping
            // exists is not.
            if (static_cast<bool>(serialErr)
                != static_cast<bool>(parErr)) {
                return label
                       + ": serial and parallel runners disagree on "
                         "whether the mapping is registered";
            }
            continue;
        }
        const auto &serialRes = std::get<RunResult>(s);
        const auto &parRes = std::get<RunResult>(parallel[i]);
        if (!serialRes.validated) {
            return label + ": output failed reference validation ("
                   + std::to_string(serialRes.cycles) + " cycles)";
        }
        if (!(serialRes == parRes)) {
            return label
                   + ": parallel result differs from serial (serial "
                   + std::to_string(serialRes.cycles)
                   + " cycles, parallel "
                   + std::to_string(parRes.cycles)
                   + " cycles, parallel validated="
                   + (parRes.validated ? "true" : "false") + ")";
        }
    }
    return std::nullopt;
}

StudyConfig
minimizeFailure(const StudyConfig &cfg, const FuzzOptions &opts)
{
    using Transform = std::function<void(StudyConfig &)>;
    const std::vector<Transform> transforms = {
        [](StudyConfig &c) { c.matrixSize = 64; },
        [](StudyConfig &c) {
            c.matrixSize = (c.matrixSize / 2) / 64 * 64;
        },
        [](StudyConfig &c) { c.cslc.subBands = 1; retune(c); },
        [](StudyConfig &c) {
            c.cslc.subBands /= 2;
            retune(c);
        },
        [](StudyConfig &c) { c.jammerBins.clear(); },
        [](StudyConfig &c) { c.beam.elements = 1; },
        [](StudyConfig &c) { c.beam.elements /= 2; },
        [](StudyConfig &c) { c.beam.directions = 1; },
        [](StudyConfig &c) { c.beam.dwells = 1; },
        [](StudyConfig &c) { c.beam.shift = 6; },
        [](StudyConfig &c) { c.seed = 11; },
    };

    StudyConfig cur = cfg;
    bool improved = true;
    unsigned rounds = 0;
    while (improved && rounds++ < 16) {
        improved = false;
        for (const Transform &t : transforms) {
            StudyConfig cand = cur;
            t(cand);
            // Stay inside the valid config space and only keep a
            // shrink if the failure survives it.
            if (cand == cur || validateConfig(cand))
                continue;
            if (checkConfigDifferential(cand, opts)) {
                cur = std::move(cand);
                improved = true;
            }
        }
    }
    return cur;
}

std::string
describeConfig(const StudyConfig &cfg)
{
    std::ostringstream os;
    os << "matrixSize=" << cfg.matrixSize << " cslc={"
       << cfg.cslc.mainChannels << "+" << cfg.cslc.auxChannels
       << "ch, " << cfg.cslc.samples << " samples, "
       << cfg.cslc.subBands << "x" << cfg.cslc.subBandLen << "/"
       << cfg.cslc.subBandStride << "} beam={" << cfg.beam.elements
       << "x" << cfg.beam.directions << "x" << cfg.beam.dwells
       << ", shift " << cfg.beam.shift << "} jammerBins=[";
    for (std::size_t i = 0; i < cfg.jammerBins.size(); ++i)
        os << (i ? "," : "") << cfg.jammerBins[i];
    os << "] seed=" << cfg.seed << " hash=0x" << std::hex
       << studyConfigHash(cfg);
    return os.str();
}

FuzzReport
runDifferentialFuzz(const FuzzOptions &opts)
{
    FuzzReport report;
    report.configs = enumerateFuzzConfigs(opts);
    const std::size_t ncells = selectedCells(opts).size();

    for (const StudyConfig &cfg : report.configs) {
        if (auto err = validateConfig(cfg)) {
            report.rejected.push_back({cfg, std::move(*err)});
            continue;
        }
        report.cellsChecked += ncells;
        if (auto detail = checkConfigDifferential(cfg, opts)) {
            StudyConfig min = minimizeFailure(cfg, opts);
            std::string minDetail =
                checkConfigDifferential(min, opts).value_or(*detail);
            report.failures.push_back({min, studyConfigHash(min),
                                       std::move(minDetail)});
        }
    }
    return report;
}

} // namespace triarch::study
