/**
 * @file
 * The committed-benchmark layer behind bench/perf_report and
 * bench/bench_diff: a versioned JSON document ("triarch.bench.v1")
 * holding per-(machine, kernel) cycle totals and cycle-account
 * breakdowns, plus the two comparisons the CI perf gate runs —
 * fresh-vs-baseline drift within a per-cell tolerance, and a loose
 * sanity check against the paper's Table 3.
 *
 * Parsing and diffing live here as library code (not in the tools)
 * so tests can exercise pass/fail decisions without spawning
 * processes; bench_diff is a thin CLI over these functions.
 */

#ifndef TRIARCH_STUDY_BENCH_REPORT_HH
#define TRIARCH_STUDY_BENCH_REPORT_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "study/experiment.hh"

namespace triarch::study
{

/** The benchmark document schema identifier. */
const std::string &benchSchema();   // "triarch.bench.v1"

/**
 * Paper Table 3 target in kilocycles for one cell (panics on an
 * unmapped pair). Shared by the table3 bench and the perf gate so
 * the paper's numbers exist in exactly one place.
 */
double paperTable3Kcycles(MachineId machine, KernelId kernel);

/** One (machine, kernel) entry of a benchmark report. */
struct BenchCell
{
    MachineId machine{};
    KernelId kernel{};
    Cycles cycles = 0;
    /** Raw CSLC only: the measured (imbalanced) wall clock. */
    std::optional<Cycles> measuredUnbalanced;
    bool validated = false;
    /** Partition of `cycles` by category (sums exactly to it). */
    stats::CycleBreakdown breakdown;

    friend bool operator==(const BenchCell &,
                           const BenchCell &) = default;
};

/**
 * Host wall-clock timing of one cell: robust statistics over the
 * repeated-measurement contract (host_clock.hh), in nanoseconds.
 */
struct HostCellTiming
{
    MachineId machine{};
    KernelId kernel{};
    double medianNs = 0.0;
    double p95Ns = 0.0;
    double minNs = 0.0;
    double stddevNs = 0.0;

    friend bool operator==(const HostCellTiming &,
                           const HostCellTiming &) = default;
};

/**
 * The optional "host" section of a bench report: where the *host*
 * time goes, next to the simulated-cycle cells. Absent by default so
 * documents written without the host flags stay byte-identical.
 */
struct HostSection
{
    std::uint64_t warmup = 0;       //!< unmeasured priming iterations
    std::uint64_t repetitions = 0;  //!< measured iterations per cell
    bool pinned = false;            //!< thread was pinned to a core
    double cellsPerSec = 0.0;       //!< grid throughput at the medians
    std::vector<HostCellTiming> cells;

    /** Lookup, or nullptr when the cell is absent. */
    const HostCellTiming *find(MachineId machine,
                               KernelId kernel) const;

    friend bool operator==(const HostSection &,
                           const HostSection &) = default;
};

/** A versioned benchmark document. */
struct BenchReport
{
    std::string schema;
    std::string configHash;     //!< hex studyConfigHash of the run
    std::uint64_t seed = 0;
    std::vector<BenchCell> cells;
    std::optional<HostSection> host;

    /** Lookup, or nullptr when the cell is absent. */
    const BenchCell *find(MachineId machine, KernelId kernel) const;

    friend bool operator==(const BenchReport &,
                           const BenchReport &) = default;
};

/**
 * Assemble a report from measured results (cells are emitted in the
 * canonical machine-major order regardless of input order). Panics
 * if a result's breakdown does not partition its cycle count — the
 * profiler invariant is checked once more at the export boundary.
 */
BenchReport buildBenchReport(const StudyConfig &cfg,
                             const std::vector<RunResult> &results);

/** Emit the document (stable key order, newline-terminated). */
void writeBenchReportJson(const BenchReport &report, std::ostream &os);

/**
 * Parse a triarch.bench.v1 document. Rejects unknown schemas,
 * unknown machine/kernel tokens, duplicate cells, and any cell
 * whose breakdown fails to sum to its cycle count. On failure
 * returns nullopt and stores a one-line reason in *error.
 */
std::optional<BenchReport>
parseBenchReportJson(const std::string &text, std::string *error);

/** Read and parse a file (nullopt + *error on I/O or parse fail). */
std::optional<BenchReport>
loadBenchReportFile(const std::string &path, std::string *error);

/** Knobs for diffBenchReports. */
struct BenchDiffOptions
{
    /** Allowed per-cell relative drift, applied to the total and to
     *  each breakdown category (relative to the baseline total). */
    double tolerance = 0.005;
};

/** Outcome of a comparison: ok() iff no failure lines. */
struct BenchDiffResult
{
    std::vector<std::string> failures;
    std::size_t cellsCompared = 0;

    bool ok() const { return failures.empty(); }
};

/**
 * Compare a fresh report against the committed baseline: same
 * config hash and seed, same cell set, every cell validated, and
 * cycles plus every breakdown category within tolerance of the
 * baseline. Every violation becomes one failure line.
 */
BenchDiffResult diffBenchReports(const BenchReport &baseline,
                                 const BenchReport &fresh,
                                 const BenchDiffOptions &opts = {});

/**
 * Compare the host sections of two reports. Host time is hardware-
 * dependent, so by default every observation is an advisory line in
 * *advisory (when non-null), never a failure. With @p gate_ratio > 0
 * the comparison is enforced: a fresh cell whose median exceeds
 * baseline * gate_ratio becomes a failure, as does a missing host
 * section on either side. Reports without host sections compare ok
 * when no gate is requested.
 */
BenchDiffResult diffHostSections(const BenchReport &baseline,
                                 const BenchReport &fresh,
                                 double gate_ratio = 0.0,
                                 std::vector<std::string> *advisory
                                 = nullptr);

/**
 * Loose absolute anchor: every cell's cycle count must lie within
 * [paper/factor, paper*factor] of the paper's Table 3 value, so a
 * drifted baseline cannot quietly ratchet away from the paper.
 * (Measured/paper currently spans 0.58-1.21 across the grid.)
 */
BenchDiffResult checkPaperTargets(const BenchReport &report,
                                  double factor = 2.0);

} // namespace triarch::study

#endif // TRIARCH_STUDY_BENCH_REPORT_HH
