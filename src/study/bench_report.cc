#include "bench_report.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "study/machine_info.hh"
#include "study/study_json.hh"

namespace triarch::study
{

const std::string &
benchSchema()
{
    static const std::string schema = "triarch.bench.v1";
    return schema;
}

double
paperTable3Kcycles(MachineId machine, KernelId kernel)
{
    // Table 3 of the paper, in 10^3 cycles; rows follow MachineId,
    // columns follow KernelId declaration order.
    static const double table[5][3] = {
        {34250, 29013, 730},    // PPC
        {29288, 4931, 364},     // Altivec
        {554, 424, 35},         // VIRAM
        {1439, 196, 87},        // Imagine
        {146, 357, 19},         // Raw
    };
    const unsigned m = static_cast<unsigned>(machine);
    const unsigned k = static_cast<unsigned>(kernel);
    triarch_assert(m < 5 && k < 3, "no Table 3 target for machine ", m,
                   " kernel ", k);
    return table[m][k];
}

const BenchCell *
BenchReport::find(MachineId machine, KernelId kernel) const
{
    for (const BenchCell &cell : cells) {
        if (cell.machine == machine && cell.kernel == kernel)
            return &cell;
    }
    return nullptr;
}

const HostCellTiming *
HostSection::find(MachineId machine, KernelId kernel) const
{
    for (const HostCellTiming &cell : cells) {
        if (cell.machine == machine && cell.kernel == kernel)
            return &cell;
    }
    return nullptr;
}

BenchReport
buildBenchReport(const StudyConfig &cfg,
                 const std::vector<RunResult> &results)
{
    BenchReport report;
    report.schema = benchSchema();
    report.configHash = studyConfigHashHex(cfg);
    report.seed = cfg.seed;

    for (const RunResult &r : results) {
        triarch_assert(r.breakdown.total == r.cycles
                           && r.breakdown.categorySum() == r.cycles,
                       "breakdown does not partition the cycle count "
                       "for ", machineToken(r.machine), "/",
                       kernelToken(r.kernel));
        BenchCell cell;
        cell.machine = r.machine;
        cell.kernel = r.kernel;
        cell.cycles = r.cycles;
        cell.measuredUnbalanced = r.measuredUnbalanced;
        cell.validated = r.validated;
        cell.breakdown = r.breakdown;
        report.cells.push_back(cell);
    }

    std::sort(report.cells.begin(), report.cells.end(),
              [](const BenchCell &a, const BenchCell &b) {
                  if (a.machine != b.machine)
                      return a.machine < b.machine;
                  return a.kernel < b.kernel;
              });
    return report;
}

void
writeBenchReportJson(const BenchReport &report, std::ostream &os)
{
    json::Writer w(os);
    w.beginObject();
    w.member("schema", report.schema);
    w.member("config_hash", report.configHash);
    w.member("seed", report.seed);
    w.key("cells").beginArray();
    for (const BenchCell &cell : report.cells) {
        w.beginObject(json::Writer::Style::Compact);
        w.member("machine", machineToken(cell.machine));
        w.member("kernel", kernelToken(cell.kernel));
        w.member("cycles", cell.cycles);
        w.member("validated", cell.validated);
        if (cell.measuredUnbalanced)
            w.member("measured_unbalanced", *cell.measuredUnbalanced);
        w.key("breakdown");
        writeCycleBreakdown(w, cell.breakdown);
        w.endObject();
    }
    w.endArray();
    if (report.host) {
        const HostSection &host = *report.host;
        w.key("host").beginObject();
        w.member("warmup", host.warmup);
        w.member("repetitions", host.repetitions);
        w.member("pinned", host.pinned);
        w.member("cells_per_sec", host.cellsPerSec);
        w.key("cells").beginArray();
        for (const HostCellTiming &cell : host.cells) {
            w.beginObject(json::Writer::Style::Compact);
            w.member("machine", machineToken(cell.machine));
            w.member("kernel", kernelToken(cell.kernel));
            w.member("median_ns", cell.medianNs);
            w.member("p95_ns", cell.p95Ns);
            w.member("min_ns", cell.minNs);
            w.member("stddev_ns", cell.stddevNs);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.finish();
    os << "\n";
}

namespace
{

/** Set *error (once) and return nullopt. */
std::optional<BenchReport>
reject(std::string *error, const std::string &why)
{
    if (error && error->empty())
        *error = why;
    return std::nullopt;
}

} // namespace

std::optional<BenchReport>
parseBenchReportJson(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    const auto root = json::parse(text, error);
    if (!root)
        return std::nullopt;
    if (!root->isObject())
        return reject(error, "document root is not an object");

    BenchReport report;
    const json::Value *schema = root->field("schema");
    if (!schema || !schema->isString())
        return reject(error, "missing schema field");
    if (schema->text != benchSchema()) {
        return reject(error, "unsupported schema '" + schema->text
                                 + "' (want " + benchSchema() + ")");
    }
    report.schema = schema->text;

    const json::Value *hash = root->field("config_hash");
    if (!hash || !hash->isString())
        return reject(error, "missing config_hash field");
    report.configHash = hash->text;

    const json::Value *seed = root->field("seed");
    if (!seed || !seed->asU64(report.seed))
        return reject(error, "missing or non-integer seed field");

    const json::Value *cells = root->field("cells");
    if (!cells || !cells->isArray())
        return reject(error, "missing cells array");

    for (const json::Value &entry : cells->items) {
        if (!entry.isObject())
            return reject(error, "cell entry is not an object");
        // A bench cell carries the same wire fields as a RunResult
        // minus the notes; parseRunResult validates tokens and the
        // breakdown partition in one place.
        RunResult parsed;
        if (!parseRunResult(entry, &parsed, error))
            return std::nullopt;

        if (report.find(parsed.machine, parsed.kernel)) {
            return reject(error, "duplicate cell "
                                     + machineToken(parsed.machine) + "/"
                                     + kernelToken(parsed.kernel));
        }

        BenchCell cell;
        cell.machine = parsed.machine;
        cell.kernel = parsed.kernel;
        cell.cycles = parsed.cycles;
        cell.measuredUnbalanced = parsed.measuredUnbalanced;
        cell.validated = parsed.validated;
        cell.breakdown = parsed.breakdown;
        report.cells.push_back(std::move(cell));
    }

    if (const json::Value *host = root->field("host")) {
        if (!host->isObject())
            return reject(error, "host section is not an object");
        HostSection section;
        const json::Value *warmup = host->field("warmup");
        if (!warmup || !warmup->asU64(section.warmup))
            return reject(error, "host: missing or non-integer warmup");
        const json::Value *reps = host->field("repetitions");
        if (!reps || !reps->asU64(section.repetitions))
            return reject(error,
                          "host: missing or non-integer repetitions");
        const json::Value *pinned = host->field("pinned");
        if (!pinned || !pinned->isBool())
            return reject(error, "host: missing or non-bool pinned");
        section.pinned = pinned->boolean;
        const json::Value *rate = host->field("cells_per_sec");
        if (!rate || !rate->asDouble(section.cellsPerSec))
            return reject(error,
                          "host: missing or non-number cells_per_sec");
        const json::Value *hostCells = host->field("cells");
        if (!hostCells || !hostCells->isArray())
            return reject(error, "host: missing cells array");
        for (const json::Value &entry : hostCells->items) {
            if (!entry.isObject())
                return reject(error,
                              "host cell entry is not an object");
            HostCellTiming timing;
            const json::Value *machine = entry.field("machine");
            const json::Value *kernel = entry.field("kernel");
            if (!machine || !machine->isString() || !kernel
                || !kernel->isString()) {
                return reject(error,
                              "host cell: missing machine/kernel");
            }
            const auto mid = parseMachineToken(machine->text);
            const auto kid = parseKernelToken(kernel->text);
            if (!mid || !kid) {
                return reject(error, "host cell: unknown pair "
                                         + machine->text + "/"
                                         + kernel->text);
            }
            timing.machine = *mid;
            timing.kernel = *kid;
            const auto number = [&entry](const char *field_name,
                                         double &out) {
                const json::Value *v = entry.field(field_name);
                return v && v->asDouble(out);
            };
            if (!number("median_ns", timing.medianNs)
                || !number("p95_ns", timing.p95Ns)
                || !number("min_ns", timing.minNs)
                || !number("stddev_ns", timing.stddevNs)) {
                return reject(error,
                              "host cell: missing timing fields");
            }
            if (section.find(timing.machine, timing.kernel)) {
                return reject(error, "host: duplicate cell "
                                         + machine->text + "/"
                                         + kernel->text);
            }
            section.cells.push_back(timing);
        }
        report.host = std::move(section);
    }
    return report;
}

std::optional<BenchReport>
loadBenchReportFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open '" + path + "' for reading";
        return std::nullopt;
    }
    std::ostringstream text;
    text << is.rdbuf();
    auto report = parseBenchReportJson(text.str(), error);
    if (!report && error && !error->empty())
        *error = path + ": " + *error;
    return report;
}

namespace
{

std::string
cellName(const BenchCell &cell)
{
    return machineToken(cell.machine) + "/" + kernelToken(cell.kernel);
}

} // namespace

BenchDiffResult
diffBenchReports(const BenchReport &baseline, const BenchReport &fresh,
                 const BenchDiffOptions &opts)
{
    BenchDiffResult result;
    auto failf = [&result](const std::string &line) {
        result.failures.push_back(line);
    };

    if (baseline.configHash != fresh.configHash) {
        failf("config hash mismatch: baseline " + baseline.configHash
              + " vs fresh " + fresh.configHash
              + " — the runs measured different workloads");
    }
    if (baseline.seed != fresh.seed) {
        failf("seed mismatch: baseline " + std::to_string(baseline.seed)
              + " vs fresh " + std::to_string(fresh.seed));
    }

    for (const BenchCell &cell : fresh.cells) {
        if (!baseline.find(cell.machine, cell.kernel))
            failf(cellName(cell) + ": not in the baseline");
    }

    for (const BenchCell &base : baseline.cells) {
        const BenchCell *cell = fresh.find(base.machine, base.kernel);
        if (!cell) {
            failf(cellName(base) + ": missing from the fresh report");
            continue;
        }
        ++result.cellsCompared;

        if (!cell->validated)
            failf(cellName(base) + ": output no longer validates");

        const double allowed =
            opts.tolerance * static_cast<double>(base.cycles);
        const auto drift = [](std::uint64_t a, std::uint64_t b) {
            return a > b ? static_cast<double>(a - b)
                         : static_cast<double>(b - a);
        };

        if (drift(cell->cycles, base.cycles) > allowed) {
            failf(cellName(base) + ": cycles "
                  + std::to_string(cell->cycles) + " drifted from "
                  + std::to_string(base.cycles) + " (tolerance "
                  + std::to_string(opts.tolerance * 100.0) + "%)");
        }
        for (const auto cat : stats::allCycleCategories()) {
            if (drift(cell->breakdown[cat], base.breakdown[cat])
                > allowed) {
                failf(cellName(base) + ": "
                      + stats::cycleCategoryToken(cat) + " "
                      + std::to_string(cell->breakdown[cat])
                      + " drifted from "
                      + std::to_string(base.breakdown[cat]));
            }
        }
        if (base.measuredUnbalanced.has_value()
            != cell->measuredUnbalanced.has_value()) {
            failf(cellName(base)
                  + ": measured_unbalanced presence changed");
        } else if (base.measuredUnbalanced
                   && drift(*cell->measuredUnbalanced,
                            *base.measuredUnbalanced) > allowed) {
            failf(cellName(base) + ": measured_unbalanced "
                  + std::to_string(*cell->measuredUnbalanced)
                  + " drifted from "
                  + std::to_string(*base.measuredUnbalanced));
        }
    }
    return result;
}

BenchDiffResult
diffHostSections(const BenchReport &baseline, const BenchReport &fresh,
                 double gate_ratio, std::vector<std::string> *advisory)
{
    BenchDiffResult result;
    const bool gated = gate_ratio > 0.0;
    const auto note = [advisory](const std::string &line) {
        if (advisory)
            advisory->push_back(line);
    };

    if (!baseline.host || !fresh.host) {
        const std::string which = !baseline.host && !fresh.host
                                      ? "either report"
                                      : (!baseline.host ? "the baseline"
                                                        : "the fresh "
                                                          "report");
        if (gated) {
            result.failures.push_back(
                "host gate requested but " + which
                + " has no host section");
        } else {
            note("host: no host section in " + which
                 + "; nothing to compare");
        }
        return result;
    }

    const HostSection &base = *baseline.host;
    const HostSection &next = *fresh.host;
    std::ostringstream header;
    header << "host: baseline " << base.cellsPerSec
           << " cells/sec vs fresh " << next.cellsPerSec
           << " cells/sec (" << next.repetitions << " reps)";
    note(header.str());

    for (const HostCellTiming &cell : base.cells) {
        const HostCellTiming *freshCell =
            next.find(cell.machine, cell.kernel);
        const std::string name = machineToken(cell.machine) + "/"
                                 + kernelToken(cell.kernel);
        if (!freshCell) {
            if (gated) {
                result.failures.push_back(
                    "host " + name + ": missing from the fresh report");
            } else {
                note("host " + name + ": missing from the fresh report");
            }
            continue;
        }
        ++result.cellsCompared;
        const double ratio =
            cell.medianNs > 0.0 ? freshCell->medianNs / cell.medianNs
                                : 0.0;
        std::ostringstream line;
        line << "host " << name << ": median "
             << freshCell->medianNs / 1e6 << " ms vs baseline "
             << cell.medianNs / 1e6 << " ms (" << std::setprecision(3)
             << ratio << "x)";
        note(line.str());
        if (gated && cell.medianNs > 0.0
            && freshCell->medianNs > cell.medianNs * gate_ratio) {
            std::ostringstream failure;
            failure << "host " << name << ": median "
                    << freshCell->medianNs << " ns exceeds baseline "
                    << cell.medianNs << " ns by more than the "
                    << gate_ratio << "x gate";
            result.failures.push_back(failure.str());
        }
    }
    return result;
}

BenchDiffResult
checkPaperTargets(const BenchReport &report, double factor)
{
    triarch_assert(factor >= 1.0, "paper-target factor must be >= 1");
    BenchDiffResult result;
    for (const BenchCell &cell : report.cells) {
        ++result.cellsCompared;
        const double paper =
            paperTable3Kcycles(cell.machine, cell.kernel) * 1000.0;
        const double ratio = static_cast<double>(cell.cycles) / paper;
        if (ratio < 1.0 / factor || ratio > factor) {
            std::ostringstream os;
            os << cellName(cell) << ": " << cell.cycles
               << " cycles is " << std::setprecision(3) << ratio
               << "x the paper's Table 3 value (" << paper
               << "), outside the " << factor << "x sanity band";
            result.failures.push_back(os.str());
        }
    }
    return result;
}

} // namespace triarch::study
