#include "bench_report.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace triarch::study
{

const std::string &
benchSchema()
{
    static const std::string schema = "triarch.bench.v1";
    return schema;
}

double
paperTable3Kcycles(MachineId machine, KernelId kernel)
{
    // Table 3 of the paper, in 10^3 cycles; rows follow MachineId,
    // columns follow KernelId declaration order.
    static const double table[5][3] = {
        {34250, 29013, 730},    // PPC
        {29288, 4931, 364},     // Altivec
        {554, 424, 35},         // VIRAM
        {1439, 196, 87},        // Imagine
        {146, 357, 19},         // Raw
    };
    const unsigned m = static_cast<unsigned>(machine);
    const unsigned k = static_cast<unsigned>(kernel);
    triarch_assert(m < 5 && k < 3, "no Table 3 target for machine ", m,
                   " kernel ", k);
    return table[m][k];
}

const BenchCell *
BenchReport::find(MachineId machine, KernelId kernel) const
{
    for (const BenchCell &cell : cells) {
        if (cell.machine == machine && cell.kernel == kernel)
            return &cell;
    }
    return nullptr;
}

BenchReport
buildBenchReport(const StudyConfig &cfg,
                 const std::vector<RunResult> &results)
{
    BenchReport report;
    report.schema = benchSchema();
    std::ostringstream hash;
    hash << std::hex << studyConfigHash(cfg);
    report.configHash = hash.str();
    report.seed = cfg.seed;

    for (const RunResult &r : results) {
        triarch_assert(r.breakdown.total == r.cycles
                           && r.breakdown.categorySum() == r.cycles,
                       "breakdown does not partition the cycle count "
                       "for ", machineToken(r.machine), "/",
                       kernelToken(r.kernel));
        BenchCell cell;
        cell.machine = r.machine;
        cell.kernel = r.kernel;
        cell.cycles = r.cycles;
        cell.measuredUnbalanced = r.measuredUnbalanced;
        cell.validated = r.validated;
        cell.breakdown = r.breakdown;
        report.cells.push_back(cell);
    }

    std::sort(report.cells.begin(), report.cells.end(),
              [](const BenchCell &a, const BenchCell &b) {
                  if (a.machine != b.machine)
                      return a.machine < b.machine;
                  return a.kernel < b.kernel;
              });
    return report;
}

void
writeBenchReportJson(const BenchReport &report, std::ostream &os)
{
    os << "{\n  \"schema\": \"" << report.schema << "\",\n"
       << "  \"config_hash\": \"" << report.configHash << "\",\n"
       << "  \"seed\": " << report.seed << ",\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const BenchCell &cell = report.cells[i];
        os << "    {\"machine\": \"" << machineToken(cell.machine)
           << "\", \"kernel\": \"" << kernelToken(cell.kernel)
           << "\", \"cycles\": " << cell.cycles << ", \"validated\": "
           << (cell.validated ? "true" : "false");
        if (cell.measuredUnbalanced) {
            os << ", \"measured_unbalanced\": "
               << *cell.measuredUnbalanced;
        }
        os << ",\n     \"breakdown\": {";
        for (std::size_t c = 0; c < stats::kNumCycleCategories; ++c) {
            const auto cat = stats::allCycleCategories()[c];
            os << (c ? ", " : "") << "\""
               << stats::cycleCategoryToken(cat)
               << "\": " << cell.breakdown[cat];
        }
        os << "}}" << (i + 1 < report.cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

// ---------------------------------------------------------------
// A minimal JSON reader — just enough for the documents this layer
// writes (objects, arrays, strings, numbers, booleans, null). The
// repo deliberately has no external JSON dependency.
// ---------------------------------------------------------------

namespace
{

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text;   //!< string value, or raw number text
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    field(const std::string &name) const
    {
        for (const auto &[key, value] : fields) {
            if (key == name)
                return &value;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : in(text) {}

    std::optional<JsonValue>
    parse(std::string *error)
    {
        err = error;
        JsonValue root;
        if (!parseValue(root))
            return std::nullopt;
        skipWs();
        if (pos != in.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return root;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (err && err->empty()) {
            *err = "JSON error at offset " + std::to_string(pos) + ": "
                   + why;
        }
    }

    void
    skipWs()
    {
        while (pos < in.size()
               && std::isspace(static_cast<unsigned char>(in[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (in.compare(pos, n, word) != 0) {
            fail(std::string("expected '") + word + "'");
            return false;
        }
        pos += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= in.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (in[pos]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos;     // '{'
        skipWs();
        if (pos < in.size() && in[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= in.size() || in[pos] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= in.size() || in[pos] != ':') {
                fail("expected ':' after key");
                return false;
            }
            ++pos;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.fields.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos < in.size() && in[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < in.size() && in[pos] == '}') {
                ++pos;
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos;     // '['
        skipWs();
        if (pos < in.size() && in[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.items.push_back(std::move(value));
            skipWs();
            if (pos < in.size() && in[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < in.size() && in[pos] == ']') {
                ++pos;
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos;      // opening quote
        while (pos < in.size() && in[pos] != '"') {
            char c = in[pos];
            if (c == '\\') {
                if (pos + 1 >= in.size()) {
                    fail("dangling escape");
                    return false;
                }
                const char esc = in[pos + 1];
                pos += 2;
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > in.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    const unsigned code = static_cast<unsigned>(
                        std::strtoul(in.substr(pos, 4).c_str(),
                                     nullptr, 16));
                    pos += 4;
                    // Only the ASCII subset our writers emit.
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return false;
                }
            } else {
                out += c;
                ++pos;
            }
        }
        if (pos >= in.size()) {
            fail("unterminated string");
            return false;
        }
        ++pos;      // closing quote
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Number;
        const std::size_t start = pos;
        if (pos < in.size() && (in[pos] == '-' || in[pos] == '+'))
            ++pos;
        while (pos < in.size()
               && (std::isdigit(static_cast<unsigned char>(in[pos]))
                   || in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E'
                   || in[pos] == '-' || in[pos] == '+'))
            ++pos;
        if (pos == start) {
            fail("expected a value");
            return false;
        }
        out.text = in.substr(start, pos - start);
        return true;
    }

    const std::string &in;
    std::size_t pos = 0;
    std::string *err = nullptr;
};

bool
asU64(const JsonValue &v, std::uint64_t &out)
{
    if (v.kind != JsonValue::Kind::Number)
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(v.text.c_str(), &end, 10);
    return errno == 0 && end && *end == '\0';
}

std::optional<MachineId>
machineFromToken(const std::string &token)
{
    for (MachineId m : allMachines()) {
        if (machineToken(m) == token)
            return m;
    }
    return std::nullopt;
}

std::optional<KernelId>
kernelFromToken(const std::string &token)
{
    for (KernelId k : allKernels()) {
        if (kernelToken(k) == token)
            return k;
    }
    return std::nullopt;
}

/** Set *error (once) and return nullopt. */
std::optional<BenchReport>
reject(std::string *error, const std::string &why)
{
    if (error && error->empty())
        *error = why;
    return std::nullopt;
}

} // namespace

std::optional<BenchReport>
parseBenchReportJson(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    JsonParser parser(text);
    const auto root = parser.parse(error);
    if (!root)
        return std::nullopt;
    if (root->kind != JsonValue::Kind::Object)
        return reject(error, "document root is not an object");

    BenchReport report;
    const JsonValue *schema = root->field("schema");
    if (!schema || schema->kind != JsonValue::Kind::String)
        return reject(error, "missing schema field");
    if (schema->text != benchSchema()) {
        return reject(error, "unsupported schema '" + schema->text
                                 + "' (want " + benchSchema() + ")");
    }
    report.schema = schema->text;

    const JsonValue *hash = root->field("config_hash");
    if (!hash || hash->kind != JsonValue::Kind::String)
        return reject(error, "missing config_hash field");
    report.configHash = hash->text;

    const JsonValue *seed = root->field("seed");
    if (!seed || !asU64(*seed, report.seed))
        return reject(error, "missing or non-integer seed field");

    const JsonValue *cells = root->field("cells");
    if (!cells || cells->kind != JsonValue::Kind::Array)
        return reject(error, "missing cells array");

    for (const JsonValue &entry : cells->items) {
        if (entry.kind != JsonValue::Kind::Object)
            return reject(error, "cell entry is not an object");
        BenchCell cell;

        const JsonValue *machine = entry.field("machine");
        if (!machine || machine->kind != JsonValue::Kind::String)
            return reject(error, "cell missing machine token");
        const auto mid = machineFromToken(machine->text);
        if (!mid) {
            return reject(error, "unknown machine token '"
                                     + machine->text + "'");
        }
        cell.machine = *mid;

        const JsonValue *kernel = entry.field("kernel");
        if (!kernel || kernel->kind != JsonValue::Kind::String)
            return reject(error, "cell missing kernel token");
        const auto kid = kernelFromToken(kernel->text);
        if (!kid) {
            return reject(error, "unknown kernel token '"
                                     + kernel->text + "'");
        }
        cell.kernel = *kid;

        const std::string where =
            machine->text + "/" + kernel->text;
        if (report.find(cell.machine, cell.kernel))
            return reject(error, "duplicate cell " + where);

        const JsonValue *cycles = entry.field("cycles");
        if (!cycles || !asU64(*cycles, cell.cycles))
            return reject(error, where + ": bad cycles field");

        const JsonValue *validated = entry.field("validated");
        if (!validated || validated->kind != JsonValue::Kind::Bool)
            return reject(error, where + ": bad validated field");
        cell.validated = validated->boolean;

        if (const JsonValue *mu = entry.field("measured_unbalanced")) {
            std::uint64_t value = 0;
            if (!asU64(*mu, value)) {
                return reject(error,
                              where + ": bad measured_unbalanced");
            }
            cell.measuredUnbalanced = value;
        }

        const JsonValue *breakdown = entry.field("breakdown");
        if (!breakdown || breakdown->kind != JsonValue::Kind::Object)
            return reject(error, where + ": missing breakdown object");
        for (const auto cat : stats::allCycleCategories()) {
            const JsonValue *v =
                breakdown->field(stats::cycleCategoryToken(cat));
            std::uint64_t value = 0;
            if (!v || !asU64(*v, value)) {
                return reject(error,
                              where + ": breakdown missing category '"
                                  + stats::cycleCategoryToken(cat)
                                  + "'");
            }
            cell.breakdown.cycles[static_cast<unsigned>(cat)] = value;
        }
        cell.breakdown.total = cell.cycles;
        if (cell.breakdown.categorySum() != cell.cycles) {
            return reject(
                error, where + ": breakdown sums to "
                           + std::to_string(cell.breakdown.categorySum())
                           + " but cycles is "
                           + std::to_string(cell.cycles));
        }

        report.cells.push_back(std::move(cell));
    }
    return report;
}

std::optional<BenchReport>
loadBenchReportFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open '" + path + "' for reading";
        return std::nullopt;
    }
    std::ostringstream text;
    text << is.rdbuf();
    auto report = parseBenchReportJson(text.str(), error);
    if (!report && error && !error->empty())
        *error = path + ": " + *error;
    return report;
}

namespace
{

std::string
cellName(const BenchCell &cell)
{
    return machineToken(cell.machine) + "/" + kernelToken(cell.kernel);
}

} // namespace

BenchDiffResult
diffBenchReports(const BenchReport &baseline, const BenchReport &fresh,
                 const BenchDiffOptions &opts)
{
    BenchDiffResult result;
    auto failf = [&result](const std::string &line) {
        result.failures.push_back(line);
    };

    if (baseline.configHash != fresh.configHash) {
        failf("config hash mismatch: baseline " + baseline.configHash
              + " vs fresh " + fresh.configHash
              + " — the runs measured different workloads");
    }
    if (baseline.seed != fresh.seed) {
        failf("seed mismatch: baseline " + std::to_string(baseline.seed)
              + " vs fresh " + std::to_string(fresh.seed));
    }

    for (const BenchCell &cell : fresh.cells) {
        if (!baseline.find(cell.machine, cell.kernel))
            failf(cellName(cell) + ": not in the baseline");
    }

    for (const BenchCell &base : baseline.cells) {
        const BenchCell *cell = fresh.find(base.machine, base.kernel);
        if (!cell) {
            failf(cellName(base) + ": missing from the fresh report");
            continue;
        }
        ++result.cellsCompared;

        if (!cell->validated)
            failf(cellName(base) + ": output no longer validates");

        const double allowed =
            opts.tolerance * static_cast<double>(base.cycles);
        const auto drift = [](std::uint64_t a, std::uint64_t b) {
            return a > b ? static_cast<double>(a - b)
                         : static_cast<double>(b - a);
        };

        if (drift(cell->cycles, base.cycles) > allowed) {
            failf(cellName(base) + ": cycles "
                  + std::to_string(cell->cycles) + " drifted from "
                  + std::to_string(base.cycles) + " (tolerance "
                  + std::to_string(opts.tolerance * 100.0) + "%)");
        }
        for (const auto cat : stats::allCycleCategories()) {
            if (drift(cell->breakdown[cat], base.breakdown[cat])
                > allowed) {
                failf(cellName(base) + ": "
                      + stats::cycleCategoryToken(cat) + " "
                      + std::to_string(cell->breakdown[cat])
                      + " drifted from "
                      + std::to_string(base.breakdown[cat]));
            }
        }
        if (base.measuredUnbalanced.has_value()
            != cell->measuredUnbalanced.has_value()) {
            failf(cellName(base)
                  + ": measured_unbalanced presence changed");
        } else if (base.measuredUnbalanced
                   && drift(*cell->measuredUnbalanced,
                            *base.measuredUnbalanced) > allowed) {
            failf(cellName(base) + ": measured_unbalanced "
                  + std::to_string(*cell->measuredUnbalanced)
                  + " drifted from "
                  + std::to_string(*base.measuredUnbalanced));
        }
    }
    return result;
}

BenchDiffResult
checkPaperTargets(const BenchReport &report, double factor)
{
    triarch_assert(factor >= 1.0, "paper-target factor must be >= 1");
    BenchDiffResult result;
    for (const BenchCell &cell : report.cells) {
        ++result.cellsCompared;
        const double paper =
            paperTable3Kcycles(cell.machine, cell.kernel) * 1000.0;
        const double ratio = static_cast<double>(cell.cycles) / paper;
        if (ratio < 1.0 / factor || ratio > factor) {
            std::ostringstream os;
            os << cellName(cell) << ": " << cell.cycles
               << " cycles is " << std::setprecision(3) << ratio
               << "x the paper's Table 3 value (" << paper
               << "), outside the " << factor << "x sanity band";
            result.failures.push_back(os.str());
        }
    }
    return result;
}

} // namespace triarch::study
