#include "perf_model.hh"

#include <algorithm>

#include "kernels/fft.hh"
#include "sim/logging.hh"

namespace triarch::study
{

Bound
cornerTurnBound(MachineId id, unsigned n)
{
    const std::uint64_t words = static_cast<std::uint64_t>(n) * n;

    switch (id) {
      case MachineId::Viram: {
        // Strided column loads run at the 4 address generators;
        // unit-stride stores at the full 8 words/cycle (on-chip).
        const Cycles loads = words / 4;
        const Cycles stores = words / 8;
        return {loads + stores, "on-chip DRAM (4 strided + 8 unit w/c)"};
      }
      case MachineId::Imagine: {
        // Every word crosses the 2 words/cycle off-chip interface
        // twice (read + write).
        return {2 * words / 2, "off-chip bandwidth (2 w/c)"};
      }
      case MachineId::Raw: {
        // One load + one store instruction per word across 16
        // single-issue tiles; the 28 w/c of port bandwidth does not
        // bind.
        const Cycles issue = 2 * words / 16;
        const Cycles memory = 2 * words / 28;
        return issue >= memory
                   ? Bound{issue, "tile load/store issue (16/cycle)"}
                   : Bound{memory, "DRAM ports"};
      }
      case MachineId::PpcScalar:
      case MachineId::PpcAltivec: {
        // Front-side bus: read + write + write-allocate fill, at
        // ~0.8 words/cycle.
        const auto traffic = static_cast<double>(3 * words);
        return {static_cast<Cycles>(traffic / 0.8),
                "front-side bus (~0.8 w/c)"};
      }
    }
    triarch_panic("unknown machine");
}

Bound
cslcBound(MachineId id, const kernels::CslcConfig &cfg)
{
    // Transform flops: mixed radix-4/2 on VIRAM and Imagine; radix-2
    // (about 1.5x the operations) on Raw. Weight application adds
    // 16 flops per main-channel bin.
    const std::uint64_t weightFlops =
        static_cast<std::uint64_t>(cfg.subBands) * cfg.mainChannels
        * cfg.subBandLen * 16;
    const std::uint64_t mixedFlops =
        cfg.transforms() * kernels::mixed128Ops().flops()
        + weightFlops;
    const std::uint64_t radix2Flops =
        cfg.transforms() * kernels::radix2Ops(cfg.subBandLen).flops()
        + weightFlops;

    switch (id) {
      case MachineId::Viram:
        // Vector FP issues on VAU0 only: 8 flops/cycle.
        return {mixedFlops / 8, "vector FP on VAU0 (8 flops/cycle)"};
      case MachineId::Imagine:
        // 8 clusters x (3 adders + 2 multipliers); the divider is
        // useless for the FFT.
        return {mixedFlops / 40, "cluster ALUs (40 flops/cycle)"};
      case MachineId::Raw:
        // 16 single-issue tiles, one flop per tile per cycle.
        return {radix2Flops / 16, "tile issue (16 flops/cycle)"};
      case MachineId::PpcScalar:
        return {mixedFlops / 1, "single FPU (1 flop/cycle)"};
      case MachineId::PpcAltivec:
        return {mixedFlops / 4, "AltiVec (4 flops/cycle)"};
    }
    triarch_panic("unknown machine");
}

Bound
beamSteeringBound(MachineId id, const kernels::BeamConfig &cfg)
{
    const std::uint64_t outputs = cfg.outputs();
    const std::uint64_t ops = outputs * 6;      // 5 adds + 1 shift
    const std::uint64_t words = outputs * 3;    // 2 reads + 1 write

    switch (id) {
      case MachineId::Viram: {
        const Cycles compute = ops / 16;    // 2 VAUs x 8 lanes
        const Cycles memory = words / 8;    // unit-stride
        return compute >= memory
                   ? Bound{compute, "integer VAUs (16 ops/cycle)"}
                   : Bound{memory, "on-chip DRAM"};
      }
      case MachineId::Imagine: {
        const Cycles compute = ops / 24;    // 8 clusters x 3 adders
        const Cycles memory = words / 2;    // off-chip streams
        return memory >= compute
                   ? Bound{memory, "off-chip bandwidth (2 w/c)"}
                   : Bound{compute, "cluster adders"};
      }
      case MachineId::Raw: {
        const Cycles compute = ops / 16;    // 1 op/tile/cycle
        const Cycles memory = words / 28;
        return compute >= memory
                   ? Bound{compute, "tile issue (16 ops/cycle)"}
                   : Bound{memory, "DRAM ports"};
      }
      case MachineId::PpcScalar:
        return {ops / 2, "integer issue (2 ops/cycle)"};
      case MachineId::PpcAltivec:
        return {ops / 8, "AltiVec integer (2 x 4 ops/cycle)"};
    }
    triarch_panic("unknown machine");
}

} // namespace triarch::study
