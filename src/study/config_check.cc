#include "config_check.hh"

#include "kernels/beam_steering.hh"

namespace triarch::study
{

namespace
{

// Caps that keep workload footprints inside the simulated memories
// (VIRAM's on-chip DRAM is 13 MB) and every index computation inside
// 32 bits. Generous relative to the paper's shapes.
constexpr unsigned maxMatrixSize = 8192;
constexpr unsigned maxSamples = 1u << 20;
constexpr unsigned maxSubBands = 4096;
constexpr unsigned maxElements = 1u << 20;
constexpr unsigned maxDirections = 4096;
constexpr unsigned maxDwells = 4096;

std::string
num(unsigned v)
{
    return std::to_string(v);
}

} // namespace

std::string
describe(const ConfigError &err)
{
    return err.field + ": " + err.message;
}

std::vector<ConfigError>
configErrors(const StudyConfig &cfg)
{
    std::vector<ConfigError> errs;
    auto reject = [&errs](std::string field, std::string message) {
        errs.push_back({std::move(field), std::move(message)});
    };

    // Corner turn: every machine mapping tiles the matrix (VIRAM
    // 64-element strips, Raw 64x64 blocks, Imagine 8-row strips,
    // Altivec 4x4 register tiles); 64 covers them all.
    if (cfg.matrixSize == 0) {
        reject("matrixSize", "matrix is empty");
    } else if (cfg.matrixSize < 64 || cfg.matrixSize % 64 != 0) {
        reject("matrixSize",
               "must be a positive multiple of 64 (the machine "
               "mappings tile in 64-element strips/blocks), got "
               + num(cfg.matrixSize));
    } else if (cfg.matrixSize > maxMatrixSize) {
        reject("matrixSize",
               "must be <= " + num(maxMatrixSize)
               + " to fit the simulated memories, got "
               + num(cfg.matrixSize));
    }

    // CSLC: the mappings and the two-stage weight estimator are
    // built for the paper's channel count and sub-band length.
    if (cfg.cslc.mainChannels != 2) {
        reject("cslc.mainChannels",
               "the mappings are built for exactly 2 main channels, "
               "got " + num(cfg.cslc.mainChannels));
    }
    if (cfg.cslc.auxChannels != 2) {
        reject("cslc.auxChannels",
               "the two-stage sequential canceller estimates weights "
               "for exactly 2 auxiliary channels, got "
               + num(cfg.cslc.auxChannels));
    }
    if (cfg.cslc.subBandLen < 2
        || (cfg.cslc.subBandLen & (cfg.cslc.subBandLen - 1)) != 0) {
        reject("cslc.subBandLen",
               "must be a power of two >= 2 for the radix-2 FFT, "
               "got " + num(cfg.cslc.subBandLen));
    } else if (cfg.cslc.subBandLen != 128) {
        reject("cslc.subBandLen",
               "the mixed-radix FFT and every architecture's inner "
               "loop are sized for 128-sample sub-bands, got "
               + num(cfg.cslc.subBandLen));
    }
    if (cfg.cslc.subBands == 0)
        reject("cslc.subBands", "at least one sub-band is required");
    else if (cfg.cslc.subBands > maxSubBands) {
        reject("cslc.subBands",
               "must be <= " + num(maxSubBands) + ", got "
               + num(cfg.cslc.subBands));
    }
    if (cfg.cslc.subBandStride == 0) {
        reject("cslc.subBandStride",
               "must be >= 1 so consecutive sub-bands advance "
               "through the interval");
    }
    if (cfg.cslc.samples > maxSamples) {
        reject("cslc.samples",
               "must be <= " + num(maxSamples) + ", got "
               + num(cfg.cslc.samples));
    } else if (cfg.cslc.subBands >= 1 && cfg.cslc.subBandStride >= 1
               && cfg.cslc.subBands <= maxSubBands) {
        // The tiling equation, checked 64-bit so it cannot wrap.
        const std::uint64_t covered =
            static_cast<std::uint64_t>(cfg.cslc.subBands - 1)
                * cfg.cslc.subBandStride
            + cfg.cslc.subBandLen;
        if (covered != cfg.cslc.samples) {
            reject("cslc.samples",
                   "sub-band tiling does not cover the interval: "
                   "(subBands-1)*subBandStride + subBandLen = "
                   + std::to_string(covered) + " but samples = "
                   + num(cfg.cslc.samples));
        }
    }

    // Jammer tones are FFT bin indices of the full interval.
    for (std::size_t i = 0; i < cfg.jammerBins.size(); ++i) {
        if (cfg.jammerBins[i] >= cfg.cslc.samples) {
            reject("jammerBins[" + std::to_string(i) + "]",
                   "bin " + num(cfg.jammerBins[i])
                   + " is out of range for a "
                   + num(cfg.cslc.samples) + "-sample interval");
        }
    }

    // Beam steering: the study needs at least one output, and the
    // fixed-point shift must stay inside the 32-bit accumulator.
    if (cfg.beam.elements == 0)
        reject("beam.elements", "at least one element is required");
    else if (cfg.beam.elements > maxElements) {
        reject("beam.elements",
               "must be <= " + num(maxElements) + ", got "
               + num(cfg.beam.elements));
    }
    if (cfg.beam.directions == 0)
        reject("beam.directions", "at least one direction is required");
    else if (cfg.beam.directions > maxDirections) {
        reject("beam.directions",
               "must be <= " + num(maxDirections) + ", got "
               + num(cfg.beam.directions));
    }
    if (cfg.beam.dwells == 0)
        reject("beam.dwells", "at least one dwell is required");
    else if (cfg.beam.dwells > maxDwells) {
        reject("beam.dwells",
               "must be <= " + num(maxDwells) + ", got "
               + num(cfg.beam.dwells));
    }
    if (auto err = kernels::beamShapeError(cfg.beam))
        reject("beam.shift", *err);

    return errs;
}

std::optional<ConfigError>
validateConfig(const StudyConfig &cfg)
{
    std::vector<ConfigError> errs = configErrors(cfg);
    if (errs.empty())
        return std::nullopt;
    return std::move(errs.front());
}

} // namespace triarch::study
