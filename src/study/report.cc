#include "report.hh"

#include <cmath>

#include "sim/logging.hh"

namespace triarch::study
{

const RunResult &
findResult(const std::vector<RunResult> &results, MachineId machine,
           KernelId kernel)
{
    for (const auto &r : results) {
        if (r.machine == machine && r.kernel == kernel)
            return r;
    }
    triarch_panic("missing result for ", machineName(machine), " / ",
                  kernelName(kernel));
}

Table
buildTable1()
{
    Table t("Table 1. Peak throughput (32-bit words per cycle)");
    std::vector<std::string> head = {""};
    for (MachineId id : researchMachines())
        head.push_back(machineName(id));
    t.header(head);

    auto row = [&](const std::string &label, auto get) {
        std::vector<std::string> cells = {label};
        for (MachineId id : researchMachines()) {
            const auto &info = machineInfo(id);
            cells.push_back(get(info));
        }
        t.row(cells);
    };
    row("On-chip Read/Write", [](const MachineInfo &info) {
        std::string s = Table::num(info.onchipWordsPerCycle, 0);
        if (!info.onchipNote.empty())
            s += " (" + info.onchipNote + ")";
        return s;
    });
    row("Off-chip DRAM Read/Write", [](const MachineInfo &info) {
        std::string s = Table::num(info.offchipWordsPerCycle, 0);
        if (!info.offchipNote.empty())
            s += " (" + info.offchipNote + ")";
        return s;
    });
    row("Computation", [](const MachineInfo &info) {
        return Table::num(info.computeWordsPerCycle, 0);
    });
    return t;
}

Table
buildTable2()
{
    Table t("Table 2. Processor Parameters");
    std::vector<MachineId> cols = {MachineId::PpcScalar,
                                   MachineId::Viram, MachineId::Imagine,
                                   MachineId::Raw};
    std::vector<std::string> head = {""};
    for (MachineId id : cols) {
        head.push_back(id == MachineId::PpcScalar
                           ? "PPC G4"
                           : machineName(id));
    }
    t.header(head);

    std::vector<std::string> clock = {"Clock (MHz)"};
    std::vector<std::string> alus = {"# of ALUs"};
    std::vector<std::string> gflops = {"Peak GFLOPS"};
    for (MachineId id : cols) {
        const auto &info = machineInfo(id);
        clock.push_back(Table::num(std::uint64_t{info.clockMhz}));
        alus.push_back(std::to_string(info.numAlus));
        gflops.push_back(Table::num(info.peakGflops, 2));
    }
    t.row(clock);
    t.row(alus);
    t.row(gflops);
    return t;
}

Table
buildTable3(const std::vector<RunResult> &results)
{
    Table t("Table 3. Experimental results (cycles in 10^3)");
    std::vector<std::string> head = {""};
    for (KernelId k : allKernels())
        head.push_back(kernelName(k));
    t.header(head);

    for (MachineId machine : allMachines()) {
        std::vector<std::string> cells = {machineName(machine)};
        for (KernelId kernel : allKernels()) {
            const auto &r = findResult(results, machine, kernel);
            triarch_assert(r.validated, machineName(machine), " ",
                           kernelName(kernel),
                           " produced an invalid result");
            cells.push_back(Table::num(r.cycles / 1000));
        }
        t.row(cells);
    }
    return t;
}

Table
buildTable4(const StudyConfig &cfg,
            const std::vector<RunResult> &results)
{
    Table t("Table 4. Performance-model bounds vs measured cycles "
            "(10^3)");
    t.header({"Machine", "Kernel", "Model bound", "Measured",
              "Bound/Measured", "Binding resource"});

    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels()) {
            Bound bound;
            switch (kernel) {
              case KernelId::CornerTurn:
                bound = cornerTurnBound(machine, cfg.matrixSize);
                break;
              case KernelId::Cslc:
                bound = cslcBound(machine, cfg.cslc);
                break;
              case KernelId::BeamSteering:
                bound = beamSteeringBound(machine, cfg.beam);
                break;
            }
            const auto &r = findResult(results, machine, kernel);
            t.row({machineName(machine), kernelName(kernel),
                   Table::num(bound.cycles / 1000),
                   Table::num(r.cycles / 1000),
                   Table::num(static_cast<double>(bound.cycles)
                                  / static_cast<double>(r.cycles),
                              2),
                   bound.resource});
        }
    }
    return t;
}

double
speedupVsAltivec(const std::vector<RunResult> &results,
                 MachineId machine, KernelId kernel, bool perTime)
{
    const auto &base =
        findResult(results, MachineId::PpcAltivec, kernel);
    const auto &r = findResult(results, machine, kernel);
    double speedup = static_cast<double>(base.cycles)
                     / static_cast<double>(r.cycles);
    if (perTime) {
        speedup *= static_cast<double>(machineInfo(machine).clockMhz)
                   / machineInfo(MachineId::PpcAltivec).clockMhz;
    }
    return speedup;
}

namespace
{

BarChart
buildSpeedupFigure(const std::vector<RunResult> &results,
                   const std::string &title, bool perTime)
{
    BarChart chart(title, true);
    std::vector<MachineId> bars = {MachineId::PpcScalar,
                                   MachineId::Viram, MachineId::Imagine,
                                   MachineId::Raw};
    for (KernelId kernel : allKernels()) {
        chart.group(kernelName(kernel));
        for (MachineId machine : bars) {
            chart.bar(machineName(machine),
                      speedupVsAltivec(results, machine, kernel,
                                       perTime));
        }
    }
    return chart;
}

} // namespace

BarChart
buildFigure8(const std::vector<RunResult> &results)
{
    return buildSpeedupFigure(
        results, "Figure 8. Speedup vs PPC with AltiVec (cycles)",
        false);
}

BarChart
buildFigure9(const std::vector<RunResult> &results)
{
    return buildSpeedupFigure(
        results,
        "Figure 9. Speedup vs PPC with AltiVec (execution time; "
        "PPC 1 GHz, VIRAM 200 MHz, Imagine 300 MHz, Raw 300 MHz)",
        true);
}

} // namespace triarch::study
