/**
 * @file
 * The Section 2.5 performance model: simple compute- and
 * bandwidth-bound estimates of each kernel's best-case cycle count
 * on each research architecture, built only from the Table 1/2
 * numbers and kernel operation counts. The paper uses this model to
 * explain where the measured results fall short (Table 4 and the
 * per-kernel analysis of Section 4); the bench reproduces that
 * comparison.
 */

#ifndef TRIARCH_STUDY_PERF_MODEL_HH
#define TRIARCH_STUDY_PERF_MODEL_HH

#include <string>

#include "kernels/beam_steering.hh"
#include "kernels/corner_turn.hh"
#include "kernels/cslc.hh"
#include "sim/types.hh"
#include "study/machine_info.hh"

namespace triarch::study
{

/** A lower-bound estimate plus the resource that sets it. */
struct Bound
{
    Cycles cycles = 0;
    std::string resource;   //!< e.g. "off-chip bandwidth"
};

/**
 * Corner-turn bound for an n x n word matrix: each word is read
 * once and written once; the binding resource is strided/sequential
 * memory bandwidth (VIRAM address generators, Imagine's two memory
 * streams) or, on Raw, the tiles' load/store issue rate.
 */
Bound cornerTurnBound(MachineId id, unsigned n);

/**
 * CSLC bound: transform flops (mixed-radix on VIRAM and Imagine,
 * radix-2 on Raw per Section 3.2) plus weight-application flops,
 * divided by the machine's peak useful flops per cycle (VIRAM's
 * second VAU cannot issue FP; Imagine's dividers are useless here).
 */
Bound cslcBound(MachineId id, const kernels::CslcConfig &cfg);

/**
 * Beam-steering bound: 5 adds + 1 shift per output against integer
 * throughput, or 3 words per output against memory bandwidth,
 * whichever binds (Section 4.4: memory for Imagine, compute for
 * VIRAM and Raw).
 */
Bound beamSteeringBound(MachineId id, const kernels::BeamConfig &cfg);

} // namespace triarch::study

#endif // TRIARCH_STUDY_PERF_MODEL_HH
