#include "host_measure.hh"

#include "sim/logging.hh"
#include "study/machine_info.hh"
#include "study/registry.hh"

namespace triarch::study
{

HostSection
measureHostSection(const StudyConfig &cfg,
                   const std::vector<Cell> &cells,
                   const host::MeasureOptions &opts,
                   const MappingRegistry *mappings)
{
    if (!mappings)
        mappings = &MappingRegistry::builtin();
    const auto work = buildWorkloads(cfg);

    HostSection section;
    section.warmup = opts.warmup;
    section.repetitions = std::max(opts.repetitions, 1u);

    // Pin once for the whole sweep; per-cell measureRepeated calls
    // then skip the pin (already effective for this thread).
    bool pinned = false;
    if (opts.pinCpu >= 0)
        pinned = host::pinToCpu(opts.pinCpu);
    section.pinned = pinned;
    host::MeasureOptions cellOpts = opts;
    cellOpts.pinCpu = -1;

    double medianSumNs = 0.0;
    for (const Cell &cell : cells) {
        const KernelMapping *mapping =
            mappings->find(cell.machine, cell.kernel);
        triarch_assert(mapping != nullptr, "no mapping for ",
                       machineToken(cell.machine), "/",
                       kernelToken(cell.kernel));
        const host::Measurement m = host::measureRepeated(
            cellOpts, [&] { (void)(*mapping)(cfg, *work); });

        HostCellTiming timing;
        timing.machine = cell.machine;
        timing.kernel = cell.kernel;
        timing.medianNs = m.stats.medianNs;
        timing.p95Ns = m.stats.p95Ns;
        timing.minNs = m.stats.minNs;
        timing.stddevNs = m.stats.stddevNs;
        section.cells.push_back(timing);
        medianSumNs += m.stats.medianNs;
    }
    if (medianSumNs > 0.0) {
        section.cellsPerSec =
            static_cast<double>(section.cells.size()) * 1e9
            / medianSumNs;
    }
    return section;
}

} // namespace triarch::study
