/**
 * @file
 * Host-time measurement of the Table-3 grid: run each cell's mapping
 * under the repeated-measurement contract (host_clock.hh) and fold
 * the per-cell statistics into the optional "host" section of a
 * triarch.bench.v1 document. Library code so perf_report, micro_host
 * and the tests share one measurement path.
 */

#ifndef TRIARCH_STUDY_HOST_MEASURE_HH
#define TRIARCH_STUDY_HOST_MEASURE_HH

#include <vector>

#include "sim/host_clock.hh"
#include "study/bench_report.hh"
#include "study/parallel.hh"

namespace triarch::study
{

/**
 * Measure every cell in @p cells serially: workloads are synthesized
 * once, then each mapping runs opts.warmup unmeasured plus
 * opts.repetitions measured times. cellsPerSec is the grid
 * throughput at the per-cell medians (cells / sum of medians).
 * Panics on an unmapped pair — callers measure known grids.
 */
HostSection measureHostSection(const StudyConfig &cfg,
                               const std::vector<Cell> &cells,
                               const host::MeasureOptions &opts,
                               const MappingRegistry *mappings
                               = nullptr);

} // namespace triarch::study

#endif // TRIARCH_STUDY_HOST_MEASURE_HH
