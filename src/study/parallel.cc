#include "parallel.hh"

#include <atomic>
#include <thread>

#include "sim/logging.hh"
#include "study/registry.hh"

namespace triarch::study
{

std::vector<Cell>
allCells()
{
    std::vector<Cell> cells;
    cells.reserve(allMachines().size() * allKernels().size());
    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels())
            cells.push_back({machine, kernel});
    }
    return cells;
}

ResultCache *
ParallelRunner::defaultCache()
{
    return &ResultCache::global();
}

ParallelRunner::ParallelRunner(StudyConfig run_config,
                               unsigned num_threads,
                               const MappingRegistry *mappings,
                               ResultCache *cache)
    : cfg(std::move(run_config)),
      cfgHash(studyConfigHash(cfg)),
      nthreads(num_threads),
      mappings(mappings ? mappings : &MappingRegistry::builtin()),
      cache(cache),
      work(buildWorkloads(cfg))
{
}

ParallelRunner::~ParallelRunner() = default;

RunOutcome
ParallelRunner::tryRun(MachineId machine, KernelId kernel)
{
    return tryRunCells({{machine, kernel}}).front();
}

RunResult
ParallelRunner::run(MachineId machine, KernelId kernel)
{
    return runCells({{machine, kernel}}).front();
}

std::vector<RunResult>
ParallelRunner::runAll()
{
    return runCells(allCells());
}

std::vector<RunResult>
ParallelRunner::runCells(const std::vector<Cell> &cells)
{
    std::vector<RunOutcome> outcomes = tryRunCells(cells);
    std::vector<RunResult> results;
    results.reserve(outcomes.size());
    for (RunOutcome &outcome : outcomes) {
        if (auto *err = std::get_if<MappingError>(&outcome))
            triarch_fatal(err->message);
        results.push_back(std::get<RunResult>(std::move(outcome)));
    }
    return results;
}

std::vector<RunOutcome>
ParallelRunner::tryRunCells(const std::vector<Cell> &cells)
{
    std::vector<RunOutcome> outcomes(cells.size(),
                                     RunOutcome{MappingError{}});

    // Serve what the cache already has; queue the rest.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cache) {
            if (auto hit = cache->get(cells[i].machine,
                                      cells[i].kernel, cfgHash)) {
                outcomes[i] = std::move(*hit);
                continue;
            }
        }
        pending.push_back(i);
    }
    if (pending.empty())
        return outcomes;

    // Each worker claims queue slots with an atomic ticket; results
    // land in the outcome slot of their cell, so the output order is
    // scheduling-independent.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t ticket =
                next.fetch_add(1, std::memory_order_relaxed);
            if (ticket >= pending.size())
                return;
            const std::size_t slot = pending[ticket];
            const Cell &cell = cells[slot];
            const KernelMapping *mapping =
                mappings->find(cell.machine, cell.kernel);
            if (!mapping) {
                outcomes[slot] =
                    mappings->missing(cell.machine, cell.kernel);
                continue;
            }
            RunResult result = (*mapping)(cfg, *work);
            if (cache)
                cache->put(result, cfgHash);
            outcomes[slot] = std::move(result);
        }
    };

    unsigned n = nthreads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 4;
    }
    if (n > pending.size())
        n = static_cast<unsigned>(pending.size());

    if (n <= 1) {
        worker();
        return outcomes;
    }

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return outcomes;
}

} // namespace triarch::study
