#include "parallel.hh"

#include <atomic>
#include <string>
#include <thread>

#include "sim/host_clock.hh"
#include "sim/hw_report.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "study/machine_info.hh"
#include "study/registry.hh"

namespace triarch::study
{

std::vector<Cell>
allCells()
{
    std::vector<Cell> cells;
    cells.reserve(allMachines().size() * allKernels().size());
    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels())
            cells.push_back({machine, kernel});
    }
    return cells;
}

ResultCache *
ParallelRunner::defaultCache()
{
    return &ResultCache::global();
}

ParallelRunner::ParallelRunner(StudyConfig run_config,
                               unsigned num_threads,
                               const MappingRegistry *mappings,
                               ResultCache *cache)
    : cfg(std::move(run_config)),
      cfgHash(studyConfigHash(cfg)),
      nthreads(num_threads),
      mappings(mappings ? mappings : &MappingRegistry::builtin()),
      cache(cache),
      work(buildWorkloads(cfg))
{
    schedGroup.addAtomicScalar("batches", &nBatches,
                               "cell batches submitted");
    schedGroup.addAtomicScalar("cells_run", &nCellsRun,
                               "cells executed by workers");
    schedGroup.addAtomicScalar("cells_cached", &nCellsCached,
                               "cells served from the result cache");
    schedGroup.addAtomicScalar("cells_missing", &nCellsMissing,
                               "cells with no registered mapping");
    schedGroup.addHistogram("cell_host_ns", &cellHostNs,
                            "host ns per executed cell mapping");
    schedGroup.addHistogram("queue_wait_ns", &queueWaitNs,
                            "host ns a cell waited for a worker");
    metrics::MetricsRegistry::global().registerLive(&schedGroup);
}

ParallelRunner::~ParallelRunner()
{
    // Keep the final counts visible in --stats documents written
    // after the runner is gone.
    metrics::MetricsRegistry::global().capture(schedGroup,
                                               "scheduler");
    metrics::MetricsRegistry::global().unregisterLive(&schedGroup);
}

RunOutcome
ParallelRunner::tryRun(MachineId machine, KernelId kernel)
{
    return tryRunCells({{machine, kernel}}).front();
}

RunResult
ParallelRunner::run(MachineId machine, KernelId kernel)
{
    return runCells({{machine, kernel}}).front();
}

std::vector<RunResult>
ParallelRunner::runAll()
{
    return runCells(allCells());
}

std::vector<RunResult>
ParallelRunner::runCells(const std::vector<Cell> &cells)
{
    std::vector<RunOutcome> outcomes = tryRunCells(cells);
    std::vector<RunResult> results;
    results.reserve(outcomes.size());
    for (RunOutcome &outcome : outcomes) {
        if (auto *err = std::get_if<MappingError>(&outcome))
            triarch_fatal(err->message);
        results.push_back(std::get<RunResult>(std::move(outcome)));
    }
    return results;
}

std::vector<RunOutcome>
ParallelRunner::tryRunCells(const std::vector<Cell> &cells)
{
    std::vector<RunOutcome> outcomes(cells.size(),
                                     RunOutcome{MappingError{}});

    // Grab the session once so every event in this batch goes to the
    // same place even if tracing stops mid-batch.
    trace::TraceSession *ts = trace::TraceSession::active();
    const double batchStartUs = ts ? ts->nowUs() : 0.0;
    // Host-time histograms use their own clock so queue_wait survives
    // in --stats documents even when no trace session is attached.
    const bool hostOn = host::profilingEnabled();
    const std::uint64_t batchStartNs = hostOn ? host::nowNs() : 0;
    ++nBatches;

    auto cellLabel = [](const Cell &cell) {
        return machineToken(cell.machine) + "/"
               + kernelToken(cell.kernel);
    };

    // Serve what the cache already has; queue the rest.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cache) {
            const double lookupUs = ts ? ts->nowUs() : 0.0;
            if (auto hit = cache->get(cells[i].machine,
                                      cells[i].kernel, cfgHash)) {
                outcomes[i] = std::move(*hit);
                ++nCellsCached;
                if (ts) {
                    ts->span(cellLabel(cells[i]), "cell", lookupUs,
                             ts->nowUs() - lookupUs,
                             {{"cached", 1.0}});
                }
                continue;
            }
        }
        pending.push_back(i);
    }
    if (ts && cache) {
        ts->counter("cache.hits",
                    static_cast<double>(cache->hits()));
        ts->counter("cache.misses",
                    static_cast<double>(cache->misses()));
    }
    if (pending.empty())
        return outcomes;

    // Each worker claims queue slots with an atomic ticket; results
    // land in the outcome slot of their cell, so the output order is
    // scheduling-independent. When tracing, each executed cell gets
    // a span on its worker's lane from the moment the ticket was
    // claimed, carrying the queue wait as an arg and the raw mapping
    // execution as a nested "execute" span.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t ticket =
                next.fetch_add(1, std::memory_order_relaxed);
            if (ticket >= pending.size())
                return;
            const std::size_t slot = pending[ticket];
            const Cell &cell = cells[slot];
            const double pickUs = ts ? ts->nowUs() : 0.0;
            const std::uint64_t pickNs = hostOn ? host::nowNs() : 0;
            const KernelMapping *mapping =
                mappings->find(cell.machine, cell.kernel);
            if (!mapping) {
                outcomes[slot] =
                    mappings->missing(cell.machine, cell.kernel);
                ++nCellsMissing;
                continue;
            }
            const double execUs = ts ? ts->nowUs() : 0.0;
            RunResult result = (*mapping)(cfg, *work);
            if (hostOn) {
                const std::uint64_t doneNs = host::nowNs();
                cellHostNs.record(doneNs - pickNs);
                queueWaitNs.record(pickNs - batchStartNs);
            }
            if (ts) {
                ts->span("execute", "cell", execUs,
                         ts->nowUs() - execUs);
            }
            if (cache)
                cache->put(result, cfgHash);
            outcomes[slot] = std::move(result);
            ++nCellsRun;
            if (ts) {
                ts->span(cellLabel(cell), "cell", pickUs,
                         ts->nowUs() - pickUs,
                         {{"queue_wait_us", pickUs - batchStartUs}});
                ts->counter(
                    "scheduler.cells_done",
                    static_cast<double>(nCellsRun.value()
                                        + nCellsCached.value()));
                // Epoch-sampled hardware counters for the cell the
                // mapping just captured, placed across the measured
                // execution window in simulated-epoch order so
                // Perfetto draws each channel as a counter track.
                if (auto cellHw = hw::HwRegistry::global().find(
                        machineToken(cell.machine),
                        kernelToken(cell.kernel))) {
                    const double spanUs = ts->nowUs() - execUs;
                    const std::size_t epochs =
                        cellHw->timeline.epochs();
                    for (const hw::EpochChannel &ch :
                         cellHw->timeline.channels) {
                        const std::string name =
                            cellLabel(cell) + ".hw." + ch.name;
                        for (std::size_t e = 0; e < epochs; ++e) {
                            const double atUs =
                                epochs > 1
                                    ? execUs + spanUs
                                                   * static_cast<
                                                       double>(e)
                                                   / static_cast<
                                                       double>(epochs
                                                               - 1)
                                    : execUs;
                            ts->counterAt(
                                name, atUs,
                                static_cast<double>(ch.counts[e]));
                        }
                    }
                }
            }
        }
    };

    unsigned n = nthreads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 4;
    }
    if (n > pending.size())
        n = static_cast<unsigned>(pending.size());

    if (n <= 1) {
        worker();
        return outcomes;
    }

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
        pool.emplace_back([&, t]() {
            if (ts)
                ts->nameThread("worker-" + std::to_string(t));
            worker();
        });
    }
    for (std::thread &t : pool)
        t.join();
    return outcomes;
}

} // namespace triarch::study
