/**
 * @file
 * Up-front validation of a StudyConfig. Every rule a registered
 * mapping or the reference pipeline relies on is checked here and
 * reported as a typed ConfigError (like MappingError), so a bad
 * configuration fails before buildWorkloads() runs — not as a panic
 * deep inside a worker thread.
 *
 * The rules (also listed in the README):
 *  - matrixSize: a positive multiple of 64 (VIRAM 64-element strips,
 *    Raw 64x64 blocks, Imagine 8-row strips, Altivec 4x4 register
 *    tiles), at most 8192.
 *  - cslc: exactly 2 main + 2 aux channels (the mappings and the
 *    two-stage weight estimator are built for the paper's four
 *    channels); subBandLen a power of two and exactly 128 (the
 *    mixed-radix FFT and every architecture's inner loop are sized
 *    for 128-sample sub-bands); subBands >= 1; subBandStride >= 1;
 *    (subBands-1)*subBandStride + subBandLen == samples.
 *  - jammerBins: every bin < samples (a tone outside the interval's
 *    FFT range would silently alias).
 *  - beam: elements, directions, dwells >= 1; shift < 32 (a wider
 *    shift of the 32-bit phase accumulator is UB).
 *  - size caps (samples, subBands, elements, directions, dwells)
 *    that keep footprints inside the simulated memories and index
 *    arithmetic inside 32 bits.
 */

#ifndef TRIARCH_STUDY_CONFIG_CHECK_HH
#define TRIARCH_STUDY_CONFIG_CHECK_HH

#include <optional>
#include <string>
#include <vector>

#include "study/experiment.hh"

namespace triarch::study
{

/** One violated configuration rule. */
struct ConfigError
{
    std::string field;      //!< e.g. "cslc.subBandLen"
    std::string message;    //!< why the value is rejected

    friend bool operator==(const ConfigError &,
                           const ConfigError &) = default;
};

/** "field: message" for logs and error strings. */
std::string describe(const ConfigError &err);

/** Every violated rule in @p cfg, in deterministic field order. */
std::vector<ConfigError> configErrors(const StudyConfig &cfg);

/**
 * The first violated rule, or nullopt when @p cfg is runnable on
 * every registered mapping. buildWorkloads() calls this and exits
 * (triarch_fatal) with the typed message on a violation.
 */
std::optional<ConfigError> validateConfig(const StudyConfig &cfg);

} // namespace triarch::study

#endif // TRIARCH_STUDY_CONFIG_CHECK_HH
