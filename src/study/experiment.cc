#include "experiment.hh"

#include <cmath>
#include <iterator>

#include "sim/logging.hh"
#include "study/config_check.hh"
#include "study/registry.hh"

namespace triarch::study
{

const std::vector<KernelId> &
allKernels()
{
    static const std::vector<KernelId> ids = {
        KernelId::CornerTurn, KernelId::Cslc, KernelId::BeamSteering};
    return ids;
}

const std::string &
kernelName(KernelId id)
{
    static const std::string names[] = {"Corner Turn", "CSLC",
                                        "Beam Steering"};
    const auto i = static_cast<std::size_t>(id);
    if (i >= std::size(names))
        triarch_panic("KernelId out of range: ", i);
    return names[i];
}

const std::string &
kernelToken(KernelId id)
{
    static const std::string tokens[] = {"ct", "cslc", "bs"};
    const auto i = static_cast<std::size_t>(id);
    if (i >= std::size(tokens))
        triarch_panic("KernelId out of range: ", i);
    return tokens[i];
}

std::optional<KernelId>
parseKernelToken(const std::string &token)
{
    for (KernelId k : allKernels()) {
        if (kernelToken(k) == token)
            return k;
    }
    return std::nullopt;
}

namespace
{

/** FNV-1a over the bytes of integral values. */
class Fnv1a
{
  public:
    template <typename T>
    void
    mix(T value)
    {
        const auto v = static_cast<std::uint64_t>(value);
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 0x100000001B3ULL;
        }
    }

    std::uint64_t value() const { return hash; }

  private:
    std::uint64_t hash = 0xCBF29CE484222325ULL;
};

} // namespace

std::uint64_t
studyConfigHash(const StudyConfig &cfg)
{
    Fnv1a h;
    h.mix(cfg.matrixSize);
    h.mix(cfg.cslc.mainChannels);
    h.mix(cfg.cslc.auxChannels);
    h.mix(cfg.cslc.samples);
    h.mix(cfg.cslc.subBands);
    h.mix(cfg.cslc.subBandLen);
    h.mix(cfg.cslc.subBandStride);
    h.mix(cfg.beam.elements);
    h.mix(cfg.beam.directions);
    h.mix(cfg.beam.dwells);
    h.mix(cfg.beam.shift);
    h.mix(cfg.jammerBins.size());
    for (unsigned bin : cfg.jammerBins)
        h.mix(bin);
    h.mix(cfg.seed);
    return h.value();
}

double
RunResult::milliseconds() const
{
    const double mhz = machineInfo(machine).clockMhz;
    return static_cast<double>(cycles) / (mhz * 1000.0);
}

std::shared_ptr<const Workloads>
buildWorkloads(const StudyConfig &cfg)
{
    // A bad config is a user error, not a simulator bug: fail with
    // the typed rule here, before any machine or worker thread sees
    // the workloads. Callers who want the error as a value use
    // validateConfig() (config_check.hh) first.
    if (auto err = validateConfig(cfg))
        triarch_fatal("invalid StudyConfig (", err->field, "): ",
                      err->message);

    auto work = std::make_shared<Workloads>();

    work->matrix = kernels::WordMatrix(cfg.matrixSize, cfg.matrixSize);
    kernels::fillMatrix(work->matrix, cfg.seed);

    work->cslcIn =
        kernels::makeJammedInput(cfg.cslc, cfg.jammerBins, cfg.seed);
    work->weights = kernels::estimateWeights(cfg.cslc, work->cslcIn);
    work->refMixed =
        kernels::cslcReference(cfg.cslc, work->cslcIn, work->weights,
                               kernels::FftAlgo::Mixed128);
    work->refRadix2 =
        kernels::cslcReference(cfg.cslc, work->cslcIn, work->weights,
                               kernels::FftAlgo::Radix2);

    work->tables = kernels::makeBeamTables(cfg.beam, cfg.seed + 1);
    work->beamRef = kernels::beamSteerReference(cfg.beam, work->tables);

    return work;
}

bool
cslcOutputValid(const StudyConfig &cfg, const Workloads &work,
                const kernels::CslcOutput &out, kernels::FftAlgo algo)
{
    const kernels::CslcOutput &ref = algo == kernels::FftAlgo::Mixed128
                                         ? work.refMixed
                                         : work.refRadix2;
    double err = 0.0, power = 0.0;
    for (unsigned m = 0; m < cfg.cslc.mainChannels; ++m) {
        for (std::size_t i = 0; i < ref.main[m].size(); ++i) {
            err += std::norm(ref.main[m][i] - out.main[m][i]);
            power += std::norm(ref.main[m][i]);
        }
    }
    return err <= 1e-4 * power;
}

Runner::Runner(StudyConfig run_config, const MappingRegistry *mappings)
    : cfg(std::move(run_config)),
      mappings(mappings ? mappings : &MappingRegistry::builtin()),
      work(buildWorkloads(cfg))
{
}

Runner::~Runner() = default;

RunOutcome
Runner::tryRun(MachineId machine, KernelId kernel)
{
    const KernelMapping *mapping = mappings->find(machine, kernel);
    if (!mapping)
        return mappings->missing(machine, kernel);
    return (*mapping)(cfg, *work);
}

RunResult
Runner::run(MachineId machine, KernelId kernel)
{
    RunOutcome outcome = tryRun(machine, kernel);
    if (auto *err = std::get_if<MappingError>(&outcome))
        triarch_fatal(err->message);
    return std::get<RunResult>(std::move(outcome));
}

std::vector<RunResult>
Runner::runAll()
{
    std::vector<RunResult> results;
    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels())
            results.push_back(run(machine, kernel));
    }
    return results;
}

} // namespace triarch::study
