#include "experiment.hh"

#include <cmath>

#include "imagine/kernels_imagine.hh"
#include "ppc/kernels_ppc.hh"
#include "raw/kernels_raw.hh"
#include "sim/logging.hh"
#include "viram/kernels_viram.hh"

namespace triarch::study
{

const std::vector<KernelId> &
allKernels()
{
    static const std::vector<KernelId> ids = {
        KernelId::CornerTurn, KernelId::Cslc, KernelId::BeamSteering};
    return ids;
}

const std::string &
kernelName(KernelId id)
{
    static const std::string names[] = {"Corner Turn", "CSLC",
                                        "Beam Steering"};
    return names[static_cast<unsigned>(id)];
}

double
RunResult::milliseconds() const
{
    const double mhz = machineInfo(machine).clockMhz;
    return static_cast<double>(cycles) / (mhz * 1000.0);
}

/** Lazily built shared workloads and golden outputs. */
struct Runner::Workloads
{
    // Corner turn.
    kernels::WordMatrix matrix;

    // CSLC.
    kernels::CslcInput cslcIn;
    kernels::CslcWeights weights;
    kernels::CslcOutput refMixed;
    kernels::CslcOutput refRadix2;

    // Beam steering.
    kernels::BeamTables tables;
    std::vector<std::int32_t> beamRef;
};

Runner::Runner(StudyConfig run_config)
    : cfg(std::move(run_config)), work(std::make_unique<Workloads>())
{
    triarch_assert(cfg.matrixSize >= 64 && cfg.matrixSize % 64 == 0,
                   "matrix size must be a positive multiple of 64");

    work->matrix = kernels::WordMatrix(cfg.matrixSize, cfg.matrixSize);
    kernels::fillMatrix(work->matrix, cfg.seed);

    work->cslcIn =
        kernels::makeJammedInput(cfg.cslc, cfg.jammerBins, cfg.seed);
    work->weights = kernels::estimateWeights(cfg.cslc, work->cslcIn);
    work->refMixed =
        kernels::cslcReference(cfg.cslc, work->cslcIn, work->weights,
                               kernels::FftAlgo::Mixed128);
    work->refRadix2 =
        kernels::cslcReference(cfg.cslc, work->cslcIn, work->weights,
                               kernels::FftAlgo::Radix2);

    work->tables = kernels::makeBeamTables(cfg.beam, cfg.seed + 1);
    work->beamRef = kernels::beamSteerReference(cfg.beam, work->tables);
}

Runner::~Runner() = default;

bool
Runner::cslcValid(const kernels::CslcOutput &out,
                  kernels::FftAlgo algo) const
{
    const kernels::CslcOutput &ref = algo == kernels::FftAlgo::Mixed128
                                         ? work->refMixed
                                         : work->refRadix2;
    double err = 0.0, power = 0.0;
    for (unsigned m = 0; m < cfg.cslc.mainChannels; ++m) {
        for (std::size_t i = 0; i < ref.main[m].size(); ++i) {
            err += std::norm(ref.main[m][i] - out.main[m][i]);
            power += std::norm(ref.main[m][i]);
        }
    }
    return err <= 1e-4 * power;
}

RunResult
Runner::runCornerTurn(MachineId machine)
{
    RunResult result;
    result.machine = machine;
    result.kernel = KernelId::CornerTurn;

    kernels::WordMatrix dst;
    switch (machine) {
      case MachineId::PpcScalar:
      case MachineId::PpcAltivec: {
        ppc::PpcMachine m;
        result.cycles = ppc::cornerTurnPpc(
            m, work->matrix, dst, machine == MachineId::PpcAltivec);
        result.notes.emplace_back(
            "mem_stall_fraction",
            static_cast<double>(m.memStallCycles()) / result.cycles);
        break;
      }
      case MachineId::Viram: {
        viram::ViramMachine m;
        result.cycles = viram::cornerTurnViram(m, work->matrix, dst);
        result.notes.emplace_back(
            "row_overhead_fraction",
            static_cast<double>(m.rowOverheadCycles()) / result.cycles);
        result.notes.emplace_back(
            "tlb_overhead_fraction",
            static_cast<double>(m.tlbOverheadCycles()) / result.cycles);
        break;
      }
      case MachineId::Imagine: {
        imagine::ImagineMachine m;
        result.cycles =
            imagine::cornerTurnImagine(m, work->matrix, dst);
        result.notes.emplace_back("memory_fraction",
                                  m.memoryFraction());
        break;
      }
      case MachineId::Raw: {
        raw::RawMachine m;
        result.cycles = raw::cornerTurnRaw(m, work->matrix, dst);
        result.notes.emplace_back(
            "instr_per_cycle_per_tile",
            static_cast<double>(m.instructions())
                / result.cycles / m.config().tiles());
        break;
      }
    }
    result.validated = kernels::isTransposeOf(work->matrix, dst);
    return result;
}

RunResult
Runner::runCslc(MachineId machine)
{
    RunResult result;
    result.machine = machine;
    result.kernel = KernelId::Cslc;

    kernels::CslcOutput out;
    switch (machine) {
      case MachineId::PpcScalar:
      case MachineId::PpcAltivec: {
        ppc::PpcMachine m;
        result.cycles = ppc::cslcPpc(
            m, cfg.cslc, work->cslcIn, work->weights, out,
            machine == MachineId::PpcAltivec);
        result.validated = cslcValid(out, kernels::FftAlgo::Radix2);
        break;
      }
      case MachineId::Viram: {
        viram::ViramMachine m;
        result.cycles = viram::cslcViram(m, cfg.cslc, work->cslcIn,
                                         work->weights, out);
        result.validated = cslcValid(out, kernels::FftAlgo::Radix2);
        result.notes.emplace_back(
            "shuffle_fraction",
            static_cast<double>(m.permInstructions())
                / m.vectorInstructions());
        break;
      }
      case MachineId::Imagine: {
        imagine::ImagineMachine m;
        result.cycles = imagine::cslcImagine(m, cfg.cslc, work->cslcIn,
                                             work->weights, out);
        result.validated = cslcValid(out, kernels::FftAlgo::Mixed128);
        result.notes.emplace_back("alu_utilization",
                                  m.aluUtilization());
        break;
      }
      case MachineId::Raw: {
        raw::RawMachine m;
        auto r = raw::cslcRaw(m, cfg.cslc, work->cslcIn, work->weights,
                              out);
        result.cycles = r.balancedCycles;
        result.measuredUnbalanced = r.cycles;
        result.validated = cslcValid(out, kernels::FftAlgo::Radix2);
        result.notes.emplace_back("idle_fraction", r.idleFraction);
        result.notes.emplace_back(
            "cache_stall_fraction",
            static_cast<double>(m.cacheStallCycles())
                / (static_cast<double>(m.config().tiles()) * r.cycles));
        result.notes.emplace_back(
            "ldst_fraction",
            static_cast<double>(m.loadStores())
                / (static_cast<double>(m.config().tiles()) * r.cycles));
        break;
      }
    }
    return result;
}

RunResult
Runner::runBeamSteering(MachineId machine)
{
    RunResult result;
    result.machine = machine;
    result.kernel = KernelId::BeamSteering;

    std::vector<std::int32_t> out;
    switch (machine) {
      case MachineId::PpcScalar:
      case MachineId::PpcAltivec: {
        ppc::PpcMachine m;
        result.cycles = ppc::beamSteeringPpc(
            m, cfg.beam, work->tables, out,
            machine == MachineId::PpcAltivec);
        break;
      }
      case MachineId::Viram: {
        viram::ViramMachine m;
        result.cycles =
            viram::beamSteeringViram(m, cfg.beam, work->tables, out);
        const double compute =
            static_cast<double>(m.vau0Busy() + m.vau1Busy()) / 2.0;
        result.notes.emplace_back("compute_bound_fraction",
                                  compute / result.cycles);
        break;
      }
      case MachineId::Imagine: {
        imagine::ImagineMachine m;
        result.cycles = imagine::beamSteeringImagine(
            m, cfg.beam, work->tables, out);
        result.notes.emplace_back("memory_fraction",
                                  m.memoryFraction());
        break;
      }
      case MachineId::Raw: {
        raw::RawMachine m;
        result.cycles =
            raw::beamSteeringRaw(m, cfg.beam, work->tables, out);
        result.notes.emplace_back(
            "loads_stores",
            static_cast<double>(m.loadStores()));
        break;
      }
    }
    result.validated = out == work->beamRef;
    return result;
}

RunResult
Runner::run(MachineId machine, KernelId kernel)
{
    switch (kernel) {
      case KernelId::CornerTurn:
        return runCornerTurn(machine);
      case KernelId::Cslc:
        return runCslc(machine);
      case KernelId::BeamSteering:
        return runBeamSteering(machine);
    }
    triarch_panic("unknown kernel");
}

std::vector<RunResult>
Runner::runAll()
{
    std::vector<RunResult> results;
    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels())
            results.push_back(run(machine, kernel));
    }
    return results;
}

} // namespace triarch::study
