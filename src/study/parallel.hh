/**
 * @file
 * The parallel experiment engine: a work-queue scheduler that runs
 * any set of (machine, kernel) cells concurrently on freshly
 * constructed per-task machine models against one immutable shared
 * Workloads, producing results bit-identical to the serial Runner.
 *
 * Determinism: every KernelMapping is a pure function of the
 * (config, workloads) pair — machines are constructed per task, the
 * workloads are synthesized once from the config seed before any
 * worker starts, and no mapping touches global mutable state (the
 * FFT twiddle caches are thread_local; see the re-entrancy notes in
 * kernels/fft.cc). Results land in slots indexed by cell, not by
 * completion order, so the output vector is independent of thread
 * count and scheduling.
 */

#ifndef TRIARCH_STUDY_PARALLEL_HH
#define TRIARCH_STUDY_PARALLEL_HH

#include <memory>
#include <vector>

#include "sim/stats.hh"
#include "study/experiment.hh"
#include "study/result_cache.hh"

namespace triarch::study
{

/** One schedulable task: a (machine, kernel) pair. */
struct Cell
{
    MachineId machine{};
    KernelId kernel{};

    friend bool operator==(const Cell &, const Cell &) = default;
};

/** All 15 Table-3 cells in (machine-major, kernel-minor) order. */
std::vector<Cell> allCells();

class ParallelRunner
{
  public:
    /**
     * @param run_config workload parameters (the paper's by default)
     * @param num_threads worker count; 0 picks the hardware
     *        concurrency, capped at the number of scheduled cells
     * @param mappings dispatch table; defaults to
     *        MappingRegistry::builtin()
     * @param cache cell cache; defaults to ResultCache::global().
     *        Pass noCache() to force every cell to recompute.
     */
    explicit ParallelRunner(StudyConfig run_config = {},
                            unsigned num_threads = 0,
                            const MappingRegistry *mappings = nullptr,
                            ResultCache *cache = defaultCache());
    ~ParallelRunner();

    const StudyConfig &config() const { return cfg; }

    /** The hash the cache keys this runner's cells under. */
    std::uint64_t configHash() const { return cfgHash; }

    /** Configured worker count (0 = hardware concurrency). */
    unsigned threads() const { return nthreads; }

    /** The shared immutable workloads (never null). */
    const std::shared_ptr<const Workloads> &workloads() const
    {
        return work;
    }

    /** Run one cell, through the cache (fatal if unmapped). */
    RunResult run(MachineId machine, KernelId kernel);

    /** Run one cell, or report the missing mapping as a value. */
    RunOutcome tryRun(MachineId machine, KernelId kernel);

    /** Run all 15 cells concurrently; same order as Runner::runAll(). */
    std::vector<RunResult> runAll();

    /** Run an arbitrary cell set concurrently (fatal if any pair is
     *  unmapped); results are returned in @p cells order. */
    std::vector<RunResult> runCells(const std::vector<Cell> &cells);

    /** Like runCells(), but unmapped pairs come back as typed
     *  MappingError values in their slots instead of aborting. */
    std::vector<RunOutcome> tryRunCells(const std::vector<Cell> &cells);

    /** Sentinel distinguishing "default cache" from "no cache". */
    static ResultCache *defaultCache();

    /** Pass as @p cache to disable caching entirely. */
    static ResultCache *noCache() { return nullptr; }

    /**
     * Scheduler progress counters ("scheduler" group, live-registered
     * in the global MetricsRegistry for this runner's lifetime):
     * batches submitted, cells executed / served from cache / found
     * unmapped. Counts only — no wall clock — so the values are
     * identical at any worker-thread count. When host profiling is
     * enabled (host::setProfiling) the group additionally carries
     * cell_host_ns / queue_wait_ns histograms; those record wall
     * clock and are empty (hence invisible) otherwise.
     */
    const stats::StatGroup &statGroup() const { return schedGroup; }

  private:
    StudyConfig cfg;
    std::uint64_t cfgHash;
    unsigned nthreads;
    const MappingRegistry *mappings;
    ResultCache *cache;
    std::shared_ptr<const Workloads> work;

    stats::StatGroup schedGroup{"scheduler"};
    stats::AtomicScalar nBatches;
    stats::AtomicScalar nCellsRun;
    stats::AtomicScalar nCellsCached;
    stats::AtomicScalar nCellsMissing;
    stats::Histogram cellHostNs;
    stats::Histogram queueWaitNs;
};

} // namespace triarch::study

#endif // TRIARCH_STUDY_PARALLEL_HH
