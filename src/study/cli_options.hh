/**
 * @file
 * Declarative command-line parsing shared by every triarch binary
 * (bench harness, triarchd, triarch_client). A binary declares its
 * flags with value()/number()/toggle(), then hands argv to parse();
 * usage text, '--flag=value' splitting, and the numeric-range checks
 * live here once.
 *
 * Error contract (kept byte-for-byte with the original bench
 * harness, which tests/test_bench.cc pins down):
 *   - a flag missing its value, a value handed to a value-less flag,
 *     or a malformed/overflowing number prints one line to stderr and
 *     exits with status 2 (a hard std::exit so death tests observe
 *     it);
 *   - an unknown option prints an error plus the usage text to
 *     stderr and makes parse() return 2;
 *   - '--help'/'-h' prints usage to stdout and makes parse()
 *     return 0;
 *   - otherwise parse() returns nothing and the caller proceeds.
 */

#ifndef TRIARCH_STUDY_CLI_OPTIONS_HH
#define TRIARCH_STUDY_CLI_OPTIONS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace triarch::study
{

/** Split "a,b,c" into tokens, dropping empties. */
std::vector<std::string> splitList(const std::string &arg);

/** ASCII lowercase copy. */
std::string lowered(std::string s);

/**
 * Make sure an output path's parent directory exists before any
 * simulation time is spent: "--stats out/run1/stats.json" in a fresh
 * checkout creates out/run1/ on demand, and a parent that cannot be
 * created (e.g. a path component is a regular file) is a usage error
 * reported up front with exit 2, not an fopen failure after the run.
 */
void ensureParentDir(const char *flag, const std::string &path,
                     const char *prog);

class CliOptions
{
  public:
    /** Handlers return 0 to continue or an exit code (the handler
     *  prints its own diagnostic, prefixed with prog()). */
    using ValueHandler = std::function<int(const std::string &)>;
    using NumberHandler = std::function<int(std::uint64_t)>;
    using ToggleHandler = std::function<int()>;

    /**
     * @param description one-line summary shown in the usage header
     * @param fallback_prog program name when argv[0] is absent
     */
    CliOptions(const char *description,
               const char *fallback_prog = "bench");

    /** Declare a flag that takes a string value. */
    void value(const std::string &name, const std::string &argspec,
               const std::string &help, ValueHandler handler);

    /** Declare a flag that takes a non-negative number <= max_value. */
    void number(const std::string &name, const std::string &argspec,
                const std::string &help, std::uint64_t max_value,
                NumberHandler handler);

    /** Declare a value-less flag. */
    void toggle(const std::string &name, const std::string &help,
                ToggleHandler handler);

    /** Install the standard --log-level flag (quiet/warn/inform/
     *  debug), wired to sim/logging's global level. */
    void logLevelFlag();

    /**
     * Parse argv. Returns an exit code when the program should stop
     * (0 after --help, 2 on a usage error), or nullopt to proceed.
     * Unrecoverable value/number errors exit(2) directly.
     */
    std::optional<int> parse(int argc, char **argv);

    /** Write "prog — description" plus one line per flag. */
    void usage(std::ostream &os) const;

    /** argv[0] as seen by the last parse() (fallback before that). */
    const char *prog() const { return progName.c_str(); }

  private:
    enum class Kind { Value, Number, Toggle };

    struct Flag
    {
        std::string name;
        std::string argspec;
        std::string help;
        Kind kind;
        ValueHandler onValue;
        NumberHandler onNumber;
        ToggleHandler onToggle;
        std::uint64_t maxValue =
            std::numeric_limits<std::uint64_t>::max();
    };

    const Flag *find(const std::string &name) const;

    std::string description;
    std::string progName;
    std::vector<Flag> flags;
};

} // namespace triarch::study

#endif // TRIARCH_STUDY_CLI_OPTIONS_HH
