/**
 * @file
 * JSON projections of the study layer's core value types — the
 * StudyConfig block and the per-cell RunResult — shared by every
 * document that carries them: the triarch.results.v1 sink, the
 * triarch.cache.v1 persistent result cache, and the
 * triarch.job.v1/triarch.result.v1 daemon protocol. One writer and
 * one parser per type, so a RunResult that crosses any of those
 * boundaries round-trips bit-identically (doubles are rendered with
 * json::formatDouble's round-trip precision, notes keep their
 * order, and the cycle-breakdown partition invariant is re-checked
 * on the way back in).
 */

#ifndef TRIARCH_STUDY_STUDY_JSON_HH
#define TRIARCH_STUDY_STUDY_JSON_HH

#include <string>

#include "sim/json.hh"
#include "study/experiment.hh"

namespace triarch::study
{

/** studyConfigHash(cfg) rendered as lowercase hex. */
std::string studyConfigHashHex(const StudyConfig &cfg);

/**
 * Emit the canonical config object: matrix_size, seed, cslc{...},
 * beam{...}, jammer_bins, hash. The writer must be positioned where
 * a value is expected (after key() or inside an array).
 */
void writeStudyConfig(json::Writer &w, const StudyConfig &cfg);

/**
 * Parse a config object written by writeStudyConfig(). Every field
 * is optional and defaults to the paper's StudyConfig value, so a
 * request may override just {"seed": 7}. Unknown fields are
 * rejected (they are silent typos otherwise), as is a "hash" field
 * that contradicts the parsed config. Returns false and sets *error
 * on the first violation.
 */
bool parseStudyConfig(const json::Value &v, StudyConfig *cfg,
                      std::string *error);

/** Emit the five-category breakdown object (token: cycles). */
void writeCycleBreakdown(json::Writer &w,
                         const stats::CycleBreakdown &breakdown);

/**
 * Emit one RunResult with machine-readable tokens only: machine,
 * kernel, cycles, validated, measured_unbalanced (when present),
 * breakdown, notes. This is the wire/cache form; display emitters
 * (ResultSink) add their own derived fields on top.
 */
void writeRunResult(json::Writer &w, const RunResult &result);

/**
 * Parse a RunResult written by writeRunResult(). Validates machine
 * and kernel tokens, requires every breakdown category, and
 * re-checks that the categories sum exactly to the cycle count.
 * Returns false and sets *error on the first violation.
 */
bool parseRunResult(const json::Value &v, RunResult *result,
                    std::string *error);

} // namespace triarch::study

#endif // TRIARCH_STUDY_STUDY_JSON_HH
