#include "cli_options.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "sim/logging.hh"

namespace triarch::study
{

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> tokens;
    std::istringstream is(arg);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (!tok.empty())
            tokens.push_back(tok);
    }
    return tokens;
}

std::string
lowered(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

void
ensureParentDir(const char *flag, const std::string &path,
                const char *prog)
{
    if (path.empty())
        return;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
        std::cerr << prog << ": " << flag << " '" << path
                  << "': cannot create parent directory '"
                  << parent.string() << "': " << ec.message() << "\n";
        std::exit(2);
    }
}

CliOptions::CliOptions(const char *description,
                       const char *fallback_prog)
    : description(description), progName(fallback_prog)
{
}

void
CliOptions::value(const std::string &name, const std::string &argspec,
                  const std::string &help, ValueHandler handler)
{
    Flag f;
    f.name = name;
    f.argspec = argspec;
    f.help = help;
    f.kind = Kind::Value;
    f.onValue = std::move(handler);
    flags.push_back(std::move(f));
}

void
CliOptions::number(const std::string &name, const std::string &argspec,
                   const std::string &help, std::uint64_t max_value,
                   NumberHandler handler)
{
    Flag f;
    f.name = name;
    f.argspec = argspec;
    f.help = help;
    f.kind = Kind::Number;
    f.onNumber = std::move(handler);
    f.maxValue = max_value;
    flags.push_back(std::move(f));
}

void
CliOptions::toggle(const std::string &name, const std::string &help,
                   ToggleHandler handler)
{
    Flag f;
    f.name = name;
    f.help = help;
    f.kind = Kind::Toggle;
    f.onToggle = std::move(handler);
    flags.push_back(std::move(f));
}

void
CliOptions::logLevelFlag()
{
    value("--log-level", "LEVEL",
          "quiet, warn, inform, or debug (default warn)",
          [this](const std::string &raw) {
              const std::string v = lowered(raw);
              if (v == "quiet") {
                  setLogLevel(LogLevel::Quiet);
              } else if (v == "warn") {
                  setLogLevel(LogLevel::Warn);
              } else if (v == "inform") {
                  setLogLevel(LogLevel::Inform);
              } else if (v == "debug") {
                  setLogLevel(LogLevel::Debug);
              } else {
                  std::cerr << prog() << ": unknown log level '" << v
                            << "' (quiet, warn, inform, debug)\n";
                  return 2;
              }
              return 0;
          });
}

const CliOptions::Flag *
CliOptions::find(const std::string &name) const
{
    for (const Flag &f : flags) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

void
CliOptions::usage(std::ostream &os) const
{
    os << progName << " — " << description << "\n\nOptions:\n";
    auto line = [&os](const std::string &head, const std::string &help) {
        std::string left = "  " + head;
        if (left.size() < 22)
            left.append(22 - left.size(), ' ');
        else
            left += "  ";
        os << left << help << "\n";
    };
    for (const Flag &f : flags) {
        line(f.argspec.empty() ? f.name : f.name + " " + f.argspec,
             f.help);
    }
    line("--help", "this message");
    os << "\nFlags accept both '--flag value' and '--flag=value'.\n";
}

std::optional<int>
CliOptions::parse(int argc, char **argv)
{
    if (argc > 0)
        progName = argv[0];
    const char *prog = progName.c_str();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];

        // Accept --flag=value alongside --flag value.
        std::string inlineValue;
        bool haveInline = false;
        if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            if (const auto eq = arg.find('='); eq != std::string::npos) {
                inlineValue = arg.substr(eq + 1);
                arg.erase(eq);
                haveInline = true;
            }
        }

        auto needValue = [&](const std::string &flag) -> std::string {
            if (haveInline)
                return inlineValue;
            if (i + 1 >= argc) {
                std::cerr << prog << ": " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };

        // Value-less flags must not be handed one via --flag=value.
        auto noValue = [&](const std::string &flag) {
            if (haveInline) {
                std::cerr << prog << ": " << flag
                          << " does not take a value (got '"
                          << inlineValue << "')\n";
                std::exit(2);
            }
        };

        auto needNumber = [&](const std::string &flag,
                              std::uint64_t maxValue) -> std::uint64_t {
            const std::string v = needValue(flag);
            // strtoull wraps negative input ("-1" parses as 2^64-1),
            // so any non-digit lead byte is rejected up front.
            if (v.empty()
                || !std::isdigit(static_cast<unsigned char>(v[0]))) {
                std::cerr << prog << ": " << flag
                          << " needs a non-negative number, got '"
                          << v << "'\n";
                std::exit(2);
            }
            errno = 0;
            char *end = nullptr;
            const std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                std::cerr << prog << ": " << flag
                          << " needs a non-negative number, got '"
                          << v << "'\n";
                std::exit(2);
            }
            if (errno == ERANGE || n > maxValue) {
                std::cerr << prog << ": " << flag << " value '" << v
                          << "' is out of range (max " << maxValue
                          << ")\n";
                std::exit(2);
            }
            return n;
        };

        if (arg == "--help" || arg == "-h") {
            noValue("--help");
            usage(std::cout);
            return 0;
        }

        const Flag *flag = find(arg);
        if (!flag) {
            std::cerr << prog << ": unknown option '" << arg
                      << "'\n\n";
            usage(std::cerr);
            return 2;
        }

        int rc = 0;
        switch (flag->kind) {
          case Kind::Value:
            rc = flag->onValue(needValue(flag->name));
            break;
          case Kind::Number:
            rc = flag->onNumber(needNumber(flag->name, flag->maxValue));
            break;
          case Kind::Toggle:
            noValue(flag->name);
            rc = flag->onToggle();
            break;
        }
        if (rc != 0)
            return rc;
    }
    return std::nullopt;
}

} // namespace triarch::study
