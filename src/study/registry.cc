#include "registry.hh"

#include "imagine/kernels_imagine.hh"
#include "ppc/kernels_ppc.hh"
#include "raw/kernels_raw.hh"
#include "sim/host_clock.hh"
#include "sim/hw_report.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "viram/kernels_viram.hh"

namespace triarch::study
{

void
MappingRegistry::add(MachineId machine, KernelId kernel,
                     KernelMapping mapping)
{
    triarch_assert(mapping != nullptr, "null mapping for ",
                   machineName(machine), "/", kernelName(kernel));
    auto [it, inserted] =
        mappings.emplace(key(machine, kernel), std::move(mapping));
    (void)it;
    triarch_assert(inserted, "duplicate mapping for ",
                   machineName(machine), "/", kernelName(kernel));
}

const KernelMapping *
MappingRegistry::find(MachineId machine, KernelId kernel) const noexcept
{
    auto it = mappings.find(key(machine, kernel));
    return it == mappings.end() ? nullptr : &it->second;
}

MappingError
MappingRegistry::missing(MachineId machine, KernelId kernel) const
{
    MappingError err;
    err.machine = machine;
    err.kernel = kernel;
    err.message = "no kernel mapping registered for "
                  + machineName(machine) + " / " + kernelName(kernel);
    return err;
}

std::vector<std::pair<MachineId, KernelId>>
MappingRegistry::registeredPairs() const
{
    std::vector<std::pair<MachineId, KernelId>> pairs;
    pairs.reserve(mappings.size());
    for (const auto &[k, mapping] : mappings) {
        (void)mapping;
        pairs.emplace_back(static_cast<MachineId>(k.first),
                           static_cast<KernelId>(k.second));
    }
    return pairs;
}

namespace
{

RunResult
cellResult(MachineId machine, KernelId kernel)
{
    RunResult result;
    result.machine = machine;
    result.kernel = kernel;
    return result;
}

/**
 * Snapshot the machine model's stats into the global MetricsRegistry
 * — the main group under "<machine-token>.<kernel-token>" and every
 * component group (caches, TLB, DRAM channels, ports) under
 * "<machine>.<kernel>.<component>" — and the model's rolled-up
 * hardware cell (utilization metrics, verdict, epoch timeline) into
 * the global HwRegistry, before the model dies with its mapping.
 * Per-cell simulation is deterministic, so re-running a cell
 * recaptures identical values. Requires result.cycles and
 * result.breakdown to be final.
 */
template <typename Machine>
void
captureCell(Machine &m, const RunResult &result)
{
    const std::string label =
        machineToken(result.machine) + "." + kernelToken(result.kernel);
    auto &reg = metrics::MetricsRegistry::global();
    reg.capture(m.statGroup(), label);
    for (auto &[suffix, group] : m.componentGroups())
        reg.capture(*group, label + "." + suffix);

    hw::HwCell cell = m.hwCell(result.cycles, result.breakdown);
    cell.machine = machineToken(result.machine);
    cell.kernel = kernelToken(result.kernel);
    hw::HwRegistry::global().capture(std::move(cell));
}

// ---------------------------------------------------------------
// PowerPC G4 (scalar and AltiVec share the mapping bodies; the
// AltiVec flag selects the vectorized code paths).
// ---------------------------------------------------------------

void
registerPpc(MappingRegistry &r, MachineId id, bool altivec)
{
    r.add(id, KernelId::CornerTurn,
          [id, altivec](const StudyConfig &, const Workloads &work) {
              RunResult result = cellResult(id, KernelId::CornerTurn);
              host::PhaseSplit split;
              ppc::PpcMachine m;
              kernels::WordMatrix dst;
              split.startRun();
              result.cycles =
                  ppc::cornerTurnPpc(m, work.matrix, dst, altivec);
              split.startReadback();
              result.notes.emplace_back(
                  "ppc.mem_stall_fraction",
                  static_cast<double>(m.memStallCycles())
                      / result.cycles);
              result.validated =
                  kernels::isTransposeOf(work.matrix, dst);
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });

    r.add(id, KernelId::Cslc,
          [id, altivec](const StudyConfig &cfg, const Workloads &work) {
              RunResult result = cellResult(id, KernelId::Cslc);
              host::PhaseSplit split;
              ppc::PpcMachine m;
              kernels::CslcOutput out;
              split.startRun();
              result.cycles =
                  ppc::cslcPpc(m, cfg.cslc, work.cslcIn, work.weights,
                               out, altivec);
              split.startReadback();
              result.validated = cslcOutputValid(
                  cfg, work, out, kernels::FftAlgo::Radix2);
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });

    r.add(id, KernelId::BeamSteering,
          [id, altivec](const StudyConfig &cfg, const Workloads &work) {
              RunResult result =
                  cellResult(id, KernelId::BeamSteering);
              host::PhaseSplit split;
              ppc::PpcMachine m;
              std::vector<std::int32_t> out;
              split.startRun();
              result.cycles = ppc::beamSteeringPpc(
                  m, cfg.beam, work.tables, out, altivec);
              split.startReadback();
              result.validated = out == work.beamRef;
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });
}

// ---------------------------------------------------------------
// Berkeley VIRAM (processor-in-memory vector machine).
// ---------------------------------------------------------------

void
registerViram(MappingRegistry &r)
{
    const MachineId id = MachineId::Viram;

    r.add(id, KernelId::CornerTurn,
          [](const StudyConfig &, const Workloads &work) {
              RunResult result =
                  cellResult(MachineId::Viram, KernelId::CornerTurn);
              host::PhaseSplit split;
              viram::ViramMachine m;
              kernels::WordMatrix dst;
              split.startRun();
              result.cycles =
                  viram::cornerTurnViram(m, work.matrix, dst);
              split.startReadback();
              result.notes.emplace_back(
                  "viram.row_overhead_fraction",
                  static_cast<double>(m.rowOverheadCycles())
                      / result.cycles);
              result.notes.emplace_back(
                  "viram.tlb_overhead_fraction",
                  static_cast<double>(m.tlbOverheadCycles())
                      / result.cycles);
              result.validated =
                  kernels::isTransposeOf(work.matrix, dst);
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });

    r.add(id, KernelId::Cslc,
          [](const StudyConfig &cfg, const Workloads &work) {
              RunResult result =
                  cellResult(MachineId::Viram, KernelId::Cslc);
              host::PhaseSplit split;
              viram::ViramMachine m;
              kernels::CslcOutput out;
              split.startRun();
              result.cycles = viram::cslcViram(m, cfg.cslc, work.cslcIn,
                                               work.weights, out);
              split.startReadback();
              result.validated = cslcOutputValid(
                  cfg, work, out, kernels::FftAlgo::Radix2);
              result.notes.emplace_back(
                  "viram.shuffle_fraction",
                  static_cast<double>(m.permInstructions())
                      / m.vectorInstructions());
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });

    r.add(id, KernelId::BeamSteering,
          [](const StudyConfig &cfg, const Workloads &work) {
              RunResult result = cellResult(MachineId::Viram,
                                            KernelId::BeamSteering);
              host::PhaseSplit split;
              viram::ViramMachine m;
              std::vector<std::int32_t> out;
              split.startRun();
              result.cycles = viram::beamSteeringViram(m, cfg.beam,
                                                       work.tables, out);
              split.startReadback();
              const double compute =
                  static_cast<double>(m.vau0Busy() + m.vau1Busy())
                  / 2.0;
              result.notes.emplace_back("viram.compute_bound_fraction",
                                        compute / result.cycles);
              result.validated = out == work.beamRef;
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });
}

// ---------------------------------------------------------------
// Stanford Imagine (stream processor).
// ---------------------------------------------------------------

void
registerImagine(MappingRegistry &r)
{
    const MachineId id = MachineId::Imagine;

    r.add(id, KernelId::CornerTurn,
          [](const StudyConfig &, const Workloads &work) {
              RunResult result =
                  cellResult(MachineId::Imagine, KernelId::CornerTurn);
              host::PhaseSplit split;
              imagine::ImagineMachine m;
              kernels::WordMatrix dst;
              split.startRun();
              result.cycles =
                  imagine::cornerTurnImagine(m, work.matrix, dst);
              split.startReadback();
              result.notes.emplace_back("imagine.memory_fraction",
                                        m.memoryFraction());
              result.validated =
                  kernels::isTransposeOf(work.matrix, dst);
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });

    r.add(id, KernelId::Cslc,
          [](const StudyConfig &cfg, const Workloads &work) {
              RunResult result =
                  cellResult(MachineId::Imagine, KernelId::Cslc);
              host::PhaseSplit split;
              imagine::ImagineMachine m;
              kernels::CslcOutput out;
              split.startRun();
              result.cycles = imagine::cslcImagine(
                  m, cfg.cslc, work.cslcIn, work.weights, out);
              split.startReadback();
              result.validated = cslcOutputValid(
                  cfg, work, out, kernels::FftAlgo::Mixed128);
              result.notes.emplace_back("imagine.alu_utilization",
                                        m.aluUtilization());
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });

    r.add(id, KernelId::BeamSteering,
          [](const StudyConfig &cfg, const Workloads &work) {
              RunResult result = cellResult(MachineId::Imagine,
                                            KernelId::BeamSteering);
              host::PhaseSplit split;
              imagine::ImagineMachine m;
              std::vector<std::int32_t> out;
              split.startRun();
              result.cycles = imagine::beamSteeringImagine(
                  m, cfg.beam, work.tables, out);
              split.startReadback();
              result.notes.emplace_back("imagine.memory_fraction",
                                        m.memoryFraction());
              result.validated = out == work.beamRef;
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });
}

// ---------------------------------------------------------------
// MIT Raw (tiled processor).
// ---------------------------------------------------------------

void
registerRaw(MappingRegistry &r)
{
    const MachineId id = MachineId::Raw;

    r.add(id, KernelId::CornerTurn,
          [](const StudyConfig &, const Workloads &work) {
              RunResult result =
                  cellResult(MachineId::Raw, KernelId::CornerTurn);
              host::PhaseSplit split;
              raw::RawMachine m;
              kernels::WordMatrix dst;
              split.startRun();
              result.cycles = raw::cornerTurnRaw(m, work.matrix, dst);
              split.startReadback();
              result.notes.emplace_back(
                  "raw.instr_per_cycle_per_tile",
                  static_cast<double>(m.instructions())
                      / result.cycles / m.config().tiles());
              result.validated =
                  kernels::isTransposeOf(work.matrix, dst);
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });

    r.add(id, KernelId::Cslc,
          [](const StudyConfig &cfg, const Workloads &work) {
              RunResult result =
                  cellResult(MachineId::Raw, KernelId::Cslc);
              host::PhaseSplit split;
              raw::RawMachine m;
              kernels::CslcOutput out;
              split.startRun();
              auto r2 = raw::cslcRaw(m, cfg.cslc, work.cslcIn,
                                     work.weights, out);
              split.startReadback();
              result.cycles = r2.balancedCycles;
              result.measuredUnbalanced = r2.cycles;
              result.validated = cslcOutputValid(
                  cfg, work, out, kernels::FftAlgo::Radix2);
              result.notes.emplace_back("raw.idle_fraction",
                                        r2.idleFraction);
              result.notes.emplace_back(
                  "raw.cache_stall_fraction",
                  static_cast<double>(m.cacheStallCycles())
                      / (static_cast<double>(m.config().tiles())
                         * r2.cycles));
              result.notes.emplace_back(
                  "raw.ldst_fraction",
                  static_cast<double>(m.loadStores())
                      / (static_cast<double>(m.config().tiles())
                         * r2.cycles));
              // result.cycles is the balanced extrapolation, not the
              // measured wall clock: the account rescales.
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });

    r.add(id, KernelId::BeamSteering,
          [](const StudyConfig &cfg, const Workloads &work) {
              RunResult result =
                  cellResult(MachineId::Raw, KernelId::BeamSteering);
              host::PhaseSplit split;
              raw::RawMachine m;
              std::vector<std::int32_t> out;
              split.startRun();
              result.cycles =
                  raw::beamSteeringRaw(m, cfg.beam, work.tables, out);
              split.startReadback();
              result.notes.emplace_back(
                  "raw.loads_stores",
                  static_cast<double>(m.loadStores()));
              result.validated = out == work.beamRef;
              result.breakdown = m.cycleBreakdown(result.cycles);
              split.record(m.hostTime());
              captureCell(m, result);
              return result;
          });
}

MappingRegistry
buildBuiltin()
{
    MappingRegistry r;
    registerPpc(r, MachineId::PpcScalar, false);
    registerPpc(r, MachineId::PpcAltivec, true);
    registerViram(r);
    registerImagine(r);
    registerRaw(r);
    return r;
}

} // namespace

const MappingRegistry &
MappingRegistry::builtin()
{
    static const MappingRegistry registry = buildBuiltin();
    return registry;
}

} // namespace triarch::study
