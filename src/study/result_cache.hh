/**
 * @file
 * Per-cell result cache keyed by (machine, kernel, config-hash).
 * Ablation sweeps share cells — fig8, fig9, and table3 all need the
 * same 15 Table-3 runs — so any cell measured once under a given
 * StudyConfig is never recomputed within the process. Safe for
 * concurrent use by the ParallelRunner's worker threads.
 *
 * The cache is bounded: an explicit Capacity (max entries plus an
 * approximate byte budget) evicts the least-recently-used cell once
 * either bound is exceeded, and an "evictions" counter in the stat
 * group records how often that happened. A cache can also be saved
 * to and reloaded from a triarch.cache.v1 JSON document, which is
 * how the experiment daemon keeps warm results across restarts.
 */

#ifndef TRIARCH_STUDY_RESULT_CACHE_HH
#define TRIARCH_STUDY_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include "sim/stats.hh"
#include "study/experiment.hh"

namespace triarch::study
{

/** Bounds on a ResultCache; 0 means unlimited on that axis. Bytes
 *  are approximate (struct size plus note-string payload). */
struct CacheCapacity
{
    std::size_t maxEntries = 0;
    std::size_t maxBytes = 0;
};

class ResultCache
{
  public:
    using Capacity = CacheCapacity;

    explicit ResultCache(Capacity cache_capacity = {});

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** The cached result for a cell, if any; a hit refreshes the
     *  cell's LRU position. */
    std::optional<RunResult> get(MachineId machine, KernelId kernel,
                                 std::uint64_t config_hash) const;

    /** Store @p result (keyed by its own machine/kernel ids),
     *  evicting least-recently-used cells if a bound is exceeded. */
    void put(const RunResult &result, std::uint64_t config_hash);

    /** Replace the bounds, evicting immediately if now over. */
    void setCapacity(Capacity cache_capacity);
    Capacity capacity() const;

    std::size_t size() const;

    /** Approximate bytes held by the cached entries. */
    std::size_t approxBytes() const;

    void clear();

    /** Lookup counters (since construction or clear()). */
    std::uint64_t hits() const;
    std::uint64_t misses() const;

    /** Cells dropped by the LRU bound (since construction/clear). */
    std::uint64_t evictions() const;

    /** The "result_cache" group holding the hit/miss counters. */
    const stats::StatGroup &statGroup() const { return group; }

    /**
     * Persistence: write/read the whole cache as a triarch.cache.v1
     * JSON document. save() orders entries least-recently-used
     * first, so a subsequent load() reproduces the recency order.
     * loadFile() of a missing file is not an error (returns 0); a
     * malformed document is (returns nullopt with *error set).
     */
    void save(std::ostream &os) const;
    bool saveFile(const std::string &path, std::string *error) const;
    std::optional<std::size_t> load(const std::string &text,
                                    std::string *error);
    std::optional<std::size_t> loadFile(const std::string &path,
                                        std::string *error);

    /** The schema tag of the persistence document. */
    static const std::string &cacheSchema();

    /** The process-wide cache shared by default by every runner;
     *  its stat group is live-registered in the global
     *  MetricsRegistry. Bounded generously (4096 cells / 256 MiB)
     *  so unbounded sweeps cannot grow it without limit. */
    static ResultCache &global();

  private:
    using Key = std::tuple<unsigned, unsigned, std::uint64_t>;
    struct Entry
    {
        Key key;
        RunResult result;
        std::size_t bytes;
    };
    /** Front = most recently used. */
    using LruList = std::list<Entry>;

    static std::size_t entryBytes(const RunResult &result);

    /** Drop LRU entries until within capacity (mu held). */
    void enforceCapacityLocked();
    void updateGaugesLocked() const;

    mutable std::mutex mu;
    mutable LruList lru;
    mutable std::map<Key, LruList::iterator> index;
    Capacity cap;
    std::size_t bytesHeld = 0;
    stats::StatGroup group{"result_cache"};
    mutable stats::AtomicScalar nHits;
    mutable stats::AtomicScalar nMisses;
    mutable stats::AtomicScalar nEvictions;
    mutable stats::AtomicScalar nEntries;
    mutable stats::AtomicScalar nBytes;
};

} // namespace triarch::study

#endif // TRIARCH_STUDY_RESULT_CACHE_HH
