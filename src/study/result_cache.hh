/**
 * @file
 * Per-cell result cache keyed by (machine, kernel, config-hash).
 * Ablation sweeps share cells — fig8, fig9, and table3 all need the
 * same 15 Table-3 runs — so any cell measured once under a given
 * StudyConfig is never recomputed within the process. Safe for
 * concurrent use by the ParallelRunner's worker threads.
 */

#ifndef TRIARCH_STUDY_RESULT_CACHE_HH
#define TRIARCH_STUDY_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>

#include "sim/stats.hh"
#include "study/experiment.hh"

namespace triarch::study
{

class ResultCache
{
  public:
    ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** The cached result for a cell, if any. */
    std::optional<RunResult> get(MachineId machine, KernelId kernel,
                                 std::uint64_t config_hash) const;

    /** Store @p result (keyed by its own machine/kernel ids). */
    void put(const RunResult &result, std::uint64_t config_hash);

    std::size_t size() const;
    void clear();

    /** Lookup counters (since construction or clear()). */
    std::uint64_t hits() const;
    std::uint64_t misses() const;

    /** The "result_cache" group holding the hit/miss counters. */
    const stats::StatGroup &statGroup() const { return group; }

    /** The process-wide cache shared by default by every runner;
     *  its stat group is live-registered in the global
     *  MetricsRegistry. */
    static ResultCache &global();

  private:
    using Key = std::tuple<unsigned, unsigned, std::uint64_t>;

    mutable std::mutex mu;
    std::map<Key, RunResult> entries;
    stats::StatGroup group{"result_cache"};
    mutable stats::AtomicScalar nHits;
    mutable stats::AtomicScalar nMisses;
};

} // namespace triarch::study

#endif // TRIARCH_STUDY_RESULT_CACHE_HH
