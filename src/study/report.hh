/**
 * @file
 * Report builders: render the paper's tables and figures from a set
 * of RunResults. Table and figure numbering follows the paper
 * (Tables 1-4, Figures 8-9).
 */

#ifndef TRIARCH_STUDY_REPORT_HH
#define TRIARCH_STUDY_REPORT_HH

#include <vector>

#include "sim/table.hh"
#include "study/experiment.hh"
#include "study/perf_model.hh"

namespace triarch::study
{

/** Find one result (panics if absent). */
const RunResult &findResult(const std::vector<RunResult> &results,
                            MachineId machine, KernelId kernel);

/** Table 1: peak throughput in 32-bit words per cycle. */
Table buildTable1();

/** Table 2: processor parameters. */
Table buildTable2();

/** Table 3: experimental results (cycles in 10^3). */
Table buildTable3(const std::vector<RunResult> &results);

/**
 * Table 4: Section 2.5 performance-model bounds vs measured cycles,
 * with the achieved fraction of the bound.
 */
Table buildTable4(const StudyConfig &cfg,
                  const std::vector<RunResult> &results);

/**
 * Speedup of @p machine over the PPC+AltiVec baseline on @p kernel.
 * @p perTime scales cycles by clock rate (Figure 9); otherwise the
 * comparison is cycle-for-cycle (Figure 8).
 */
double speedupVsAltivec(const std::vector<RunResult> &results,
                        MachineId machine, KernelId kernel,
                        bool perTime);

/** Figure 8: speedup vs PPC+AltiVec in cycles (log scale). */
BarChart buildFigure8(const std::vector<RunResult> &results);

/** Figure 9: speedup vs PPC+AltiVec in execution time (log scale). */
BarChart buildFigure9(const std::vector<RunResult> &results);

} // namespace triarch::study

#endif // TRIARCH_STUDY_REPORT_HH
