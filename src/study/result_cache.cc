#include "result_cache.hh"

namespace triarch::study
{

std::optional<RunResult>
ResultCache::get(MachineId machine, KernelId kernel,
                 std::uint64_t config_hash) const
{
    const Key key{static_cast<unsigned>(machine),
                  static_cast<unsigned>(kernel), config_hash};
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it == entries.end()) {
        ++nMisses;
        return std::nullopt;
    }
    ++nHits;
    return it->second;
}

void
ResultCache::put(const RunResult &result, std::uint64_t config_hash)
{
    const Key key{static_cast<unsigned>(result.machine),
                  static_cast<unsigned>(result.kernel), config_hash};
    std::lock_guard<std::mutex> lock(mu);
    entries.insert_or_assign(key, result);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    nHits.reset();
    nMisses.reset();
}

std::uint64_t
ResultCache::hits() const
{
    return nHits.value();
}

std::uint64_t
ResultCache::misses() const
{
    return nMisses.value();
}

ResultCache &
ResultCache::global()
{
    static ResultCache cache;
    return cache;
}

} // namespace triarch::study
