#include "result_cache.hh"

#include "sim/metrics.hh"

namespace triarch::study
{

ResultCache::ResultCache()
{
    group.addAtomicScalar("hits", &nHits,
                          "lookups served from the cache");
    group.addAtomicScalar("misses", &nMisses,
                          "lookups that had to recompute");
}

std::optional<RunResult>
ResultCache::get(MachineId machine, KernelId kernel,
                 std::uint64_t config_hash) const
{
    const Key key{static_cast<unsigned>(machine),
                  static_cast<unsigned>(kernel), config_hash};
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it == entries.end()) {
        ++nMisses;
        return std::nullopt;
    }
    ++nHits;
    return it->second;
}

void
ResultCache::put(const RunResult &result, std::uint64_t config_hash)
{
    const Key key{static_cast<unsigned>(result.machine),
                  static_cast<unsigned>(result.kernel), config_hash};
    std::lock_guard<std::mutex> lock(mu);
    entries.insert_or_assign(key, result);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    nHits.reset();
    nMisses.reset();
}

std::uint64_t
ResultCache::hits() const
{
    return nHits.value();
}

std::uint64_t
ResultCache::misses() const
{
    return nMisses.value();
}

ResultCache &
ResultCache::global()
{
    static ResultCache cache;
    static const bool registered = [] {
        metrics::MetricsRegistry::global().registerLive(&cache.group);
        return true;
    }();
    (void)registered;
    return cache;
}

} // namespace triarch::study
