#include "result_cache.hh"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "sim/json.hh"
#include "sim/metrics.hh"
#include "study/study_json.hh"

namespace triarch::study
{

const std::string &
ResultCache::cacheSchema()
{
    static const std::string schema = "triarch.cache.v1";
    return schema;
}

ResultCache::ResultCache(Capacity cache_capacity) : cap(cache_capacity)
{
    group.addAtomicScalar("hits", &nHits,
                          "lookups served from the cache");
    group.addAtomicScalar("misses", &nMisses,
                          "lookups that had to recompute");
    group.addAtomicScalar("evictions", &nEvictions,
                          "cells dropped by the LRU capacity bound");
    group.addAtomicScalar("entries", &nEntries,
                          "cells currently cached");
    group.addAtomicScalar("bytes", &nBytes,
                          "approximate bytes currently cached");
}

std::size_t
ResultCache::entryBytes(const RunResult &result)
{
    // Struct payload plus per-note string/pair storage plus a rough
    // allowance for the list/map node bookkeeping. Exactness is not
    // the point; a stable, monotone estimate is.
    std::size_t bytes = sizeof(Entry) + 3 * sizeof(void *) + 64;
    for (const auto &[name, value] : result.notes) {
        (void)value;
        bytes += sizeof(std::pair<std::string, double>) + name.size();
    }
    return bytes;
}

void
ResultCache::updateGaugesLocked() const
{
    nEntries.set(lru.size());
    nBytes.set(bytesHeld);
}

void
ResultCache::enforceCapacityLocked()
{
    while (!lru.empty()
           && ((cap.maxEntries && lru.size() > cap.maxEntries)
               || (cap.maxBytes && bytesHeld > cap.maxBytes))) {
        const Entry &victim = lru.back();
        bytesHeld -= victim.bytes;
        index.erase(victim.key);
        lru.pop_back();
        ++nEvictions;
    }
    updateGaugesLocked();
}

std::optional<RunResult>
ResultCache::get(MachineId machine, KernelId kernel,
                 std::uint64_t config_hash) const
{
    const Key key{static_cast<unsigned>(machine),
                  static_cast<unsigned>(kernel), config_hash};
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(key);
    if (it == index.end()) {
        ++nMisses;
        return std::nullopt;
    }
    ++nHits;
    lru.splice(lru.begin(), lru, it->second);
    return it->second->result;
}

void
ResultCache::put(const RunResult &result, std::uint64_t config_hash)
{
    const Key key{static_cast<unsigned>(result.machine),
                  static_cast<unsigned>(result.kernel), config_hash};
    const std::size_t bytes = entryBytes(result);
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(key);
    if (it != index.end()) {
        bytesHeld -= it->second->bytes;
        it->second->result = result;
        it->second->bytes = bytes;
        bytesHeld += bytes;
        lru.splice(lru.begin(), lru, it->second);
    } else {
        lru.push_front(Entry{key, result, bytes});
        index.emplace(key, lru.begin());
        bytesHeld += bytes;
    }
    enforceCapacityLocked();
}

void
ResultCache::setCapacity(Capacity cache_capacity)
{
    std::lock_guard<std::mutex> lock(mu);
    cap = cache_capacity;
    enforceCapacityLocked();
}

ResultCache::Capacity
ResultCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cap;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lru.size();
}

std::size_t
ResultCache::approxBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return bytesHeld;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    lru.clear();
    index.clear();
    bytesHeld = 0;
    nHits.reset();
    nMisses.reset();
    nEvictions.reset();
    updateGaugesLocked();
}

std::uint64_t
ResultCache::hits() const
{
    return nHits.value();
}

std::uint64_t
ResultCache::misses() const
{
    return nMisses.value();
}

std::uint64_t
ResultCache::evictions() const
{
    return nEvictions.value();
}

namespace
{

std::string
hashHex(std::uint64_t hash)
{
    std::ostringstream os;
    os << std::hex << hash;
    return os.str();
}

bool
parseHashHex(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text.size() > 16)
        return false;
    for (char c : text) {
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    }
    *out = std::strtoull(text.c_str(), nullptr, 16);
    return true;
}

} // namespace

void
ResultCache::save(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.member("schema", cacheSchema());
    w.key("entries").beginArray();
    {
        std::lock_guard<std::mutex> lock(mu);
        // Least-recently-used first: replaying the document through
        // put() reproduces the recency order exactly.
        for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
            w.beginObject(json::Writer::Style::Compact);
            w.member("config_hash", hashHex(std::get<2>(it->key)));
            w.key("result");
            writeRunResult(w, it->result);
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    w.finish();
    os << "\n";
}

bool
ResultCache::saveFile(const std::string &path, std::string *error) const
{
    std::ofstream os(path);
    if (!os) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    save(os);
    if (!os.good()) {
        if (error)
            *error = "failed writing cache JSON to '" + path + "'";
        return false;
    }
    return true;
}

std::optional<std::size_t>
ResultCache::load(const std::string &text, std::string *error)
{
    const auto fail = [error](const std::string &why)
        -> std::optional<std::size_t> {
        if (error && error->empty())
            *error = why;
        return std::nullopt;
    };
    if (error)
        error->clear();

    const auto root = json::parse(text, error);
    if (!root)
        return std::nullopt;
    if (!root->isObject())
        return fail("cache document root is not an object");

    const json::Value *schema = root->field("schema");
    if (!schema || !schema->isString())
        return fail("cache document missing schema field");
    if (schema->text != cacheSchema()) {
        return fail("unsupported cache schema '" + schema->text
                    + "' (want " + cacheSchema() + ")");
    }

    const json::Value *entries = root->field("entries");
    if (!entries || !entries->isArray())
        return fail("cache document missing entries array");

    std::size_t loaded = 0;
    for (const json::Value &entry : entries->items) {
        if (!entry.isObject())
            return fail("cache entry is not an object");
        const json::Value *hash = entry.field("config_hash");
        std::uint64_t config_hash = 0;
        if (!hash || !hash->isString()
            || !parseHashHex(hash->text, &config_hash))
            return fail("cache entry has a bad config_hash field");
        const json::Value *result = entry.field("result");
        if (!result)
            return fail("cache entry missing result object");
        RunResult parsed;
        if (!parseRunResult(*result, &parsed, error))
            return std::nullopt;
        put(parsed, config_hash);
        ++loaded;
    }
    return loaded;
}

std::optional<std::size_t>
ResultCache::loadFile(const std::string &path, std::string *error)
{
    if (!std::filesystem::exists(path))
        return 0;    // cold start: nothing persisted yet
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open '" + path + "' for reading";
        return std::nullopt;
    }
    std::ostringstream text;
    text << is.rdbuf();
    auto loaded = load(text.str(), error);
    if (!loaded && error && !error->empty())
        *error = path + ": " + *error;
    return loaded;
}

ResultCache &
ResultCache::global()
{
    static ResultCache cache(
        Capacity{4096, std::size_t{256} * 1024 * 1024});
    static const bool registered = [] {
        metrics::MetricsRegistry::global().registerLive(&cache.group);
        return true;
    }();
    (void)registered;
    return cache;
}

} // namespace triarch::study
