#include "client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

namespace triarch::serve
{

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd(std::exchange(other.fd, -1)),
      buffer(std::move(other.buffer))
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd = std::exchange(other.fd, -1);
        buffer = std::move(other.buffer);
    }
    return *this;
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    buffer.clear();
}

Client
Client::connectUnix(const std::string &path, std::string *error)
{
    Client client;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "unix socket path too long: " + path;
        return client;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("cannot create unix socket: ")
                     + std::strerror(errno);
        return client;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "cannot connect to '" + path
                     + "': " + std::strerror(errno);
        ::close(fd);
        return client;
    }
    client.fd = fd;
    return client;
}

Client
Client::connectTcp(std::uint16_t port, std::string *error)
{
    Client client;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("cannot create tcp socket: ")
                     + std::strerror(errno);
        return client;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "cannot connect to 127.0.0.1:"
                     + std::to_string(port) + ": "
                     + std::strerror(errno);
        ::close(fd);
        return client;
    }
    client.fd = fd;
    return client;
}

bool
Client::send(const JobRequest &request, std::string *error)
{
    if (fd < 0) {
        if (error)
            *error = "client is not connected";
        return false;
    }
    const std::string line = writeJobRequest(request) + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + sent, line.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("send failed: ")
                         + std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
Client::readLine(std::string *error)
{
    char chunk[4096];
    for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            return line;
        }
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("read failed: ")
                         + std::strerror(errno);
            return std::nullopt;
        }
        if (n == 0) {
            if (error)
                *error = "connection closed by the daemon";
            return std::nullopt;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

std::optional<JobResponse>
Client::readResponse(std::string *error)
{
    if (fd < 0) {
        if (error)
            *error = "client is not connected";
        return std::nullopt;
    }
    const auto line = readLine(error);
    if (!line)
        return std::nullopt;
    JobResponse response;
    if (!parseJobResponse(*line, &response, error))
        return std::nullopt;
    return response;
}

std::optional<JobResponse>
Client::call(const JobRequest &request, std::string *error)
{
    if (!send(request, error))
        return std::nullopt;
    return readResponse(error);
}

} // namespace triarch::serve
