/**
 * @file
 * The daemon's wire protocol: versioned, line-delimited JSON
 * documents. A client sends one triarch.job.v1 request per line —
 * a job id, an optional StudyConfig (the paper's parameters by
 * default), and a batch of (machine, kernel) cells — and receives
 * one triarch.result.v1 response per line, either the per-cell
 * RunResults (each tagged with whether the shared cache served it)
 * or a typed error (bad_request, overloaded, draining, unmapped,
 * internal).
 *
 * A request may instead carry '"type": "stats"' — no cells — which
 * asks the daemon for its current triarch.stats.v1 snapshot; the
 * response then carries the snapshot verbatim under "stats" instead
 * of a results array. '"type": "hw"' works the same way for the
 * daemon's triarch.hw.v1 hardware-utilization report (the cells its
 * run jobs have executed so far, with bottleneck verdicts and epoch
 * timelines), carried under "hw". Run requests never write the type
 * field, so their wire bytes are unchanged from before these
 * endpoints existed.
 *
 * Like triarch.bench.v1, both documents round-trip: writeJobRequest
 * followed by parseJobRequest (and the response pair) reproduce the
 * original value bit-for-bit, which tests/test_serve.cc pins down.
 * Field order is fixed, numbers are written deterministically, and
 * unknown schemas are rejected with the offending tag in the error.
 */

#ifndef TRIARCH_SERVE_PROTOCOL_HH
#define TRIARCH_SERVE_PROTOCOL_HH

#include <optional>
#include <string>
#include <vector>

#include "study/experiment.hh"
#include "study/parallel.hh"

namespace triarch::serve
{

/** Schema tags ("triarch.job.v1" / "triarch.result.v1"). */
const std::string &jobSchema();
const std::string &resultSchema();

/** What a request asks the daemon to do. */
enum class RequestKind
{
    Run,      //!< execute the cells (the default; no type field)
    Stats,    //!< return the live stats snapshot ("type": "stats")
    Hw,       //!< return the hw utilization report ("type": "hw")
};

/** One job: run these cells under this config. */
struct JobRequest
{
    std::string id;                    //!< client-chosen correlation id
    study::StudyConfig config;         //!< paper defaults if omitted
    std::vector<study::Cell> cells;    //!< at least one (Run only)

    /** Stats and hw requests serialize only schema/id/type; config
     *  and cells are ignored for them. */
    RequestKind kind = RequestKind::Run;

    friend bool operator==(const JobRequest &,
                           const JobRequest &) = default;
};

/** Why a job was refused or failed. */
enum class JobErrorCode
{
    BadRequest,     //!< malformed document or invalid config
    Overloaded,     //!< queue bound hit; retry later
    Draining,       //!< daemon is shutting down; not accepting work
    Unmapped,       //!< a cell has no registered kernel mapping
    Internal,       //!< unexpected server-side failure
};

/** Stable wire token for @p code ("bad_request", ...). */
const std::string &jobErrorCodeToken(JobErrorCode code);
std::optional<JobErrorCode> parseJobErrorCode(const std::string &token);

struct JobError
{
    JobErrorCode code{};
    std::string message;

    friend bool operator==(const JobError &, const JobError &) = default;
};

/** One cell's result plus whether the shared cache served it. */
struct CellResult
{
    study::RunResult result;
    bool cached = false;

    friend bool operator==(const CellResult &,
                           const CellResult &) = default;
};

struct JobResponse
{
    std::string id;            //!< echoed from the request
    std::string configHash;    //!< hex studyConfigHash of the job
    std::optional<JobError> error;
    std::vector<CellResult> results;    //!< request cell order

    /** Stats-request answer: the daemon's triarch.stats.v1 snapshot,
     *  rendered compactly. Empty for run responses; when non-empty
     *  the wire document carries it verbatim instead of results. */
    std::string statsJson;

    /** Hw-request answer: the daemon's triarch.hw.v1 report,
     *  rendered compactly; carried under "hw" on the wire. */
    std::string hwJson;

    bool ok() const { return !error.has_value(); }

    friend bool operator==(const JobResponse &,
                           const JobResponse &) = default;
};

/** Render as a single line (no embedded newline), without the
 *  trailing '\n' the socket framing adds. */
std::string writeJobRequest(const JobRequest &request);
std::string writeJobResponse(const JobResponse &response);

/** Parse one document; on failure returns false with *error set
 *  (first problem only). */
bool parseJobRequest(const std::string &text, JobRequest *request,
                     std::string *error);
bool parseJobResponse(const std::string &text, JobResponse *response,
                      std::string *error);

/** The error response for an unparseable request line: echoes the
 *  request's id when one could be recovered, else "". */
JobResponse badRequestResponse(const std::string &text,
                               const std::string &why);

} // namespace triarch::serve

#endif // TRIARCH_SERVE_PROTOCOL_HH
