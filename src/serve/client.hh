/**
 * @file
 * Blocking client for the daemon's line-delimited protocol: connect
 * over AF_UNIX or TCP loopback, call() a JobRequest, get the parsed
 * JobResponse back. One Client per connection; requests on a single
 * Client are serialized (send, then read exactly one line).
 */

#ifndef TRIARCH_SERVE_CLIENT_HH
#define TRIARCH_SERVE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hh"

namespace triarch::serve
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to a daemon; returns a disconnected client (with
     *  *error set) on failure — check connected(). */
    static Client connectUnix(const std::string &path,
                              std::string *error);
    static Client connectTcp(std::uint16_t port, std::string *error);

    bool connected() const { return fd >= 0; }

    /** Send one request and block for its response. Returns nullopt
     *  with *error set on transport or parse failure; protocol-level
     *  refusals come back as a JobResponse with error set. */
    std::optional<JobResponse> call(const JobRequest &request,
                                    std::string *error);

    /** Send without waiting (pipelining); pair with readResponse(). */
    bool send(const JobRequest &request, std::string *error);
    std::optional<JobResponse> readResponse(std::string *error);

    void close();

  private:
    std::optional<std::string> readLine(std::string *error);

    int fd = -1;
    std::string buffer;
};

} // namespace triarch::serve

#endif // TRIARCH_SERVE_CLIENT_HH
