/**
 * @file
 * ExperimentService: the daemon's job engine. Wraps the
 * MappingRegistry, the shared ResultCache, and a worker pool behind
 * a bounded asynchronous cell queue:
 *
 *  - every cell of an accepted job is served from the shared cache,
 *    coalesced onto an identical in-flight cell (computed once, both
 *    requests get the value), or queued for a worker;
 *  - the queue is bounded: a job whose new cells would push the
 *    outstanding count past the bound is refused with a typed
 *    Overloaded error instead of queueing unboundedly (or hanging);
 *  - beginDrain() flips the service into shutdown mode — new jobs
 *    get a typed Draining error, and drain() blocks until every
 *    already-accepted cell has executed and been answered;
 *  - live gauges (queue depth, in-flight cells, coalesced/cached
 *    counts) sit in a "serve" StatGroup registered with the global
 *    MetricsRegistry, and each job gets a trace span when a
 *    TraceSession is active.
 *
 * submit() is synchronous (the caller's thread blocks until its
 * job's cells are done) and safe to call from many threads — the
 * socket server calls it from one thread per connection.
 */

#ifndef TRIARCH_SERVE_SERVICE_HH
#define TRIARCH_SERVE_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "serve/protocol.hh"
#include "sim/host_clock.hh"
#include "sim/stats.hh"
#include "study/registry.hh"
#include "study/result_cache.hh"

namespace triarch::serve
{

struct ServiceOptions
{
    /** Worker threads; 0 = hardware concurrency (min 1). */
    unsigned workers = 0;

    /** Backpressure bound: maximum outstanding (queued + executing)
     *  cells. A job whose new cells would exceed it is refused. */
    std::size_t maxOutstandingCells = 256;

    /** Distinct StudyConfigs whose synthesized Workloads stay
     *  resident (LRU); rebuilding is correct but slow. */
    std::size_t maxResidentWorkloads = 4;
};

class ExperimentService
{
  public:
    explicit ExperimentService(
        ServiceOptions service_options = {},
        const study::MappingRegistry *mappings = nullptr,
        study::ResultCache *cache = nullptr);
    ~ExperimentService();

    ExperimentService(const ExperimentService &) = delete;
    ExperimentService &operator=(const ExperimentService &) = delete;

    /** Run one job to completion; always returns a response (typed
     *  error rather than an exception or a hang). Thread-safe. */
    JobResponse submit(const JobRequest &request);

    /** Answer a "stats" request: the live triarch.stats.v1 snapshot
     *  under JobResponse::statsJson, or a Draining error once
     *  beginDrain() was called (exit-time counters land in the
     *  --stats file instead). Thread-safe. */
    JobResponse stats(const JobRequest &request);

    /** Answer a "hw" request: the triarch.hw.v1 utilization report
     *  of every cell the daemon's run jobs have executed so far,
     *  under JobResponse::hwJson (Draining error once beginDrain()
     *  was called). Thread-safe. */
    JobResponse hw(const JobRequest &request);

    /** Stop accepting jobs; already-accepted cells keep running. */
    void beginDrain();

    /** True once beginDrain() was called. */
    bool draining() const;

    /** Block until every accepted cell has finished. Call after
     *  beginDrain(), or new jobs can extend the wait forever. */
    void drain();

    const study::ResultCache &cache() const { return *resultCache; }

    /** The "serve" group: gauges + counters listed in the file
     *  comment. Live-registered for the service's lifetime. When
     *  host profiling is enabled the group also carries latency
     *  histograms: job_e2e_ns, cell_queue_wait_ns, cell_service_ns,
     *  cell_e2e_ns, plus the cache-hit / coalesce split (cell_hit_ns,
     *  cell_coalesce_wait_ns). */
    const stats::StatGroup &statGroup() const { return group; }

    /**
     * Refresh the uptime gauge and render the current global
     * triarch.stats.v1 document compactly (one line, no trailing
     * newline) — the payload of the wire "stats" request.
     */
    std::string statsJson();

    /** Update serve.uptime_seconds from the monotonic clock. */
    void refreshUptime();

    /** Counter accessors for tests. */
    std::uint64_t jobsAccepted() const { return nJobsAccepted.value(); }
    std::uint64_t jobsRefused() const { return nJobsRefused.value(); }
    std::uint64_t cellsExecuted() const
    {
        return nCellsExecuted.value();
    }
    std::uint64_t cellsCoalesced() const
    {
        return nCellsCoalesced.value();
    }
    std::uint64_t cellsFromCache() const
    {
        return nCellsFromCache.value();
    }

  private:
    using CellKey = std::tuple<unsigned, unsigned, std::uint64_t>;

    /** What a worker produces for one cell: a result, or why not. */
    struct ExecOutcome
    {
        std::optional<study::RunResult> result;
        std::optional<JobError> error;
    };
    using CellFuture = std::shared_future<ExecOutcome>;

    struct Task
    {
        CellKey key;
        study::StudyConfig config;
        study::Cell cell;
        std::shared_ptr<std::promise<ExecOutcome>> promise;
        std::uint64_t enqueueNs = 0;    //!< host clock; 0 = unprofiled
    };

    void workerLoop();
    std::shared_ptr<const study::Workloads>
    workloadsFor(std::uint64_t config_hash,
                 const study::StudyConfig &config);
    void updateGaugesLocked();

    ServiceOptions opts;
    const study::MappingRegistry *mappings;
    study::ResultCache *resultCache;

    mutable std::mutex mu;
    std::condition_variable workAvailable;
    std::condition_variable idle;
    std::deque<Task> queue;
    std::map<CellKey, CellFuture> inflight;
    std::size_t outstanding = 0;    //!< queued + executing cells
    bool drainGate = false;
    bool stopping = false;

    /** Small LRU of built workloads, guarded by its own mutex; the
     *  shared_future ensures one builder per config even when two
     *  workers want the same new config at once. */
    std::mutex workMu;
    std::list<std::pair<
        std::uint64_t,
        std::shared_future<std::shared_ptr<const study::Workloads>>>>
        workLru;

    std::vector<std::thread> workers;

    stats::StatGroup group{"serve"};
    stats::AtomicScalar nJobsAccepted;
    stats::AtomicScalar nJobsRefused;
    stats::AtomicScalar nCellsExecuted;
    stats::AtomicScalar nCellsCoalesced;
    stats::AtomicScalar nCellsFromCache;
    stats::AtomicScalar queueDepth;      //!< gauge
    stats::AtomicScalar inflightCells;   //!< gauge
    stats::AtomicScalar uptimeSeconds;   //!< gauge, refreshUptime()

    // Host-time latency histograms; empty (and invisible) unless
    // host profiling is on.
    stats::Histogram jobE2eNs;
    stats::Histogram cellQueueWaitNs;
    stats::Histogram cellServiceNs;
    stats::Histogram cellE2eNs;
    stats::Histogram cellHitNs;
    stats::Histogram cellCoalesceWaitNs;

    const std::uint64_t bornNs = host::nowNs();
};

} // namespace triarch::serve

#endif // TRIARCH_SERVE_SERVICE_HH
