#include "protocol.hh"

#include <iterator>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "study/machine_info.hh"
#include "study/study_json.hh"

namespace triarch::serve
{

const std::string &
jobSchema()
{
    static const std::string schema = "triarch.job.v1";
    return schema;
}

const std::string &
resultSchema()
{
    static const std::string schema = "triarch.result.v1";
    return schema;
}

const std::string &
jobErrorCodeToken(JobErrorCode code)
{
    static const std::string tokens[] = {
        "bad_request", "overloaded", "draining", "unmapped",
        "internal"};
    const auto i = static_cast<std::size_t>(code);
    triarch_assert(i < std::size(tokens),
                   "JobErrorCode out of range: ", i);
    return tokens[i];
}

std::optional<JobErrorCode>
parseJobErrorCode(const std::string &token)
{
    for (JobErrorCode code :
         {JobErrorCode::BadRequest, JobErrorCode::Overloaded,
          JobErrorCode::Draining, JobErrorCode::Unmapped,
          JobErrorCode::Internal}) {
        if (jobErrorCodeToken(code) == token)
            return code;
    }
    return std::nullopt;
}

std::string
writeJobRequest(const JobRequest &request)
{
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject(json::Writer::Style::Compact);
    w.member("schema", jobSchema());
    w.member("id", request.id);
    if (request.kind != RequestKind::Run) {
        // A stats/hw probe carries no work; config and cells stay
        // off the wire so the request is schema + id + type only.
        w.member("type", request.kind == RequestKind::Stats
                             ? "stats"
                             : "hw");
        w.endObject();
        w.finish();
        return os.str();
    }
    w.key("config");
    writeStudyConfig(w, request.config);
    w.key("cells").beginArray();
    for (const study::Cell &cell : request.cells) {
        w.beginObject();
        w.member("machine", study::machineToken(cell.machine));
        w.member("kernel", study::kernelToken(cell.kernel));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.finish();
    return os.str();
}

std::string
writeJobResponse(const JobResponse &response)
{
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject(json::Writer::Style::Compact);
    w.member("schema", resultSchema());
    w.member("id", response.id);
    w.member("config_hash", response.configHash);
    w.member("status", response.ok() ? "ok" : "error");
    if (response.error) {
        w.key("error").beginObject();
        w.member("code", jobErrorCodeToken(response.error->code));
        w.member("message", response.error->message);
        w.endObject();
    } else if (!response.statsJson.empty()) {
        // The snapshot is already-rendered JSON (the daemon's
        // triarch.stats.v1 document); splice it verbatim so the
        // client sees exactly what the daemon's --stats file shows.
        w.key("stats").rawValue(response.statsJson);
    } else if (!response.hwJson.empty()) {
        // Same verbatim splice for the triarch.hw.v1 report.
        w.key("hw").rawValue(response.hwJson);
    } else {
        w.key("results").beginArray();
        for (const CellResult &cell : response.results) {
            w.beginObject();
            w.member("cached", cell.cached);
            w.key("result");
            writeRunResult(w, cell.result);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    w.finish();
    return os.str();
}

namespace
{

bool
reject(std::string *error, const std::string &why)
{
    if (error && error->empty())
        *error = why;
    return false;
}

/** Shared envelope checks: object root, schema tag, string id. */
const json::Value *
checkEnvelope(const std::string &text, const std::string &schema,
              std::optional<json::Value> *root_storage,
              std::string *id, std::string *error)
{
    if (error)
        error->clear();
    *root_storage = json::parse(text, error);
    if (!*root_storage)
        return nullptr;
    const json::Value &root = **root_storage;
    if (!root.isObject()) {
        reject(error, "document root is not an object");
        return nullptr;
    }
    const json::Value *tag = root.field("schema");
    if (!tag || !tag->isString()) {
        reject(error, "missing schema field");
        return nullptr;
    }
    if (tag->text != schema) {
        reject(error, "unsupported schema '" + tag->text + "' (want "
                          + schema + ")");
        return nullptr;
    }
    const json::Value *idField = root.field("id");
    if (!idField || !idField->isString()) {
        reject(error, "missing id field");
        return nullptr;
    }
    *id = idField->text;
    return &root;
}

} // namespace

bool
parseJobRequest(const std::string &text, JobRequest *request,
                std::string *error)
{
    std::optional<json::Value> storage;
    JobRequest out;
    const json::Value *root =
        checkEnvelope(text, jobSchema(), &storage, &out.id, error);
    if (!root)
        return false;

    if (const json::Value *type = root->field("type")) {
        if (!type->isString())
            return reject(error, "type field is not a string");
        if (type->text == "stats") {
            out.kind = RequestKind::Stats;
        } else if (type->text == "hw") {
            out.kind = RequestKind::Hw;
        } else {
            return reject(error, "unknown request type '" + type->text
                                     + "'");
        }
        *request = std::move(out);
        return true;
    }

    if (const json::Value *config = root->field("config")) {
        if (!study::parseStudyConfig(*config, &out.config, error))
            return false;
    }

    const json::Value *cells = root->field("cells");
    if (!cells || !cells->isArray())
        return reject(error, "missing cells array");
    if (cells->items.empty())
        return reject(error, "cells array is empty");
    for (const json::Value &entry : cells->items) {
        if (!entry.isObject())
            return reject(error, "cell entry is not an object");
        const json::Value *machine = entry.field("machine");
        if (!machine || !machine->isString())
            return reject(error, "cell missing machine token");
        const auto mid = study::parseMachineToken(machine->text);
        if (!mid) {
            return reject(error, "unknown machine token '"
                                     + machine->text + "'");
        }
        const json::Value *kernel = entry.field("kernel");
        if (!kernel || !kernel->isString())
            return reject(error, "cell missing kernel token");
        const auto kid = study::parseKernelToken(kernel->text);
        if (!kid) {
            return reject(error, "unknown kernel token '"
                                     + kernel->text + "'");
        }
        out.cells.push_back({*mid, *kid});
    }

    *request = std::move(out);
    return true;
}

bool
parseJobResponse(const std::string &text, JobResponse *response,
                 std::string *error)
{
    std::optional<json::Value> storage;
    JobResponse out;
    const json::Value *root =
        checkEnvelope(text, resultSchema(), &storage, &out.id, error);
    if (!root)
        return false;

    const json::Value *hash = root->field("config_hash");
    if (!hash || !hash->isString())
        return reject(error, "missing config_hash field");
    out.configHash = hash->text;

    const json::Value *status = root->field("status");
    if (!status || !status->isString()
        || (status->text != "ok" && status->text != "error"))
        return reject(error, "missing or bad status field");

    if (status->text == "error") {
        const json::Value *err = root->field("error");
        if (!err || !err->isObject())
            return reject(error, "error status without error object");
        const json::Value *code = err->field("code");
        if (!code || !code->isString())
            return reject(error, "error object missing code");
        const auto parsed = parseJobErrorCode(code->text);
        if (!parsed) {
            return reject(error, "unknown error code '" + code->text
                                     + "'");
        }
        const json::Value *message = err->field("message");
        if (!message || !message->isString())
            return reject(error, "error object missing message");
        out.error = JobError{*parsed, message->text};
        *response = std::move(out);
        return true;
    }

    if (const json::Value *statsDoc = root->field("stats")) {
        if (!statsDoc->isObject())
            return reject(error, "stats field is not an object");
        // render() preserves the raw number text and field order, so
        // a write/parse round trip of the snapshot is bit-exact.
        out.statsJson = json::render(*statsDoc);
        *response = std::move(out);
        return true;
    }

    if (const json::Value *hwDoc = root->field("hw")) {
        if (!hwDoc->isObject())
            return reject(error, "hw field is not an object");
        out.hwJson = json::render(*hwDoc);
        *response = std::move(out);
        return true;
    }

    const json::Value *results = root->field("results");
    if (!results || !results->isArray())
        return reject(error, "ok status without results array");
    for (const json::Value &entry : results->items) {
        if (!entry.isObject())
            return reject(error, "result entry is not an object");
        CellResult cell;
        const json::Value *cached = entry.field("cached");
        if (!cached || !cached->isBool())
            return reject(error, "result entry missing cached flag");
        cell.cached = cached->boolean;
        const json::Value *result = entry.field("result");
        if (!result)
            return reject(error, "result entry missing result object");
        if (!study::parseRunResult(*result, &cell.result, error))
            return false;
        out.results.push_back(std::move(cell));
    }

    *response = std::move(out);
    return true;
}

JobResponse
badRequestResponse(const std::string &text, const std::string &why)
{
    JobResponse response;
    // Best effort: recover the id so the client can correlate the
    // rejection even though the rest of the document was bad.
    std::string ignored;
    if (auto root = json::parse(text, &ignored)) {
        if (root->isObject()) {
            if (const json::Value *id = root->field("id");
                id && id->isString())
                response.id = id->text;
        }
    }
    response.error = JobError{JobErrorCode::BadRequest, why};
    return response;
}

} // namespace triarch::serve
