#include "server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace triarch::serve
{

namespace
{

/** write() the whole buffer, riding out short writes and EINTR. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + sent, data.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

SocketServer::SocketServer(ExperimentService &job_service,
                           ServerOptions server_options)
    : service(job_service), opts(std::move(server_options))
{
}

SocketServer::~SocketServer()
{
    stop();
}

bool
SocketServer::start(std::string *error)
{
    const auto fail = [this, error](const std::string &why) {
        if (error)
            *error = why + ": " + std::strerror(errno);
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        return false;
    };

    triarch_assert(!started, "SocketServer started twice");

    if (::pipe(stopPipe) != 0)
        return fail("cannot create stop pipe");

    if (!opts.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts.unixPath.size() >= sizeof(addr.sun_path)) {
            if (error)
                *error = "unix socket path too long: " + opts.unixPath;
            return false;
        }
        std::strncpy(addr.sun_path, opts.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("cannot create unix socket");
        // A previous daemon's leftover socket file would make bind
        // fail; it is dead weight once no process listens on it.
        ::unlink(opts.unixPath.c_str());
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("cannot bind '" + opts.unixPath + "'");
    } else {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opts.port);
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("cannot create tcp socket");
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            return fail("cannot bind 127.0.0.1:"
                        + std::to_string(opts.port));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0)
            return fail("cannot read bound port");
        boundPort = ntohs(bound.sin_port);
    }

    if (::listen(listenFd, 16) != 0)
        return fail("cannot listen");

    started = true;
    acceptor = std::thread([this] { acceptLoop(); });
    return true;
}

void
SocketServer::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd, POLLIN, 0},
                         {stopPipe[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents || stopping.load(std::memory_order_acquire))
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        nAccepted.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(connMu);
        connections.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

void
SocketServer::serveConnection(int fd)
{
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
        // Serve every complete line already buffered before reading
        // more, so a stop() arriving mid-batch still answers the
        // requests that made it onto the wire.
        std::size_t newline;
        while ((newline = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            JobRequest request;
            std::string parseError;
            JobResponse response;
            if (!parseJobRequest(line, &request, &parseError))
                response = badRequestResponse(line, parseError);
            else if (request.kind == RequestKind::Stats)
                response = service.stats(request);
            else if (request.kind == RequestKind::Hw)
                response = service.hw(request);
            else
                response = service.submit(request);
            if (!writeAll(fd, writeJobResponse(response) + "\n")) {
                open = false;
                break;
            }
        }
        if (!open)
            break;
        if (stopping.load(std::memory_order_acquire))
            break;

        pollfd fds[2] = {{fd, POLLIN, 0}, {stopPipe[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents || stopping.load(std::memory_order_acquire))
            break;
        if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break;    // peer closed (or hard error)
            }
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }
    ::close(fd);
}

void
SocketServer::stop()
{
    if (!started || stopped)
        return;
    stopped = true;
    stopping.store(true, std::memory_order_release);
    // One byte wakes every poller: the pipe's read end stays
    // readable because nobody drains it.
    const char byte = 1;
    (void)!::write(stopPipe[1], &byte, 1);

    if (acceptor.joinable())
        acceptor.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(connMu);
        conns.swap(connections);
    }
    for (std::thread &t : conns)
        t.join();
    if (!opts.unixPath.empty())
        ::unlink(opts.unixPath.c_str());
    for (int &p : stopPipe) {
        if (p >= 0) {
            ::close(p);
            p = -1;
        }
    }
}

} // namespace triarch::serve
