#include "service.hh"

#include <sstream>

#include "sim/hw_report.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "study/config_check.hh"
#include "study/machine_info.hh"

namespace triarch::serve
{

namespace
{

std::string
hashHex(std::uint64_t hash)
{
    std::ostringstream os;
    os << std::hex << hash;
    return os.str();
}

} // namespace

ExperimentService::ExperimentService(
    ServiceOptions service_options,
    const study::MappingRegistry *mappings, study::ResultCache *cache)
    : opts(service_options),
      mappings(mappings ? mappings : &study::MappingRegistry::builtin()),
      resultCache(cache ? cache : &study::ResultCache::global())
{
    group.addAtomicScalar("jobs_accepted", &nJobsAccepted,
                          "jobs taken into the queue");
    group.addAtomicScalar("jobs_refused", &nJobsRefused,
                          "jobs refused (bad request, overload, "
                          "draining)");
    group.addAtomicScalar("cells_executed", &nCellsExecuted,
                          "cells run by a worker");
    group.addAtomicScalar("cells_coalesced", &nCellsCoalesced,
                          "cells attached to an identical in-flight "
                          "cell");
    group.addAtomicScalar("cells_from_cache", &nCellsFromCache,
                          "cells answered by the shared result cache");
    group.addAtomicScalar("queue_depth", &queueDepth,
                          "cells waiting for a worker (gauge)");
    group.addAtomicScalar("inflight", &inflightCells,
                          "cells queued or executing (gauge)");
    group.addAtomicScalar("uptime_seconds", &uptimeSeconds,
                          "seconds since the service started (gauge)");
    group.addHistogram("job_e2e_ns", &jobE2eNs,
                       "host ns from job submit to full response");
    group.addHistogram("cell_queue_wait_ns", &cellQueueWaitNs,
                       "host ns a cell sat queued before a worker");
    group.addHistogram("cell_service_ns", &cellServiceNs,
                       "host ns a worker spent executing a cell");
    group.addHistogram("cell_e2e_ns", &cellE2eNs,
                       "host ns from cell enqueue to its result");
    group.addHistogram("cell_hit_ns", &cellHitNs,
                       "host ns to answer a cell from the cache");
    group.addHistogram("cell_coalesce_wait_ns", &cellCoalesceWaitNs,
                       "host ns a coalesced cell waited on the "
                       "in-flight copy");
    metrics::MetricsRegistry::global().registerLive(&group);

    if (opts.maxResidentWorkloads == 0)
        opts.maxResidentWorkloads = 1;

    unsigned n = opts.workers;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 2;
    }
    workers.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

ExperimentService::~ExperimentService()
{
    beginDrain();
    drain();
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    workAvailable.notify_all();
    for (std::thread &t : workers)
        t.join();
    metrics::MetricsRegistry::global().capture(group, "serve");
    metrics::MetricsRegistry::global().unregisterLive(&group);
}

void
ExperimentService::updateGaugesLocked()
{
    queueDepth.set(queue.size());
    inflightCells.set(outstanding);
}

void
ExperimentService::refreshUptime()
{
    uptimeSeconds.set((host::nowNs() - bornNs) / 1000000000ull);
}

std::string
ExperimentService::statsJson()
{
    refreshUptime();
    return metrics::MetricsRegistry::global().toJson();
}

JobResponse
ExperimentService::stats(const JobRequest &request)
{
    JobResponse response;
    response.id = request.id;
    response.configHash =
        hashHex(study::studyConfigHash(request.config));
    if (draining()) {
        ++nJobsRefused;
        response.error =
            JobError{JobErrorCode::Draining,
                     "daemon is draining; stats unavailable"};
        return response;
    }
    response.statsJson = statsJson();
    return response;
}

JobResponse
ExperimentService::hw(const JobRequest &request)
{
    JobResponse response;
    response.id = request.id;
    response.configHash =
        hashHex(study::studyConfigHash(request.config));
    if (draining()) {
        ++nJobsRefused;
        response.error =
            JobError{JobErrorCode::Draining,
                     "daemon is draining; hw report unavailable"};
        return response;
    }
    // No config hash inside the document: the registry holds the
    // latest capture per cell across every config this daemon ran.
    // (Fully qualified: the method's own name shadows the namespace.)
    response.hwJson = ::triarch::hw::renderHwReport(
        ::triarch::hw::HwRegistry::global().report(),
        /*compact=*/true);
    return response;
}

void
ExperimentService::beginDrain()
{
    std::lock_guard<std::mutex> lock(mu);
    drainGate = true;
}

bool
ExperimentService::draining() const
{
    std::lock_guard<std::mutex> lock(mu);
    return drainGate;
}

void
ExperimentService::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    idle.wait(lock, [this] { return outstanding == 0; });
}

std::shared_ptr<const study::Workloads>
ExperimentService::workloadsFor(std::uint64_t config_hash,
                                const study::StudyConfig &config)
{
    using WorkPtr = std::shared_ptr<const study::Workloads>;
    std::shared_ptr<std::promise<WorkPtr>> builder;
    std::shared_future<WorkPtr> ready;
    {
        std::lock_guard<std::mutex> lock(workMu);
        for (auto it = workLru.begin(); it != workLru.end(); ++it) {
            if (it->first == config_hash) {
                workLru.splice(workLru.begin(), workLru, it);
                ready = it->second;
                break;
            }
        }
        if (!ready.valid()) {
            builder = std::make_shared<std::promise<WorkPtr>>();
            ready = builder->get_future().share();
            workLru.emplace_front(config_hash, ready);
            if (workLru.size() > opts.maxResidentWorkloads)
                workLru.pop_back();
        }
    }
    if (builder) {
        // The config was validated at submit(), so this cannot
        // triarch_fatal; the shared_future makes every other worker
        // that wants this config wait instead of rebuilding.
        builder->set_value(study::buildWorkloads(config));
    }
    return ready.get();
}

void
ExperimentService::workerLoop()
{
    trace::TraceSession *ts = trace::TraceSession::active();
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        workAvailable.wait(
            lock, [this] { return stopping || !queue.empty(); });
        if (stopping && queue.empty())
            return;
        Task task = std::move(queue.front());
        queue.pop_front();
        updateGaugesLocked();
        lock.unlock();

        const bool hostOn =
            task.enqueueNs != 0 && host::profilingEnabled();
        const std::uint64_t pickNs = hostOn ? host::nowNs() : 0;
        if (hostOn)
            cellQueueWaitNs.record(pickNs - task.enqueueNs);

        if (!ts)
            ts = trace::TraceSession::active();
        ExecOutcome outcome;
        const study::Cell &cell = task.cell;
        const std::uint64_t config_hash = std::get<2>(task.key);
        const study::KernelMapping *mapping =
            mappings->find(cell.machine, cell.kernel);
        if (!mapping) {
            outcome.error = JobError{
                JobErrorCode::Unmapped,
                mappings->missing(cell.machine, cell.kernel).message};
        } else {
            auto work = workloadsFor(config_hash, task.config);
            const double execUs = ts ? ts->nowUs() : 0.0;
            outcome.result = (*mapping)(task.config, *work);
            if (ts) {
                ts->span(study::machineToken(cell.machine) + "/"
                             + study::kernelToken(cell.kernel),
                         "serve", execUs, ts->nowUs() - execUs);
            }
        }
        if (hostOn) {
            const std::uint64_t doneNs = host::nowNs();
            cellServiceNs.record(doneNs - pickNs);
            cellE2eNs.record(doneNs - task.enqueueNs);
        }

        lock.lock();
        // Order matters for the coalescing race: the cache entry
        // must exist before the in-flight entry disappears, so a
        // concurrent submit classifying this cell always finds one
        // of the two. Both happen under mu, as does classification.
        if (outcome.result)
            resultCache->put(*outcome.result, config_hash);
        inflight.erase(task.key);
        --outstanding;
        ++nCellsExecuted;
        updateGaugesLocked();
        idle.notify_all();
        task.promise->set_value(std::move(outcome));
    }
}

JobResponse
ExperimentService::submit(const JobRequest &request)
{
    trace::TraceSession *ts = trace::TraceSession::active();
    const double startUs = ts ? ts->nowUs() : 0.0;
    const bool hostOn = host::profilingEnabled();
    const std::uint64_t startNs = hostOn ? host::nowNs() : 0;

    JobResponse response;
    response.id = request.id;
    const std::uint64_t config_hash =
        study::studyConfigHash(request.config);
    response.configHash = hashHex(config_hash);

    const auto refuse = [&](JobErrorCode code,
                            const std::string &message) {
        ++nJobsRefused;
        response.error = JobError{code, message};
        return response;
    };

    if (request.cells.empty())
        return refuse(JobErrorCode::BadRequest, "job has no cells");
    if (const auto err = study::validateConfig(request.config)) {
        return refuse(JobErrorCode::BadRequest,
                      "invalid config (" + err->field + "): "
                          + err->message);
    }

    // Classify every cell (cache hit / attach to in-flight / new),
    // then accept or refuse the job as a unit. Classification and
    // enqueue happen under one lock so nothing can slip between the
    // drain gate check and the queue insert.
    struct Decision
    {
        enum class Kind { Hit, Wait, New } kind;
        study::RunResult hit;
        CellFuture future;
        CellKey key;
    };
    std::vector<Decision> decisions(request.cells.size());
    std::size_t hits = 0, coalesced = 0;
    {
        std::unique_lock<std::mutex> lock(mu);
        if (drainGate) {
            lock.unlock();
            return refuse(JobErrorCode::Draining,
                          "daemon is draining; not accepting jobs");
        }

        std::map<CellKey, std::size_t> firstNew;
        std::size_t newCells = 0;
        for (std::size_t i = 0; i < request.cells.size(); ++i) {
            const study::Cell &cell = request.cells[i];
            Decision &d = decisions[i];
            d.key = CellKey{static_cast<unsigned>(cell.machine),
                            static_cast<unsigned>(cell.kernel),
                            config_hash};
            if (auto hit = resultCache->get(cell.machine, cell.kernel,
                                            config_hash)) {
                d.kind = Decision::Kind::Hit;
                d.hit = std::move(*hit);
                ++hits;
            } else if (auto it = inflight.find(d.key);
                       it != inflight.end()) {
                d.kind = Decision::Kind::Wait;
                d.future = it->second;
                ++coalesced;
            } else if (auto first = firstNew.find(d.key);
                       first != firstNew.end()) {
                // Duplicate within this job: ride the first copy.
                d.kind = Decision::Kind::Wait;
                ++coalesced;
            } else {
                d.kind = Decision::Kind::New;
                firstNew.emplace(d.key, i);
                ++newCells;
            }
        }

        if (outstanding + newCells > opts.maxOutstandingCells) {
            lock.unlock();
            return refuse(
                JobErrorCode::Overloaded,
                "queue is full (" + std::to_string(outstanding)
                    + " outstanding cells, bound "
                    + std::to_string(opts.maxOutstandingCells)
                    + "); retry later");
        }

        ++nJobsAccepted;
        nCellsFromCache += hits;
        nCellsCoalesced += coalesced;
        for (std::size_t i = 0; i < request.cells.size(); ++i) {
            Decision &d = decisions[i];
            if (d.kind != Decision::Kind::New)
                continue;
            auto promise =
                std::make_shared<std::promise<ExecOutcome>>();
            d.future = promise->get_future().share();
            inflight.emplace(d.key, d.future);
            queue.push_back(Task{d.key, request.config,
                                 request.cells[i], std::move(promise),
                                 hostOn ? host::nowNs() : 0});
            ++outstanding;
        }
        // Intra-job duplicates attach to the future created above.
        for (Decision &d : decisions) {
            if (d.kind == Decision::Kind::Wait && !d.future.valid())
                d.future = inflight.at(d.key);
        }
        updateGaugesLocked();
        workAvailable.notify_all();
    }

    // Collect in request order, outside the lock.
    response.results.reserve(decisions.size());
    for (Decision &d : decisions) {
        if (d.kind == Decision::Kind::Hit) {
            if (hostOn)
                cellHitNs.record(host::nowNs() - startNs);
            response.results.push_back(
                CellResult{std::move(d.hit), true});
            continue;
        }
        const std::uint64_t waitNs = hostOn ? host::nowNs() : 0;
        ExecOutcome outcome = d.future.get();
        if (hostOn && d.kind == Decision::Kind::Wait)
            cellCoalesceWaitNs.record(host::nowNs() - waitNs);
        if (outcome.error) {
            response.results.clear();
            response.error = std::move(outcome.error);
            break;
        }
        response.results.push_back(
            CellResult{std::move(*outcome.result), false});
    }
    if (hostOn)
        jobE2eNs.record(host::nowNs() - startNs);

    if (ts) {
        ts->span("job:" + request.id, "serve", startUs,
                 ts->nowUs() - startUs,
                 {{"cells", static_cast<double>(request.cells.size())},
                  {"cached", static_cast<double>(hits)},
                  {"coalesced", static_cast<double>(coalesced)}});
    }
    return response;
}

} // namespace triarch::serve
