/**
 * @file
 * SocketServer: the daemon's transport. Listens on an AF_UNIX path
 * or a TCP loopback port, accepts connections on a dedicated thread,
 * and serves each connection from its own thread: read a line, parse
 * a triarch.job.v1 request, run it through the ExperimentService,
 * write the triarch.result.v1 response line. Malformed lines get a
 * bad_request error response instead of killing the connection.
 *
 * stop() is the graceful half of SIGTERM handling: a self-pipe wakes
 * every connection thread out of poll(), each finishes the request
 * it is currently serving (writing its response), and stop() joins
 * them all — no accepted request goes unanswered. Refusing *new*
 * work is the service's job (beginDrain()), so the daemon's shutdown
 * order is: beginDrain, stop, drain.
 */

#ifndef TRIARCH_SERVE_SERVER_HH
#define TRIARCH_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hh"

namespace triarch::serve
{

struct ServerOptions
{
    /** AF_UNIX socket path; when set, TCP options are ignored. */
    std::string unixPath;

    /** TCP loopback port; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;
};

class SocketServer
{
  public:
    SocketServer(ExperimentService &job_service,
                 ServerOptions server_options);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind, listen, and start the accept thread. Returns false
     *  with *error set when the socket cannot be set up. */
    bool start(std::string *error);

    /** The bound TCP port (after start(); 0 for AF_UNIX). */
    std::uint16_t port() const { return boundPort; }

    /** Wake every connection out of poll(), let in-progress requests
     *  answer, join all threads, close all sockets. Idempotent. */
    void stop();

    /** Connections accepted so far. */
    std::size_t connectionsAccepted() const
    {
        return nAccepted.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();
    void serveConnection(int fd);

    ExperimentService &service;
    ServerOptions opts;

    int listenFd = -1;
    int stopPipe[2] = {-1, -1};    //!< [0] polled, [1] written by stop()
    std::uint16_t boundPort = 0;
    std::atomic<bool> stopping{false};
    std::atomic<std::size_t> nAccepted{0};

    std::thread acceptor;
    std::mutex connMu;
    std::vector<std::thread> connections;
    bool started = false;
    bool stopped = false;
};

} // namespace triarch::serve

#endif // TRIARCH_SERVE_SERVER_HH
