/**
 * @file
 * The three study kernels mapped onto VIRAM (Section 3 of the paper):
 *
 *  - corner turn: 16-column blocks, strided column loads (limited by
 *    the four address generators) with row padding, unit-stride
 *    stores — Section 3.1;
 *  - CSLC: register-resident vectorized 128-point FFTs whose data
 *    reordering is done with explicit vector permute instructions
 *    (the paper's "FFT shuffle" overhead), weight application, and
 *    inverse FFTs — Section 3.2;
 *  - beam steering: hand-vectorized integer pipeline, two table
 *    loads, five adds and a shift per output — Section 3.3.
 *
 * Every function loads the inputs into simulated on-chip DRAM, runs
 * the timed vector program, and returns both the cycle count and the
 * kernel output read back from simulated memory so callers can
 * validate against the reference kernels.
 */

#ifndef TRIARCH_VIRAM_KERNELS_VIRAM_HH
#define TRIARCH_VIRAM_KERNELS_VIRAM_HH

#include <cstdint>
#include <vector>

#include "kernels/beam_steering.hh"
#include "kernels/corner_turn.hh"
#include "kernels/cslc.hh"
#include "sim/types.hh"
#include "viram/machine.hh"

namespace triarch::viram
{

/** Words of padding appended to each matrix row to spread banks. */
constexpr unsigned cornerTurnPadWords = 8;

/**
 * Corner turn on VIRAM. Blocks of 64 rows x 16 columns: each block
 * column is gathered with one strided vector load (vl = 64) and
 * written back with one unit-stride store.
 *
 * @param machine  the VIRAM model (timing is reset first)
 * @param src      source matrix (rows x cols, both multiples of 64/16)
 * @param dst      output: the transposed matrix read back from DRAM
 * @return total machine cycles
 */
Cycles cornerTurnViram(ViramMachine &machine,
                       const kernels::WordMatrix &src,
                       kernels::WordMatrix &dst,
                       unsigned rowBlock = 64);

/**
 * CSLC on VIRAM: per sub-band, FFT all four channels, apply the
 * cancellation weights to the main channels, IFFT. Uses the
 * register-resident radix-2 FFT with vperm shuffles.
 */
Cycles cslcViram(ViramMachine &machine, const kernels::CslcConfig &cfg,
                 const kernels::CslcInput &in,
                 const kernels::CslcWeights &weights,
                 kernels::CslcOutput &out);

/**
 * Beam steering on VIRAM, vectorized over antenna elements with the
 * steering accumulator kept in a vector register across groups.
 */
Cycles beamSteeringViram(ViramMachine &machine,
                         const kernels::BeamConfig &cfg,
                         const kernels::BeamTables &tables,
                         std::vector<std::int32_t> &out);

/**
 * The register-resident vectorized 128-point FFT used by cslcViram,
 * exposed for tests and the ablation benches. Data lives in four
 * vector registers as re/im half-planes; each of the 7 radix-2
 * stages is 4 gather permutes, 10 FP ops, and 4 scatter permutes.
 */
class ViramFft128
{
  public:
    /** Builds permute tables and pokes twiddles into machine DRAM. */
    explicit ViramFft128(ViramMachine &machine);

    /**
     * Load 128 interleaved complex floats from @p base into the
     * working register planes (four strided loads + bit-reversal
     * permutes).
     */
    void loadTimeBlock(Addr base);

    /** Load spectrum planes stored by storePlanes(). */
    void loadPlanes(Addr plane_base);

    /** Store the working planes (re0, re1, im0, im1; 64 words each). */
    void storePlanes(Addr plane_base);

    /** Run the 7 butterfly stages; inverse applies 1/N scaling. */
    void transform(bool inverse);

    /**
     * Working-plane register numbers (re0, re1, im0, im1); the CSLC
     * weight stage operates on these directly.
     */
    static constexpr Vreg planeRe0 = 0, planeRe1 = 1;
    static constexpr Vreg planeIm0 = 2, planeIm1 = 3;

  private:
    struct Stage
    {
        std::vector<std::uint16_t> top, bot;    //!< gather tables
        std::vector<std::uint16_t> scat0, scat1; //!< scatter tables
    };

    ViramMachine &mach;
    std::vector<Stage> stages;
    Addr twForward = 0;     //!< per-stage twiddle planes in DRAM
    Addr twInverse = 0;
};

} // namespace triarch::viram

#endif // TRIARCH_VIRAM_KERNELS_VIRAM_HH
