/**
 * @file
 * The VIRAM machine model: a functional-plus-timed vector processor
 * with on-chip DRAM.
 *
 * Kernels program the machine through vector "intrinsics" (the
 * hand-vectorized inner loops of the paper). Every intrinsic both
 * moves real data — so kernel outputs are checked against the
 * reference implementations — and advances a timing scoreboard:
 *
 *  - one vector instruction issues per cycle from the scalar core;
 *  - each instruction occupies a functional unit (VAU0, VAU1 or the
 *    memory unit) for ceil(vl / throughput) cycles;
 *  - results become readable startup-latency cycles later, and
 *    dependent instructions wait (chaining is modeled by letting the
 *    unit start as soon as sources are ready);
 *  - vector FP executes on VAU0 only; integer ops and permutes use
 *    whichever unit frees first (permutes prefer VAU1);
 *  - memory instructions walk the DRAM bank/row state and the TLB,
 *    charging precharge and refill penalties on top of the address-
 *    generator-limited transfer time.
 */

#ifndef TRIARCH_VIRAM_MACHINE_HH
#define TRIARCH_VIRAM_MACHINE_HH

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mem/cache.hh"
#include "sim/cycle_account.hh"
#include "sim/host_clock.hh"
#include "sim/hw_report.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "sim/zero_buffer.hh"
#include "viram/config.hh"

namespace triarch::viram
{

/** Handle to a vector register. */
using Vreg = unsigned;

/** The VIRAM processor + on-chip DRAM model. */
class ViramMachine
{
  public:
    explicit ViramMachine(const ViramConfig &machine_config = {});

    const ViramConfig &config() const { return cfg; }

    // ------------------------------------------------------------
    // Host-side memory management (not timed).
    // ------------------------------------------------------------

    /** Bump-allocate @p bytes of on-chip DRAM, 64-byte aligned. */
    Addr alloc(std::uint64_t bytes, const std::string &what);

    /** Host write of raw words into simulated DRAM. */
    void pokeWords(Addr addr, std::span<const Word> words);

    /** Host read of raw words from simulated DRAM. */
    std::vector<Word> peekWords(Addr addr, std::size_t count) const;

    // ------------------------------------------------------------
    // Timed vector instruction set.
    // ------------------------------------------------------------

    /** Set vector length; returns min(n, maxVl). */
    unsigned setvl(unsigned n);

    unsigned vl() const { return curVl; }

    /** Unit-stride load of vl words into @p vd. */
    void vldUnit(Vreg vd, Addr addr);

    /** Strided load: element i comes from addr + i*strideBytes. */
    void vldStride(Vreg vd, Addr addr, Addr strideBytes);

    /** Unit-stride store of vl words from @p vs. */
    void vstUnit(Vreg vs, Addr addr);

    /** Strided store. */
    void vstStride(Vreg vs, Addr addr, Addr strideBytes);

    /**
     * Indexed (gather) load: element i comes from
     * base + vidx[i] * 4. Gathers run at the address-generator rate
     * like other non-unit accesses and walk the bank/TLB state per
     * element.
     */
    void vldIndexed(Vreg vd, Addr base, Vreg vidx);

    /** Indexed (scatter) store: element i goes to base + vidx[i]*4. */
    void vstIndexed(Vreg vs, Addr base, Vreg vidx);

    /** Broadcast a 32-bit value to all elements of @p vd. */
    void vbcast(Vreg vd, Word value);

    // Vector floating point (VAU0 only).
    void vaddF(Vreg vd, Vreg va, Vreg vb);
    void vsubF(Vreg vd, Vreg va, Vreg vb);
    void vmulF(Vreg vd, Vreg va, Vreg vb);
    /** vd = -va (used for conjugation in the IFFT). */
    void vnegF(Vreg vd, Vreg va);
    /** vd = va * s for a scalar float (IFFT 1/N scaling). */
    void vscaleF(Vreg vd, Vreg va, float s);

    // Vector integer (either VAU).
    void vaddI(Vreg vd, Vreg va, Vreg vb);
    void vsubI(Vreg vd, Vreg va, Vreg vb);
    /** vd = va + imm (signed). */
    void vaddIs(Vreg vd, Vreg va, std::int32_t imm);
    /** Logical shift left by immediate. */
    void vshlI(Vreg vd, Vreg va, unsigned sh);
    /** Arithmetic shift right by immediate. */
    void vsraI(Vreg vd, Vreg va, unsigned sh);

    /**
     * Two-source element permute: vd[i] = concat(va, vb)[idx[i]].
     * This is the FFT shuffle instruction; it executes on a vector
     * arithmetic unit (VAU1 when free) and is the source of the
     * paper's 1.67x shuffle overhead on the CSLC.
     */
    void vperm2(Vreg vd, Vreg va, Vreg vb,
                std::span<const std::uint16_t> idx);

    /** Single-source permute: vd[i] = va[idx[i]]. */
    void vperm(Vreg vd, Vreg va, std::span<const std::uint16_t> idx);

    /** Charge @p n scalar-core cycles (loop/address bookkeeping). */
    void scalarOps(unsigned n = 1);

    // ------------------------------------------------------------
    // Timing and statistics.
    // ------------------------------------------------------------

    /** Cycle at which all issued work completes. */
    Cycles completionTime() const;

    /**
     * Finalize the cycle account against @p total (normally
     * completionTime()): every wall cycle is attributed to the
     * highest-priority busy unit covering it — VAU busy is compute,
     * memory-unit busy (incl. row/TLB overhead) is dram_dma, scalar
     * bookkeeping is setup_readback — and uncovered cycles (chaining
     * and startup waits) are network/sync idle. Also records the
     * breakdown into the stat group's account_* scalars.
     */
    stats::CycleBreakdown cycleBreakdown(Cycles total);

    /** Reset the clock, scoreboard and stats (memory survives). */
    void resetTiming();

    stats::StatGroup &statGroup() { return group; }

    /** The component StatGroups behind the main group, as
     *  (label-suffix, group) pairs for per-cell capture. */
    std::vector<std::pair<std::string, stats::StatGroup *>>
    componentGroups()
    {
        return {{"tlb", &tlb.statGroup()}};
    }

    /**
     * Roll the lane/memory-unit counters into the cell's hardware
     * report: lane and VMU utilization, TLB hit rate, row-miss rate,
     * the per-unit busy epoch timeline, and a bottleneck verdict
     * consistent with @p breakdown (hw_report.hh, D14).
     */
    hw::HwCell hwCell(Cycles total,
                      const stats::CycleBreakdown &breakdown);

    /** Where the registry mapping samples this cell's coarse
     *  setup/run/readback host-time split (profiling-gated). */
    host::HostPhases &hostTime() { return hostPhases; }

    std::uint64_t vectorInstructions() const { return _vinsts.value(); }
    std::uint64_t rowOverheadCycles() const { return _rowCycles.value(); }
    std::uint64_t tlbOverheadCycles() const { return _tlbCycles.value(); }
    std::uint64_t vau0Busy() const { return _vau0Busy.value(); }
    std::uint64_t vau1Busy() const { return _vau1Busy.value(); }
    std::uint64_t vmuBusy() const { return _vmuBusy.value(); }
    std::uint64_t permInstructions() const { return _perms.value(); }

    /** One-paragraph block-diagram description (Figure 1). */
    std::string describe() const;

  private:
    enum Unit { VAU0 = 0, VAU1 = 1, VMU = 2, NumUnits = 3 };

    /** Read a register's element view for the current vl. */
    std::span<const Word> read(Vreg v) const;
    std::span<Word> write(Vreg v);

    /**
     * Advance the scoreboard for one instruction.
     *
     * @param unit    functional unit it occupies
     * @param busy    cycles the unit is occupied
     * @param startup extra latency until the result is readable
     * @param srcs    source registers (result waits on their ready)
     * @param dst     destination register or -1
     */
    void issue(Unit unit, Cycles busy, Cycles startup,
               std::initializer_list<Vreg> srcs, int dst);

    /** Pick the earlier-free VAU for an integer op. */
    Unit pickVau(bool prefer_vau1 = false) const;

    /**
     * Timing of a vector memory access: address-generator-limited
     * transfer plus DRAM row and TLB overheads.
     */
    Cycles memAccessCycles(Addr addr, Addr stride_bytes, bool unit);

    /** Timing for an arbitrary per-element address list (gathers). */
    Cycles memAccessCyclesIndexed(std::span<const Addr> addrs);

    void checkReg(Vreg v) const;
    void checkAddr(Addr addr, std::uint64_t bytes) const;

    ViramConfig cfg;
    /** Resolved cfg.memModel != Reference, fixed at construction. */
    bool spanMem;

    // Functional state.
    ZeroBuffer dram;
    std::vector<std::vector<Word>> vregs;
    unsigned curVl;
    Addr allocNext = 64;

    // Timing state.
    Cycles issueCycle = 0;
    Cycles unitFree[NumUnits] = {0, 0, 0};
    std::vector<Cycles> regReady;
    Cycles lastFinish = 0;

    // DRAM open-row state (banks) and TLB.
    std::vector<Addr> openRow;
    mem::Tlb tlb;

    /** Pow2 geometry fast form: when the bank interleave, bank
     *  count, and row size are all powers of two, the bank and row
     *  of an element reduce to shifts and masks, replacing three
     *  64-bit divisions on every element of a bank walk (the same
     *  shift arithmetic feeds both the reference and span walks, so
     *  the classification is bit-identical either way). False keeps
     *  the division path for odd fuzz geometries. */
    bool geomPow2 = false;
    unsigned ilvShift = 0;      //!< log2(bankInterleaveBytes)
    unsigned bankShift = 0;     //!< log2(banks)
    unsigned rowShift = 0;      //!< log2(rowBytes)

    /** Bank and DRAM row of an address, shift form when possible. */
    std::pair<unsigned, Addr>
    bankRowOf(Addr a) const
    {
        if (geomPow2) [[likely]] {
            const Addr chunk = a >> ilvShift;
            const unsigned bank = static_cast<unsigned>(
                chunk & (cfg.banks - 1));
            const Addr row =
                ((chunk >> bankShift) << ilvShift) >> rowShift;
            return {bank, row};
        }
        const Addr chunk = a / cfg.bankInterleaveBytes;
        const unsigned bank = static_cast<unsigned>(chunk % cfg.banks);
        const Addr row =
            (chunk / cfg.banks) * cfg.bankInterleaveBytes / cfg.rowBytes;
        return {bank, row};
    }

    // Busy intervals for the wall-clock cycle account.
    stats::CycleTimeline timeline;

    /** Epoch channels indexed by Unit (VAU0/VAU1/VMU), sampled in
     *  issue() over the unit-busy interval. Scoreboard timing is
     *  identical under both memory models (memAccessCycles returns
     *  the same charge either way, D13), so the timeline is
     *  mode-identical by construction. */
    hw::EpochSampler hwSamp{{"vau0_busy", "vau1_busy", "vmu_busy"}};

    // Statistics.
    stats::StatGroup group;
    stats::Scalar _vinsts;
    stats::Scalar _scalarCycles;
    stats::Scalar _vau0Busy;
    stats::Scalar _vau1Busy;
    stats::Scalar _vmuBusy;
    stats::Scalar _rowCycles;
    stats::Scalar _tlbCycles;
    stats::Scalar _rowMisses;
    stats::Scalar _perms;
    stats::Scalar _memWords;
    stats::Average _avgVl;
    stats::BreakdownStats accountStats;
    host::HostPhases hostPhases;
};

} // namespace triarch::viram

#endif // TRIARCH_VIRAM_MACHINE_HH
