#include "kernels_viram.hh"

#include <cstring>

#include "kernels/fft.hh"
#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace triarch::viram
{

using kernels::cfloat;

namespace
{

/** Scratch register assignments used by the FFT and weight stages. */
enum Scratch : Vreg
{
    rURe = 4, rUIm = 5, rVRe = 6, rVIm = 7,
    rTwRe = 8, rTwIm = 9,
    rTRe = 10, rTIm = 11,
    rARe = 12, rAIm = 13, rBRe = 14, rBIm = 15,
    rAuxRe = 16, rAuxIm = 17, rWRe = 18, rWIm = 19,
    rTmp0 = 20, rTmp1 = 21, rTmp2 = 22,
    rIo0 = 24, rIo1 = 25, rIo2 = 26, rIo3 = 27,
};

} // namespace

ViramFft128::ViramFft128(ViramMachine &machine) : mach(machine)
{
    constexpr unsigned n = 128;
    const auto tw = kernels::twiddleTable(n);

    // Twiddle planes: per stage [twRe x64][twIm x64], forward and
    // inverse sets, resident in on-chip DRAM.
    twForward = mach.alloc(7 * 2 * 64 * 4, "fft twiddles fwd");
    twInverse = mach.alloc(7 * 2 * 64 * 4, "fft twiddles inv");

    unsigned s = 0;
    for (unsigned len = 2; len <= n; len <<= 1, ++s) {
        const unsigned half = len >> 1;
        const unsigned step = n / len;

        Stage st;
        st.top.resize(64);
        st.bot.resize(64);
        std::vector<std::uint16_t> scat(n);
        std::vector<Word> fwd(128), inv(128);

        unsigned j = 0;
        for (unsigned base = 0; base < n; base += len) {
            for (unsigned k = 0; k < half; ++k, ++j) {
                st.top[j] = static_cast<std::uint16_t>(base + k);
                st.bot[j] = static_cast<std::uint16_t>(base + k + half);
                scat[base + k] = static_cast<std::uint16_t>(j);
                scat[base + k + half] =
                    static_cast<std::uint16_t>(64 + j);
                const cfloat w = tw[k * step];
                fwd[j] = floatToWord(w.real());
                fwd[64 + j] = floatToWord(w.imag());
                inv[j] = floatToWord(w.real());
                inv[64 + j] = floatToWord(-w.imag());
            }
        }
        st.scat0.assign(scat.begin(), scat.begin() + 64);
        st.scat1.assign(scat.begin() + 64, scat.end());
        stages.push_back(std::move(st));

        mach.pokeWords(twForward + s * 512, fwd);
        mach.pokeWords(twInverse + s * 512, inv);
    }

    // The working planes hold data in natural order but the DIT
    // network consumes it bit-reversed: network position p reads
    // plane element bitrev(p). Compose the reversal into the first
    // stage's gather tables so it costs no extra shuffles.
    for (unsigned j = 0; j < 64; ++j) {
        stages[0].top[j] = static_cast<std::uint16_t>(
            reverseBits(stages[0].top[j], 7));
        stages[0].bot[j] = static_cast<std::uint16_t>(
            reverseBits(stages[0].bot[j], 7));
    }
}

void
ViramFft128::loadTimeBlock(Addr base)
{
    mach.setvl(64);
    // Interleaved complex: re at +0, im at +4, 8 bytes per point.
    // Planes hold natural order; transform() applies the reversal.
    mach.vldStride(planeRe0, base, 8);          // re of points 0..63
    mach.vldStride(planeRe1, base + 512, 8);    // re of points 64..127
    mach.vldStride(planeIm0, base + 4, 8);      // im of points 0..63
    mach.vldStride(planeIm1, base + 516, 8);    // im of points 64..127
}

void
ViramFft128::loadPlanes(Addr plane_base)
{
    mach.setvl(64);
    mach.vldUnit(planeRe0, plane_base);
    mach.vldUnit(planeRe1, plane_base + 256);
    mach.vldUnit(planeIm0, plane_base + 512);
    mach.vldUnit(planeIm1, plane_base + 768);
}

void
ViramFft128::storePlanes(Addr plane_base)
{
    mach.setvl(64);
    mach.vstUnit(planeRe0, plane_base);
    mach.vstUnit(planeRe1, plane_base + 256);
    mach.vstUnit(planeIm0, plane_base + 512);
    mach.vstUnit(planeIm1, plane_base + 768);
}

void
ViramFft128::transform(bool inverse)
{
    mach.setvl(64);
    const Addr twBase = inverse ? twInverse : twForward;

    for (unsigned s = 0; s < stages.size(); ++s) {
        const Stage &st = stages[s];
        const Addr twb = twBase + s * 512;

        mach.vldUnit(rTwRe, twb);
        mach.vldUnit(rTwIm, twb + 256);

        // Gather butterfly tops (u) and bottoms (v).
        mach.vperm2(rURe, planeRe0, planeRe1, st.top);
        mach.vperm2(rUIm, planeIm0, planeIm1, st.top);
        mach.vperm2(rVRe, planeRe0, planeRe1, st.bot);
        mach.vperm2(rVIm, planeIm0, planeIm1, st.bot);

        // t = w * v (complex).
        mach.vmulF(rTRe, rTwRe, rVRe);
        mach.vmulF(rTmp0, rTwIm, rVIm);
        mach.vsubF(rTRe, rTRe, rTmp0);
        mach.vmulF(rTIm, rTwRe, rVIm);
        mach.vmulF(rTmp0, rTwIm, rVRe);
        mach.vaddF(rTIm, rTIm, rTmp0);

        // a = u + t, b = u - t.
        mach.vaddF(rARe, rURe, rTRe);
        mach.vaddF(rAIm, rUIm, rTIm);
        mach.vsubF(rBRe, rURe, rTRe);
        mach.vsubF(rBIm, rUIm, rTIm);

        // Scatter results back into the working planes.
        mach.vperm2(planeRe0, rARe, rBRe, st.scat0);
        mach.vperm2(planeRe1, rARe, rBRe, st.scat1);
        mach.vperm2(planeIm0, rAIm, rBIm, st.scat0);
        mach.vperm2(planeIm1, rAIm, rBIm, st.scat1);

        mach.scalarOps(1);  // stage loop bookkeeping
    }

    if (inverse) {
        constexpr float scale = 1.0f / 128.0f;
        mach.vscaleF(planeRe0, planeRe0, scale);
        mach.vscaleF(planeRe1, planeRe1, scale);
        mach.vscaleF(planeIm0, planeIm0, scale);
        mach.vscaleF(planeIm1, planeIm1, scale);
    }
}

Cycles
cornerTurnViram(ViramMachine &machine, const kernels::WordMatrix &src,
                kernels::WordMatrix &dst, unsigned rowBlock)
{
    triarch_assert(rowBlock > 0 && rowBlock <= machine.config().maxVl,
                   "row block must fit a vector register");
    triarch_assert(src.rows % rowBlock == 0,
                   "corner turn needs rows % rowBlock == 0");

    const unsigned srcPitch = src.cols + cornerTurnPadWords;
    const unsigned dstPitch = src.rows + cornerTurnPadWords;

    const Addr srcBase = machine.alloc(
        static_cast<std::uint64_t>(src.rows) * srcPitch * 4, "ct src");
    const Addr dstBase = machine.alloc(
        static_cast<std::uint64_t>(src.cols) * dstPitch * 4, "ct dst");

    for (unsigned r = 0; r < src.rows; ++r) {
        machine.pokeWords(srcBase + static_cast<Addr>(r) * srcPitch * 4,
                          {&src.data[static_cast<std::size_t>(r)
                                     * src.cols],
                           src.cols});
    }

    machine.resetTiming();
    machine.setvl(rowBlock);

    for (unsigned bi = 0; bi < src.rows; bi += rowBlock) {
        trace::TraceScope strip("viram.ct.strip", "viram",
                                &machine.statGroup());
        for (unsigned c = 0; c < src.cols; ++c) {
            const Vreg v = 4 + (c % 8);     // rotate through 8 regs
            const Addr loadAddr = srcBase
                + (static_cast<Addr>(bi) * srcPitch + c) * 4;
            machine.vldStride(v, loadAddr,
                              static_cast<Addr>(srcPitch) * 4);
            const Addr storeAddr = dstBase
                + (static_cast<Addr>(c) * dstPitch + bi) * 4;
            machine.vstUnit(v, storeAddr);
            machine.scalarOps(1);
        }
    }

    const Cycles cycles = machine.completionTime();

    dst = kernels::WordMatrix(src.cols, src.rows);
    for (unsigned c = 0; c < src.cols; ++c) {
        auto row = machine.peekWords(
            dstBase + static_cast<Addr>(c) * dstPitch * 4, src.rows);
        std::memcpy(&dst.data[static_cast<std::size_t>(c) * src.rows],
                    row.data(), src.rows * 4);
    }
    return cycles;
}

namespace
{

/** Poke one channel's samples as interleaved complex words. */
void
pokeComplex(ViramMachine &m, Addr base, const std::vector<cfloat> &x)
{
    std::vector<Word> words(2 * x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        words[2 * i] = floatToWord(x[i].real());
        words[2 * i + 1] = floatToWord(x[i].imag());
    }
    m.pokeWords(base, words);
}

/** Poke 128 complex values as re0/re1/im0/im1 planes (64 words each). */
void
pokePlanes(ViramMachine &m, Addr base, const cfloat *x)
{
    std::vector<Word> words(256);
    for (unsigned i = 0; i < 128; ++i) {
        words[(i < 64 ? 0 : 64) + (i % 64)] = floatToWord(x[i].real());
        words[128 + (i < 64 ? 0 : 64) + (i % 64)] =
            floatToWord(x[i].imag());
    }
    m.pokeWords(base, words);
}

/** Read planes back into 128 complex values. */
std::vector<cfloat>
peekPlanes(const ViramMachine &m, Addr base)
{
    auto words = m.peekWords(base, 256);
    std::vector<cfloat> x(128);
    for (unsigned i = 0; i < 128; ++i) {
        x[i] = cfloat(wordToFloat(words[(i < 64 ? 0 : 64) + (i % 64)]),
                      wordToFloat(words[128 + (i < 64 ? 0 : 64)
                                        + (i % 64)]));
    }
    return x;
}

} // namespace

Cycles
cslcViram(ViramMachine &machine, const kernels::CslcConfig &cfg,
          const kernels::CslcInput &in,
          const kernels::CslcWeights &weights,
          kernels::CslcOutput &out)
{
    triarch_assert(cfg.subBandLen == 128,
                   "VIRAM CSLC mapping is built for 128-point sub-bands");

    ViramFft128 fft(machine);

    // Channel time series.
    std::vector<Addr> mainBase(cfg.mainChannels), auxBase(cfg.auxChannels);
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        mainBase[m] = machine.alloc(cfg.samples * 8, "cslc main");
        pokeComplex(machine, mainBase[m], in.main[m]);
    }
    for (unsigned a = 0; a < cfg.auxChannels; ++a) {
        auxBase[a] = machine.alloc(cfg.samples * 8, "cslc aux");
        pokeComplex(machine, auxBase[a], in.aux[a]);
    }

    // Weight planes: [m][a][band] -> 4 x 64-word planes.
    const unsigned planeBytes = 256 * 4;
    std::vector<std::vector<Addr>> wBase(cfg.mainChannels,
        std::vector<Addr>(cfg.auxChannels));
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        for (unsigned a = 0; a < cfg.auxChannels; ++a) {
            wBase[m][a] = machine.alloc(
                static_cast<std::uint64_t>(cfg.subBands) * planeBytes,
                "cslc weights");
            for (unsigned b = 0; b < cfg.subBands; ++b) {
                pokePlanes(machine, wBase[m][a] + b * planeBytes,
                           &weights.w[m][a][b * 128ULL]);
            }
        }
    }

    // Aux spectra scratch (reused per sub-band) and output planes.
    std::vector<Addr> auxSpec(cfg.auxChannels);
    for (unsigned a = 0; a < cfg.auxChannels; ++a)
        auxSpec[a] = machine.alloc(planeBytes, "aux spectrum");
    std::vector<Addr> outBase(cfg.mainChannels);
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        outBase[m] = machine.alloc(
            static_cast<std::uint64_t>(cfg.subBands) * planeBytes,
            "cslc out");
    }

    machine.resetTiming();

    for (unsigned b = 0; b < cfg.subBands; ++b) {
        trace::TraceScope subband("viram.cslc.subband", "viram",
                                  &machine.statGroup());
        const Addr off = static_cast<Addr>(b) * cfg.subBandStride * 8;

        // FFT the aux channels and park their spectra in DRAM.
        for (unsigned a = 0; a < cfg.auxChannels; ++a) {
            fft.loadTimeBlock(auxBase[a] + off);
            fft.transform(false);
            fft.storePlanes(auxSpec[a]);
        }

        for (unsigned m = 0; m < cfg.mainChannels; ++m) {
            fft.loadTimeBlock(mainBase[m] + off);
            fft.transform(false);

            // Weight application: planes -= w * auxSpec, per aux
            // channel and per half-plane.
            for (unsigned a = 0; a < cfg.auxChannels; ++a) {
                const Addr wb = wBase[m][a] + b * planeBytes;
                for (unsigned h = 0; h < 2; ++h) {
                    const Vreg mRe = h == 0 ? ViramFft128::planeRe0
                                            : ViramFft128::planeRe1;
                    const Vreg mIm = h == 0 ? ViramFft128::planeIm0
                                            : ViramFft128::planeIm1;
                    machine.vldUnit(rAuxRe, auxSpec[a] + h * 256);
                    machine.vldUnit(rAuxIm, auxSpec[a] + 512 + h * 256);
                    machine.vldUnit(rWRe, wb + h * 256);
                    machine.vldUnit(rWIm, wb + 512 + h * 256);

                    machine.vmulF(rTmp0, rWRe, rAuxRe);
                    machine.vmulF(rTmp1, rWIm, rAuxIm);
                    machine.vsubF(rTmp0, rTmp0, rTmp1);   // t.re
                    machine.vmulF(rTmp1, rWRe, rAuxIm);
                    machine.vmulF(rTmp2, rWIm, rAuxRe);
                    machine.vaddF(rTmp1, rTmp1, rTmp2);   // t.im
                    machine.vsubF(mRe, mRe, rTmp0);
                    machine.vsubF(mIm, mIm, rTmp1);
                }
            }

            fft.transform(true);
            fft.storePlanes(outBase[m] + b * planeBytes);
        }
        machine.scalarOps(2);   // sub-band loop bookkeeping
    }

    const Cycles cycles = machine.completionTime();

    out.main.assign(cfg.mainChannels,
        std::vector<cfloat>(static_cast<std::size_t>(cfg.subBands)
                            * 128));
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        for (unsigned b = 0; b < cfg.subBands; ++b) {
            auto block =
                peekPlanes(machine, outBase[m] + b * planeBytes);
            std::copy(block.begin(), block.end(),
                      out.main[m].begin() + static_cast<std::size_t>(b)
                      * 128);
        }
    }
    return cycles;
}

Cycles
beamSteeringViram(ViramMachine &machine, const kernels::BeamConfig &cfg,
                  const kernels::BeamTables &tables,
                  std::vector<std::int32_t> &out)
{
    const unsigned vlen = machine.config().maxVl;

    auto pokeI32 = [&machine](Addr base,
                              const std::vector<std::int32_t> &v) {
        std::vector<Word> w(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            w[i] = static_cast<Word>(v[i]);
        machine.pokeWords(base, w);
    };

    const Addr coarseBase =
        machine.alloc(cfg.elements * 4ULL, "bs coarse");
    const Addr fineBase = machine.alloc(cfg.elements * 4ULL, "bs fine");
    pokeI32(coarseBase, tables.calCoarse);
    pokeI32(fineBase, tables.calFine);

    // Per-direction ramp (i+1)*delta, part of the calibration data.
    const Addr rampBase =
        machine.alloc(cfg.directions * vlen * 4ULL, "bs ramps");
    for (unsigned d = 0; d < cfg.directions; ++d) {
        std::vector<std::int32_t> ramp(vlen);
        for (unsigned i = 0; i < vlen; ++i) {
            ramp[i] = static_cast<std::int32_t>(i + 1)
                      * tables.steerDelta[d];
        }
        pokeI32(rampBase + static_cast<Addr>(d) * vlen * 4, ramp);
    }

    const Addr outBase =
        machine.alloc(cfg.outputs() * 4ULL, "bs out");

    machine.resetTiming();

    // Two element groups are processed per loop iteration with
    // disjoint register sets (software pipelining): the hand
    // optimization that keeps both vector units busy despite the
    // five-add dependency chain per output.
    constexpr Vreg vCoarseA = 4, vFineA = 5, vTA = 6, vOutA = 7;
    constexpr Vreg vAccA = 8;
    constexpr Vreg vCoarseB = 9, vFineB = 10, vTB = 11, vOutB = 12;
    constexpr Vreg vAccB = 13;

    for (unsigned dw = 0; dw < cfg.dwells; ++dw) {
        trace::TraceScope dwell("viram.bs.dwell", "viram",
                                &machine.statGroup());
        for (unsigned dir = 0; dir < cfg.directions; ++dir) {
            const std::int32_t delta = tables.steerDelta[dir];
            machine.setvl(vlen);
            machine.vldUnit(vAccA,
                            rampBase + static_cast<Addr>(dir) * vlen * 4);
            machine.vaddIs(vAccA, vAccA, tables.steerBase[dir]);
            machine.vaddIs(vAccB, vAccA,
                           static_cast<std::int32_t>(vlen) * delta);

            const Addr rowOut = outBase
                + (static_cast<Addr>(dw) * cfg.directions + dir)
                  * cfg.elements * 4;

            unsigned e0 = 0;
            // Steady state: full pairs of 64-element groups.
            for (; e0 + 2 * vlen <= cfg.elements; e0 += 2 * vlen) {
                const Addr eA = e0, eB = e0 + vlen;
                machine.vldUnit(vCoarseA, coarseBase + eA * 4ULL);
                machine.vldUnit(vCoarseB, coarseBase + eB * 4ULL);
                machine.vldUnit(vFineA, fineBase + eA * 4ULL);
                machine.vldUnit(vFineB, fineBase + eB * 4ULL);
                machine.vaddI(vTA, vCoarseA, vFineA);
                machine.vaddI(vTB, vCoarseB, vFineB);
                machine.vaddI(vTA, vTA, vAccA);
                machine.vaddI(vTB, vTB, vAccB);
                machine.vaddIs(vTA, vTA, tables.dwellOffset[dw]);
                machine.vaddIs(vTB, vTB, tables.dwellOffset[dw]);
                machine.vaddIs(vTA, vTA, tables.bias);
                machine.vaddIs(vTB, vTB, tables.bias);
                machine.vsraI(vOutA, vTA, cfg.shift);
                machine.vsraI(vOutB, vTB, cfg.shift);
                machine.vstUnit(vOutA, rowOut + eA * 4ULL);
                machine.vstUnit(vOutB, rowOut + eB * 4ULL);
                machine.vaddIs(vAccA, vAccA,
                               2 * static_cast<std::int32_t>(vlen)
                               * delta);
                machine.vaddIs(vAccB, vAccB,
                               2 * static_cast<std::int32_t>(vlen)
                               * delta);
                machine.scalarOps(1);
            }
            // Remainder: single groups (possibly a short tail).
            for (; e0 < cfg.elements; e0 += vlen) {
                const unsigned nvl =
                    machine.setvl(std::min(vlen, cfg.elements - e0));
                machine.vldUnit(vCoarseA, coarseBase + e0 * 4ULL);
                machine.vldUnit(vFineA, fineBase + e0 * 4ULL);
                machine.vaddI(vTA, vCoarseA, vFineA);
                machine.vaddI(vTA, vTA, vAccA);
                machine.vaddIs(vTA, vTA, tables.dwellOffset[dw]);
                machine.vaddIs(vTA, vTA, tables.bias);
                machine.vsraI(vOutA, vTA, cfg.shift);
                machine.vstUnit(vOutA, rowOut + e0 * 4ULL);
                machine.setvl(vlen);
                machine.vaddIs(vAccA, vAccA,
                               static_cast<std::int32_t>(nvl) * delta);
                machine.scalarOps(1);
            }
        }
    }

    const Cycles cycles = machine.completionTime();

    auto words = machine.peekWords(outBase, cfg.outputs());
    out.resize(words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
        out[i] = static_cast<std::int32_t>(words[i]);
    return cycles;
}

} // namespace triarch::viram
