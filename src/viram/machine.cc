#include "machine.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::viram
{

ViramMachine::ViramMachine(const ViramConfig &machine_config)
    : cfg(machine_config),
      spanMem(mem::resolveMemModel(cfg.memModel)
              != mem::MemModel::Reference),
      dram(cfg.memBytes + cfg.offchipBytes),
      vregs(cfg.numVregs, std::vector<Word>(cfg.maxVl, 0)),
      curVl(cfg.maxVl), regReady(cfg.numVregs, 0),
      openRow(cfg.banks, ~Addr{0}),
      tlb("viram.tlb", cfg.tlbEntries, cfg.pageBytes,
          cfg.tlbMissPenalty),
      group("viram")
{
    triarch_assert(cfg.lanes > 0 && cfg.maxVl % cfg.lanes == 0,
                   "maxVl must be a multiple of the lane count");
    if (isPowerOf2(cfg.bankInterleaveBytes) && isPowerOf2(cfg.banks)
        && isPowerOf2(cfg.rowBytes)) {
        geomPow2 = true;
        ilvShift = floorLog2(cfg.bankInterleaveBytes);
        bankShift = floorLog2(cfg.banks);
        rowShift = floorLog2(cfg.rowBytes);
    }
    group.addScalar("vector_insts", &_vinsts, "vector instructions");
    group.addScalar("scalar_cycles", &_scalarCycles,
                    "scalar bookkeeping cycles");
    group.addScalar("vau0_busy", &_vau0Busy, "VAU0 busy cycles");
    group.addScalar("vau1_busy", &_vau1Busy, "VAU1 busy cycles");
    group.addScalar("vmu_busy", &_vmuBusy, "memory unit busy cycles");
    group.addScalar("row_overhead", &_rowCycles,
                    "DRAM precharge/activate cycles on critical path");
    group.addScalar("tlb_overhead", &_tlbCycles, "TLB refill cycles");
    group.addScalar("row_misses", &_rowMisses, "DRAM row misses");
    group.addScalar("perm_insts", &_perms, "shuffle instructions");
    group.addScalar("mem_words", &_memWords, "words moved to/from DRAM");
    group.addAverage("avg_vl", &_avgVl,
                     "mean vector length per instruction");
    accountStats.registerIn(group);
    hostPhases.addTo(group);
}

Addr
ViramMachine::alloc(std::uint64_t bytes, const std::string &what)
{
    const Addr addr = roundUp(allocNext, 64);
    if (addr + bytes > dram.size()) {
        triarch_fatal("VIRAM on-chip DRAM exhausted allocating ", bytes,
                      " bytes for ", what);
    }
    allocNext = addr + bytes;
    return addr;
}

void
ViramMachine::pokeWords(Addr addr, std::span<const Word> words)
{
    checkAddr(addr, words.size() * 4);
    std::memcpy(dram.data() + addr, words.data(), words.size() * 4);
}

std::vector<Word>
ViramMachine::peekWords(Addr addr, std::size_t count) const
{
    checkAddr(addr, count * 4);
    std::vector<Word> out(count);
    std::memcpy(out.data(), dram.data() + addr, count * 4);
    return out;
}

unsigned
ViramMachine::setvl(unsigned n)
{
    curVl = std::min(n, cfg.maxVl);
    triarch_assert(curVl > 0, "vector length must be positive");
    return curVl;
}

std::span<const Word>
ViramMachine::read(Vreg v) const
{
    return {vregs[v].data(), curVl};
}

std::span<Word>
ViramMachine::write(Vreg v)
{
    return {vregs[v].data(), curVl};
}

void
ViramMachine::checkReg(Vreg v) const
{
    triarch_assert(v < cfg.numVregs, "vector register ", v,
                   " out of range");
}

void
ViramMachine::checkAddr(Addr addr, std::uint64_t bytes) const
{
    triarch_assert(addr + bytes <= dram.size(),
                   "VIRAM address 0x", std::hex, addr,
                   " + ", std::dec, bytes, " outside on-chip DRAM");
}

ViramMachine::Unit
ViramMachine::pickVau(bool prefer_vau1) const
{
    if (unitFree[VAU0] == unitFree[VAU1])
        return prefer_vau1 ? VAU1 : VAU0;
    return unitFree[VAU0] < unitFree[VAU1] ? VAU0 : VAU1;
}

void
ViramMachine::issue(Unit unit, Cycles busy, Cycles startup,
                    std::initializer_list<Vreg> srcs, int dst)
{
    // The scalar core issues one vector instruction per cycle.
    issueCycle += 1;

    Cycles start = std::max(issueCycle, unitFree[unit]);
    for (Vreg s : srcs)
        start = std::max(start, regReady[s]);

    const Cycles done = start + startup + busy;
    unitFree[unit] = start + busy;
    if (dst >= 0) {
        // Chaining: a consumer on another unit may start once the
        // first elements stream out; same-unit consumers still wait
        // for the unit to free.
        regReady[static_cast<Vreg>(dst)] =
            start + startup + std::min(busy, cfg.chainLatency);
    }
    lastFinish = std::max(lastFinish, done);

    ++_vinsts;
    _avgVl.sample(curVl);
    timeline.add(unit == VMU ? stats::CycleCategory::DramDma
                             : stats::CycleCategory::Compute,
                 start, start + busy);
    // Channel index == Unit index by construction.
    hwSamp.addRange(static_cast<std::size_t>(unit), start,
                    start + busy);
    switch (unit) {
      case VAU0: _vau0Busy += busy; break;
      case VAU1: _vau1Busy += busy; break;
      case VMU: _vmuBusy += busy; break;
      default: triarch_panic("bad unit");
    }
}

Cycles
ViramMachine::memAccessCyclesIndexed(std::span<const Addr> addrs)
{
    // Gathers/scatters cannot exceed the address-generator rate and
    // never spill to the off-chip DMA path (asserted by callers).
    Cycles cycles = ceilDiv(addrs.size(), cfg.addrGens);
    std::uint64_t misses = 0;
    Cycles tlbPenalty = 0;
    for (Addr a : addrs) {
        const auto [bank, row] = bankRowOf(a);
        if (openRow[bank] != row) {
            openRow[bank] = row;
            ++misses;
        }
        tlbPenalty += tlb.access(a);
    }
    const Cycles rowOverhead = static_cast<Cycles>(
        static_cast<double>(misses * cfg.rowMissCycles)
        * cfg.rowOverlapFactor / cfg.banks);
    _rowMisses += misses;
    _rowCycles += rowOverhead;
    _tlbCycles += tlbPenalty;
    _memWords += addrs.size();
    return cycles + rowOverhead + tlbPenalty;
}

Cycles
ViramMachine::memAccessCycles(Addr addr, Addr stride_bytes, bool unit)
{
    // Accesses that touch memory beyond the on-chip capacity go
    // through the off-chip DMA interface: 2 words/cycle regardless
    // of stride, plus a fixed transfer-setup latency. The bank/TLB
    // machinery below models the on-chip DRAM only.
    const Addr last = addr + (curVl - 1) * stride_bytes;
    if (last >= cfg.memBytes) {
        _memWords += curVl;
        return ceilDiv(curVl, cfg.offchipWordsPerCycle)
               + cfg.offchipLatency;
    }

    const unsigned throughput =
        unit ? cfg.unitStrideWords : cfg.addrGens;
    Cycles cycles = ceilDiv(curVl, throughput);

    std::uint64_t misses = 0;
    Cycles tlbPenalty = 0;
    if (spanMem) {
        // Span walk (D13): the bank and row of an element depend
        // only on its interleave chunk, so only the first element of
        // each chunk run can change the open-row state; likewise a
        // TLB run covers every element on one page in one probe.
        // The bank state and the TLB are independent structures, so
        // splitting the element sequence into two run walks leaves
        // both (and all counters) exactly as the interleaved
        // per-element walk would.
        const Addr ilv = cfg.bankInterleaveBytes;
        for (unsigned i = 0; i < curVl;) {
            const Addr a = addr + static_cast<Addr>(i) * stride_bytes;
            const auto [bank, row] = bankRowOf(a);
            if (openRow[bank] != row) {
                openRow[bank] = row;
                ++misses;
            }
            if (stride_bytes == 0)
                break;
            const Addr off = geomPow2 ? a & (ilv - 1) : a % ilv;
            const Addr left = ilv - 1 - off;
            const std::uint64_t run = 1 + left / stride_bytes;
            i += static_cast<unsigned>(
                std::min<std::uint64_t>(run, curVl - i));
        }
        for (unsigned i = 0; i < curVl;) {
            const Addr a = addr + static_cast<Addr>(i) * stride_bytes;
            std::uint64_t run = curVl - i;
            if (stride_bytes != 0) {
                const Addr left = cfg.pageBytes - 1 - a % cfg.pageBytes;
                run = std::min<std::uint64_t>(run,
                                              1 + left / stride_bytes);
            }
            tlbPenalty += tlb.accessRun(a, run);
            i += static_cast<unsigned>(run);
        }
    } else {
        // Reference: walk the bank open-row state and the TLB for
        // each element.
        for (unsigned i = 0; i < curVl; ++i) {
            const Addr a = addr + static_cast<Addr>(i) * stride_bytes;
            const auto [bank, row] = bankRowOf(a);
            if (openRow[bank] != row) {
                openRow[bank] = row;
                ++misses;
            }
            tlbPenalty += tlb.access(a);
        }
    }

    // Row misses across banks overlap with transfers; only the
    // configured fraction reaches the critical path, spread over the
    // banks that can activate in parallel.
    const Cycles rowOverhead = static_cast<Cycles>(
        static_cast<double>(misses * cfg.rowMissCycles)
        * cfg.rowOverlapFactor / cfg.banks);

    _rowMisses += misses;
    _rowCycles += rowOverhead;
    _tlbCycles += tlbPenalty;
    _memWords += curVl;
    return cycles + rowOverhead + tlbPenalty;
}

void
ViramMachine::vldUnit(Vreg vd, Addr addr)
{
    checkReg(vd);
    checkAddr(addr, static_cast<std::uint64_t>(curVl) * 4);
    auto out = write(vd);
    std::memcpy(out.data(), dram.data() + addr, curVl * 4);
    issue(VMU, memAccessCycles(addr, 4, true), cfg.memStartup, {},
          static_cast<int>(vd));
}

void
ViramMachine::vldStride(Vreg vd, Addr addr, Addr strideBytes)
{
    checkReg(vd);
    checkAddr(addr + (curVl - 1) * strideBytes, 4);
    auto out = write(vd);
    for (unsigned i = 0; i < curVl; ++i) {
        std::memcpy(&out[i], dram.data() + addr + i * strideBytes, 4);
    }
    issue(VMU, memAccessCycles(addr, strideBytes, strideBytes == 4),
          cfg.memStartup, {}, static_cast<int>(vd));
}

void
ViramMachine::vstUnit(Vreg vs, Addr addr)
{
    checkReg(vs);
    checkAddr(addr, static_cast<std::uint64_t>(curVl) * 4);
    auto in = read(vs);
    std::memcpy(dram.data() + addr, in.data(), curVl * 4);
    issue(VMU, memAccessCycles(addr, 4, true), 0, {vs}, -1);
}

void
ViramMachine::vstStride(Vreg vs, Addr addr, Addr strideBytes)
{
    checkReg(vs);
    checkAddr(addr + (curVl - 1) * strideBytes, 4);
    auto in = read(vs);
    for (unsigned i = 0; i < curVl; ++i) {
        std::memcpy(dram.data() + addr + i * strideBytes, &in[i], 4);
    }
    issue(VMU, memAccessCycles(addr, strideBytes, strideBytes == 4), 0,
          {vs}, -1);
}

void
ViramMachine::vldIndexed(Vreg vd, Addr base, Vreg vidx)
{
    checkReg(vd);
    checkReg(vidx);
    auto idx = read(vidx);
    std::vector<Addr> addrs(curVl);
    auto out = write(vd);
    for (unsigned i = 0; i < curVl; ++i) {
        addrs[i] = base + static_cast<Addr>(idx[i]) * 4;
        checkAddr(addrs[i], 4);
        triarch_assert(addrs[i] + 4 <= cfg.memBytes,
                       "indexed access must stay on chip");
        std::memcpy(&out[i], dram.data() + addrs[i], 4);
    }
    issue(VMU, memAccessCyclesIndexed(addrs), cfg.memStartup, {vidx},
          static_cast<int>(vd));
}

void
ViramMachine::vstIndexed(Vreg vs, Addr base, Vreg vidx)
{
    checkReg(vs);
    checkReg(vidx);
    auto idx = read(vidx);
    auto in = read(vs);
    std::vector<Addr> addrs(curVl);
    for (unsigned i = 0; i < curVl; ++i) {
        addrs[i] = base + static_cast<Addr>(idx[i]) * 4;
        checkAddr(addrs[i], 4);
        triarch_assert(addrs[i] + 4 <= cfg.memBytes,
                       "indexed access must stay on chip");
        std::memcpy(dram.data() + addrs[i], &in[i], 4);
    }
    issue(VMU, memAccessCyclesIndexed(addrs), 0, {vs, vidx}, -1);
}

void
ViramMachine::vbcast(Vreg vd, Word value)
{
    checkReg(vd);
    for (auto &w : write(vd))
        w = value;
    issue(pickVau(), ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {},
          static_cast<int>(vd));
}

namespace
{

template <typename F>
void
elementwiseF(std::span<const Word> a, std::span<const Word> b,
             std::span<Word> d, F f)
{
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = floatToWord(f(wordToFloat(a[i]), wordToFloat(b[i])));
}

} // namespace

void
ViramMachine::vaddF(Vreg vd, Vreg va, Vreg vb)
{
    checkReg(vd); checkReg(va); checkReg(vb);
    elementwiseF(read(va), read(vb), write(vd),
                 [](float x, float y) { return x + y; });
    issue(VAU0, ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {va, vb},
          static_cast<int>(vd));
}

void
ViramMachine::vsubF(Vreg vd, Vreg va, Vreg vb)
{
    checkReg(vd); checkReg(va); checkReg(vb);
    elementwiseF(read(va), read(vb), write(vd),
                 [](float x, float y) { return x - y; });
    issue(VAU0, ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {va, vb},
          static_cast<int>(vd));
}

void
ViramMachine::vmulF(Vreg vd, Vreg va, Vreg vb)
{
    checkReg(vd); checkReg(va); checkReg(vb);
    elementwiseF(read(va), read(vb), write(vd),
                 [](float x, float y) { return x * y; });
    issue(VAU0, ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {va, vb},
          static_cast<int>(vd));
}

void
ViramMachine::vnegF(Vreg vd, Vreg va)
{
    checkReg(vd); checkReg(va);
    auto in = read(va);
    auto out = write(vd);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = floatToWord(-wordToFloat(in[i]));
    issue(VAU0, ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {va},
          static_cast<int>(vd));
}

void
ViramMachine::vscaleF(Vreg vd, Vreg va, float s)
{
    checkReg(vd); checkReg(va);
    auto in = read(va);
    auto out = write(vd);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = floatToWord(s * wordToFloat(in[i]));
    issue(VAU0, ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {va},
          static_cast<int>(vd));
}

void
ViramMachine::vaddI(Vreg vd, Vreg va, Vreg vb)
{
    checkReg(vd); checkReg(va); checkReg(vb);
    auto a = read(va);
    auto b = read(vb);
    auto d = write(vd);
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = a[i] + b[i];
    issue(pickVau(), ceilDiv(curVl, cfg.lanes), cfg.arithStartup,
          {va, vb}, static_cast<int>(vd));
}

void
ViramMachine::vsubI(Vreg vd, Vreg va, Vreg vb)
{
    checkReg(vd); checkReg(va); checkReg(vb);
    auto a = read(va);
    auto b = read(vb);
    auto d = write(vd);
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = a[i] - b[i];
    issue(pickVau(), ceilDiv(curVl, cfg.lanes), cfg.arithStartup,
          {va, vb}, static_cast<int>(vd));
}

void
ViramMachine::vaddIs(Vreg vd, Vreg va, std::int32_t imm)
{
    checkReg(vd); checkReg(va);
    auto a = read(va);
    auto d = write(vd);
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = a[i] + static_cast<Word>(imm);
    issue(pickVau(), ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {va},
          static_cast<int>(vd));
}

void
ViramMachine::vshlI(Vreg vd, Vreg va, unsigned sh)
{
    checkReg(vd); checkReg(va);
    auto a = read(va);
    auto d = write(vd);
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = a[i] << sh;
    issue(pickVau(), ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {va},
          static_cast<int>(vd));
}

void
ViramMachine::vsraI(Vreg vd, Vreg va, unsigned sh)
{
    checkReg(vd); checkReg(va);
    auto a = read(va);
    auto d = write(vd);
    for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = static_cast<Word>(
            static_cast<std::int32_t>(a[i]) >> sh);
    }
    issue(pickVau(), ceilDiv(curVl, cfg.lanes), cfg.arithStartup, {va},
          static_cast<int>(vd));
}

void
ViramMachine::vperm2(Vreg vd, Vreg va, Vreg vb,
                     std::span<const std::uint16_t> idx)
{
    checkReg(vd); checkReg(va); checkReg(vb);
    triarch_assert(idx.size() >= curVl, "permute table shorter than vl");

    // Snapshot sources: vd may alias va or vb.
    std::vector<Word> a(vregs[va].begin(), vregs[va].end());
    std::vector<Word> b(vregs[vb].begin(), vregs[vb].end());
    auto d = write(vd);
    for (unsigned i = 0; i < curVl; ++i) {
        const std::uint16_t j = idx[i];
        triarch_assert(j < 2 * cfg.maxVl, "permute index out of range");
        d[i] = j < cfg.maxVl ? a[j] : b[j - cfg.maxVl];
    }
    ++_perms;
    issue(pickVau(true), ceilDiv(curVl, cfg.lanes), cfg.arithStartup,
          {va, vb}, static_cast<int>(vd));
}

void
ViramMachine::vperm(Vreg vd, Vreg va, std::span<const std::uint16_t> idx)
{
    vperm2(vd, va, va, idx);
    // vperm2 counted one instruction and one perm already.
}

void
ViramMachine::scalarOps(unsigned n)
{
    issueCycle += n;
    _scalarCycles += n;
    timeline.add(stats::CycleCategory::SetupReadback, issueCycle - n,
                 issueCycle);
    lastFinish = std::max(lastFinish, issueCycle);
}

Cycles
ViramMachine::completionTime() const
{
    return std::max(lastFinish, issueCycle);
}

stats::CycleBreakdown
ViramMachine::cycleBreakdown(Cycles total)
{
    const stats::CycleBreakdown b =
        timeline.resolve(total, stats::CycleCategory::NetworkSync);
    accountStats.record(b);
    return b;
}

hw::HwCell
ViramMachine::hwCell(Cycles total,
                     const stats::CycleBreakdown &breakdown)
{
    auto frac = [total](std::uint64_t part) {
        return total ? std::min(1.0, static_cast<double>(part)
                                         / static_cast<double>(total))
                     : 0.0;
    };
    // Lane utilization averages the two VAUs: every busy cycle keeps
    // all cfg.lanes lanes of that unit occupied in this model.
    const double laneUtil =
        total ? std::min(1.0,
                         static_cast<double>(_vau0Busy.value()
                                             + _vau1Busy.value())
                             / (2.0 * static_cast<double>(total)))
              : 0.0;
    const double vmuUtil = frac(_vmuBusy.value());
    const std::uint64_t tlbTotal = tlb.hits() + tlb.misses();
    // tlb.accessRun() classifies per element in both memory models,
    // and misses (row walk) is element-exact too, so both rates are
    // span/reference-identical (D13); row-probe *counts* are not,
    // which is why there is no probe-based hit rate here.
    const double tlbHit =
        tlbTotal ? static_cast<double>(tlb.hits()) / tlbTotal : 0.0;
    const double rowMissRate =
        _memWords.value()
            ? std::min(1.0, static_cast<double>(_rowMisses.value())
                                / static_cast<double>(
                                      _memWords.value()))
            : 0.0;
    const double avgVlFrac =
        cfg.maxVl ? std::min(1.0, _avgVl.mean() / cfg.maxVl) : 0.0;

    hw::HwCell cell;
    cell.cycles = total;
    cell.breakdown = breakdown;
    cell.metrics = {
        {"lane_utilization", laneUtil, true},
        {"vmu_utilization", vmuUtil, true},
        {"tlb_hit_rate", tlbHit, true},
        {"row_miss_rate", rowMissRate, true},
        {"avg_vl_fraction", avgVlFrac, true},
        {"mem_words_per_cycle",
         total ? static_cast<double>(_memWords.value())
                     / static_cast<double>(total)
               : 0.0,
         false},
    };

    cell.verdict.category = hw::dominantCategory(breakdown);
    switch (cell.verdict.category) {
      case stats::CycleCategory::Compute:
        cell.verdict.component = "vau";
        cell.verdict.detail = "bound by vector arithmetic, lane util "
                              + hw::fmt2(laneUtil) + ", avg vl frac "
                              + hw::fmt2(avgVlFrac);
        break;
      case stats::CycleCategory::CacheStall:
        cell.verdict.component = "tlb";
        cell.verdict.detail = "bound by TLB refills, tlb hit "
                              + hw::fmt2(tlbHit);
        break;
      case stats::CycleCategory::DramDma:
        // Within the memory-unit category, name the DRAM banks when
        // row overhead is the larger charge, else the unit itself.
        if (_rowCycles.value() > 0
            && _rowCycles.value() >= _tlbCycles.value()) {
            cell.verdict.component = "dram";
            cell.verdict.detail = "bound by DRAM row misses, "
                                  "row miss rate "
                                  + hw::fmt2(rowMissRate)
                                  + ", vmu util " + hw::fmt2(vmuUtil);
        } else {
            cell.verdict.component = "vmu";
            cell.verdict.detail = "bound by the vector memory unit, "
                                  "vmu util "
                                  + hw::fmt2(vmuUtil) + ", tlb hit "
                                  + hw::fmt2(tlbHit);
        }
        break;
      case stats::CycleCategory::NetworkSync:
        cell.verdict.component = "network";
        cell.verdict.detail =
            "chaining/startup idle dominates, lane util "
            + hw::fmt2(laneUtil);
        break;
      case stats::CycleCategory::SetupReadback:
        cell.verdict.component = "scalar";
        cell.verdict.detail = "scalar-core bookkeeping dominates";
        break;
    }

    cell.timeline = hwSamp.finalize(completionTime());
    return cell;
}

void
ViramMachine::resetTiming()
{
    issueCycle = 0;
    lastFinish = 0;
    std::fill(std::begin(unitFree), std::end(unitFree), Cycles{0});
    std::fill(regReady.begin(), regReady.end(), Cycles{0});
    std::fill(openRow.begin(), openRow.end(), ~Addr{0});
    timeline.clear();
    hwSamp.reset();
    tlb.flush();
    group.resetAll();
    tlb.statGroup().resetAll();
}

std::string
ViramMachine::describe() const
{
    std::ostringstream os;
    os << "VIRAM (processor-in-memory vector chip, UC Berkeley)\n"
       << "  scalar core + 2 vector arithmetic units, "
       << cfg.lanes << " x 32-bit lanes each\n"
       << "  vector FP on VAU0 only; " << cfg.numVregs
       << " vregs x " << cfg.maxVl << " elements (8KB register file)\n"
       << "  " << cfg.addrGens << " address generators ("
       << cfg.addrGens << " strided words/cycle, "
       << cfg.unitStrideWords << " sequential words/cycle)\n"
       << "  on-chip DRAM: " << cfg.memBytes / (1024 * 1024)
       << " MB in 2 wings x " << cfg.banks / 2
       << " banks, crossbar to the vector unit\n"
       << "  clock " << cfg.clockMhz << " MHz, peak "
       << (2.0 * cfg.lanes * cfg.clockMhz / 1000.0)
       << " GOPS (32-bit), 1.6 GFLOPS\n";
    return os.str();
}

} // namespace triarch::viram
