/**
 * @file
 * Configuration of the VIRAM machine model (Section 2.1 of the
 * paper): a vector processor integrated with 13 MB of on-chip DRAM.
 *
 * Key implementation facts the model reproduces:
 *  - 256-bit datapath: 8 x 32-bit lanes per vector unit;
 *  - two vector arithmetic units, but vector floating point issues
 *    only on VAU0 (Section 4.3: FP throughput halves on the FFT);
 *  - 8 KB vector register file: 32 registers of 64 x 32-bit elements;
 *  - four address generators: strided accesses sustain 4 words/cycle
 *    while unit-stride accesses sustain 8 words/cycle;
 *  - on-chip DRAM in 2 wings x 4 banks with row activate/precharge
 *    overheads and a TLB (21% of corner-turn cycles in the paper).
 */

#ifndef TRIARCH_VIRAM_CONFIG_HH
#define TRIARCH_VIRAM_CONFIG_HH

#include "mem/mem_mode.hh"
#include "sim/types.hh"

namespace triarch::viram
{

/** All VIRAM model parameters; defaults mirror the research chip. */
struct ViramConfig
{
    unsigned clockMhz = 200;

    // Vector datapath.
    unsigned lanes = 8;             //!< 32-bit lanes per vector unit
    unsigned numVregs = 32;
    unsigned maxVl = 64;            //!< elements per vector register
    unsigned addrGens = 4;          //!< strided words per cycle
    unsigned unitStrideWords = 8;   //!< sequential words per cycle

    // Pipeline startup (vector instruction ramp) in cycles.
    Cycles arithStartup = 6;
    Cycles memStartup = 12;         //!< initial load latency, unhidden
    /**
     * Vector chaining: a dependent instruction (on another unit) may
     * start this many cycles after the producer starts delivering
     * elements, instead of waiting for the full vector.
     */
    Cycles chainLatency = 4;

    // On-chip DRAM organization.
    std::uint64_t memBytes = 13 * 1024 * 1024;
    /**
     * Off-chip DRAM reachable by DMA (Section 4.6: applications
     * larger than the on-chip 13 MB must spill and "VIRAM would
     * lose much of its advantage"). 0 disables the off-chip path:
     * allocations beyond the on-chip capacity become fatal.
     */
    std::uint64_t offchipBytes = 0;
    /** Off-chip DMA throughput (Table 1: 2 words/cycle). */
    unsigned offchipWordsPerCycle = 2;
    /** Extra latency charged per vector memory op that goes off chip. */
    Cycles offchipLatency = 40;
    unsigned banks = 8;             //!< 2 wings x 4 banks
    Addr rowBytes = 2048;
    Addr bankInterleaveBytes = 2048;
    Cycles rowMissCycles = 2;       //!< precharge + activate, on-chip
    /**
     * Fraction of bank row-miss time that reaches the critical path;
     * the rest overlaps with transfers on other banks (activation of
     * the next row proceeds while earlier banks stream data).
     */
    double rowOverlapFactor = 0.35;

    // TLB.
    unsigned tlbEntries = 32;
    Addr pageBytes = 32 * 1024;
    Cycles tlbMissPenalty = 20;

    /** Memory-model walk selection (D13); Default follows the
     *  process-wide mem::defaultMemModel(). */
    mem::MemModel memModel = mem::MemModel::Default;
};

} // namespace triarch::viram

#endif // TRIARCH_VIRAM_CONFIG_HH
