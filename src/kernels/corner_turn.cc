#include "corner_turn.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace triarch::kernels
{

void
fillMatrix(WordMatrix &m, std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &w : m.data)
        w = static_cast<Word>(rng.next());
}

void
transposeNaive(const WordMatrix &src, WordMatrix &dst)
{
    triarch_assert(dst.rows == src.cols && dst.cols == src.rows,
                   "transpose shape mismatch");
    for (unsigned r = 0; r < src.rows; ++r) {
        for (unsigned c = 0; c < src.cols; ++c)
            dst.at(c, r) = src.at(r, c);
    }
}

void
transposeBlocked(const WordMatrix &src, WordMatrix &dst,
                 unsigned blockSize)
{
    triarch_assert(dst.rows == src.cols && dst.cols == src.rows,
                   "transpose shape mismatch");
    triarch_assert(blockSize > 0, "block size must be positive");

    for (unsigned br = 0; br < src.rows; br += blockSize) {
        const unsigned rEnd = std::min(br + blockSize, src.rows);
        for (unsigned bc = 0; bc < src.cols; bc += blockSize) {
            const unsigned cEnd = std::min(bc + blockSize, src.cols);
            for (unsigned r = br; r < rEnd; ++r) {
                for (unsigned c = bc; c < cEnd; ++c)
                    dst.at(c, r) = src.at(r, c);
            }
        }
    }
}

bool
isTransposeOf(const WordMatrix &src, const WordMatrix &dst)
{
    if (dst.rows != src.cols || dst.cols != src.rows)
        return false;
    // Tiled comparison: a row-major sweep of one matrix strides the
    // other by a full row per element, which misses cache on every
    // access for the study's 1024x1024 matrices. Comparing block by
    // block keeps both sides' lines resident.
    constexpr unsigned blk = 64;
    for (unsigned rb = 0; rb < src.rows; rb += blk) {
        const unsigned rEnd = std::min(src.rows, rb + blk);
        for (unsigned cb = 0; cb < src.cols; cb += blk) {
            const unsigned cEnd = std::min(src.cols, cb + blk);
            for (unsigned r = rb; r < rEnd; ++r) {
                for (unsigned c = cb; c < cEnd; ++c) {
                    if (dst.at(c, r) != src.at(r, c))
                        return false;
                }
            }
        }
    }
    return true;
}

} // namespace triarch::kernels
