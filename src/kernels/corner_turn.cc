#include "corner_turn.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace triarch::kernels
{

void
fillMatrix(WordMatrix &m, std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &w : m.data)
        w = static_cast<Word>(rng.next());
}

void
transposeNaive(const WordMatrix &src, WordMatrix &dst)
{
    triarch_assert(dst.rows == src.cols && dst.cols == src.rows,
                   "transpose shape mismatch");
    for (unsigned r = 0; r < src.rows; ++r) {
        for (unsigned c = 0; c < src.cols; ++c)
            dst.at(c, r) = src.at(r, c);
    }
}

void
transposeBlocked(const WordMatrix &src, WordMatrix &dst,
                 unsigned blockSize)
{
    triarch_assert(dst.rows == src.cols && dst.cols == src.rows,
                   "transpose shape mismatch");
    triarch_assert(blockSize > 0, "block size must be positive");

    for (unsigned br = 0; br < src.rows; br += blockSize) {
        const unsigned rEnd = std::min(br + blockSize, src.rows);
        for (unsigned bc = 0; bc < src.cols; bc += blockSize) {
            const unsigned cEnd = std::min(bc + blockSize, src.cols);
            for (unsigned r = br; r < rEnd; ++r) {
                for (unsigned c = bc; c < cEnd; ++c)
                    dst.at(c, r) = src.at(r, c);
            }
        }
    }
}

bool
isTransposeOf(const WordMatrix &src, const WordMatrix &dst)
{
    if (dst.rows != src.cols || dst.cols != src.rows)
        return false;
    for (unsigned r = 0; r < src.rows; ++r) {
        for (unsigned c = 0; c < src.cols; ++c) {
            if (dst.at(c, r) != src.at(r, c))
                return false;
        }
    }
    return true;
}

} // namespace triarch::kernels
