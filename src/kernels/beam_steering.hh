/**
 * @file
 * Beam steering (Section 3.3): computes the phase for every antenna
 * element of a phased-array radar from calibration tables. Per output
 * the kernel performs exactly 2 table reads, 5 integer additions, one
 * arithmetic shift, and 1 write — low arithmetic intensity that makes
 * the kernel a memory bandwidth/latency probe.
 *
 * Paper parameters: 1608 antenna elements, up to 4 steering
 * directions per dwell. The study runs 8 dwells per invocation so the
 * cycle counts are comparable to Table 3 (51,456 outputs).
 */

#ifndef TRIARCH_KERNELS_BEAM_STEERING_HH
#define TRIARCH_KERNELS_BEAM_STEERING_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace triarch::kernels
{

/** Problem shape and fixed-point scaling. */
struct BeamConfig
{
    unsigned elements = 1608;   //!< antenna elements
    unsigned directions = 4;    //!< steering directions per dwell
    unsigned dwells = 8;        //!< dwells per invocation
    unsigned shift = 6;         //!< fixed-point phase normalization

    std::uint64_t
    outputs() const
    {
        return static_cast<std::uint64_t>(elements) * directions
               * dwells;
    }

    friend bool operator==(const BeamConfig &,
                           const BeamConfig &) = default;
};

/**
 * Why the reference computation is undefined for @p cfg, or nullopt
 * if it is sound. Zero-sized dimensions are well-defined (the output
 * is empty), but a shift of 32 or more on the 32-bit phase
 * accumulator is UB and is rejected here; beamSteerReference panics
 * on a violation, and the study-level ConfigValidator reports it as
 * a typed ConfigError first.
 */
std::optional<std::string> beamShapeError(const BeamConfig &cfg);

/** Calibration and steering tables (synthetic stand-ins). */
struct BeamTables
{
    std::vector<std::int32_t> calCoarse;    //!< per element
    std::vector<std::int32_t> calFine;      //!< per element
    std::vector<std::int32_t> steerBase;    //!< per direction
    std::vector<std::int32_t> steerDelta;   //!< per direction
    std::vector<std::int32_t> dwellOffset;  //!< per dwell
    std::int32_t bias = 0;
};

/** Deterministic synthetic tables for @p cfg. */
BeamTables makeBeamTables(const BeamConfig &cfg, std::uint64_t seed);

/**
 * Reference computation. Output layout is
 * out[((dwell * directions) + dir) * elements + elem]. For each
 * output: acc += steerDelta (add 1); t = calCoarse[e] + calFine[e]
 * (add 2); t += acc (add 3); t += dwellOffset (add 4); t += bias
 * (add 5); out = t >> shift (1 shift).
 */
std::vector<std::int32_t> beamSteerReference(const BeamConfig &cfg,
                                             const BeamTables &tables);

/** Per-output operation counts (fixed by the kernel definition). */
struct BeamOps
{
    static constexpr unsigned adds = 5;
    static constexpr unsigned shifts = 1;
    static constexpr unsigned reads = 2;
    static constexpr unsigned writes = 1;
};

} // namespace triarch::kernels

#endif // TRIARCH_KERNELS_BEAM_STEERING_HH
