/**
 * @file
 * FFT family used by the CSLC kernel: a reference O(n^2) DFT, an
 * iterative radix-2 FFT, a radix-4 FFT for power-of-four sizes, and
 * the mixed-radix 128-point transform the paper uses on VIRAM and
 * Imagine (three radix-4 stages and one radix-2 stage, since 128 is
 * not a power of four).
 *
 * Alongside the numerics, each algorithm exposes an operation-count
 * model (flops, loads, stores) that the architecture timing models
 * and the performance model of DESIGN.md consume. Section 4.3 of the
 * paper notes the radix-2 FFT performs about 1.5x the operations of
 * the radix-4 FFT; a unit test pins that ratio.
 */

#ifndef TRIARCH_KERNELS_FFT_HH
#define TRIARCH_KERNELS_FFT_HH

#include <complex>
#include <cstdint>
#include <vector>

namespace triarch::kernels
{

using cfloat = std::complex<float>;

/** Forward twiddle factors W_n^k = exp(-2*pi*i*k/n) for k in [0, n). */
std::vector<cfloat> twiddleTable(unsigned n);

/** O(n^2) reference DFT with double-precision accumulation. */
std::vector<cfloat> dftReference(const std::vector<cfloat> &in);

/** In-place iterative radix-2 DIT FFT; n must be a power of two. */
void fftRadix2(std::vector<cfloat> &data);

/** In-place radix-4 DIT FFT; n must be a power of four. */
void fftRadix4(std::vector<cfloat> &data);

/**
 * 128-point transform decomposed as one radix-2 split over two
 * 64-point radix-4 FFTs — the paper's "three radix-4 stages and one
 * radix-2 stage".
 */
void fftMixed128(std::vector<cfloat> &data);

/** Inverse FFT via conjugation; uses fftRadix2 internally. */
void ifft(std::vector<cfloat> &data);

/** Inverse of fftMixed128, same decomposition. */
void ifftMixed128(std::vector<cfloat> &data);

/** Permute @p data into bit-reversed order (radix-2 input order). */
void bitReversePermute(std::vector<cfloat> &data);

/** Operation counts for one transform of a given algorithm. */
struct FftOps
{
    std::uint64_t fadds = 0;
    std::uint64_t fmuls = 0;
    std::uint64_t loads = 0;    //!< 32-bit words read (data + twiddles)
    std::uint64_t stores = 0;   //!< 32-bit words written

    std::uint64_t flops() const { return fadds + fmuls; }
    std::uint64_t total() const { return flops() + loads + stores; }
};

/** Counts for an n-point radix-2 FFT. */
FftOps radix2Ops(unsigned n);

/** Counts for an n-point radix-4 FFT (n a power of four). */
FftOps radix4Ops(unsigned n);

/** Counts for the mixed-radix 128-point FFT. */
FftOps mixed128Ops();

} // namespace triarch::kernels

#endif // TRIARCH_KERNELS_FFT_HH
