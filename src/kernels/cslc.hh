/**
 * @file
 * Coherent side-lobe canceller (Section 3.2): cancels jammer energy
 * received through the antenna side lobes using auxiliary channels.
 *
 * Paper configuration: four input channels (two main, two auxiliary),
 * 8K complex samples per channel per processing interval, partitioned
 * into 73 overlapping sub-bands of 128 samples (stride 112, overlap
 * 16: 72 * 112 + 128 = 8192). Per sub-band the kernel runs a
 * 128-point FFT on each channel, applies per-bin complex cancellation
 * weights to the main channels, and inverse-transforms the result.
 * FFT/IFFT dominate the arithmetic.
 *
 * The adaptive weight estimation is *calibration*, not part of the
 * timed kernel (the paper times FFT + weight application + IFFT); it
 * is provided here so tests can verify that jammer tones really are
 * cancelled, which guards the whole pipeline's numerics.
 */

#ifndef TRIARCH_KERNELS_CSLC_HH
#define TRIARCH_KERNELS_CSLC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fft.hh"

namespace triarch::kernels
{

/** Problem shape. Defaults are the paper's. */
struct CslcConfig
{
    unsigned mainChannels = 2;
    unsigned auxChannels = 2;
    unsigned samples = 8192;        //!< per channel per interval
    unsigned subBands = 73;
    unsigned subBandLen = 128;
    unsigned subBandStride = 112;   //!< 72*112 + 128 == 8192

    unsigned channels() const { return mainChannels + auxChannels; }

    /** FFTs + IFFTs per interval: channels FFTs + main IFFTs. */
    std::uint64_t
    transforms() const
    {
        return static_cast<std::uint64_t>(subBands)
               * (channels() + mainChannels);
    }

    friend bool operator==(const CslcConfig &,
                           const CslcConfig &) = default;
};

/**
 * Why @p cfg cannot be synthesized or transformed by the reference
 * pipeline, or nullopt if the shape is sound: the sub-band length
 * must be a power of two (radix-2 FFT), at least one sub-band must
 * exist, and the sub-band tiling must cover the sample interval
 * exactly. Shared by the workload synthesizer (which panics on a
 * violation) and the study-level ConfigValidator (which reports it
 * as a typed ConfigError before any workload is built).
 */
std::optional<std::string> cslcShapeError(const CslcConfig &cfg);

/** One interval of input data, per channel time series. */
struct CslcInput
{
    std::vector<std::vector<cfloat>> main;  //!< [mainChannels][samples]
    std::vector<std::vector<cfloat>> aux;   //!< [auxChannels][samples]
};

/** Per-sub-band, per-bin cancellation weights. */
struct CslcWeights
{
    /** weights[m][a][band * subBandLen + bin] */
    std::vector<std::vector<std::vector<cfloat>>> w;
};

/** Cancelled sub-band spectra/time series per main channel. */
struct CslcOutput
{
    /** out[m][band * subBandLen + k]: time-domain cancelled blocks. */
    std::vector<std::vector<cfloat>> main;
};

/**
 * Synthesize an interval: main channels carry a weak pseudo-random
 * "signal of interest" plus strong jammer tones; aux channels see the
 * same jammer tones through different complex gains plus receiver
 * noise. @p jammerBins lists jammer tone frequencies as FFT bin
 * indices of the full interval.
 */
CslcInput makeJammedInput(const CslcConfig &cfg,
                          const std::vector<unsigned> &jammerBins,
                          std::uint64_t seed);

/**
 * Estimate cancellation weights by averaging per-bin cross spectra
 * over all sub-bands (classic sample-matrix-free sidelobe canceller
 * with sequential aux cancellation). Calibration step, not timed.
 */
CslcWeights estimateWeights(const CslcConfig &cfg, const CslcInput &in);

/**
 * FFT algorithm selection for the reference pipeline. The paper uses
 * the mixed-radix transform on VIRAM and Imagine and radix-2 on Raw;
 * architecture models are validated against the matching variant so
 * rounding differences do not mask mapping bugs.
 */
enum class FftAlgo { Mixed128, Radix2 };

/**
 * The timed kernel, reference implementation: per sub-band FFT all
 * channels, subtract weighted aux spectra from each main spectrum,
 * and IFFT the cancelled mains.
 */
CslcOutput cslcReference(const CslcConfig &cfg, const CslcInput &in,
                         const CslcWeights &weights,
                         FftAlgo algo = FftAlgo::Mixed128);

/**
 * Mean jammer power across main channels, measured in the sub-band
 * spectra of @p processed vs the unprocessed input; the ratio in dB
 * is the cancellation depth (larger is better).
 */
double cancellationDepthDb(const CslcConfig &cfg, const CslcInput &in,
                           const CslcOutput &processed);

/** Total flop count of the reference kernel (FFTs + weights + IFFTs). */
std::uint64_t cslcFlops(const CslcConfig &cfg);

} // namespace triarch::kernels

#endif // TRIARCH_KERNELS_CSLC_HH
