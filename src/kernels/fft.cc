#include "fft.hh"

#include <cmath>
#include <numbers>

#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::kernels
{

std::vector<cfloat>
twiddleTable(unsigned n)
{
    std::vector<cfloat> w(n);
    for (unsigned k = 0; k < n; ++k) {
        const double angle =
            -2.0 * std::numbers::pi * static_cast<double>(k) / n;
        w[k] = cfloat(static_cast<float>(std::cos(angle)),
                      static_cast<float>(std::sin(angle)));
    }
    return w;
}

std::vector<cfloat>
dftReference(const std::vector<cfloat> &in)
{
    const std::size_t n = in.size();
    std::vector<cfloat> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        double re = 0.0, im = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -2.0 * std::numbers::pi
                * static_cast<double>(k) * static_cast<double>(t) / n;
            const double c = std::cos(angle), s = std::sin(angle);
            re += in[t].real() * c - in[t].imag() * s;
            im += in[t].real() * s + in[t].imag() * c;
        }
        out[k] = cfloat(static_cast<float>(re), static_cast<float>(im));
    }
    return out;
}

void
bitReversePermute(std::vector<cfloat> &data)
{
    const unsigned n = static_cast<unsigned>(data.size());
    triarch_assert(isPowerOf2(n), "bit reversal needs power-of-two size");
    const unsigned nbits = floorLog2(n);
    for (unsigned i = 0; i < n; ++i) {
        const unsigned j = reverseBits(i, nbits);
        if (j > i)
            std::swap(data[i], data[j]);
    }
}

void
fftRadix2(std::vector<cfloat> &data)
{
    const unsigned n = static_cast<unsigned>(data.size());
    triarch_assert(isPowerOf2(n) && n >= 2, "radix-2 FFT needs n = 2^k");

    static thread_local std::vector<cfloat> twiddles;
    static thread_local unsigned twiddleN = 0;
    if (twiddleN != n) {
        twiddles = twiddleTable(n);
        twiddleN = n;
    }

    bitReversePermute(data);

    for (unsigned len = 2; len <= n; len <<= 1) {
        const unsigned half = len >> 1;
        const unsigned step = n / len;
        for (unsigned base = 0; base < n; base += len) {
            for (unsigned k = 0; k < half; ++k) {
                const cfloat w = twiddles[k * step];
                const cfloat t = w * data[base + k + half];
                const cfloat u = data[base + k];
                data[base + k] = u + t;
                data[base + k + half] = u - t;
            }
        }
    }
}

namespace
{

/**
 * Radix-4 DIT over a strided view: length @p n (power of four),
 * elements data[off + i*stride] transformed using twiddles of the
 * full size @p rootN.
 */
void
radix4Strided(std::vector<cfloat> &data, unsigned off, unsigned stride,
              unsigned n, const std::vector<cfloat> &tw, unsigned rootN)
{
    // Digit-reverse (base-4) permutation of the strided view.
    const unsigned pairs = floorLog2(n);    // even, since n = 4^m
    auto digitRev4 = [pairs](unsigned v) {
        unsigned r = 0;
        for (unsigned i = 0; i < pairs; i += 2) {
            r = (r << 2) | (v & 3);
            v >>= 2;
        }
        return r;
    };
    for (unsigned i = 0; i < n; ++i) {
        const unsigned j = digitRev4(i);
        if (j > i)
            std::swap(data[off + i * stride], data[off + j * stride]);
    }

    const cfloat jneg(0.0f, -1.0f);     // -i, forward transform
    for (unsigned len = 4; len <= n; len <<= 2) {
        const unsigned quarter = len >> 2;
        const unsigned step = rootN / len * (rootN == n ? 1 : 1);
        const unsigned twStep = (rootN / len);
        (void)step;
        for (unsigned base = 0; base < n; base += len) {
            for (unsigned k = 0; k < quarter; ++k) {
                const cfloat w1 = tw[(k * twStep) % rootN];
                const cfloat w2 = tw[(2 * k * twStep) % rootN];
                const cfloat w3 = tw[(3 * k * twStep) % rootN];

                const unsigned i0 = off + (base + k) * stride;
                const unsigned i1 = i0 + quarter * stride;
                const unsigned i2 = i1 + quarter * stride;
                const unsigned i3 = i2 + quarter * stride;

                const cfloat a = data[i0];
                const cfloat b = w1 * data[i1];
                const cfloat c = w2 * data[i2];
                const cfloat d = w3 * data[i3];

                const cfloat apc = a + c;
                const cfloat amc = a - c;
                const cfloat bpd = b + d;
                const cfloat bmd = jneg * (b - d);

                data[i0] = apc + bpd;
                data[i1] = amc + bmd;
                data[i2] = apc - bpd;
                data[i3] = amc - bmd;
            }
        }
    }
}

} // namespace

void
fftRadix4(std::vector<cfloat> &data)
{
    const unsigned n = static_cast<unsigned>(data.size());
    triarch_assert(isPowerOf2(n) && (floorLog2(n) % 2 == 0),
                   "radix-4 FFT needs n = 4^m, got n=", n);
    const std::vector<cfloat> tw = twiddleTable(n);
    radix4Strided(data, 0, 1, n, tw, n);
}

void
fftMixed128(std::vector<cfloat> &data)
{
    constexpr unsigned n = 128;
    triarch_assert(data.size() == n, "fftMixed128 needs 128 points");

    // DIT radix-2 split: evens and odds are 64-point radix-4 FFTs.
    std::vector<cfloat> even(64), odd(64);
    for (unsigned i = 0; i < 64; ++i) {
        even[i] = data[2 * i];
        odd[i] = data[2 * i + 1];
    }
    fftRadix4(even);
    fftRadix4(odd);

    static const std::vector<cfloat> tw = twiddleTable(n);
    for (unsigned k = 0; k < 64; ++k) {
        const cfloat t = tw[k] * odd[k];
        data[k] = even[k] + t;
        data[k + 64] = even[k] - t;
    }
}

void
ifft(std::vector<cfloat> &data)
{
    for (auto &v : data)
        v = std::conj(v);
    fftRadix2(data);
    const float inv = 1.0f / static_cast<float>(data.size());
    for (auto &v : data)
        v = std::conj(v) * inv;
}

void
ifftMixed128(std::vector<cfloat> &data)
{
    for (auto &v : data)
        v = std::conj(v);
    fftMixed128(data);
    const float inv = 1.0f / static_cast<float>(data.size());
    for (auto &v : data)
        v = std::conj(v) * inv;
}

FftOps
radix2Ops(unsigned n)
{
    triarch_assert(isPowerOf2(n), "radix-2 op count needs n = 2^k");
    const std::uint64_t stages = floorLog2(n);
    const std::uint64_t butterflies = (n / 2) * stages;
    FftOps ops;
    // Per butterfly: one complex multiply (4 mul + 2 add) and two
    // complex add/sub (4 adds).
    ops.fmuls = butterflies * 4;
    ops.fadds = butterflies * 6;
    // Two complex points in + one twiddle, two complex points out.
    ops.loads = butterflies * 6;
    ops.stores = butterflies * 4;
    return ops;
}

FftOps
radix4Ops(unsigned n)
{
    triarch_assert(isPowerOf2(n) && floorLog2(n) % 2 == 0,
                   "radix-4 op count needs n = 4^m");
    const std::uint64_t stages = floorLog2(n) / 2;
    const std::uint64_t butterflies = (n / 4) * stages;
    FftOps ops;
    // Per radix-4 butterfly: 3 complex multiplies (12 mul + 6 add)
    // and 8 complex add/subs (16 adds).
    ops.fmuls = butterflies * 12;
    ops.fadds = butterflies * 22;
    // Four complex points + three twiddles in, four complex out.
    ops.loads = butterflies * 14;
    ops.stores = butterflies * 8;
    return ops;
}

FftOps
mixed128Ops()
{
    // Two 64-point radix-4 transforms plus one 64-butterfly radix-2
    // combining stage.
    FftOps r4 = radix4Ops(64);
    FftOps ops;
    ops.fadds = 2 * r4.fadds + 64 * 6;
    ops.fmuls = 2 * r4.fmuls + 64 * 4;
    ops.loads = 2 * r4.loads + 64 * 6;
    ops.stores = 2 * r4.stores + 64 * 4;
    return ops;
}

} // namespace triarch::kernels
