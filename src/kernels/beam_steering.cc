#include "beam_steering.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace triarch::kernels
{

BeamTables
makeBeamTables(const BeamConfig &cfg, std::uint64_t seed)
{
    Rng rng(seed);
    auto gen = [&rng](unsigned n, std::int32_t range) {
        std::vector<std::int32_t> v(n);
        for (auto &x : v) {
            x = static_cast<std::int32_t>(rng.nextBelow(2 * range))
                - range;
        }
        return v;
    };

    BeamTables t;
    t.calCoarse = gen(cfg.elements, 1 << 20);
    t.calFine = gen(cfg.elements, 1 << 12);
    t.steerBase = gen(cfg.directions, 1 << 18);
    t.steerDelta = gen(cfg.directions, 1 << 8);
    t.dwellOffset = gen(cfg.dwells, 1 << 14);
    t.bias = static_cast<std::int32_t>(rng.nextBelow(1 << 10));
    return t;
}

std::optional<std::string>
beamShapeError(const BeamConfig &cfg)
{
    if (cfg.shift >= 32) {
        return "shift must be < 32: shifting the 32-bit phase "
               "accumulator by "
               + std::to_string(cfg.shift) + " is undefined";
    }
    return std::nullopt;
}

std::vector<std::int32_t>
beamSteerReference(const BeamConfig &cfg, const BeamTables &tables)
{
    if (auto err = beamShapeError(cfg))
        triarch_panic("bad BeamConfig: ", *err);
    triarch_assert(tables.calCoarse.size() == cfg.elements,
                   "table shape mismatch");
    std::vector<std::int32_t> out(cfg.outputs());

    std::size_t idx = 0;
    for (unsigned dw = 0; dw < cfg.dwells; ++dw) {
        for (unsigned dir = 0; dir < cfg.directions; ++dir) {
            std::int32_t acc = tables.steerBase[dir];
            for (unsigned e = 0; e < cfg.elements; ++e) {
                acc += tables.steerDelta[dir];                  // add 1
                std::int32_t t =
                    tables.calCoarse[e] + tables.calFine[e];    // add 2
                t += acc;                                       // add 3
                t += tables.dwellOffset[dw];                    // add 4
                t += tables.bias;                               // add 5
                out[idx++] = t >> cfg.shift;                    // shift
            }
        }
    }
    return out;
}

} // namespace triarch::kernels
