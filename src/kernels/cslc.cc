#include "cslc.hh"

#include <cmath>
#include <numbers>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace triarch::kernels
{

namespace
{

/** Complex gain with unit-ish magnitude and random phase. */
cfloat
randomGain(Rng &rng, float magnitude)
{
    const float phase =
        2.0f * static_cast<float>(std::numbers::pi) * rng.nextFloat();
    return cfloat(magnitude * std::cos(phase),
                  magnitude * std::sin(phase));
}

/** FFT of the @p band-th sub-band of channel @p x. */
std::vector<cfloat>
subBandSpectrum(const CslcConfig &cfg, const std::vector<cfloat> &x,
                unsigned band)
{
    const unsigned off = band * cfg.subBandStride;
    std::vector<cfloat> block(x.begin() + off,
                              x.begin() + off + cfg.subBandLen);
    fftMixed128(block);
    return block;
}

} // namespace

std::optional<std::string>
cslcShapeError(const CslcConfig &cfg)
{
    if (cfg.subBandLen < 2
        || (cfg.subBandLen & (cfg.subBandLen - 1)) != 0) {
        return "subBandLen must be a power of two >= 2 for the "
               "radix-2 FFT, got "
               + std::to_string(cfg.subBandLen);
    }
    if (cfg.subBands == 0)
        return "at least one sub-band is required";
    // 64-bit so a huge subBands/stride pair cannot wrap back onto
    // the right answer.
    const std::uint64_t covered =
        static_cast<std::uint64_t>(cfg.subBands - 1) * cfg.subBandStride
        + cfg.subBandLen;
    if (covered != cfg.samples) {
        return "sub-band tiling does not cover the interval: "
               "(subBands-1)*subBandStride + subBandLen = "
               + std::to_string(covered) + " but samples = "
               + std::to_string(cfg.samples);
    }
    return std::nullopt;
}

CslcInput
makeJammedInput(const CslcConfig &cfg,
                const std::vector<unsigned> &jammerBins,
                std::uint64_t seed)
{
    if (auto err = cslcShapeError(cfg))
        triarch_panic("bad CslcConfig: ", *err);
    for (unsigned bin : jammerBins) {
        triarch_assert(bin < cfg.samples,
                       "jammer bin ", bin, " is out of range for a ",
                       cfg.samples, "-sample interval");
    }

    Rng rng(seed);
    CslcInput in;
    in.main.assign(cfg.mainChannels,
                   std::vector<cfloat>(cfg.samples));
    in.aux.assign(cfg.auxChannels, std::vector<cfloat>(cfg.samples));

    constexpr float signalAmp = 0.05f;
    constexpr float jammerAmp = 1.0f;
    constexpr float auxNoiseAmp = 1e-3f;

    // Weak random signal of interest on the main channels only.
    for (auto &chan : in.main) {
        for (auto &v : chan) {
            v = cfloat(signalAmp * rng.nextSignedFloat(),
                       signalAmp * rng.nextSignedFloat());
        }
    }

    // Strong jammer tones, received on every channel through channel-
    // specific complex gains (side-lobe gains for main, direct for aux).
    for (unsigned bin : jammerBins) {
        std::vector<cfloat> mainGain, auxGain;
        for (unsigned m = 0; m < cfg.mainChannels; ++m)
            mainGain.push_back(randomGain(rng, jammerAmp));
        for (unsigned a = 0; a < cfg.auxChannels; ++a)
            auxGain.push_back(randomGain(rng, 2.0f * jammerAmp));

        for (unsigned t = 0; t < cfg.samples; ++t) {
            const float angle = 2.0f
                * static_cast<float>(std::numbers::pi)
                * static_cast<float>(bin) * static_cast<float>(t)
                / static_cast<float>(cfg.samples);
            const cfloat tone(std::cos(angle), std::sin(angle));
            for (unsigned m = 0; m < cfg.mainChannels; ++m)
                in.main[m][t] += mainGain[m] * tone;
            for (unsigned a = 0; a < cfg.auxChannels; ++a)
                in.aux[a][t] += auxGain[a] * tone;
        }
    }

    // Receiver noise on the aux channels bounds cancellation depth.
    for (auto &chan : in.aux) {
        for (auto &v : chan) {
            v += cfloat(auxNoiseAmp * rng.nextSignedFloat(),
                        auxNoiseAmp * rng.nextSignedFloat());
        }
    }

    return in;
}

CslcWeights
estimateWeights(const CslcConfig &cfg, const CslcInput &in)
{
    triarch_assert(cfg.auxChannels == 2,
                   "weight estimator assumes two aux channels");
    const unsigned nbins = cfg.subBandLen;

    // Per-bin cross spectra averaged over all sub-bands. Accumulate
    // in double precision: the jammer dominates and we want the
    // small-signal bins to stay small.
    using dcomplex = std::complex<double>;
    std::vector<std::vector<dcomplex>> mainXaux0(cfg.mainChannels,
        std::vector<dcomplex>(nbins));
    std::vector<dcomplex> aux1Xaux0(nbins);
    std::vector<double> aux0Pow(nbins), aux1Pow(nbins);

    std::vector<std::vector<std::vector<cfloat>>> mainSpec(
        cfg.mainChannels);
    std::vector<std::vector<cfloat>> aux0Spec, aux1Spec;

    for (unsigned b = 0; b < cfg.subBands; ++b) {
        auto a0 = subBandSpectrum(cfg, in.aux[0], b);
        auto a1 = subBandSpectrum(cfg, in.aux[1], b);
        for (unsigned k = 0; k < nbins; ++k) {
            aux0Pow[k] += std::norm(dcomplex(a0[k]));
            aux1Xaux0[k] += dcomplex(a1[k]) * std::conj(dcomplex(a0[k]));
        }
        for (unsigned m = 0; m < cfg.mainChannels; ++m) {
            auto ms = subBandSpectrum(cfg, in.main[m], b);
            for (unsigned k = 0; k < nbins; ++k) {
                mainXaux0[m][k] +=
                    dcomplex(ms[k]) * std::conj(dcomplex(a0[k]));
            }
            mainSpec[m].push_back(std::move(ms));
        }
        aux0Spec.push_back(std::move(a0));
        aux1Spec.push_back(std::move(a1));
    }

    constexpr double eps = 1e-9;

    // Gram-Schmidt: remove aux0 from aux1, then estimate each main
    // channel against aux0 and the orthogonalized aux1.
    std::vector<dcomplex> v(nbins);    // aux1 on aux0
    for (unsigned k = 0; k < nbins; ++k)
        v[k] = aux1Xaux0[k] / (aux0Pow[k] + eps);

    std::vector<std::vector<dcomplex>> mainXaux1p(cfg.mainChannels,
        std::vector<dcomplex>(nbins));
    std::vector<double> aux1pPow(nbins);
    for (unsigned b = 0; b < cfg.subBands; ++b) {
        for (unsigned k = 0; k < nbins; ++k) {
            const dcomplex a1p = dcomplex(aux1Spec[b][k])
                - v[k] * dcomplex(aux0Spec[b][k]);
            aux1pPow[k] += std::norm(a1p);
            for (unsigned m = 0; m < cfg.mainChannels; ++m) {
                mainXaux1p[m][k] +=
                    dcomplex(mainSpec[m][b][k]) * std::conj(a1p);
            }
        }
    }

    CslcWeights weights;
    weights.w.assign(cfg.mainChannels,
        std::vector<std::vector<cfloat>>(cfg.auxChannels,
            std::vector<cfloat>(static_cast<std::size_t>(cfg.subBands)
                                * nbins)));

    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        for (unsigned k = 0; k < nbins; ++k) {
            const dcomplex w0raw =
                mainXaux0[m][k] / (aux0Pow[k] + eps);
            const dcomplex w1 =
                mainXaux1p[m][k] / (aux1pPow[k] + eps);
            // out = main - w0*aux0 - w1*aux1 with
            // aux1' = aux1 - v*aux0 folded into w0.
            const dcomplex w0 = w0raw - w1 * v[k];
            for (unsigned b = 0; b < cfg.subBands; ++b) {
                weights.w[m][0][b * nbins + k] =
                    cfloat(static_cast<float>(w0.real()),
                           static_cast<float>(w0.imag()));
                weights.w[m][1][b * nbins + k] =
                    cfloat(static_cast<float>(w1.real()),
                           static_cast<float>(w1.imag()));
            }
        }
    }
    return weights;
}

namespace
{

void
forwardFft(std::vector<cfloat> &block, FftAlgo algo)
{
    if (algo == FftAlgo::Mixed128)
        fftMixed128(block);
    else
        fftRadix2(block);
}

void
inverseFft(std::vector<cfloat> &block, FftAlgo algo)
{
    if (algo == FftAlgo::Mixed128)
        ifftMixed128(block);
    else
        ifft(block);
}

} // namespace

CslcOutput
cslcReference(const CslcConfig &cfg, const CslcInput &in,
              const CslcWeights &weights, FftAlgo algo)
{
    const unsigned nbins = cfg.subBandLen;
    CslcOutput out;
    out.main.assign(cfg.mainChannels,
        std::vector<cfloat>(static_cast<std::size_t>(cfg.subBands)
                            * nbins));

    auto spectrum = [&](const std::vector<cfloat> &x, unsigned band) {
        const unsigned off = band * cfg.subBandStride;
        std::vector<cfloat> block(x.begin() + off,
                                  x.begin() + off + cfg.subBandLen);
        forwardFft(block, algo);
        return block;
    };

    for (unsigned b = 0; b < cfg.subBands; ++b) {
        std::vector<std::vector<cfloat>> auxSpec;
        for (unsigned a = 0; a < cfg.auxChannels; ++a)
            auxSpec.push_back(spectrum(in.aux[a], b));

        for (unsigned m = 0; m < cfg.mainChannels; ++m) {
            auto spec = spectrum(in.main[m], b);
            for (unsigned k = 0; k < nbins; ++k) {
                cfloat acc = spec[k];
                for (unsigned a = 0; a < cfg.auxChannels; ++a) {
                    acc -= weights.w[m][a][b * nbins + k]
                           * auxSpec[a][k];
                }
                spec[k] = acc;
            }
            inverseFft(spec, algo);
            for (unsigned k = 0; k < nbins; ++k)
                out.main[m][b * nbins + k] = spec[k];
        }
    }
    return out;
}

double
cancellationDepthDb(const CslcConfig &cfg, const CslcInput &in,
                    const CslcOutput &processed)
{
    double before = 0.0, after = 0.0;
    for (unsigned m = 0; m < cfg.mainChannels; ++m) {
        for (unsigned b = 0; b < cfg.subBands; ++b) {
            const unsigned off = b * cfg.subBandStride;
            for (unsigned k = 0; k < cfg.subBandLen; ++k) {
                before += std::norm(in.main[m][off + k]);
                after += std::norm(
                    processed.main[m][b * cfg.subBandLen + k]);
            }
        }
    }
    triarch_assert(after > 0.0, "processed output has zero power");
    return 10.0 * std::log10(before / after);
}

std::uint64_t
cslcFlops(const CslcConfig &cfg)
{
    const std::uint64_t perTransform = mixed128Ops().flops();
    const std::uint64_t weightFlops =
        static_cast<std::uint64_t>(cfg.subBands) * cfg.mainChannels
        * cfg.subBandLen * (cfg.auxChannels * 8);
    return cfg.transforms() * perTransform + weightFlops;
}

} // namespace triarch::kernels
