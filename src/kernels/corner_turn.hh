/**
 * @file
 * The corner turn: an out-of-place matrix transpose of 32-bit words,
 * the paper's memory-bandwidth stress kernel (Section 3.1). The study
 * size is 1024x1024 x 4-byte elements — larger than Imagine's SRF
 * (128 KB) and Raw's aggregate tile memory, smaller than VIRAM's
 * 13 MB of on-chip DRAM.
 */

#ifndef TRIARCH_KERNELS_CORNER_TURN_HH
#define TRIARCH_KERNELS_CORNER_TURN_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace triarch::kernels
{

/** A dense row-major matrix of 32-bit words. */
struct WordMatrix
{
    unsigned rows = 0;
    unsigned cols = 0;
    std::vector<Word> data;

    WordMatrix() = default;

    WordMatrix(unsigned r, unsigned c)
        : rows(r), cols(c),
          data(static_cast<std::size_t>(r) * c, 0)
    {
    }

    Word &
    at(unsigned r, unsigned c)
    {
        return data[static_cast<std::size_t>(r) * cols + c];
    }

    Word
    at(unsigned r, unsigned c) const
    {
        return data[static_cast<std::size_t>(r) * cols + c];
    }

    bool operator==(const WordMatrix &) const = default;
};

/** Fill @p m with a deterministic pattern derived from @p seed. */
void fillMatrix(WordMatrix &m, std::uint64_t seed);

/** dst(c, r) = src(r, c), walking the source row-major. */
void transposeNaive(const WordMatrix &src, WordMatrix &dst);

/**
 * Blocked transpose with square blocks of @p blockSize (the last
 * block in each dimension may be partial). This is the algorithm the
 * conventional and VIRAM/Raw mappings build on: 16x16 blocks fit the
 * VIRAM vector registers, 64x64-word blocks fit one Raw tile memory.
 */
void transposeBlocked(const WordMatrix &src, WordMatrix &dst,
                      unsigned blockSize);

/** True iff dst is exactly the transpose of src. */
bool isTransposeOf(const WordMatrix &src, const WordMatrix &dst);

} // namespace triarch::kernels

#endif // TRIARCH_KERNELS_CORNER_TURN_HH
