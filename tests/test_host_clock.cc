/**
 * @file
 * Tests for the host-time observability layer (sim/host_clock.hh and
 * the log-bucketed stats::Histogram behind it):
 *
 *  - bucket geometry: deterministic index/bounds that partition the
 *    full u64 range, and order-independent exact counts;
 *  - quantile estimates clamped to the observed range and exact for
 *    degenerate (single-value) sample sets;
 *  - the profiling gate: empty histograms are invisible in dump(),
 *    histogramReadings(), and the stats JSON, and PhaseSplit records
 *    nothing while profiling is off — which is what keeps
 *    triarch.stats.v1 documents byte-identical to the pre-host repo;
 *  - the repeated-measurement contract: exact order statistics on
 *    synthetic samples, and warmup iterations running unmeasured;
 *  - the determinism pin itself: the full stats document is
 *    bit-identical across 1/2/8 worker threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "sim/host_clock.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "study/parallel.hh"

namespace triarch
{
namespace
{

using stats::Histogram;

/** Restores the process-wide profiling gate on scope exit so a
 *  failing test cannot leak an enabled gate into its neighbors. */
struct ProfilingGuard
{
    explicit ProfilingGuard(bool on) { host::setProfiling(on); }
    ~ProfilingGuard() { host::setProfiling(false); }
};

// ---------------------------------------------------------------
// Bucket geometry.
// ---------------------------------------------------------------

TEST(HistogramBuckets, IndexAndBoundsAreDeterministic)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), 64u);

    // Every sample lands in a bucket whose [low, high) bounds
    // contain it (the top bucket's high is the u64 maximum).
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{7}, std::uint64_t{1024},
                            std::uint64_t{1} << 40,
                            (~std::uint64_t{0}) - 1}) {
        const std::size_t i = Histogram::bucketIndex(v);
        ASSERT_LT(i, Histogram::NumBuckets);
        EXPECT_GE(v, Histogram::bucketLow(i)) << "value " << v;
        if (i < 64) {
            EXPECT_LT(v, Histogram::bucketHigh(i)) << "value " << v;
        }
    }
}

TEST(HistogramBuckets, CountsAreExactAndOrderIndependent)
{
    const std::uint64_t samples[] = {0, 1, 1, 3, 900, 4096, 4097};

    Histogram forward;
    for (std::uint64_t v : samples)
        forward.record(v);
    Histogram backward;
    for (auto it = std::rbegin(samples); it != std::rend(samples); ++it)
        backward.record(*it);

    for (const Histogram *h : {&forward, &backward}) {
        EXPECT_EQ(h->count(), 7u);
        EXPECT_EQ(h->sum(), 0u + 1 + 1 + 3 + 900 + 4096 + 4097);
        EXPECT_EQ(h->minValue(), 0u);
        EXPECT_EQ(h->maxValue(), 4097u);
        EXPECT_EQ(h->bucket(0), 1u);    // the 0 sample
        EXPECT_EQ(h->bucket(1), 2u);    // both 1s
        EXPECT_EQ(h->bucket(2), 1u);    // 3
        EXPECT_EQ(h->bucket(10), 1u);   // 900 in [512, 1024)
        EXPECT_EQ(h->bucket(13), 2u);   // 4096 and 4097 in [4096, 8192)
    }
    for (std::size_t i = 0; i < Histogram::NumBuckets; ++i)
        EXPECT_EQ(forward.bucket(i), backward.bucket(i)) << i;
}

TEST(HistogramBuckets, QuantilesClampToTheObservedRange)
{
    Histogram h;
    EXPECT_EQ(h.median(), 0.0) << "empty histogram";

    for (int i = 0; i < 40; ++i)
        h.record(1000);
    EXPECT_EQ(h.median(), 1000.0)
        << "single-value histograms are exact";
    EXPECT_EQ(h.p95(), 1000.0);

    h.record(8);
    h.record(100000);
    EXPECT_GE(h.median(), 8.0);
    EXPECT_LE(h.p95(), 100000.0);
    EXPECT_LE(h.median(), h.p95());

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.median(), 0.0);
}

// ---------------------------------------------------------------
// Visibility: empty histograms must not change any rendering.
// ---------------------------------------------------------------

TEST(StatGroupHistograms, EmptyHistogramsAreInvisibleEverywhere)
{
    stats::StatGroup group("hosttest");
    Histogram h;
    group.addHistogram("lat_ns", &h, "a latency histogram");

    EXPECT_TRUE(group.histogramReadings().empty());
    std::ostringstream empty;
    group.dump(empty);
    EXPECT_EQ(empty.str().find("lat_ns"), std::string::npos);

    metrics::MetricsRegistry registry;
    registry.capture(group, "hosttest");
    std::ostringstream doc;
    registry.writeJson(doc);
    EXPECT_EQ(doc.str().find("histograms"), std::string::npos)
        << "profiling-off documents must not grow a histograms key";

    h.record(640);
    const auto readings = group.histogramReadings();
    ASSERT_EQ(readings.size(), 1u);
    EXPECT_EQ(readings[0].name, "lat_ns");
    EXPECT_EQ(readings[0].count, 1u);
    ASSERT_EQ(readings[0].buckets.size(), 1u);
    EXPECT_EQ(readings[0].buckets[0].first, 10u);    // [512, 1024)

    std::ostringstream filled;
    group.dump(filled);
    EXPECT_NE(filled.str().find("hosttest.lat_ns count 1"),
              std::string::npos)
        << filled.str();

    registry.capture(group, "hosttest");
    std::ostringstream doc2;
    registry.writeJson(doc2);
    EXPECT_NE(doc2.str().find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------
// The repeated-measurement contract.
// ---------------------------------------------------------------

TEST(RepeatedMeasurement, SummaryStatisticsAreExact)
{
    const auto s =
        host::summarizeSamples({50.0, 10.0, 40.0, 20.0, 30.0});
    EXPECT_EQ(s.repetitions, 5u);
    EXPECT_DOUBLE_EQ(s.minNs, 10.0);
    EXPECT_DOUBLE_EQ(s.maxNs, 50.0);
    EXPECT_DOUBLE_EQ(s.meanNs, 30.0);
    EXPECT_DOUBLE_EQ(s.medianNs, 30.0);
    // P95 at rank 0.95 * (n - 1) = 3.8: linear interpolation between
    // the 4th and 5th order statistics.
    EXPECT_DOUBLE_EQ(s.p95Ns, 48.0);
    // Population stddev of {10..50 step 10} is sqrt(200).
    EXPECT_NEAR(s.stddevNs, 14.142135623730951, 1e-9);

    const auto empty = host::summarizeSamples({});
    EXPECT_EQ(empty.repetitions, 0u);
    EXPECT_DOUBLE_EQ(empty.medianNs, 0.0);
}

TEST(RepeatedMeasurement, WarmupRunsUnmeasured)
{
    host::MeasureOptions opts;
    opts.warmup = 2;
    opts.repetitions = 5;

    std::atomic<unsigned> calls{0};
    const auto m = host::measureRepeated(opts, [&] { ++calls; });
    EXPECT_EQ(calls.load(), 7u) << "warmup + repetitions";
    EXPECT_EQ(m.stats.repetitions, 5u);
    EXPECT_GE(m.stats.maxNs, m.stats.minNs);
    EXPECT_GT(m.peakRssBytes, 0u) << "getrusage should be available";
}

// ---------------------------------------------------------------
// The profiling gate.
// ---------------------------------------------------------------

TEST(PhaseSplit, RecordsNothingWhileProfilingIsOff)
{
    stats::StatGroup group("gate");
    host::HostPhases phases;
    phases.addTo(group);

    {
        ProfilingGuard off(false);
        host::PhaseSplit split;
        split.startRun();
        split.startReadback();
        split.record(phases);
    }
    EXPECT_EQ(phases.setupNs.count(), 0u);
    EXPECT_EQ(phases.runNs.count(), 0u);
    EXPECT_EQ(phases.readbackNs.count(), 0u);

    {
        ProfilingGuard on(true);
        host::PhaseSplit split;
        split.startRun();
        split.startReadback();
        split.record(phases);
    }
    EXPECT_EQ(phases.setupNs.count(), 1u);
    EXPECT_EQ(phases.runNs.count(), 1u);
    EXPECT_EQ(phases.readbackNs.count(), 1u);
}

// ---------------------------------------------------------------
// The determinism pin: stats documents across thread counts.
// ---------------------------------------------------------------

TEST(StatsDeterminism, DocumentsAreBitIdenticalAcrossThreadCounts)
{
    study::StudyConfig cfg;
    cfg.matrixSize = 128;
    cfg.cslc.subBands = 8;
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    cfg.beam.elements = 256;
    cfg.beam.dwells = 2;
    cfg.jammerBins = {64, 200};

    std::string first;
    for (unsigned threads : {1u, 2u, 8u}) {
        {
            study::ParallelRunner par(
                cfg, threads, nullptr,
                study::ParallelRunner::noCache());
            par.runAll();
        }
        const std::string doc =
            metrics::MetricsRegistry::global().toJson();
        EXPECT_EQ(doc.find("histograms"), std::string::npos)
            << "host histograms recorded with profiling off";
        if (first.empty())
            first = doc;
        else
            EXPECT_EQ(doc, first) << threads << " threads";
    }
}

} // namespace
} // namespace triarch
