/**
 * @file
 * Tests for the tracing + metrics subsystem: the Chrome trace-event
 * document is syntactically valid JSON with well-nested spans on
 * every lane, the per-cell scheduler spans carry their queue-wait
 * attribution, StatGroup deltas ride on machine phase spans, the
 * triarch.stats.v1 document is bit-identical at any worker-thread
 * count, and the disabled fast path performs no allocation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "study/parallel.hh"

// ---------------------------------------------------------------
// Global allocation tally for the disabled-path test. Counting is
// always on; only the one test reads it.
// ---------------------------------------------------------------

namespace
{

std::atomic<std::uint64_t> allocationCount{0};

} // namespace

// GCC flags free() inside a replaced operator delete as a
// new/delete mismatch; the pointers always come from the malloc in
// the replaced operator new above, so the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace triarch
{
namespace
{

using study::Cell;
using study::KernelId;
using study::MachineId;
using study::ParallelRunner;
using study::ResultCache;
using study::StudyConfig;

/** The reduced workload from test_study.cc: fast but exercises all
 *  fifteen cells end to end. */
StudyConfig
smallConfig()
{
    StudyConfig cfg;
    cfg.matrixSize = 128;
    cfg.cslc.subBands = 8;
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    cfg.beam.elements = 256;
    cfg.beam.dwells = 2;
    cfg.jammerBins = {64, 200};
    return cfg;
}

// ---------------------------------------------------------------
// A minimal recursive-descent JSON syntax validator: accepts the
// full JSON grammar, rejects anything malformed. Enough to prove
// the writers emit documents Perfetto's parser will take.
// ---------------------------------------------------------------

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    bool
    value()
    {
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos;                          // consume '{'
        skipWs();
        if (peek() == '}') { ++pos; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos; continue; }
            if (peek() == '}') { ++pos; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos;                          // consume '['
        skipWs();
        if (peek() == ']') { ++pos; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos; continue; }
            if (peek() == ']') { ++pos; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos;
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '"') { ++pos; return true; }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;           // raw control character
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
                const char e = s[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size() || !std::isxdigit(
                                static_cast<unsigned char>(s[pos])))
                            return false;
                    }
                } else if (!strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++pos;
        }
        return false;                   // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos;
        if (peek() == '.') {
            ++pos;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return pos > start
               && std::isdigit(static_cast<unsigned char>(s[pos - 1]));
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (s.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    void
    skipWs()
    {
        while (pos < s.size()
               && (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t'
                   || s[pos] == '\r'))
            ++pos;
    }

    const std::string &s;
    std::size_t pos = 0;
};

// ---------------------------------------------------------------
// Line-level event extraction: writeJson emits one event per line
// with a fixed key order, so tests can pull fields without a DOM.
// ---------------------------------------------------------------

struct FlatEvent
{
    std::string name;
    char phase = '?';
    long tid = -1;
    double ts = 0.0;
    double dur = 0.0;
    std::string line;
};

std::vector<FlatEvent>
extractEvents(const std::string &doc)
{
    std::vector<FlatEvent> events;
    std::istringstream is(doc);
    std::string line;
    auto field = [&](const std::string &key) -> std::string {
        const auto at = line.find("\"" + key + "\": ");
        if (at == std::string::npos)
            return {};
        auto from = at + key.size() + 4;
        bool quoted = line[from] == '"';
        if (quoted)
            ++from;
        auto to = from;
        while (to < line.size()
               && (quoted ? line[to] != '"'
                          : (line[to] != ',' && line[to] != '}')))
            ++to;
        return line.substr(from, to - from);
    };
    while (std::getline(is, line)) {
        if (line.find("\"ph\"") == std::string::npos)
            continue;
        FlatEvent e;
        e.name = field("name");
        const std::string ph = field("ph");
        e.phase = ph.empty() ? '?' : ph[0];
        if (const std::string v = field("tid"); !v.empty())
            e.tid = std::stol(v);
        if (const std::string v = field("ts"); !v.empty())
            e.ts = std::stod(v);
        if (const std::string v = field("dur"); !v.empty())
            e.dur = std::stod(v);
        e.line = line;
        events.push_back(std::move(e));
    }
    return events;
}

// ---------------------------------------------------------------
// Trace document shape.
// ---------------------------------------------------------------

TEST(TraceSessionTest, SweepEmitsValidWellNestedDocument)
{
    trace::TraceSession sess;
    sess.start();
    {
        ResultCache cache;
        ParallelRunner par(smallConfig(), 4, nullptr, &cache);
        par.runAll();
        par.runAll();               // second sweep is cache-served
    }
    sess.stop();

    std::ostringstream os;
    sess.writeJson(os);
    const std::string doc = os.str();

    JsonValidator validator(doc);
    EXPECT_TRUE(validator.valid()) << "trace is not valid JSON";

    const auto events = extractEvents(doc);
    ASSERT_FALSE(events.empty());

    // Per-cell spans carry the queue-wait attribution and nest an
    // "execute" child; cache-served cells are marked.
    unsigned cellSpans = 0, executeSpans = 0, cachedSpans = 0;
    unsigned counters = 0;
    for (const auto &e : events) {
        if (e.phase == 'C')
            ++counters;
        if (e.phase != 'X')
            continue;
        if (e.line.find("\"queue_wait_us\"") != std::string::npos)
            ++cellSpans;
        if (e.name == "execute")
            ++executeSpans;
        if (e.line.find("\"cached\"") != std::string::npos)
            ++cachedSpans;
    }
    EXPECT_EQ(cellSpans, 15u);
    EXPECT_EQ(executeSpans, 15u);
    EXPECT_EQ(cachedSpans, 15u);
    EXPECT_GE(counters, 15u) << "scheduler progress counters missing";
    EXPECT_NE(doc.find("scheduler.cells_done"), std::string::npos);
    EXPECT_NE(doc.find("cache.hits"), std::string::npos);
    EXPECT_NE(doc.find("cache.misses"), std::string::npos);

    // Lanes are named.
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"main\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker-0\""), std::string::npos);

    // Spans on one lane are properly nested: any two either do not
    // overlap or one contains the other.
    std::map<long, std::vector<const FlatEvent *>> byLane;
    for (const auto &e : events) {
        if (e.phase == 'X')
            byLane[e.tid].push_back(&e);
    }
    for (const auto &[lane, spans] : byLane) {
        for (std::size_t i = 0; i < spans.size(); ++i) {
            for (std::size_t j = i + 1; j < spans.size(); ++j) {
                const FlatEvent &a = *spans[i];
                const FlatEvent &b = *spans[j];
                const double aEnd = a.ts + a.dur;
                const double bEnd = b.ts + b.dur;
                const bool overlap = a.ts < bEnd && b.ts < aEnd;
                if (!overlap)
                    continue;
                const bool aInB = b.ts <= a.ts && aEnd <= bEnd;
                const bool bInA = a.ts <= b.ts && bEnd <= aEnd;
                EXPECT_TRUE(aInB || bInA)
                    << "lane " << lane << ": spans '" << a.name
                    << "' and '" << b.name << "' partially overlap";
            }
        }
    }
}

TEST(TraceSessionTest, SpanArgsAndEscapingSurviveSerialization)
{
    trace::TraceSession sess;
    sess.start();
    const double t0 = sess.nowUs();
    sess.span("with \"quotes\"\nand newline", "test", t0, 1.5,
              {{"answer", 42.0}});
    sess.counter("tally", 7.0);
    sess.stop();

    std::ostringstream os;
    sess.writeJson(os);
    const std::string doc = os.str();

    JsonValidator validator(doc);
    EXPECT_TRUE(validator.valid());
    EXPECT_NE(doc.find("with \\\"quotes\\\"\\nand newline"),
              std::string::npos);
    EXPECT_NE(doc.find("\"answer\": 42"), std::string::npos);
    EXPECT_NE(doc.find("\"tally\""), std::string::npos);
    EXPECT_EQ(sess.events(), 2u);
}

TEST(TraceSessionTest, SecondConcurrentSessionDies)
{
    trace::TraceSession first;
    first.start();
    EXPECT_TRUE(first.running());
    EXPECT_TRUE(trace::TraceSession::enabled());

    trace::TraceSession second;
    EXPECT_DEATH(second.start(), "already active");

    first.stop();
    EXPECT_FALSE(trace::TraceSession::enabled());
}

TEST(TraceScopeTest, StatGroupDeltasRideOnTheSpan)
{
    stats::Scalar rowMisses, untouched;
    stats::StatGroup group("dram");
    group.addScalar("row_misses", &rowMisses, "row buffer misses");
    group.addScalar("untouched", &untouched);

    trace::TraceSession sess;
    sess.start();
    {
        trace::TraceScope scope("phase", "test", &group);
        rowMisses += 3;
    }
    sess.stop();

    std::ostringstream os;
    sess.writeJson(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"row_misses_delta\": 3"), std::string::npos);
    EXPECT_EQ(doc.find("untouched_delta"), std::string::npos)
        << "counters that did not move must not be attached";
}

TEST(TraceScopeTest, EndIsIdempotent)
{
    trace::TraceSession sess;
    sess.start();
    {
        trace::TraceScope scope("phase", "test");
        scope.end();
        scope.end();                // second end must not re-emit
    }                               // nor must the destructor
    sess.stop();
    EXPECT_EQ(sess.events(), 1u);
}

TEST(TraceScopeTest, DisabledPathAllocatesNothing)
{
    ASSERT_FALSE(trace::TraceSession::enabled());
    const std::uint64_t before =
        allocationCount.load(std::memory_order_relaxed);
    {
        trace::TraceScope scope("hot.loop", "test");
    }
    trace::counter("hot.counter", 1.0);
    trace::counterAt("hot.counter_at", 12.5, 2.0);
    const std::uint64_t after =
        allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before)
        << "disabled tracing must not allocate on the hot path";
}

// ---------------------------------------------------------------
// The stats document: deterministic across worker-thread counts.
// ---------------------------------------------------------------

TEST(MetricsDeterminism, StatsJsonBitIdenticalAcrossThreadCounts)
{
    const StudyConfig cfg = smallConfig();
    auto statsDoc = [&](unsigned threads) {
        metrics::MetricsRegistry::global().clear();
        ResultCache cache;          // private: every cell computes
        ParallelRunner par(cfg, threads, nullptr, &cache);
        par.runAll();
        std::ostringstream os;
        metrics::MetricsRegistry::global().writeJson(os);
        return os.str();
    };

    const std::string at1 = statsDoc(1);
    const std::string at2 = statsDoc(2);
    const std::string at8 = statsDoc(8);
    EXPECT_EQ(at1, at2);
    EXPECT_EQ(at1, at8);

    JsonValidator validator(at1);
    EXPECT_TRUE(validator.valid()) << "stats doc is not valid JSON";
    EXPECT_NE(at1.find("\"schema\": \"triarch.stats.v1\""),
              std::string::npos);
    // Every machine ran every kernel; the scheduler group is live.
    // The mem-subsystem component groups (caches, bus, TLB, DRAM
    // channels, per-tile D-caches) are captured uniformly per cell.
    for (const char *label :
         {"\"ppc.ct\"", "\"altivec.cslc\"", "\"viram.ct\"",
          "\"imagine.cslc\"", "\"raw.bs\"", "\"scheduler\"",
          "\"ppc.ct.l1\"", "\"ppc.bs.l2\"", "\"altivec.cslc.fsb\"",
          "\"viram.ct.tlb\"", "\"imagine.cslc.dram0\"",
          "\"raw.bs.dcache15\""})
        EXPECT_NE(at1.find(label), std::string::npos) << label;
    metrics::MetricsRegistry::global().clear();
}

TEST(MetricsRegistryTest, LiveAndSnapshotGroupsMerge)
{
    metrics::MetricsRegistry reg;

    stats::Scalar depth;
    stats::StatGroup liveGroup("queue");
    liveGroup.addScalar("depth", &depth);
    depth += 4;
    reg.registerLive(&liveGroup);

    stats::Scalar cycles;
    stats::StatGroup machineGroup("viram");
    machineGroup.addScalar("cycles", &cycles, "total cycles");
    cycles += 123;
    reg.capture(machineGroup, "viram.ct");
    EXPECT_EQ(reg.size(), 2u);

    std::ostringstream os;
    reg.writeJson(os);
    const std::string doc = os.str();
    JsonValidator validator(doc);
    EXPECT_TRUE(validator.valid());
    EXPECT_NE(doc.find("\"queue\""), std::string::npos);
    EXPECT_NE(doc.find("\"depth\": 4"), std::string::npos);
    EXPECT_NE(doc.find("\"viram.ct\""), std::string::npos);
    EXPECT_NE(doc.find("\"cycles\": 123"), std::string::npos);

    // Live groups are read at write time, not registration time.
    depth += 1;
    std::ostringstream os2;
    reg.writeJson(os2);
    EXPECT_NE(os2.str().find("\"depth\": 5"), std::string::npos);

    reg.unregisterLive(&liveGroup);
    EXPECT_EQ(reg.size(), 1u);
}

} // namespace
} // namespace triarch
